// Quality-constrained reachability oracle tests.

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(ReachabilityTest, Figure3KnownFacts) {
  QualityGraph g = MakeFigure3Graph();
  WcReachabilityIndex index = WcReachabilityIndex::Build(g);
  EXPECT_TRUE(index.Reachable(0, 4, 3.0f));
  EXPECT_FALSE(index.Reachable(0, 4, 4.0f));
  EXPECT_TRUE(index.Reachable(1, 3, 4.0f));
  EXPECT_FALSE(index.Reachable(1, 3, 5.0f));
  EXPECT_TRUE(index.Reachable(2, 2, 99.0f));  // Self.
}

TEST(ReachabilityTest, BestQualityMatchesSweep) {
  QualityGraph g = MakeFigure3Graph();
  WcReachabilityIndex index = WcReachabilityIndex::Build(g);
  WcBfs bfs(&g);
  for (Vertex s = 0; s < 6; ++s) {
    for (Vertex t = 0; t < 6; ++t) {
      if (s == t) continue;
      Quality expected = -std::numeric_limits<Quality>::infinity();
      for (Quality w : g.DistinctQualities()) {
        if (bfs.Reachable(s, t, w)) expected = w;
      }
      EXPECT_FLOAT_EQ(index.BestQuality(s, t), expected) << s << "," << t;
    }
  }
}

TEST(ReachabilityTest, MatchesOracleOnRandomGraphs) {
  QualityModel quality;
  quality.num_levels = 6;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    QualityGraph g = GenerateRandomConnected(80, 180, quality, seed);
    WcReachabilityIndex index = WcReachabilityIndex::Build(g);
    WcBfs bfs(&g);
    Rng rng(seed + 50);
    for (int i = 0; i < 300; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(80));
      Vertex t = static_cast<Vertex>(rng.NextBounded(80));
      Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
      ASSERT_EQ(index.Reachable(s, t, w), bfs.Reachable(s, t, w))
          << "seed=" << seed << " " << s << "->" << t << " w=" << w;
    }
  }
}

TEST(ReachabilityTest, SmallerThanDistanceIndex) {
  QualityModel quality;
  quality.num_levels = 8;
  QualityGraph g = GenerateRandomConnected(200, 600, quality, 9);
  WcIndex full = WcIndex::Build(g);
  WcReachabilityIndex reduced = WcReachabilityIndex::FromWcIndex(full);
  EXPECT_LT(reduced.TotalEntries(), full.TotalEntries());
  // Agreement after reduction.
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(200));
    Vertex t = static_cast<Vertex>(rng.NextBounded(200));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 9));
    ASSERT_EQ(reduced.Reachable(s, t, w), full.Reachable(s, t, w));
  }
}

TEST(ReachabilityTest, DisconnectedComponents) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(3, 4, 3.0f);
  WcReachabilityIndex index = WcReachabilityIndex::Build(b.Build());
  EXPECT_FALSE(index.Reachable(0, 3, 1.0f));
  EXPECT_TRUE(index.Reachable(0, 1, 2.0f));
  EXPECT_EQ(index.BestQuality(0, 3),
            -std::numeric_limits<Quality>::infinity());
}

}  // namespace
}  // namespace wcsd
