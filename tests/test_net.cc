// Network front-end tests: the WcServer must answer bit-identically to the
// in-process engines for every QueryImpl, survive concurrent pipelined
// load from many connections (the soak/hammer configuration the sanitizer
// CI jobs run), and never crash on the malformed-frame corpus — framing
// errors close cleanly after one error frame, frame-local errors leave the
// connection serving.
//
// The wire-golden tests mirror test_golden_format.cc: checked-in request
// and reply byte dumps in tests/data pin the on-wire encoding. Regenerate
// ONLY on a deliberate protocol change (bump net::kWireVersion first) by
// running this binary with WCSD_REGEN_WIRE_GOLDEN=1 in the environment.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/path_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

using net::MsgType;
using net::WireError;
using net::WireHeader;

std::string GoldenPath(const std::string& name) {
  return std::string(WCSD_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

struct NetFixture {
  std::shared_ptr<const WcIndex> index;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected;
};

NetFixture MakeNetFixture(size_t n, size_t m, size_t num_queries,
                          uint64_t seed) {
  NetFixture f;
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  WcIndex built = WcIndex::Build(g, WcIndexOptions::Plus());
  built.Finalize();
  f.index = std::make_shared<const WcIndex>(std::move(built));
  Rng rng(seed ^ 0xfeed);
  f.workload.reserve(num_queries);
  f.expected.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected.push_back(f.index->Query(q.s, q.t, q.w));
  }
  return f;
}

WcServer StartServer(std::shared_ptr<const QueryService> service,
                     uint32_t max_payload = net::kMaxPayloadBytes) {
  WcServerOptions options;
  options.max_payload_bytes = max_payload;
  auto server = WcServer::Start(std::move(service), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

WcClient ConnectTo(const WcServer& server) {
  auto client = WcClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

// A cache-enabled engine behind the server: answers stay bit-identical,
// and the kStatsReply cache counters travel the wire.
TEST(WcServer, ReportsCacheCountersOverTheWire) {
  NetFixture f = MakeNetFixture(100, 260, 250, 229);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 64 << 10;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  // Twice: the second pass is mostly interval hits.
  for (int pass = 0; pass < 2; ++pass) {
    auto batch = client.Batch(f.workload);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch.value(), f.expected) << "pass=" << pass;
  }

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().cache_hits, 0u);
  EXPECT_GT(stats.value().cache_misses, 0u);
  EXPECT_GT(stats.value().cache_inserts, 0u);
  EXPECT_EQ(stats.value().cache_hits + stats.value().cache_misses,
            engine->stats().cache_hits + engine->stats().cache_misses);
}

// Every QueryImpl, every call shape: the networked answers must equal the
// in-process index bit-for-bit.
TEST(WcServer, BitIdenticalToInProcessForEveryImpl) {
  NetFixture f = MakeNetFixture(120, 320, 400, 211);
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    QueryEngineOptions options;
    options.num_threads = 2;
    options.impl = impl;
    auto engine = std::make_shared<const QueryEngine>(f.index, options);
    WcServer server = StartServer(MakeQueryService(engine));
    WcClient client = ConnectTo(server);

    std::vector<Distance> expected;
    expected.reserve(f.workload.size());
    for (const BatchQueryInput& q : f.workload) {
      expected.push_back(f.index->Query(q.s, q.t, q.w, impl));
    }
    for (size_t i = 0; i < 100; ++i) {
      const BatchQueryInput& q = f.workload[i];
      auto d = client.Query(q.s, q.t, q.w);
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      ASSERT_EQ(d.value(), expected[i]) << "impl=" << static_cast<int>(impl);
    }
    auto batch = client.Batch(f.workload);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch.value(), expected);
    auto pipelined = client.QueryPipelined(f.workload, /*window=*/32);
    ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
    EXPECT_EQ(pipelined.value(), expected);
  }
}

TEST(WcServer, ServesShardedBackendIdentically) {
  NetFixture f = MakeNetFixture(110, 280, 300, 223);
  const uint64_t n = f.index->NumVertices();
  std::vector<std::string> paths;
  for (int k = 0; k < 3; ++k) {
    std::string path =
        testing::TempDir() + "/net_shard" + std::to_string(k);
    ASSERT_TRUE(WriteSnapshotShard(path, f.index->flat_labels(), n * k / 3,
                                   n * (k + 1) / 3, n)
                    .ok());
    paths.push_back(path);
  }
  QueryEngineOptions options;
  options.num_threads = 2;
  auto sharded = ShardedQueryEngine::OpenMmap(paths, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  WcServer server = StartServer(MakeQueryService(
      std::make_shared<const ShardedQueryEngine>(std::move(sharded).value())));
  WcClient client = ConnectTo(server);

  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), n);
  auto batch = client.Batch(f.workload);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value(), f.expected);

  // The Stats frame reports per-shard balance for a sharded service: three
  // records tiling [0, n), with entry counts adding up to the index.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().shards.size(), 3u);
  uint64_t cursor = 0;
  uint64_t entries = 0;
  for (const net::ShardBalancePayload& shard : stats.value().shards) {
    EXPECT_EQ(shard.vertex_begin, cursor);
    cursor = shard.vertex_end;
    entries += shard.entry_count;
    EXPECT_GT(shard.label_bytes, 0u);
  }
  EXPECT_EQ(cursor, n);
  EXPECT_EQ(entries, f.index->TotalEntries());
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(WcServer, HealthAndStatsReportTheEngine) {
  NetFixture f = MakeNetFixture(80, 200, 50, 227);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value(), f.index->NumVertices());

  for (size_t i = 0; i < 10; ++i) {
    const BatchQueryInput& q = f.workload[i];
    ASSERT_TRUE(client.Query(q.s, q.t, q.w).ok());
  }
  ASSERT_TRUE(client.Batch(f.workload).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_vertices, f.index->NumVertices());
  EXPECT_EQ(stats.value().queries, 10 + f.workload.size());
  EXPECT_EQ(stats.value().batches, 1u);
  EXPECT_GT(stats.value().reachable, 0u);
  // Unsharded engines report an empty balance section.
  EXPECT_TRUE(stats.value().shards.empty());

  WcServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.connections_accepted, 1u);
  // health + 10 queries + batch + stats.
  EXPECT_EQ(server_stats.frames_served, 13u);
  EXPECT_EQ(server_stats.protocol_errors, 0u);
}

TEST(WcServer, OutOfRangeVerticesAnswerInf) {
  NetFixture f = MakeNetFixture(60, 150, 10, 229);
  auto engine = std::make_shared<const QueryEngine>(f.index);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);
  auto d = client.Query(1u << 30, 2, 1.0f);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), kInfDistance);
}

// The soak/hammer configuration: many connections, each pipelining windows
// of single-query frames and interleaving batch frames, all against
// precomputed expected answers. This is the test the TSan and ASan CI jobs
// run — the server's event loop, the engine pool, and N client threads all
// overlap here.
TEST(WcServer, SoakManyConcurrentPipelinedConnections) {
  NetFixture f = MakeNetFixture(120, 320, 600, 233);
  QueryEngineOptions options;
  options.num_threads = 3;
  options.min_chunk = 16;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  WcServer server = StartServer(MakeQueryService(engine));

  constexpr size_t kConnections = 8;
  constexpr size_t kRounds = 5;
  constexpr size_t kSlice = 300;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kConnections);
  for (size_t c = 0; c < kConnections; ++c) {
    callers.emplace_back([&, c] {
      auto client = WcClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t round = 0; round < kRounds; ++round) {
        size_t shift = (c * 131 + round * 17) % f.workload.size();
        std::vector<BatchQueryInput> slice;
        std::vector<Distance> expected;
        slice.reserve(kSlice);
        for (size_t i = 0; i < kSlice; ++i) {
          size_t j = (shift + i) % f.workload.size();
          slice.push_back(f.workload[j]);
          expected.push_back(f.expected[j]);
        }
        auto pipelined = client.value().QueryPipelined(slice, 24);
        if (!pipelined.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (pipelined.value() != expected) mismatches.fetch_add(1);
        auto batch = client.value().Batch(slice);
        if (!batch.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (batch.value() != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  QueryEngineStats engine_stats = engine->stats();
  EXPECT_EQ(engine_stats.queries, kConnections * kRounds * kSlice * 2);
  EXPECT_EQ(engine_stats.batches, kConnections * kRounds);
  WcServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_served,
            kConnections * kRounds * (kSlice + 1));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// The three v6 query families served over the wire must be bit-identical
// to their in-process core counterparts, and the path replies must be real
// routes: valid under the constraint, with exactly d(s,t,w) hops.
TEST(WcServer, ServesQueryFamiliesBitIdentically) {
  const size_t n = 100;
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(n, 260, quality, 263);
  WcIndex built = WcIndex::Build(g, WcIndexOptions::Plus());
  built.Finalize();
  auto index = std::make_shared<const WcIndex>(std::move(built));
  QueryEngineOptions options;
  options.num_threads = 1;
  options.graph = std::make_shared<const QualityGraph>(g);
  auto engine = std::make_shared<const QueryEngine>(index, options);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  Rng rng(771);
  const std::vector<Quality> thresholds = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  for (int round = 0; round < 20; ++round) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    std::vector<Vertex> candidates;
    for (int i = 0; i < 12; ++i) {
      candidates.push_back(static_cast<Vertex>(rng.NextBounded(n)));
    }

    auto remote_topk = client.TopK(s, candidates, w, 5);
    ASSERT_TRUE(remote_topk.ok()) << remote_topk.status().ToString();
    auto local_topk = TopKClosest(*index, s, candidates, w, 5);
    ASSERT_EQ(remote_topk.value().size(), local_topk.size());
    for (size_t i = 0; i < local_topk.size(); ++i) {
      EXPECT_EQ(remote_topk.value()[i].vertex, local_topk[i].vertex);
      EXPECT_EQ(remote_topk.value()[i].dist, local_topk[i].dist);
    }

    auto remote_profile = client.Profile(s, t, thresholds);
    ASSERT_TRUE(remote_profile.ok()) << remote_profile.status().ToString();
    auto local_profile = QualityProfile(*index, s, t, thresholds);
    ASSERT_EQ(remote_profile.value().size(), local_profile.size());
    for (size_t i = 0; i < local_profile.size(); ++i) {
      EXPECT_EQ(remote_profile.value()[i].quality, local_profile[i].quality);
      EXPECT_EQ(remote_profile.value()[i].dist, local_profile[i].dist);
    }

    auto remote_path = client.Path(s, t, w);
    ASSERT_TRUE(remote_path.ok()) << remote_path.status().ToString();
    const Distance d = index->Query(s, t, w);
    if (d == kInfDistance) {
      EXPECT_TRUE(remote_path.value().empty());
    } else {
      ASSERT_EQ(remote_path.value().size(), static_cast<size_t>(d) + 1);
      EXPECT_EQ(remote_path.value().front(), s);
      EXPECT_EQ(remote_path.value().back(), t);
      EXPECT_TRUE(IsValidWPath(g, remote_path.value(), w));
    }
  }
}

// A server started without the graph cannot reconstruct routes: kPath is
// refused with kNotSupported (an Unimplemented status client-side), the
// connection keeps serving, and the label-only families still work.
TEST(WcServer, PathWithoutGraphIsUnimplemented) {
  NetFixture f = MakeNetFixture(60, 150, 5, 269);
  auto engine = std::make_shared<const QueryEngine>(f.index);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  auto path = client.Path(0, 1, 1.0f);
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kUnimplemented);

  auto topk = client.TopK(0, {1, 2, 3}, 1.0f, 2);
  EXPECT_TRUE(topk.ok()) << topk.status().ToString();
  auto profile = client.Profile(0, 1, {1.0f, 2.0f});
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  const BatchQueryInput& q = f.workload[0];
  auto d = client.Query(q.s, q.t, q.w);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), f.expected[0]);
  // kNotSupported is a clean refusal, not a protocol error.
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// A batch bigger than one frame can carry must fail the CALL, not the
// connection (server-side it would be a stream-poisoning framing error).
TEST(WcClient, OversizedBatchRejectedClientSide) {
  NetFixture f = MakeNetFixture(60, 150, 10, 257);
  auto engine = std::make_shared<const QueryEngine>(f.index);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  std::vector<BatchQueryInput> big(net::kMaxBatchQueries + 1,
                                   BatchQueryInput{0, 1, 1.0f});
  auto result = client.Batch(big);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Nothing hit the wire; the connection is still healthy.
  auto d = client.Query(f.workload[0].s, f.workload[0].t, f.workload[0].w);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), f.expected[0]);
}

// A client may half-close after its last request and still read every
// buffered reply (the reply here is ~480 KB — far past the socket send
// buffer — so the server must keep draining after seeing EOF).
TEST(WcServer, HalfCloseStillDeliversLargeBufferedReply) {
  NetFixture f = MakeNetFixture(80, 200, 100, 251);
  auto engine = std::make_shared<const QueryEngine>(f.index);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  std::vector<BatchQueryInput> big;
  big.reserve(120000);
  for (size_t i = 0; i < 120000; ++i) {
    big.push_back(f.workload[i % f.workload.size()]);
  }
  std::vector<uint8_t> out;
  net::AppendBatchRequest(&out, 21, big);
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());
  ASSERT_TRUE(client.ShutdownSend().ok());

  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.type,
            static_cast<uint8_t>(MsgType::kBatchQueryReply));
  ASSERT_EQ(frame.value().payload.size(),
            sizeof(uint32_t) + sizeof(uint32_t) * big.size());
  for (size_t i : {size_t{0}, big.size() / 2, big.size() - 1}) {
    uint32_t dist;
    std::memcpy(&dist,
                frame.value().payload.data() + sizeof(uint32_t) +
                    i * sizeof(uint32_t),
                sizeof(dist));
    EXPECT_EQ(dist, f.expected[i % f.workload.size()]) << "query " << i;
  }
  EXPECT_FALSE(client.ReadRawFrame().ok());  // clean EOF after the drain
}

// ------------------------------------------------------------ malformed

struct MalformedFixture {
  MalformedFixture()
      : f(MakeNetFixture(60, 150, 20, 241)),
        engine(std::make_shared<const QueryEngine>(f.index)) {}

  /// A known-good query the corpus re-issues to prove the server (or the
  /// surviving connection) still works.
  void ExpectServes(WcClient& client) {
    const BatchQueryInput& q = f.workload[0];
    auto d = client.Query(q.s, q.t, q.w);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d.value(), f.expected[0]);
  }

  NetFixture f;
  std::shared_ptr<const QueryEngine> engine;
};

TEST(WcServerMalformed, BadMagicGetsErrorFrameThenClose) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  WcClient client = ConnectTo(server);

  WireHeader bad = {};
  bad.magic = 0xdeadbeef;
  bad.version = net::kWireVersion;
  bad.type = static_cast<uint8_t>(MsgType::kQuery);
  bad.request_id = 7;
  ASSERT_TRUE(client.SendBytes(&bad, sizeof(bad)).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.type, static_cast<uint8_t>(MsgType::kError));
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kBadMagic));
  // The stream is poisoned; the server closes after the error frame.
  EXPECT_FALSE(client.ReadRawFrame().ok());

  WcClient fresh = ConnectTo(server);
  fx.ExpectServes(fresh);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(WcServerMalformed, BadVersionGetsErrorFrameThenClose) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  WcClient client = ConnectTo(server);

  std::vector<uint8_t> out;
  net::AppendQueryRequest(&out, 9, 0, 1, 1.0f);
  out[4] = 0x7F;  // clobber the version field (offset 4, u16 LE)
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kBadVersion));
  EXPECT_FALSE(client.ReadRawFrame().ok());

  WcClient fresh = ConnectTo(server);
  fx.ExpectServes(fresh);
}

TEST(WcServerMalformed, OversizedLengthRejectedBeforeAllocation) {
  MalformedFixture fx;
  // Tiny payload cap so the probe does not need a real 16 MiB frame.
  WcServer server =
      StartServer(MakeQueryService(fx.engine), /*max_payload=*/4096);
  WcClient client = ConnectTo(server);

  WireHeader bad = {};
  bad.magic = net::kWireMagic;
  bad.version = net::kWireVersion;
  bad.type = static_cast<uint8_t>(MsgType::kBatchQuery);
  bad.request_id = 42;
  bad.payload_bytes = 0xFFFFFF00;  // never arrives; header alone rejects
  ASSERT_TRUE(client.SendBytes(&bad, sizeof(bad)).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kOversizedFrame));
  // Oversized frames keep a trustworthy header, so the id is echoed.
  EXPECT_EQ(frame.value().header.request_id, 42u);
  EXPECT_FALSE(client.ReadRawFrame().ok());

  WcClient fresh = ConnectTo(server);
  fx.ExpectServes(fresh);
}

TEST(WcServerMalformed, TruncatedFrameClosesQuietly) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  {
    WcClient client = ConnectTo(server);
    std::vector<uint8_t> out;
    net::AppendQueryRequest(&out, 5, 0, 1, 1.0f);
    // Half a header, then EOF: no reply owed, no crash allowed.
    ASSERT_TRUE(client.SendBytes(out.data(), 10).ok());
    ASSERT_TRUE(client.ShutdownSend().ok());
    EXPECT_FALSE(client.ReadRawFrame().ok());
  }
  {
    WcClient client = ConnectTo(server);
    std::vector<uint8_t> out;
    net::AppendQueryRequest(&out, 6, 0, 1, 1.0f);
    // A full header whose payload never arrives.
    ASSERT_TRUE(client.SendBytes(out.data(), sizeof(WireHeader) + 4).ok());
    ASSERT_TRUE(client.ShutdownSend().ok());
    EXPECT_FALSE(client.ReadRawFrame().ok());
  }
  WcClient fresh = ConnectTo(server);
  fx.ExpectServes(fresh);
}

TEST(WcServerMalformed, BadPayloadSizeKeepsConnectionServing) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  WcClient client = ConnectTo(server);

  uint8_t stub[5] = {1, 2, 3, 4, 5};
  std::vector<uint8_t> out;
  net::AppendFrame(&out, MsgType::kQuery, WireError::kOk, 11, stub,
                   sizeof(stub));
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kBadPayload));
  EXPECT_EQ(frame.value().header.request_id, 11u);
  // Frame-local error: the SAME connection keeps serving.
  fx.ExpectServes(client);
}

TEST(WcServerMalformed, BatchCountMismatchKeepsConnectionServing) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  WcClient client = ConnectTo(server);

  // Announces 10 queries but carries 2.
  std::vector<uint8_t> payload(4 + 2 * sizeof(net::QueryPayload), 0);
  uint32_t count = 10;
  std::memcpy(payload.data(), &count, sizeof(count));
  std::vector<uint8_t> out;
  net::AppendFrame(&out, MsgType::kBatchQuery, WireError::kOk, 13,
                   payload.data(), payload.size());
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kBadPayload));
  fx.ExpectServes(client);
}

TEST(WcServerMalformed, UnknownTypeKeepsConnectionServing) {
  MalformedFixture fx;
  WcServer server = StartServer(MakeQueryService(fx.engine));
  WcClient client = ConnectTo(server);

  std::vector<uint8_t> out;
  net::AppendFrame(&out, static_cast<MsgType>(99), WireError::kOk, 17,
                   nullptr, 0);
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());
  auto frame = client.ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.status,
            static_cast<uint8_t>(WireError::kUnknownType));
  EXPECT_EQ(frame.value().header.request_id, 17u);
  fx.ExpectServes(client);
}

TEST(WcServerMalformed, RandomGarbageNeverCrashesTheServer) {
  MalformedFixture fx;
  WcServer server =
      StartServer(MakeQueryService(fx.engine), /*max_payload=*/1 << 16);
  Rng rng(991);
  for (size_t round = 0; round < 40; ++round) {
    auto client = WcClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    size_t len = 1 + static_cast<size_t>(rng.NextBounded(200));
    std::vector<uint8_t> garbage(len);
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    ASSERT_TRUE(client.value().SendBytes(garbage.data(), garbage.size()).ok());
    client.value().ShutdownSend().ok();
    // Drain whatever the server says (error frame or clean close);
    // the only requirement is that it keeps serving afterwards.
    while (client.value().ReadRawFrame().ok()) {
    }
  }
  WcClient fresh = ConnectTo(server);
  fx.ExpectServes(fresh);
}

// --------------------------------------------------------- wire goldens

/// The fixed request script the goldens pin: health, one Figure 3 query,
/// a three-query batch, stats, then the v6 families — top-k closest,
/// quality profile, and path reconstruction. Ids are deliberately explicit
/// — they are part of the pinned bytes.
std::vector<uint8_t> GoldenRequestBytes() {
  std::vector<uint8_t> out;
  net::AppendHealthRequest(&out, 1);
  net::AppendQueryRequest(&out, 2, 2, 5, 2.0f);
  const std::vector<BatchQueryInput> batch = {
      {0, 6, 1.0f}, {2, 5, 2.0f}, {1, 4, 3.0f}};
  net::AppendBatchRequest(&out, 3, batch);
  net::AppendStatsRequest(&out, 4);
  const std::vector<Vertex> candidates = {1, 2, 3, 4, 5};
  net::AppendTopKRequest(&out, 5, 0, candidates, 1.0f, 3);
  const std::vector<Quality> thresholds = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  net::AppendProfileRequest(&out, 6, 0, 4, thresholds);
  net::AppendPathRequest(&out, 7, 2, 5, 2.0f);
  return out;
}

/// Runs the golden request script against a deterministic server over the
/// checked-in Figure 3 snapshot and returns the reply stream, re-encoded
/// frame by frame (AppendFrame is byte-faithful, which this also proves).
std::vector<uint8_t> GoldenReplyBytesFromLiveServer() {
  auto index = WcIndex::LoadMmap(GoldenPath("fig3_golden.wcsnap"));
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  QueryEngineOptions options;
  options.num_threads = 1;  // deterministic stats aggregation
  // The Figure 3 edges let the golden server answer the kPath frame; the
  // snapshot itself is a v1 file with no parent quads, so the pinned stats
  // reply also locks the degraded has_parents=0 flag.
  options.graph = std::make_shared<const QualityGraph>(MakeFigure3Graph());
  auto engine = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(std::move(index).value()), options);
  WcServer server = StartServer(MakeQueryService(engine));
  WcClient client = ConnectTo(server);

  std::vector<uint8_t> requests = GoldenRequestBytes();
  EXPECT_TRUE(client.SendBytes(requests.data(), requests.size()).ok());
  std::vector<uint8_t> replies;
  for (int i = 0; i < 7; ++i) {
    auto frame = client.ReadRawFrame();
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) break;
    net::AppendFrame(&replies,
                     static_cast<MsgType>(frame.value().header.type),
                     static_cast<WireError>(frame.value().header.status),
                     frame.value().header.request_id,
                     frame.value().payload.data(),
                     frame.value().payload.size());
  }
  return replies;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

bool RegenRequested() {
  const char* regen = std::getenv("WCSD_REGEN_WIRE_GOLDEN");
  return regen != nullptr && regen[0] == '1';
}

TEST(WireGolden, RequestEncodingIsByteStable) {
  std::vector<uint8_t> requests = GoldenRequestBytes();
  if (RegenRequested()) {
    WriteFileBytes(GoldenPath("wire_requests.bin"), requests);
  }
  std::string golden = ReadFileBytes(GoldenPath("wire_requests.bin"));
  EXPECT_EQ(std::string(requests.begin(), requests.end()), golden)
      << "the wire encoder no longer produces the golden request bytes — "
         "if the protocol changed deliberately, bump net::kWireVersion and "
         "regenerate with WCSD_REGEN_WIRE_GOLDEN=1";
}

TEST(WireGolden, ServerRepliesAreByteStable) {
  std::vector<uint8_t> replies = GoldenReplyBytesFromLiveServer();
  if (RegenRequested()) {
    WriteFileBytes(GoldenPath("wire_replies.bin"), replies);
  }
  std::string golden = ReadFileBytes(GoldenPath("wire_replies.bin"));
  EXPECT_EQ(std::string(replies.begin(), replies.end()), golden)
      << "the server no longer produces the golden reply bytes for the "
         "golden request script — if the protocol or the reply payloads "
         "changed deliberately, bump net::kWireVersion and regenerate with "
         "WCSD_REGEN_WIRE_GOLDEN=1";
}

// Decoding the pinned reply stream must yield the paper's answers — the
// semantic half of the golden contract (the byte compare is the format
// half).
TEST(WireGolden, GoldenRepliesDecodeToPaperAnswers) {
  std::string golden = ReadFileBytes(GoldenPath("wire_replies.bin"));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(golden.data());
  size_t at = 0;
  auto next = [&](MsgType expected_type) -> const uint8_t* {
    WireHeader header;
    const uint8_t* payload = nullptr;
    EXPECT_EQ(net::ParseFrame(data + at, golden.size() - at,
                              net::kMaxPayloadBytes, &header, &payload),
              net::FrameStatus::kOk);
    if (payload == nullptr) return nullptr;  // stale golden: stop decoding
    EXPECT_EQ(header.type, static_cast<uint8_t>(expected_type));
    at += sizeof(WireHeader) + header.payload_bytes;
    return payload;
  };

  const uint8_t* health_payload = next(MsgType::kHealthReply);
  ASSERT_NE(health_payload, nullptr);
  net::HealthReplyPayload health;
  std::memcpy(&health, health_payload, sizeof(health));
  QualityGraph g = MakeFigure3Graph();
  EXPECT_EQ(health.num_vertices, g.NumVertices());

  const uint8_t* query_payload = next(MsgType::kQueryReply);
  ASSERT_NE(query_payload, nullptr);
  net::QueryReplyPayload query;
  std::memcpy(&query, query_payload, sizeof(query));
  EXPECT_EQ(query.dist, 2u);  // the paper's dist(2, 5 | w >= 2) spot check

  const uint8_t* batch = next(MsgType::kBatchQueryReply);
  ASSERT_NE(batch, nullptr);
  uint32_t count;
  std::memcpy(&count, batch, sizeof(count));
  EXPECT_EQ(count, 3u);

  const uint8_t* stats_payload = next(MsgType::kStatsReply);
  ASSERT_NE(stats_payload, nullptr);
  net::StatsReplyPayload stats;
  std::memcpy(&stats, stats_payload, sizeof(stats));
  EXPECT_EQ(stats.num_vertices, g.NumVertices());
  uint32_t shard_count;
  std::memcpy(&shard_count, stats_payload + sizeof(stats),
              sizeof(shard_count));
  EXPECT_EQ(shard_count, 0u);  // the golden server is unsharded
  EXPECT_EQ(stats.queries, 4u);   // 1 single + 3 batched
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);  // the golden server serves uncached
  EXPECT_EQ(stats.cache_misses, 0u);
  // v4 robustness counters: a healthy, unloaded server reports all-quiet.
  EXPECT_EQ(stats.overload_rejections, 0u);
  EXPECT_EQ(stats.deadline_rejections, 0u);
  EXPECT_EQ(stats.shard_unavailable, 0u);
  // v5: the golden server is not swappable, so its generation is 0.
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.draining, 0u);
  EXPECT_EQ(health.draining, 0u);
  // v6: fig3_golden.wcsnap is a v1 snapshot without parent quads, so the
  // server must report the degraded parent-less mode explicitly. The stats
  // frame precedes the kPath frame in the script, so fallbacks are 0 here.
  EXPECT_EQ(stats.has_parents, 0u);
  EXPECT_EQ(stats.path_fallbacks, 0u);

  // v6 top-k: distances from v0 at w=1 are v1:1, v3:1, v2:2 (ties break by
  // vertex id).
  const uint8_t* topk_payload = next(MsgType::kTopKReply);
  ASSERT_NE(topk_payload, nullptr);
  std::memcpy(&count, topk_payload, sizeof(count));
  ASSERT_EQ(count, 3u);
  const uint32_t expected_topk[3][2] = {{1, 1}, {3, 1}, {2, 2}};
  for (size_t i = 0; i < 3; ++i) {
    net::RankedCandidatePayload ranked;
    std::memcpy(&ranked,
                topk_payload + sizeof(count) + i * sizeof(ranked),
                sizeof(ranked));
    EXPECT_EQ(ranked.vertex, expected_topk[i][0]) << "rank " << i;
    EXPECT_EQ(ranked.dist, expected_topk[i][1]) << "rank " << i;
  }

  // v6 profile: the paper's (v0, v4) trade-off curve — d = 2/3/4 at
  // w = 1/2/3, unreachable past w = 3.
  const uint8_t* profile_payload = next(MsgType::kProfileReply);
  ASSERT_NE(profile_payload, nullptr);
  std::memcpy(&count, profile_payload, sizeof(count));
  ASSERT_EQ(count, 5u);
  const uint32_t expected_profile[5] = {2, 3, 4, kInfDistance,
                                        kInfDistance};
  for (size_t i = 0; i < 5; ++i) {
    net::ProfilePointPayload point;
    std::memcpy(&point,
                profile_payload + sizeof(count) + i * sizeof(point),
                sizeof(point));
    EXPECT_EQ(point.w, static_cast<float>(i + 1)) << "threshold " << i;
    EXPECT_EQ(point.dist, expected_profile[i]) << "threshold " << i;
  }

  // v6 path: a valid w>=2 route for the paper's dist(2, 5 | w >= 2) = 2
  // spot check — exactly dist+1 vertices, endpoints included.
  const uint8_t* path_payload = next(MsgType::kPathReply);
  ASSERT_NE(path_payload, nullptr);
  std::memcpy(&count, path_payload, sizeof(count));
  ASSERT_EQ(count, 3u);
  std::vector<Vertex> path(count);
  std::memcpy(path.data(), path_payload + sizeof(count),
              count * sizeof(Vertex));
  EXPECT_EQ(path.front(), 2u);
  EXPECT_EQ(path.back(), 5u);
  EXPECT_TRUE(IsValidWPath(g, path, 2.0f));

  EXPECT_EQ(at, golden.size());
}

// An old reader's view of the kStatsReply payload must survive every
// extension: new fields append strictly after the old layout, so decoding
// only the first 104 (v5) or 120 (v6) bytes with the old field offsets
// yields the same counters. (wire.h pins this with static_asserts; this
// test proves it against the actual pinned bytes.)
TEST(WireGolden, StatsReplyKeepsV5PrefixLayout) {
  static_assert(offsetof(net::StatsReplyPayload, has_parents) == 104,
                "v6 stats fields must append after the v5 layout");
  static_assert(offsetof(net::StatsReplyPayload, compressed) == 120,
                "v7 stats fields must append after the v6 layout");
  static_assert(sizeof(net::StatsReplyPayload) == 168,
                "v7 stats payload is the 120-byte v6 layout + 6 u64");
  std::string golden = ReadFileBytes(GoldenPath("wire_replies.bin"));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(golden.data());
  // Walk to the kStatsReply frame (4th in the golden script).
  size_t at = 0;
  const uint8_t* stats_payload = nullptr;
  for (int i = 0; i < 4; ++i) {
    WireHeader header;
    const uint8_t* payload = nullptr;
    ASSERT_EQ(net::ParseFrame(data + at, golden.size() - at,
                              net::kMaxPayloadBytes, &header, &payload),
              net::FrameStatus::kOk);
    stats_payload = payload;
    at += sizeof(WireHeader) + header.payload_bytes;
  }
  ASSERT_NE(stats_payload, nullptr);
  // Decode with hand-written v5 offsets, no struct: what a v5-era reader
  // that ignores trailing bytes would compute.
  auto u64_at = [&](size_t offset) {
    uint64_t v;
    std::memcpy(&v, stats_payload + offset, sizeof(v));
    return v;
  };
  EXPECT_EQ(u64_at(0), MakeFigure3Graph().NumVertices());  // num_vertices
  EXPECT_EQ(u64_at(8), 4u);                                // queries
  EXPECT_EQ(u64_at(24), 1u);                               // batches
  EXPECT_EQ(u64_at(88), 0u);                               // generation
  EXPECT_EQ(u64_at(96), 0u);                               // draining
}

}  // namespace
}  // namespace wcsd
