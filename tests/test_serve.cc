// Serving-layer tests: QueryEngine and ShardedQueryEngine correctness
// against the raw index, and multi-threaded hammering of one engine from
// many caller threads (the configuration the TSan CI job runs).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct ServeFixture {
  QualityGraph graph;
  std::shared_ptr<const WcIndex> index;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected;
};

ServeFixture MakeFixture(size_t n, size_t m, size_t num_queries,
                         uint64_t seed) {
  ServeFixture f;
  QualityModel quality;
  quality.num_levels = 5;
  f.graph = GenerateRandomConnected(n, m, quality, seed);
  WcIndex built = WcIndex::Build(f.graph, WcIndexOptions::Plus());
  built.Finalize();
  f.index = std::make_shared<const WcIndex>(std::move(built));
  Rng rng(seed ^ 0x5eed);
  f.workload.reserve(num_queries);
  f.expected.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected.push_back(f.index->Query(q.s, q.t, q.w));
  }
  return f;
}

TEST(QueryEngine, SingleAndBatchMatchIndex) {
  ServeFixture f = MakeFixture(120, 320, 600, 17);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    QueryEngineOptions options;
    options.num_threads = threads;
    options.min_chunk = 16;
    QueryEngine engine(f.index, options);
    EXPECT_EQ(engine.num_threads(), threads);
    for (size_t i = 0; i < 100; ++i) {
      const BatchQueryInput& q = f.workload[i];
      ASSERT_EQ(engine.Query(q.s, q.t, q.w), f.expected[i]);
    }
    EXPECT_EQ(engine.Batch(f.workload), f.expected);
  }
}

TEST(QueryEngine, EveryImplAgrees) {
  ServeFixture f = MakeFixture(100, 260, 300, 23);
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    QueryEngineOptions options;
    options.num_threads = 2;
    options.impl = impl;
    QueryEngine engine(f.index, options);
    EXPECT_EQ(engine.Batch(f.workload), f.expected)
        << "impl=" << static_cast<int>(impl);
  }
}

TEST(QueryEngine, OpenServesSnapshotIdentically) {
  ServeFixture f = MakeFixture(140, 360, 500, 29);
  std::string path = TempPath("engine_open.wcsnap");
  ASSERT_TRUE(f.index->SaveSnapshot(path).ok());
  QueryEngineOptions options;
  options.num_threads = 3;
  auto engine = QueryEngine::Open(path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value().index().flat_labels().external());
  EXPECT_EQ(engine.value().Batch(f.workload), f.expected);
  std::remove(path.c_str());
}

TEST(QueryEngine, StatsCountServedQueries) {
  ServeFixture f = MakeFixture(80, 200, 400, 31);
  QueryEngineOptions options;
  options.num_threads = 4;
  options.min_chunk = 8;
  QueryEngine engine(f.index, options);
  engine.Batch(f.workload);
  engine.Batch(f.workload);
  for (size_t i = 0; i < 25; ++i) {
    const BatchQueryInput& q = f.workload[i];
    engine.Query(q.s, q.t, q.w);
  }
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2 * f.workload.size() + 25);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_GT(stats.reachable, 0u);
}

// The TSan target: one engine, many caller threads, overlapping batches
// and single queries, all against precomputed expected answers.
TEST(QueryEngine, ConcurrentHammer) {
  ServeFixture f = MakeFixture(120, 320, 800, 37);
  QueryEngineOptions options;
  options.num_threads = 4;
  options.min_chunk = 16;
  QueryEngine engine(f.index, options);

  constexpr size_t kCallers = 8;
  constexpr size_t kRoundsPerCaller = 6;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      // Overlapping slices: caller c batches a rotated window of the
      // shared workload and issues singles interleaved.
      for (size_t round = 0; round < kRoundsPerCaller; ++round) {
        size_t shift = (c * 131 + round * 17) % f.workload.size();
        std::vector<BatchQueryInput> slice;
        std::vector<Distance> expected;
        slice.reserve(500);
        for (size_t i = 0; i < 500; ++i) {
          size_t j = (shift + i) % f.workload.size();
          slice.push_back(f.workload[j]);
          expected.push_back(f.expected[j]);
        }
        if (engine.Batch(slice) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t i = 0; i < 50; ++i) {
          size_t j = (shift + i * 7) % f.workload.size();
          const BatchQueryInput& q = f.workload[j];
          if (engine.Query(q.s, q.t, q.w) != f.expected[j]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, kCallers * kRoundsPerCaller * (500 + 50));
  EXPECT_EQ(stats.batches, kCallers * kRoundsPerCaller);
}

std::vector<std::string> WriteShards(const WcIndex& index, size_t shards,
                                     const std::string& stem) {
  const uint64_t n = index.NumVertices();
  std::vector<std::string> paths;
  for (size_t k = 0; k < shards; ++k) {
    uint64_t begin = n * k / shards;
    uint64_t end = n * (k + 1) / shards;
    std::string path = TempPath(stem + ".shard" + std::to_string(k));
    EXPECT_TRUE(
        WriteSnapshotShard(path, index.flat_labels(), begin, end, n).ok());
    paths.push_back(path);
  }
  return paths;
}

TEST(ShardedEngine, MatchesUnshardedAcrossShardCounts) {
  ServeFixture f = MakeFixture(130, 340, 600, 41);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    std::vector<std::string> paths =
        WriteShards(*f.index, shards, "match" + std::to_string(shards));
    QueryEngineOptions options;
    options.num_threads = 2;
    options.min_chunk = 32;
    auto engine = ShardedQueryEngine::OpenMmap(paths, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(engine.value().num_shards(), shards);
    EXPECT_EQ(engine.value().NumVertices(), f.index->NumVertices());
    EXPECT_EQ(engine.value().Batch(f.workload), f.expected);
    for (size_t i = 0; i < 100; ++i) {
      const BatchQueryInput& q = f.workload[i];
      ASSERT_EQ(engine.value().Query(q.s, q.t, q.w), f.expected[i]);
    }
    for (const std::string& p : paths) std::remove(p.c_str());
  }
}

// More shards than vertices produces empty shards; the tiling validation
// must accept them in any listing order (sort ties on begin are broken by
// end, so [x, x) sorts before [x, y)).
TEST(ShardedEngine, EmptyShardsAcceptedInAnyOrder) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(3, 3, quality, 71);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  std::vector<std::string> paths = WriteShards(index, 5, "tiny");
  std::vector<std::string> reversed(paths.rbegin(), paths.rend());
  for (const auto& order : {paths, reversed}) {
    auto engine = ShardedQueryEngine::OpenMmap(order);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(engine.value().NumVertices(), 3u);
    for (Vertex s = 0; s < 3; ++s) {
      for (Vertex t = 0; t < 3; ++t) {
        EXPECT_EQ(engine.value().Query(s, t, 1.0f),
                  index.Query(s, t, 1.0f));
      }
    }
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(ShardedEngine, RejectsIncompleteOrInconsistentShardSets) {
  ServeFixture f = MakeFixture(90, 230, 10, 43);
  std::vector<std::string> paths = WriteShards(*f.index, 3, "reject");

  // Missing middle shard: gap detected.
  auto gap = ShardedQueryEngine::OpenMmap({paths[0], paths[2]});
  EXPECT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kInvalidArgument);

  // Duplicate shard: overlap detected.
  auto dup = ShardedQueryEngine::OpenMmap(
      {paths[0], paths[1], paths[1], paths[2]});
  EXPECT_FALSE(dup.ok());

  // Shard of a different index: totals disagree.
  ServeFixture other = MakeFixture(60, 150, 10, 44);
  std::string foreign = TempPath("foreign.shard");
  ASSERT_TRUE(WriteSnapshotShard(foreign, other.index->flat_labels(), 0, 60,
                                 60)
                  .ok());
  auto mixed = ShardedQueryEngine::OpenMmap({paths[0], paths[1], foreign});
  EXPECT_FALSE(mixed.ok());

  // No shards at all.
  EXPECT_FALSE(ShardedQueryEngine::OpenMmap({}).ok());

  for (const std::string& p : paths) std::remove(p.c_str());
  std::remove(foreign.c_str());
}

TEST(ShardedEngine, ConcurrentHammer) {
  ServeFixture f = MakeFixture(110, 280, 600, 47);
  std::vector<std::string> paths = WriteShards(*f.index, 4, "hammer");
  QueryEngineOptions options;
  options.num_threads = 3;
  options.min_chunk = 16;
  auto opened = ShardedQueryEngine::OpenMmap(paths, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedQueryEngine& engine = opened.value();

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> callers;
  for (size_t c = 0; c < 6; ++c) {
    callers.emplace_back([&, c] {
      for (size_t round = 0; round < 5; ++round) {
        size_t shift = (c * 97 + round * 13) % f.workload.size();
        std::vector<BatchQueryInput> slice;
        std::vector<Distance> expected;
        for (size_t i = 0; i < 300; ++i) {
          size_t j = (shift + i) % f.workload.size();
          slice.push_back(f.workload[j]);
          expected.push_back(f.expected[j]);
        }
        if (engine.Batch(slice) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(BatchQueryReroute, MatchesSerialAcrossThreadCounts) {
  ServeFixture f = MakeFixture(100, 260, 500, 53);
  std::vector<Distance> serial = BatchQuery(*f.index, f.workload, 1);
  EXPECT_EQ(serial, f.expected);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    EXPECT_EQ(BatchQuery(*f.index, f.workload, threads), f.expected)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace wcsd
