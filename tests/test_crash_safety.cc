// Crash-safety proofs for the persistence layer: with a fault injected at
// EVERY stage of the atomic-replacement protocol (util/atomic_file.h), the
// target path always holds either the complete old file or the complete
// new file — never a torn hybrid. The stages are probed two ways:
//
//   * injected errors (error:ENOSPC and friends): the writer must fail
//     with a clean Status and leave the old file byte-identical;
//   * injected crashes (_exit(42) at the stage, via fork): the process
//     dies with no destructors and the parent inspects the debris, which
//     is exactly what a power cut at that instant would leave.
//
// A deliberately-short write that still commits models the one failure
// the protocol cannot prevent (the environment lying about durability);
// the loader must then refuse the file with a clean Corruption, which
// closes the contract: readers never consume a torn snapshot.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wc_index.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "paper_fixtures.h"
#include "serve/sharded_engine.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"

namespace wcsd {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

class CrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoints::ClearAll(); }
  void TearDown() override { failpoints::ClearAll(); }

  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/crash_safety_" + name;
  }
};

// ------------------------------------------------- AtomicFileWriter core

TEST_F(CrashSafetyTest, CommitReplacesAtomically) {
  std::string path = TempPath("basic");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Write("old content", 11).ok());
    ASSERT_TRUE(w.value().Commit().ok());
  }
  EXPECT_EQ(ReadAll(path), "old content");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Write("new", 3).ok());
    // Until Commit, the target still holds the old bytes.
    EXPECT_EQ(ReadAll(path), "old content");
    ASSERT_TRUE(w.value().Commit().ok());
  }
  EXPECT_EQ(ReadAll(path), "new");
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ErrorAtEveryStageLeavesTheOldFile) {
  // Every pre-commit-point stage: an injected error must fail the write
  // cleanly and leave the old content byte-identical, with no temp debris.
  const char* stages[] = {"atomic_file.open", "atomic_file.write",
                          "atomic_file.sync", "atomic_file.rename"};
  for (const char* stage : stages) {
    std::string path = TempPath(std::string("err_") + stage);
    {
      auto w = AtomicFileWriter::Open(path);
      ASSERT_TRUE(w.ok());
      ASSERT_TRUE(w.value().Write("precious", 8).ok());
      ASSERT_TRUE(w.value().Commit().ok());
    }

    ASSERT_TRUE(failpoints::Set(stage, "error:ENOSPC").ok());
    Status failed = Status::OK();
    {
      auto w = AtomicFileWriter::Open(path);
      if (!w.ok()) {
        failed = w.status();
      } else {
        failed = w.value().Write("replacement", 11);
        if (failed.ok()) failed = w.value().Commit();
      }
    }
    failpoints::Clear(stage);

    EXPECT_FALSE(failed.ok()) << stage;
    EXPECT_EQ(ReadAll(path), "precious") << stage;
    EXPECT_FALSE(
        FileExists(path + ".tmp." + std::to_string(getpid())))
        << stage << " left a temp file";
    std::remove(path.c_str());
  }
}

TEST_F(CrashSafetyTest, DirsyncErrorStillCommits) {
  // The directory fsync runs after the rename: an error there is reported
  // (the entry may not be durable) but the target already holds the
  // complete NEW file — the one post-commit-point stage.
  std::string path = TempPath("dirsync");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Write("old", 3).ok());
    ASSERT_TRUE(w.value().Commit().ok());
  }
  ASSERT_TRUE(failpoints::Set("atomic_file.dirsync", "error:EIO").ok());
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value().Write("new", 3).ok());
    EXPECT_FALSE(w.value().Commit().ok());
  }
  failpoints::Clear("atomic_file.dirsync");
  EXPECT_EQ(ReadAll(path), "new");
  std::remove(path.c_str());
}

// --------------------------------------------------- snapshot round trips

WcIndex BuildFinalizedFig3() {
  WcIndex index = WcIndex::Build(MakeFigure3Graph(), WcIndexOptions::Plus());
  index.Finalize();
  return index;
}

TEST_F(CrashSafetyTest, SnapshotWriteFaultsLeaveTheOldSnapshotServing) {
  WcIndex index = BuildFinalizedFig3();
  std::string path = TempPath("snap.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string good = ReadAll(path);
  ASSERT_FALSE(good.empty());

  const char* stages[] = {"snapshot.write.header", "snapshot.write.section",
                          "atomic_file.write", "atomic_file.sync",
                          "atomic_file.rename"};
  for (const char* stage : stages) {
    ASSERT_TRUE(failpoints::Set(stage, "error:ENOSPC").ok());
    EXPECT_FALSE(index.SaveSnapshot(path).ok()) << stage;
    failpoints::Clear(stage);
    EXPECT_EQ(ReadAll(path), good) << stage << " tore the old snapshot";
    // The old snapshot still loads and serves.
    auto loaded = WcIndex::LoadMmap(path);
    ASSERT_TRUE(loaded.ok()) << stage << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value().Query(2, 5, 2.0f), 2u) << stage;
  }
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ShortCommittedWriteIsRefusedByTheLoader) {
  // The one scenario atomic replacement cannot mask: the write silently
  // truncates but every commit step "succeeds". The file at the target is
  // then torn by construction — and the loader must say so, cleanly.
  WcIndex index = BuildFinalizedFig3();
  std::string path = TempPath("short.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  ASSERT_GT(ReadAll(path).size(), 64u);

  // 64 bytes is well short of the 4 KiB header page, so the header (and
  // its CRC) is guaranteed torn regardless of section sizes.
  ASSERT_TRUE(failpoints::Set("atomic_file.write", "short:64").ok());
  Status st = index.SaveSnapshot(path);
  failpoints::Clear("atomic_file.write");
  // Whether or not the save reported the truncation, the reader is the
  // backstop: a torn snapshot must never load.
  if (st.ok()) {
    auto loaded = WcIndex::LoadMmap(path);
    EXPECT_FALSE(loaded.ok());
  }
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, ManifestWriteFaultLeavesTheOldManifest) {
  WcIndex index = BuildFinalizedFig3();
  const FlatLabelSet& flat = index.flat_labels();
  ShardPlanOptions plan_options;
  plan_options.num_shards = 2;
  auto plan = PlanShards(flat, plan_options);
  ASSERT_TRUE(plan.ok());
  std::string stem = TempPath("set");
  auto written = WriteShardSet(stem, flat, plan.value());
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  std::string good = ReadAll(written.value().manifest_path);
  ASSERT_FALSE(good.empty());

  ASSERT_TRUE(failpoints::Set("manifest.write", "error:EIO").ok());
  auto rewritten = WriteShardSet(stem, flat, plan.value());
  failpoints::Clear("manifest.write");
  EXPECT_FALSE(rewritten.ok());
  EXPECT_EQ(ReadAll(written.value().manifest_path), good);
  // The intact set still opens and serves.
  auto engine = ShardedQueryEngine::OpenManifest(
      written.value().manifest_path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value().Query(2, 5, 2.0f), 2u);
  for (const std::string& p : written.value().shard_paths) {
    std::remove(p.c_str());
  }
  std::remove(written.value().manifest_path.c_str());
}

// ------------------------------------------------------- real crashes

// Sanitizer runtimes and fork do not mix reliably; the crash-at-a-point
// scenarios run in plain builds (CI also covers them end-to-end through
// the CLI crash-recovery smoke).
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define WCSD_CRASH_TESTS 1
#endif

#ifdef WCSD_CRASH_TESTS

/// Forks; the child arms `stage` as a crash failpoint, attempts the save,
/// and dies AT that stage with no destructors (or exits 1 if the crash
/// never fired). Returns the child's wait status outcome.
int CrashSaveAt(const char* stage, const WcIndex& index,
                const std::string& path) {
  pid_t pid = fork();
  if (pid == 0) {
    // Child: arm, save, and report "no crash" if we survive.
    if (!failpoints::Set(stage, "crash").ok()) _exit(3);
    (void)index.SaveSnapshot(path);
    _exit(1);
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

TEST_F(CrashSafetyTest, CrashBeforeTheRenameLeavesTheOldSnapshot) {
  WcIndex index = BuildFinalizedFig3();
  std::string path = TempPath("crash_pre.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string good = ReadAll(path);

  for (const char* stage :
       {"atomic_file.write", "atomic_file.sync", "atomic_file.rename"}) {
    EXPECT_EQ(CrashSaveAt(stage, index, path), 42) << stage;
    EXPECT_EQ(ReadAll(path), good) << "crash at " << stage
                                   << " tore the old snapshot";
    auto loaded = WcIndex::LoadMmap(path);
    ASSERT_TRUE(loaded.ok()) << stage;
    EXPECT_EQ(loaded.value().Query(2, 5, 2.0f), 2u) << stage;
  }
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, CrashAfterTheRenameLeavesTheNewSnapshot) {
  WcIndex index = BuildFinalizedFig3();
  std::string path = TempPath("crash_post.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());

  // The dirsync failpoint sits just past the rename: the crash lands
  // after the commit point, so the NEW file must be complete at the
  // target.
  EXPECT_EQ(CrashSaveAt("atomic_file.dirsync", index, path), 42);
  auto loaded = WcIndex::LoadMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Query(2, 5, 2.0f), 2u);
  std::remove(path.c_str());
}

TEST_F(CrashSafetyTest, CrashNeverLeavesAFreshFileTorn) {
  // First-ever save (no old file): a crash mid-write must leave either
  // nothing at the target or a complete loadable snapshot — a torn
  // half-file would poison the next startup.
  WcIndex index = BuildFinalizedFig3();
  for (const char* stage :
       {"atomic_file.write", "atomic_file.sync", "atomic_file.rename",
        "atomic_file.dirsync"}) {
    std::string path = TempPath(std::string("fresh_") + stage + ".wcsnap");
    std::remove(path.c_str());
    EXPECT_EQ(CrashSaveAt(stage, index, path), 42) << stage;
    if (FileExists(path)) {
      auto loaded = WcIndex::LoadMmap(path);
      ASSERT_TRUE(loaded.ok())
          << "crash at " << stage << " left a torn file at the target";
      EXPECT_EQ(loaded.value().Query(2, 5, 2.0f), 2u);
    }
    std::remove(path.c_str());
  }
}

#endif  // WCSD_CRASH_TESTS

}  // namespace
}  // namespace wcsd
