// Property sweeps for WC-INDEX (Theorem 1): completeness against the BFS
// oracle, soundness/tightness, minimality, and Theorem 3 monotonicity —
// over random graph families, quality regimes, orderings, and both
// construction-query implementations.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "search/pareto_enumerator.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

using Ordering = WcIndexOptions::Ordering;

struct PropertyCase {
  size_t n;
  size_t m;
  int levels;
  uint64_t seed;
  Ordering ordering;
  bool query_efficient;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string order;
  switch (c.ordering) {
    case Ordering::kDegree: order = "Degree"; break;
    case Ordering::kTreeDecomposition: order = "Tree"; break;
    case Ordering::kHybrid: order = "Hybrid"; break;
    case Ordering::kRandom: order = "Random"; break;
    case Ordering::kIdentity: order = "Identity"; break;
  }
  return "n" + std::to_string(c.n) + "m" + std::to_string(c.m) + "w" +
         std::to_string(c.levels) + "s" + std::to_string(c.seed) + order +
         (c.query_efficient ? "Fast" : "Basic");
}

class WcIndexPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  WcIndex BuildIndex(const QualityGraph& g) const {
    WcIndexOptions options;
    options.ordering = GetParam().ordering;
    options.query_efficient = GetParam().query_efficient;
    options.seed = GetParam().seed;
    return WcIndex::Build(g, options);
  }

  QualityGraph MakeGraph() const {
    QualityModel quality;
    quality.num_levels = GetParam().levels;
    return GenerateRandomConnected(GetParam().n, GetParam().m, quality,
                                   GetParam().seed);
  }
};

TEST_P(WcIndexPropertyTest, SoundCompleteMinimal) {
  QualityGraph g = MakeGraph();
  WcIndex index = BuildIndex(g);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST_P(WcIndexPropertyTest, LabelsSorted) {
  QualityGraph g = MakeGraph();
  WcIndex index = BuildIndex(g);
  EXPECT_TRUE(index.labels().IsSorted());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WcIndexPropertyTest,
    testing::Values(
        PropertyCase{20, 40, 3, 1, Ordering::kDegree, true},
        PropertyCase{20, 40, 3, 1, Ordering::kDegree, false},
        PropertyCase{30, 60, 5, 2, Ordering::kTreeDecomposition, true},
        PropertyCase{30, 60, 5, 3, Ordering::kHybrid, true},
        PropertyCase{30, 90, 1, 4, Ordering::kDegree, true},
        PropertyCase{40, 60, 8, 5, Ordering::kRandom, true},
        PropertyCase{40, 120, 4, 6, Ordering::kIdentity, true},
        PropertyCase{40, 120, 4, 6, Ordering::kIdentity, false},
        PropertyCase{50, 70, 10, 7, Ordering::kHybrid, false},
        PropertyCase{60, 200, 6, 8, Ordering::kDegree, true},
        PropertyCase{60, 200, 6, 8, Ordering::kTreeDecomposition, false}),
    CaseName);

// Larger randomized agreement sweep (no exhaustive verification, more
// queries): WC-INDEX must equal WC-BFS for every sampled query.
class WcIndexAgreementTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, int, uint64_t>> {
};

TEST_P(WcIndexAgreementTest, MatchesOracle) {
  auto [n, m, levels, seed] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  WcIndex index = WcIndex::Build(g);
  WcBfs bfs(&g);
  Rng rng(seed + 77);
  for (int i = 0; i < 500; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    // Also probe non-integer and out-of-range thresholds.
    Quality w = static_cast<Quality>(rng.NextInRange(0, levels + 1)) +
                (rng.NextBool(0.3) ? 0.5f : 0.0f);
    EXPECT_EQ(index.Query(s, t, w), bfs.Query(s, t, w))
        << s << "->" << t << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WcIndexAgreementTest,
    testing::Values(std::make_tuple(100, 250, 5, 11),
                    std::make_tuple(150, 300, 3, 12),
                    std::make_tuple(200, 800, 8, 13),
                    std::make_tuple(250, 400, 16, 14),
                    std::make_tuple(300, 900, 2, 15)));

// Structured families: road-like and scale-free graphs with the orderings
// the paper pairs them with.
TEST(WcIndexFamilies, SmallWorldGraph) {
  QualityModel quality;
  quality.num_levels = 6;
  QualityGraph g = GenerateWattsStrogatz(300, 3, 0.15, quality, 19);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  WcBfs bfs(&g);
  Rng rng(20);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(300));
    Vertex t = static_cast<Vertex>(rng.NextBounded(300));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(WcIndexFamilies, ZipfQualities) {
  // Heavy-tailed qualities: most edges weak, few strong — the regime where
  // high thresholds disconnect almost everything.
  QualityModel quality;
  quality.kind = QualityModel::Kind::kZipfLevels;
  quality.num_levels = 10;
  quality.zipf_s = 1.5;
  QualityGraph g = GenerateRandomConnected(150, 450, quality, 21);
  WcIndex index = WcIndex::Build(g);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(WcIndexFamilies, ArterialRoadGraph) {
  // Correlated qualities (arterial backbone) instead of i.i.d. draws.
  RoadOptions options;
  options.rows = options.cols = 14;
  options.quality.num_levels = 8;
  options.arterial_spacing = 7;
  QualityGraph g = GenerateRoadNetwork(options, 23);
  WcIndexOptions plus = WcIndexOptions::Plus();
  WcIndex index = WcIndex::Build(g, plus);
  WcBfs bfs(&g);
  Rng rng(24);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 8));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(WcIndexFamilies, AllEqualQualities) {
  // Degenerate |w| = 1: WC-INDEX must collapse to a classic 2-hop index
  // (one entry per (vertex, hub) group).
  QualityModel quality;
  quality.num_levels = 1;
  QualityGraph g = GenerateRandomConnected(100, 300, quality, 25);
  WcIndex index = WcIndex::Build(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto lv = index.labels().For(v);
    for (size_t i = 1; i < lv.size(); ++i) {
      ASSERT_NE(lv[i - 1].hub, lv[i].hub) << "duplicate hub group at |w|=1";
    }
  }
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(WcIndexFamilies, RoadGraphWithTreeOrder) {
  RoadOptions options;
  options.rows = options.cols = 12;
  QualityGraph g = GenerateRoadNetwork(options, 21);
  WcIndexOptions tree;
  tree.ordering = Ordering::kTreeDecomposition;
  WcIndex index = WcIndex::Build(g, tree);
  WcBfs bfs(&g);
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(WcIndexFamilies, ScaleFreeWithHybridOrder) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateBarabasiAlbert(400, 4, quality, 25);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  WcBfs bfs(&g);
  Rng rng(27);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(400));
    Vertex t = static_cast<Vertex>(rng.NextBounded(400));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(WcIndexFamilies, DisconnectedComponents) {
  // Two components: cross-component queries must be INF at any threshold.
  GraphBuilder b(8);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 2, 3.0f);
  b.AddEdge(4, 5, 1.0f);
  b.AddEdge(5, 6, 2.0f);
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  EXPECT_EQ(index.Query(0, 5, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(2, 6, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(0, 2, 2.0f), 2u);
  EXPECT_EQ(index.Query(4, 6, 1.0f), 2u);
  EXPECT_EQ(index.Query(3, 7, 1.0f), kInfDistance);  // isolated pair
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(WcIndexFamilies, SingleVertexAndEmptyGraphs) {
  GraphBuilder b1(1);
  WcIndex one = WcIndex::Build(b1.Build());
  EXPECT_EQ(one.Query(0, 0, 5.0f), 0u);
  EXPECT_EQ(one.TotalEntries(), 1u);

  GraphBuilder b0(0);
  WcIndex zero = WcIndex::Build(b0.Build());
  EXPECT_EQ(zero.TotalEntries(), 0u);
}

TEST(WcIndexBuildStats, CountersPopulated) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(100, 300, quality, 31);
  WcIndex index = WcIndex::Build(g);
  const WcIndexBuildStats& stats = index.build_stats();
  EXPECT_EQ(stats.entries_added, index.TotalEntries());
  EXPECT_GT(stats.pops, stats.entries_added);  // Some pops were pruned.
  EXPECT_GT(stats.pruned_by_query, 0u);
  EXPECT_GT(stats.relaxations, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(WcIndexOrderings, SameAnswersAcrossAllOrderings) {
  QualityModel quality;
  quality.num_levels = 6;
  QualityGraph g = GenerateRandomConnected(120, 360, quality, 33);
  std::vector<WcIndex> indexes;
  for (Ordering o : {Ordering::kDegree, Ordering::kTreeDecomposition,
                     Ordering::kHybrid, Ordering::kRandom,
                     Ordering::kIdentity}) {
    WcIndexOptions options;
    options.ordering = o;
    indexes.push_back(WcIndex::Build(g, options));
  }
  Rng rng(35);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(120));
    Vertex t = static_cast<Vertex>(rng.NextBounded(120));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    Distance expected = indexes[0].Query(s, t, w);
    for (size_t k = 1; k < indexes.size(); ++k) {
      ASSERT_EQ(indexes[k].Query(s, t, w), expected)
          << "ordering " << k << " disagrees";
    }
  }
}

TEST(WcIndexFrontier, GroupSizesRespectSizeBound) {
  // §IV.B bounds the index by O(sum over pairs of min(D, |w|)): a
  // (vertex, hub) group is a dominance frontier, so it can hold at most
  // one entry per distinct quality value (and at most one per distance up
  // to the diameter). Check the |w| side of the bound exactly.
  for (int levels : {1, 3, 8}) {
    QualityModel quality;
    quality.num_levels = levels;
    QualityGraph g = GenerateRandomConnected(150, 400, quality, 41);
    WcIndex index = WcIndex::Build(g);
    size_t max_group = 0;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      auto lv = index.labels().For(v);
      size_t i = 0;
      while (i < lv.size()) {
        size_t ie = i;
        while (ie < lv.size() && lv[ie].hub == lv[i].hub) ++ie;
        max_group = std::max(max_group, ie - i);
        i = ie;
      }
    }
    // Self-entry groups have a single inf-quality entry; all others carry
    // distinct finite qualities drawn from |w| values.
    EXPECT_LE(max_group, static_cast<size_t>(levels)) << "levels=" << levels;
  }
}

TEST(WcIndexFrontier, LabelsMatchParetoFrontierOfHubPairs) {
  // For the identity order on Figure 3, hub-v0 entries of L(v4)/L(v5) must
  // be exactly the dominance frontier computed by the oracle.
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  for (Vertex v : {Vertex{4}, Vertex{5}}) {
    auto frontier = ParetoFrontier(g, 0, v);
    std::vector<FrontierPoint> hub0;
    for (const LabelEntry& e : index.labels().For(v)) {
      if (e.hub == 0) hub0.push_back({e.dist, e.quality});
    }
    EXPECT_EQ(hub0, frontier) << "v" << v;
  }
}

}  // namespace
}  // namespace wcsd
