// Classic PLL tests: distances must match plain BFS under every ordering.

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "graph/generators.h"
#include "labeling/pll.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

constexpr Quality kNoConstraint = -std::numeric_limits<Quality>::infinity();

TEST(PllTest, Figure3AllPairs) {
  QualityGraph g = MakeFigure3Graph();
  Pll pll = Pll::Build(g);
  WcBfs bfs(&g);
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(pll.Query(s, t), bfs.Query(s, t, kNoConstraint))
          << s << "->" << t;
    }
  }
}

TEST(PllTest, DisconnectedPairsAreInf) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(2, 3, 1.0f);
  QualityGraph g = b.Build();
  Pll pll = Pll::Build(g);
  EXPECT_EQ(pll.Query(0, 2), kInfDistance);
  EXPECT_EQ(pll.Query(4, 0), kInfDistance);
  EXPECT_EQ(pll.Query(4, 4), 0u);
}

TEST(PllTest, LabelsAreSorted) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(100, 240, quality, 3);
  Pll pll = Pll::Build(g);
  EXPECT_TRUE(pll.labels().IsSorted());
}

TEST(PllTest, MemoryNonzero) {
  QualityGraph g = MakeFigure3Graph();
  Pll pll = Pll::Build(g);
  EXPECT_GT(pll.MemoryBytes(), 0u);
}

// Property sweep: PLL == BFS over random graphs and orderings.
class PllPropertyTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(PllPropertyTest, MatchesBfsOnRandomGraph) {
  auto [n, m, seed] = GetParam();
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  Pll degree_pll = Pll::Build(g);
  Pll random_pll = Pll::Build(g, RandomOrder(n, seed + 1));
  WcBfs bfs(&g);
  Rng rng(seed + 2);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Distance expected = bfs.Query(s, t, kNoConstraint);
    EXPECT_EQ(degree_pll.Query(s, t), expected);
    EXPECT_EQ(random_pll.Query(s, t), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PllPropertyTest,
    testing::Values(std::make_tuple(20, 30, 1), std::make_tuple(40, 80, 2),
                    std::make_tuple(60, 90, 3), std::make_tuple(80, 240, 4),
                    std::make_tuple(120, 200, 5),
                    std::make_tuple(150, 600, 6)));

}  // namespace
}  // namespace wcsd
