// Naïve per-w index tests (§III): correctness vs. the BFS oracle plus the
// memory-budget behaviour that produces the paper's INF cells.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "labeling/naive_index.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(NaiveIndexTest, Figure3AllPairsAllThresholds) {
  QualityGraph g = MakeFigure3Graph();
  auto built = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(built.ok());
  const NaiveWcsdIndex& index = built.value();
  WcBfs bfs(&g);
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      for (Quality w : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f}) {
        EXPECT_EQ(index.Query(s, t, w), bfs.Query(s, t, w))
            << s << "->" << t << " w=" << w;
      }
    }
  }
}

TEST(NaiveIndexTest, OneLevelPerDistinctQuality) {
  QualityGraph g = MakeFigure3Graph();
  auto built = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().NumLevels(), 5u);
}

TEST(NaiveIndexTest, NonIntegerConstraintsRoundUp) {
  QualityGraph g = MakeFigure3Graph();
  auto built = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(built.ok());
  WcBfs bfs(&g);
  EXPECT_EQ(built.value().Query(0, 4, 1.5f), bfs.Query(0, 4, 2.0f));
  EXPECT_EQ(built.value().Query(0, 4, 0.5f), bfs.Query(0, 4, 1.0f));
}

TEST(NaiveIndexTest, MemoryBudgetAborts) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(200, 600, quality, 7);
  NaiveWcsdIndex::Options options;
  options.memory_budget_bytes = 1024;  // Absurdly small: must trip.
  auto built = NaiveWcsdIndex::Build(g, options);
  EXPECT_FALSE(built.ok());
}

TEST(NaiveIndexTest, GenerousBudgetSucceeds) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(100, 300, quality, 9);
  NaiveWcsdIndex::Options options;
  options.memory_budget_bytes = 1ull << 30;
  auto built = NaiveWcsdIndex::Build(g, options);
  EXPECT_TRUE(built.ok());
}

TEST(NaiveIndexTest, MemoryIsSumOfLevels) {
  QualityGraph g = MakeFigure3Graph();
  auto built = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(built.ok());
  size_t sum = 0;
  for (size_t level = 0; level < built.value().NumLevels(); ++level) {
    sum += built.value().IndexAtLevel(level).MemoryBytes();
  }
  EXPECT_EQ(built.value().MemoryBytes(), sum);
}

TEST(NaiveIndexTest, RandomGraphAgainstOracle) {
  QualityModel quality;
  quality.num_levels = 6;
  QualityGraph g = GenerateRandomConnected(90, 250, quality, 11);
  auto built = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(built.ok());
  WcBfs bfs(&g);
  Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(90));
    Vertex t = static_cast<Vertex>(rng.NextBounded(90));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    EXPECT_EQ(built.value().Query(s, t, w), bfs.Query(s, t, w));
  }
}

}  // namespace
}  // namespace wcsd
