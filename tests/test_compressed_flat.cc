// Compressed flat backend tests: exact round trips through FromFlat /
// Decompress, per-vertex streaming decode, the streaming merge kernel's
// bit-identity to the flat kernels, validation tiers, the v3 snapshot
// format (including its corruption corpus), compressed shard sets, and
// the cold-tier decoded-label cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/compressed_flat.h"
#include "labeling/query.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "paper_fixtures.h"
#include "serve/decode_cache.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WcIndex BuildFinalizedIndex(size_t n = 150, size_t m = 400,
                            uint64_t seed = 11) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  return index;
}

TEST(CompressedFlat, RoundTripIsExact) {
  for (uint64_t seed : {3u, 7u, 23u}) {
    WcIndex index = BuildFinalizedIndex(120, 300, seed);
    const FlatLabelSet& flat = index.flat_labels();
    CompressedFlatLabelSet compressed = CompressedFlatLabelSet::FromFlat(flat);
    EXPECT_EQ(compressed.NumVertices(), flat.NumVertices());
    EXPECT_EQ(compressed.TotalEntries(), flat.raw_entries().size());
    EXPECT_EQ(compressed.TotalGroups(), flat.raw_groups().size());
    auto decompressed = compressed.Decompress();
    ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
    EXPECT_EQ(decompressed.value(), flat) << "seed " << seed;
  }
}

TEST(CompressedFlat, DecodeVertexMatchesFlatSlices) {
  WcIndex index = BuildFinalizedIndex();
  const FlatLabelSet& flat = index.flat_labels();
  CompressedFlatLabelSet compressed = CompressedFlatLabelSet::FromFlat(flat);
  DecodedLabel scratch;
  for (Vertex v = 0; v < flat.NumVertices(); ++v) {
    ASSERT_TRUE(compressed.DecodeVertex(v, &scratch).ok()) << "vertex " << v;
    FlatLabelView expected = flat.View(v);
    FlatLabelView got = scratch.View();
    ASSERT_EQ(got.entries.size(), expected.entries.size()) << "vertex " << v;
    ASSERT_EQ(got.groups.size(), expected.groups.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(got.entries.begin(), got.entries.end(),
                           expected.entries.begin()));
    EXPECT_TRUE(std::equal(got.groups.begin(), got.groups.end(),
                           expected.groups.begin()));
    EXPECT_EQ(compressed.EntryCount(v), expected.entries.size());
    EXPECT_EQ(compressed.GroupCount(v), expected.groups.size());
  }
}

TEST(CompressedFlat, StreamingMergeIsBitIdenticalToFlatKernels) {
  WcIndex index = BuildFinalizedIndex();
  const FlatLabelSet& flat = index.flat_labels();
  CompressedFlatLabelSet compressed = CompressedFlatLabelSet::FromFlat(flat);
  Rng rng(5);
  size_t n = flat.NumVertices();
  for (int i = 0; i < 2000; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    Distance expected =
        QueryFlat(flat.View(s), flat.View(t), w, QueryImpl::kMerge);
    ASSERT_EQ(QueryCompressedMerge(compressed, s, t, w), expected)
        << "s=" << s << " t=" << t << " w=" << w;
  }
}

TEST(CompressedFlat, MeaningfulCompressionRatio) {
  WcIndex index = BuildFinalizedIndex(400, 1100, 29);
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(index.flat_labels());
  ASSERT_GT(compressed.UncompressedBytes(), 0u);
  double ratio = static_cast<double>(compressed.UncompressedBytes()) /
                 static_cast<double>(compressed.MemoryBytes());
  EXPECT_GE(ratio, 2.5) << "compression ratio regressed";
}

TEST(CompressedFlat, FingerprintMatchesFlatBackend) {
  WcIndex index = BuildFinalizedIndex();
  const FlatLabelSet& flat = index.flat_labels();
  CompressedFlatLabelSet compressed = CompressedFlatLabelSet::FromFlat(flat);
  EXPECT_EQ(compressed.ContentFingerprint(), IndexContentFingerprint(flat));
}

TEST(CompressedFlat, ValidationAcceptsWellFormedSets) {
  WcIndex index = BuildFinalizedIndex();
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(index.flat_labels());
  for (ValidateLevel level :
       {ValidateLevel::kShape, ValidateLevel::kDirectory,
        ValidateLevel::kDeep}) {
    EXPECT_TRUE(compressed.Validate(level).ok())
        << "level " << static_cast<int>(level);
  }
}

// Corrupt blob bytes must never escape the vertex's byte slice: every
// single-byte flip either still decodes (to possibly different labels) or
// fails cleanly — and the full-parse validation tier reports the latter
// class as Corruption. This is the compressed analogue of the flat
// backend's directory-bounds tier.
TEST(CompressedFlat, BlobCorruptionIsBoundsCheckedAndValidatable) {
  WcIndex index = BuildFinalizedIndex(60, 150, 13);
  const FlatLabelSet& flat = index.flat_labels();
  CompressedFlatLabelSet good = CompressedFlatLabelSet::FromFlat(flat);

  std::vector<uint64_t> offsets(good.raw_offsets().begin(),
                                good.raw_offsets().end());
  std::vector<uint64_t> group_offsets(good.raw_group_offsets().begin(),
                                      good.raw_group_offsets().end());
  std::vector<uint64_t> comp_offsets(good.raw_comp_offsets().begin(),
                                     good.raw_comp_offsets().end());
  std::vector<Quality> dictionary(good.raw_dictionary().begin(),
                                  good.raw_dictionary().end());
  std::vector<uint8_t> blob(good.raw_blob().begin(), good.raw_blob().end());

  Rng rng(99);
  DecodedLabel scratch;
  for (int trial = 0; trial < 200; ++trial) {
    size_t at = rng.NextBounded(blob.size());
    uint8_t old = blob[at];
    blob[at] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    CompressedFlatLabelSet corrupt = CompressedFlatLabelSet::FromExternal(
        offsets, group_offsets, comp_offsets, blob, dictionary, nullptr);
    // Shape still holds (offset arrays untouched)...
    EXPECT_TRUE(corrupt.Validate(ValidateLevel::kShape).ok());
    // ...and every decode answers or fails cleanly, in bounds (ASan/TSan
    // runs give this test its teeth).
    bool any_decode_failed = false;
    for (Vertex v = 0; v < corrupt.NumVertices(); ++v) {
      if (!corrupt.DecodeVertex(v, &scratch).ok()) {
        any_decode_failed = true;
        EXPECT_TRUE(scratch.entries.empty());
      }
    }
    Status deep = corrupt.Validate(ValidateLevel::kDirectory);
    if (any_decode_failed) {
      EXPECT_FALSE(deep.ok()) << "trial " << trial;
      EXPECT_EQ(deep.code(), StatusCode::kCorruption);
    }
    // The streaming kernel walks the same bytes; it must stay in bounds
    // whatever it answers.
    (void)QueryCompressedMerge(corrupt, 0, 1, 1.0f);
    blob[at] = old;
  }
}

TEST(CompressedFlat, EmptySet) {
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(FlatLabelSet());
  EXPECT_EQ(compressed.NumVertices(), 0u);
  EXPECT_EQ(compressed.TotalEntries(), 0u);
  EXPECT_TRUE(compressed.Validate(ValidateLevel::kDeep).ok());
  // Out-of-range endpoints answer unreachable, mirroring WcIndex::Query.
  EXPECT_EQ(QueryCompressedMerge(compressed, 0, 0, 1.0f), kInfDistance);
}

// ---- v3 snapshot format ----

TEST(CompressedFlat, CompressedSnapshotRoundTripsAndServesIdentically) {
  WcIndex index = BuildFinalizedIndex();
  std::string flat_path = TempPath("cf_flat.wcsnap");
  std::string comp_path = TempPath("cf_comp.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(flat_path).ok());
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(comp_path, compress).ok());

  auto flat_info = ReadSnapshotInfo(flat_path);
  auto comp_info = ReadSnapshotInfo(comp_path);
  ASSERT_TRUE(flat_info.ok() && comp_info.ok());
  // Smallest-capable-version rule: no parents, no compression -> v1
  // byte-layout; compression forces v3.
  EXPECT_FALSE(flat_info.value().compressed);
  EXPECT_TRUE(comp_info.value().compressed);
  EXPECT_EQ(comp_info.value().version, 3u);
  EXPECT_LT(ReadFileBytes(comp_path).size(),
            ReadFileBytes(flat_path).size() / 2);

  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.verify_level = SnapshotVerifyLevel::kDeep;
  auto loaded = WcIndex::LoadMmap(comp_path, verify);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const WcIndex& mm = loaded.value();
  EXPECT_TRUE(mm.compressed());
  EXPECT_TRUE(mm.compressed_labels().external());
  EXPECT_EQ(mm.NumVertices(), index.NumVertices());
  EXPECT_EQ(mm.TotalEntries(), index.TotalEntries());
  EXPECT_EQ(mm.ContentFingerprint(), index.ContentFingerprint());

  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                           QueryImpl::kBinary, QueryImpl::kMerge}) {
      ASSERT_EQ(mm.Query(s, t, w, impl), index.Query(s, t, w, impl))
          << "impl=" << static_cast<int>(impl) << " s=" << s << " t=" << t
          << " w=" << w;
    }
    HubQueryResult a = mm.QueryWithHub(s, t, w);
    HubQueryResult b = index.QueryWithHub(s, t, w);
    ASSERT_EQ(a.dist, b.dist);
    ASSERT_EQ(a.via_hub, b.via_hub);
    IntervalQueryResult ia = mm.QueryWithInterval(s, t, w);
    IntervalQueryResult ib = index.QueryWithInterval(s, t, w);
    ASSERT_EQ(ia.dist, ib.dist);
    ASSERT_EQ(ia.w_lo, ib.w_lo);
    ASSERT_EQ(ia.w_hi, ib.w_hi);
  }
  std::remove(flat_path.c_str());
  std::remove(comp_path.c_str());
}

// Migration both ways: a compressed-backend index can SaveSnapshot back to
// the flat layout (and to .wcx), landing bit-identical to the original.
TEST(CompressedFlat, DecompressionMigrationRoundTrips) {
  WcIndex index = BuildFinalizedIndex();
  std::string comp_path = TempPath("cf_migrate.wcsnap");
  std::string back_path = TempPath("cf_migrate_back.wcsnap");
  std::string flat_path = TempPath("cf_migrate_flat.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(comp_path, compress).ok());
  ASSERT_TRUE(index.SaveSnapshot(flat_path).ok());

  auto mm = WcIndex::LoadMmap(comp_path);
  ASSERT_TRUE(mm.ok());
  ASSERT_TRUE(mm.value().compressed());
  ASSERT_TRUE(mm.value().SaveSnapshot(back_path).ok());
  EXPECT_EQ(ReadFileBytes(back_path), ReadFileBytes(flat_path));
  std::remove(comp_path.c_str());
  std::remove(back_path.c_str());
  std::remove(flat_path.c_str());
}

TEST(CompressedFlat, CompressRefusesParents) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(120, 320, quality, 17);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.record_parents = true;
  WcIndex index = WcIndex::Build(g, options);
  index.Finalize();
  std::string path = TempPath("cf_parents.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  Status st = index.SaveSnapshot(path, compress);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// Corruption corpus for the three v3 sections. Byte flips anywhere in the
// compressed payload must be caught by checksums, and blob corruption that
// breaks stream structure by the deep tiers even without checksums.
TEST(CompressedFlat, CompressedSectionCorruptionCaught) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("cf_corrupt.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(path, compress).ok());
  const std::string good = ReadFileBytes(path);

  // The header page is [0, 4096); sections follow, page-aligned. Flip
  // bytes across the whole section span — comp offsets, blob, and
  // dictionary all live there, as do the logical offset arrays. A flip
  // landing in inter-section zero padding is outside every CRC and must
  // instead be harmless: the file still loads and serves identically.
  Rng rng(41);
  int caught = 0;
  for (int trial = 0; trial < 32; ++trial) {
    std::string bytes = good;
    size_t at = 4096 + rng.NextBounded(bytes.size() - 4096);
    bytes[at] ^= static_cast<char>(1 + rng.NextBounded(255));
    WriteFileBytes(path, bytes);
    SnapshotLoadOptions verify;
    verify.verify_checksums = true;
    verify.verify_level = SnapshotVerifyLevel::kDeep;
    auto checked = WcIndex::LoadMmap(path, verify);
    if (checked.ok()) {
      ASSERT_EQ(checked.value().ContentFingerprint(),
                index.ContentFingerprint())
          << "flip at " << at << " loaded clean but changed the labels";
    } else {
      ++caught;
      EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
    }
  }
  // Page-aligned sections mean a fair share of flips land in padding; the
  // checksummed-payload share must still be substantial.
  EXPECT_GE(caught, 8) << "too few flips caught by section checksums";

  // Structural (checksum-free) tier: zero the whole blob section's first
  // 64 bytes — streams truncate, kDirectory must catch it.
  {
    std::string bytes = good;
    // The blob is the only section whose size is neither 4/8/12-aligned
    // to counts; locate it by searching for the compressed set's bytes.
    CompressedFlatLabelSet compressed =
        CompressedFlatLabelSet::FromFlat(index.flat_labels());
    auto blob = compressed.raw_blob();
    ASSERT_GE(blob.size(), 64u);
    auto it = std::search(bytes.begin(), bytes.end(),
                          reinterpret_cast<const char*>(blob.data()),
                          reinterpret_cast<const char*>(blob.data()) + 64);
    ASSERT_NE(it, bytes.end());
    std::fill(it, it + 64, '\xFF');
    WriteFileBytes(path, bytes);
    auto trusting = WcIndex::LoadMmap(path);
    // Default load maps it (offset arrays are fine)...
    ASSERT_TRUE(trusting.ok()) << trusting.status().ToString();
    // ...but the full-parse tier reports corruption.
    SnapshotLoadOptions directory;
    directory.verify_level = SnapshotVerifyLevel::kDirectory;
    auto checked = WcIndex::LoadMmap(path, directory);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
  }
  std::remove(path.c_str());
}

TEST(CompressedFlat, TruncatedCompressedSnapshotRejected) {
  WcIndex index = BuildFinalizedIndex(60, 150, 5);
  std::string path = TempPath("cf_trunc.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(path, compress).ok());
  std::string good = ReadFileBytes(path);
  for (size_t keep : {size_t{100}, size_t{4096}, good.size() - 1}) {
    WriteFileBytes(path, good.substr(0, keep));
    EXPECT_FALSE(WcIndex::LoadMmap(path).ok()) << "kept " << keep;
  }
  std::remove(path.c_str());
}

// ---- compressed shard sets ----

TEST(CompressedFlat, CompressedShardSetServesIdentically) {
  WcIndex index = BuildFinalizedIndex(200, 520, 31);
  const FlatLabelSet& flat = index.flat_labels();

  ShardPlanOptions plan_options;
  plan_options.num_shards = 3;
  auto plan = PlanShards(flat, plan_options);
  ASSERT_TRUE(plan.ok());
  std::string stem = TempPath("cf_shards");
  SnapshotWriteOptions compress;
  compress.compress = true;
  auto written = WriteShardSet(stem, flat, plan.value(), compress);
  ASSERT_TRUE(written.ok()) << written.status().ToString();

  // Full checksum + fingerprint verification must hold on compressed
  // shards (the fingerprint chains per-vertex decodes).
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.verify_level = SnapshotVerifyLevel::kDeep;
  auto engine = ShardedQueryEngine::OpenManifest(
      written.value().manifest_path, {}, verify);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value().compressed());
  EXPECT_EQ(engine.value().NumVertices(), index.NumVertices());

  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    ASSERT_EQ(engine.value().Query(s, t, w), index.Query(s, t, w))
        << "s=" << s << " t=" << t << " w=" << w;
  }
  for (const std::string& p : written.value().shard_paths) {
    std::remove(p.c_str());
  }
  std::remove(written.value().manifest_path.c_str());
}

// Mixed sets: compressed and flat shard files stitched into one engine
// must agree with the unsharded index (each shard serves from whatever
// backend its file carries).
TEST(CompressedFlat, MixedBackendShardsServeIdentically) {
  WcIndex index = BuildFinalizedIndex(160, 420, 37);
  const FlatLabelSet& flat = index.flat_labels();
  uint64_t n = index.NumVertices();
  uint64_t mid = n / 2;
  std::string a = TempPath("cf_mixed.shard0");
  std::string b = TempPath("cf_mixed.shard1");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(WriteSnapshotShard(a, flat, 0, mid, n, {}, compress).ok());
  ASSERT_TRUE(WriteSnapshotShard(b, flat, mid, n, n).ok());

  auto engine = ShardedQueryEngine::OpenMmap({a, b});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value().compressed());

  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    ASSERT_EQ(engine.value().Query(s, t, w), index.Query(s, t, w))
        << "s=" << s << " t=" << t << " w=" << w;
  }
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ---- decoded-label cache ----

TEST(DecodedLabelCache, HitsAfterFirstDecode) {
  WcIndex index = BuildFinalizedIndex(60, 150, 3);
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(index.flat_labels());
  DecodedLabelCache cache(4 << 20);
  DecodedLabel out;
  ASSERT_TRUE(cache.GetOrDecode(compressed, 5, 5, &out));
  ASSERT_TRUE(cache.GetOrDecode(compressed, 5, 5, &out));
  DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  // Heap-backed set: no cold page-ins.
  EXPECT_EQ(stats.cold_pageins, 0u);
  // The cached copy matches a direct decode.
  DecodedLabel direct;
  ASSERT_TRUE(compressed.DecodeVertex(5, &direct).ok());
  EXPECT_EQ(out.entries.size(), direct.entries.size());
  EXPECT_TRUE(std::equal(out.entries.begin(), out.entries.end(),
                         direct.entries.begin()));
}

TEST(DecodedLabelCache, ColdPageinsCountExternalDecodes) {
  WcIndex index = BuildFinalizedIndex(60, 150, 3);
  std::string path = TempPath("cf_cold.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(path, compress).ok());
  auto mm = WcIndex::LoadMmap(path);
  ASSERT_TRUE(mm.ok());
  ASSERT_TRUE(mm.value().compressed_labels().external());
  DecodedLabelCache cache(4 << 20);
  DecodedLabel out;
  ASSERT_TRUE(cache.GetOrDecode(mm.value().compressed_labels(), 3, 3, &out));
  ASSERT_TRUE(cache.GetOrDecode(mm.value().compressed_labels(), 3, 3, &out));
  EXPECT_EQ(cache.stats().cold_pageins, 1u);  // miss paged in; hit did not
  std::remove(path.c_str());
}

// The cache must respect its byte budget: stream many distinct vertices
// through a tiny cache and check the resident mass never exceeds the
// budget (second-chance eviction keeps it bounded, admission tags keep
// one-touch scans from churning it).
TEST(DecodedLabelCache, BudgetBounded) {
  WcIndex index = BuildFinalizedIndex(300, 800, 19);
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(index.flat_labels());
  const size_t budget = 64 << 10;
  DecodedLabelCache cache(budget);
  DecodedLabel out;
  for (int round = 0; round < 3; ++round) {
    for (Vertex v = 0; v < compressed.NumVertices(); ++v) {
      ASSERT_TRUE(cache.GetOrDecode(compressed, v, v, &out));
      ASSERT_LE(cache.MemoryBytes(), budget);
    }
  }
  DecodeCacheStats stats = cache.stats();
  // The scan's one-touch keys must have been refused admission at least
  // once (the cache is far smaller than the label mass).
  EXPECT_GT(stats.admission_rejects, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(DecodedLabelCache, ConcurrentReadersStayCoherent) {
  WcIndex index = BuildFinalizedIndex(120, 320, 23);
  CompressedFlatLabelSet compressed =
      CompressedFlatLabelSet::FromFlat(index.flat_labels());
  const FlatLabelSet& flat = index.flat_labels();
  DecodedLabelCache cache(1 << 20);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(100 + static_cast<uint64_t>(t));
      DecodedLabel out;
      for (int i = 0; i < 4000; ++i) {
        Vertex v =
            static_cast<Vertex>(rng.NextBounded(compressed.NumVertices()));
        if (!cache.GetOrDecode(compressed, v, v, &out)) {
          failed = true;
          return;
        }
        auto expected = flat.View(v);
        if (out.entries.size() != expected.entries.size() ||
            !std::equal(out.entries.begin(), out.entries.end(),
                        expected.entries.begin())) {
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

// ---- engine integration ----

TEST(CompressedFlat, QueryEngineServesCompressedWithAndWithoutCache) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("cf_engine.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(path, compress).ok());

  for (size_t cache_bytes : {size_t{0}, size_t{8} << 20}) {
    QueryEngineOptions options;
    options.num_threads = 1;
    options.decode_cache_bytes = cache_bytes;
    auto engine = QueryEngine::Open(path, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(engine.value().decode_cache() != nullptr, cache_bytes > 0);

    Rng rng(6);
    for (int i = 0; i < 800; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
      Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
      ASSERT_EQ(engine.value().Query(s, t, w), index.Query(s, t, w))
          << "cache=" << cache_bytes << " s=" << s << " t=" << t;
    }
    QueryEngineStats stats = engine.value().stats();
    EXPECT_TRUE(stats.compressed);
    EXPECT_GT(stats.uncompressed_label_bytes, stats.label_bytes);
    if (cache_bytes > 0) {
      EXPECT_GT(stats.decode_hits + stats.decode_misses, 0u);
      EXPECT_GT(stats.cold_pageins, 0u);  // mmap-backed decodes
    } else {
      EXPECT_EQ(stats.decode_hits + stats.decode_misses, 0u);
    }
  }
  std::remove(path.c_str());
}

TEST(CompressedFlat, TopKAndProfileMatchAcrossBackends) {
  WcIndex index = BuildFinalizedIndex();
  std::string flat_path = TempPath("cf_tk_flat.wcsnap");
  std::string comp_path = TempPath("cf_tk_comp.wcsnap");
  SnapshotWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(index.SaveSnapshot(flat_path).ok());
  ASSERT_TRUE(index.SaveSnapshot(comp_path, compress).ok());

  QueryEngineOptions options;
  options.num_threads = 1;
  options.decode_cache_bytes = 4 << 20;
  auto flat_engine = QueryEngine::Open(flat_path);
  auto comp_engine = QueryEngine::Open(comp_path, options);
  ASSERT_TRUE(flat_engine.ok() && comp_engine.ok());

  Rng rng(44);
  size_t n = index.NumVertices();
  for (int i = 0; i < 50; ++i) {
    Vertex source = static_cast<Vertex>(rng.NextBounded(n));
    std::vector<Vertex> candidates;
    for (int c = 0; c < 20; ++c) {
      candidates.push_back(static_cast<Vertex>(rng.NextBounded(n)));
    }
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    auto a = flat_engine.value().TopK(source, candidates, w, 5);
    auto b = comp_engine.value().TopK(source, candidates, w, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].vertex, b[j].vertex);
      ASSERT_EQ(a[j].dist, b[j].dist);
    }
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    std::vector<Quality> thresholds = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
    auto pa = flat_engine.value().Profile(s, t, thresholds);
    auto pb = comp_engine.value().Profile(s, t, thresholds);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t j = 0; j < pa.size(); ++j) {
      ASSERT_EQ(pa[j].dist, pb[j].dist);
      ASSERT_EQ(pa[j].quality, pb[j].quality);
    }
  }
  std::remove(flat_path.c_str());
  std::remove(comp_path.c_str());
}

}  // namespace
}  // namespace wcsd
