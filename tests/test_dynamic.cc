// Dynamic WC-INDEX tests (§VIII future work): incremental insertion must
// answer exactly like a from-scratch rebuild; deletion rebuilds.

#include <gtest/gtest.h>

#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

// Compares every sampled query between the dynamic index and a constrained
// BFS on its current snapshot.
void ExpectMatchesOracle(DynamicWcIndex& index, int levels, uint64_t seed,
                         int samples = 300) {
  QualityGraph g = index.Snapshot();
  WcBfs bfs(&g);
  Rng rng(seed);
  const size_t n = g.NumVertices();
  for (int i = 0; i < samples; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, levels + 1));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w))
        << s << "->" << t << " w=" << w;
  }
}

TEST(DynamicTest, InsertIntoFigure3) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  // New strong shortcut v0 - v5.
  index.InsertEdge(0, 5, 4.0f);
  EXPECT_EQ(index.Query(0, 5, 4.0f), 1u);
  EXPECT_EQ(index.Query(1, 5, 3.0f), 2u);  // v1 - v0 - v5 at q3.
  ExpectMatchesOracle(index, 6, 1);
}

TEST(DynamicTest, InsertParallelEdgeLowerQualityIsNoop) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  size_t before = index.labels().TotalEntries();
  index.InsertEdge(0, 1, 2.0f);  // Existing edge has quality 3.
  EXPECT_EQ(index.labels().TotalEntries(), before);
  ExpectMatchesOracle(index, 6, 2);
}

TEST(DynamicTest, InsertParallelEdgeHigherQualityUpgrades) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  index.InsertEdge(0, 3, 5.0f);  // Upgrade (v0, v3) from q1 to q5.
  EXPECT_EQ(index.Query(0, 3, 5.0f), 1u);
  EXPECT_EQ(index.Query(0, 4, 4.0f), 2u);  // v0 - v3 - v4 now at q4.
  ExpectMatchesOracle(index, 6, 3);
}

TEST(DynamicTest, DeleteEdgeRebuilds) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  index.DeleteEdge(3, 4);
  // v4 now reachable only through v5.
  EXPECT_EQ(index.Query(0, 4, 1.0f), 3u);  // v0 - v3 - v5 - v4.
  EXPECT_EQ(index.Query(3, 4, 4.0f), kInfDistance);
  ExpectMatchesOracle(index, 6, 4);
}

TEST(DynamicTest, DeleteMissingEdgeIsNoop) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  size_t before = index.labels().TotalEntries();
  index.DeleteEdge(0, 5);
  EXPECT_EQ(index.labels().TotalEntries(), before);
}

class DynamicPropertyTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, int, uint64_t>> {
};

TEST_P(DynamicPropertyTest, RandomInsertionSequence) {
  auto [n, m, levels, seed] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  DynamicWcIndex index(g);
  Rng rng(seed + 31);
  for (int round = 0; round < 12; ++round) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(n));
    Vertex v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v) continue;
    Quality q = static_cast<Quality>(rng.NextInRange(1, levels));
    index.InsertEdge(u, v, q);
  }
  ExpectMatchesOracle(index, levels, seed + 32, 400);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicPropertyTest,
    testing::Values(std::make_tuple(30, 50, 3, 1),
                    std::make_tuple(50, 90, 5, 2),
                    std::make_tuple(80, 160, 4, 3),
                    std::make_tuple(60, 100, 8, 4),
                    std::make_tuple(100, 250, 6, 5)));

TEST(DynamicTest, MixedInsertDeleteSequence) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(40, 80, quality, 17);
  DynamicWcIndex index(g);
  Rng rng(19);
  for (int round = 0; round < 8; ++round) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(40));
    Vertex v = static_cast<Vertex>(rng.NextBounded(40));
    if (u == v) continue;
    if (rng.NextBool(0.7)) {
      index.InsertEdge(u, v, static_cast<Quality>(rng.NextInRange(1, 4)));
    } else {
      index.DeleteEdge(u, v);
    }
  }
  ExpectMatchesOracle(index, 4, 21, 400);
}

TEST(DynamicTest, BatchInsertSmallBatchIncremental) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(60, 200, quality, 27);
  DynamicWcIndex index(g);
  index.InsertEdges({{1, 40, 3.0f}, {2, 50, 2.0f}, {3, 55, 4.0f}});
  ExpectMatchesOracle(index, 4, 28);
}

TEST(DynamicTest, BatchInsertLargeBatchRebuilds) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(40, 60, quality, 29);
  DynamicWcIndex index(g);
  // Batch of 30 on a 60-edge graph: exceeds the 1-per-8 threshold.
  std::vector<DynamicWcIndex::EdgeUpdate> batch;
  Rng rng(30);
  for (int i = 0; i < 30; ++i) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(40));
    Vertex v = static_cast<Vertex>(rng.NextBounded(40));
    if (u != v) {
      batch.push_back({u, v, static_cast<Quality>(rng.NextInRange(1, 4))});
    }
  }
  index.InsertEdges(batch);
  ExpectMatchesOracle(index, 4, 31);
}

// ------------------------------------------------------------ metamorphic
//
// Properties that must hold for ANY update, checked over the full
// (s, t, w) grid — no oracle needed, so these catch bugs the differential
// tests can only catch if the oracle disagrees:
//   * inserting an edge never lengthens any answer, and answers under a
//     constraint stricter than the new edge's quality are untouched;
//   * deleting an edge never shortens any answer, and answers under a
//     constraint stricter than the deleted quality are untouched;
//   * upgrading an edge from q_old to q_new only affects constraints in
//     (q_old, q_new] — and there it can only shorten.

std::vector<Distance> AnswerGrid(const DynamicWcIndex& index, size_t n,
                                 int levels) {
  std::vector<Distance> grid;
  grid.reserve(n * n * static_cast<size_t>(levels));
  for (Vertex s = 0; s < static_cast<Vertex>(n); ++s) {
    for (Vertex t = 0; t < static_cast<Vertex>(n); ++t) {
      for (int w = 1; w <= levels; ++w) {
        grid.push_back(index.Query(s, t, static_cast<Quality>(w)));
      }
    }
  }
  return grid;
}

void CheckInsertNeverLengthens(QualityGraph g, int levels, Vertex u, Vertex v,
                               Quality q) {
  const size_t n = g.NumVertices();
  DynamicWcIndex index(std::move(g));
  std::vector<Distance> before = AnswerGrid(index, n, levels);
  index.InsertEdge(u, v, q);
  std::vector<Distance> after = AnswerGrid(index, n, levels);
  size_t i = 0;
  for (Vertex s = 0; s < static_cast<Vertex>(n); ++s) {
    for (Vertex t = 0; t < static_cast<Vertex>(n); ++t) {
      for (int w = 1; w <= levels; ++w, ++i) {
        ASSERT_LE(after[i], before[i])
            << "insert lengthened " << s << "->" << t << " w=" << w;
        if (static_cast<Quality>(w) > q) {
          ASSERT_EQ(after[i], before[i])
              << "insert of quality " << q << " changed the w=" << w
              << " answer for " << s << "->" << t;
        }
      }
    }
  }
}

void CheckDeleteNeverShortens(QualityGraph g, int levels, Vertex u,
                              Vertex v) {
  const size_t n = g.NumVertices();
  const Quality q_deleted = g.EdgeQuality(u, v);
  ASSERT_GT(q_deleted, 0.0f) << "fixture must delete an existing edge";
  DynamicWcIndex index(std::move(g));
  std::vector<Distance> before = AnswerGrid(index, n, levels);
  index.DeleteEdge(u, v);
  std::vector<Distance> after = AnswerGrid(index, n, levels);
  size_t i = 0;
  for (Vertex s = 0; s < static_cast<Vertex>(n); ++s) {
    for (Vertex t = 0; t < static_cast<Vertex>(n); ++t) {
      for (int w = 1; w <= levels; ++w, ++i) {
        ASSERT_GE(after[i], before[i])
            << "delete shortened " << s << "->" << t << " w=" << w;
        if (static_cast<Quality>(w) > q_deleted) {
          ASSERT_EQ(after[i], before[i])
              << "delete of quality " << q_deleted << " changed the w=" << w
              << " answer for " << s << "->" << t;
        }
      }
    }
  }
}

void CheckUpgradeOnlyAffectsWindow(QualityGraph g, int levels, Vertex u,
                                   Vertex v, Quality q_new) {
  const size_t n = g.NumVertices();
  const Quality q_old = g.EdgeQuality(u, v);
  ASSERT_GT(q_old, 0.0f) << "fixture must upgrade an existing edge";
  ASSERT_LT(q_old, q_new);
  DynamicWcIndex index(std::move(g));
  std::vector<Distance> before = AnswerGrid(index, n, levels);
  index.InsertEdge(u, v, q_new);  // Parallel-edge max-quality = upgrade.
  std::vector<Distance> after = AnswerGrid(index, n, levels);
  size_t i = 0;
  for (Vertex s = 0; s < static_cast<Vertex>(n); ++s) {
    for (Vertex t = 0; t < static_cast<Vertex>(n); ++t) {
      for (int w = 1; w <= levels; ++w, ++i) {
        const Quality wq = static_cast<Quality>(w);
        if (wq <= q_old || wq > q_new) {
          ASSERT_EQ(after[i], before[i])
              << "upgrade " << q_old << "->" << q_new << " changed the w="
              << w << " answer for " << s << "->" << t
              << " outside its impact window";
        } else {
          ASSERT_LE(after[i], before[i])
              << "upgrade lengthened " << s << "->" << t << " w=" << w;
        }
      }
    }
  }
}

// Picks a random existing edge of the graph.
std::pair<Vertex, Vertex> PickEdge(const QualityGraph& g, Rng& rng) {
  const size_t n = g.NumVertices();
  for (;;) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(n));
    if (g.Degree(u) == 0) continue;
    const auto neighbors = g.Neighbors(u);
    Vertex v = neighbors[rng.NextBounded(neighbors.size())].to;
    return {u, v};
  }
}

TEST(DynamicMetamorphic, InsertNeverLengthensFigure3) {
  CheckInsertNeverLengthens(MakeFigure3Graph(), 6, 0, 5, 4.0f);
  CheckInsertNeverLengthens(MakeFigure3Graph(), 6, 2, 4, 2.0f);
}

TEST(DynamicMetamorphic, DeleteNeverShortensFigure3) {
  CheckDeleteNeverShortens(MakeFigure3Graph(), 6, 3, 4);
  CheckDeleteNeverShortens(MakeFigure3Graph(), 6, 0, 1);
}

TEST(DynamicMetamorphic, UpgradeOnlyAffectsWindowFigure3) {
  CheckUpgradeOnlyAffectsWindow(MakeFigure3Graph(), 6, 0, 3, 5.0f);
  CheckUpgradeOnlyAffectsWindow(MakeFigure3Graph(), 6, 3, 5, 4.0f);
}

TEST(DynamicMetamorphic, RandomGraphSweep) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    QualityModel quality;
    quality.num_levels = 5;
    QualityGraph g = GenerateRandomConnected(24, 48, quality, seed);
    Rng rng(seed * 77);

    Vertex u = static_cast<Vertex>(rng.NextBounded(24));
    Vertex v = static_cast<Vertex>((u + 1 + rng.NextBounded(23)) % 24);
    CheckInsertNeverLengthens(g, 5, u, v,
                              static_cast<Quality>(rng.NextInRange(1, 5)));

    auto [du, dv] = PickEdge(g, rng);
    CheckDeleteNeverShortens(g, 5, du, dv);

    // Find an edge with upgradable quality for the window check.
    for (int tries = 0; tries < 64; ++tries) {
      auto [eu, ev] = PickEdge(g, rng);
      Quality q_old = g.EdgeQuality(eu, ev);
      if (q_old < 5.0f) {
        CheckUpgradeOnlyAffectsWindow(g, 5, eu, ev, 5.0f);
        break;
      }
    }
  }
}

TEST(DynamicTest, InsertBridgesComponents) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 3.0f);
  b.AddEdge(1, 2, 2.0f);
  b.AddEdge(3, 4, 3.0f);
  b.AddEdge(4, 5, 1.0f);
  DynamicWcIndex index(b.Build());
  EXPECT_EQ(index.Query(0, 5, 1.0f), kInfDistance);
  index.InsertEdge(2, 3, 2.0f);
  EXPECT_EQ(index.Query(0, 5, 1.0f), 5u);
  EXPECT_EQ(index.Query(0, 4, 2.0f), 4u);
  EXPECT_EQ(index.Query(0, 4, 3.0f), kInfDistance);
  ExpectMatchesOracle(index, 4, 23);
}

}  // namespace
}  // namespace wcsd
