// The on-disk delta log (labeling/delta.h): round trip, header and batch
// CRC validation, and clean Corruption errors on malformed input — the
// same contract the snapshot and manifest formats pin.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "labeling/delta.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

DeltaLog MakeLog() {
  DeltaLog log;
  log.base_fingerprint = 0xabcdef0123456789ull;
  DeltaBatch batch;
  batch.records.push_back(
      {static_cast<uint8_t>(DeltaOp::kInsert), {}, 1, 42, 3.0f, 0.0f});
  batch.records.push_back(
      {static_cast<uint8_t>(DeltaOp::kUpgrade), {}, 2, 7, 4.0f, 2.0f});
  log.batches.push_back(batch);
  DeltaBatch second;
  second.records.push_back(
      {static_cast<uint8_t>(DeltaOp::kDelete), {}, 3, 9, 1.0f, 0.0f});
  log.batches.push_back(second);
  return log;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(DeltaFormat, RoundTripPreservesEverything) {
  std::string path = TempPath("roundtrip.wcdelta");
  DeltaLog log = MakeLog();
  ASSERT_TRUE(WriteDeltaLog(path, log).ok());
  auto read = ReadDeltaLog(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().base_fingerprint, log.base_fingerprint);
  ASSERT_EQ(read.value().batches.size(), 2u);
  EXPECT_EQ(read.value().TotalRecords(), 3u);
  EXPECT_TRUE(read.value().HasDelete());
  const DeltaRecord& r = read.value().batches[0].records[1];
  EXPECT_EQ(r.op, static_cast<uint8_t>(DeltaOp::kUpgrade));
  EXPECT_EQ(r.u, 2u);
  EXPECT_EQ(r.v, 7u);
  EXPECT_EQ(r.quality, 4.0f);
  EXPECT_EQ(r.old_quality, 2.0f);
  std::remove(path.c_str());
}

TEST(DeltaFormat, ImpactsFollowTheWindowRule) {
  DeltaLog log = MakeLog();
  std::vector<DeltaImpact> impacts = DeltaImpacts(log);
  ASSERT_EQ(impacts.size(), 3u);
  // Insert and delete reach down to -inf; upgrade spans (q_old, q_new].
  EXPECT_EQ(impacts[0].q_lo, -kInfQuality);
  EXPECT_EQ(impacts[0].q_hi, 3.0f);
  EXPECT_EQ(impacts[1].q_lo, 2.0f);
  EXPECT_EQ(impacts[1].q_hi, 4.0f);
  EXPECT_EQ(impacts[2].q_lo, -kInfQuality);
  EXPECT_EQ(impacts[2].q_hi, 1.0f);
}

TEST(DeltaFormat, RejectsCorruptInput) {
  std::string path = TempPath("corrupt.wcdelta");
  ASSERT_TRUE(WriteDeltaLog(path, MakeLog()).ok());
  const std::string good = ReadBytes(path);

  // Truncated anywhere: header, batch header, or mid-record.
  for (size_t cut : {size_t{4}, size_t{31}, good.size() - 5}) {
    WriteBytes(path, good.substr(0, cut));
    EXPECT_FALSE(ReadDeltaLog(path).ok()) << "cut=" << cut;
  }

  // Trailing garbage is not silently ignored.
  WriteBytes(path, good + "xx");
  EXPECT_FALSE(ReadDeltaLog(path).ok());

  // A flipped payload byte trips the batch CRC.
  std::string flipped = good;
  flipped[flipped.size() - 3] ^= 0x40;
  WriteBytes(path, flipped);
  EXPECT_FALSE(ReadDeltaLog(path).ok());

  // Bad magic is rejected before anything else is trusted.
  std::string bad_magic = good;
  bad_magic[0] ^= 0xff;
  WriteBytes(path, bad_magic);
  EXPECT_FALSE(ReadDeltaLog(path).ok());

  std::remove(path.c_str());
}

TEST(DeltaFormat, RejectsSelfLoopsAndUnknownOps) {
  std::string path = TempPath("invalid.wcdelta");
  DeltaLog self_loop;
  DeltaBatch batch;
  batch.records.push_back(
      {static_cast<uint8_t>(DeltaOp::kInsert), {}, 5, 5, 1.0f, 0.0f});
  self_loop.batches.push_back(batch);
  EXPECT_FALSE(WriteDeltaLog(path, self_loop).ok() &&
               ReadDeltaLog(path).ok());

  DeltaLog bad_op;
  DeltaBatch batch2;
  batch2.records.push_back({uint8_t{99}, {}, 1, 2, 1.0f, 0.0f});
  bad_op.batches.push_back(batch2);
  EXPECT_FALSE(WriteDeltaLog(path, bad_op).ok() &&
               ReadDeltaLog(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcsd
