// Properties of the rank-batched parallel construction pipeline: for every
// thread count and batch size, the produced index must be BIT-IDENTICAL to
// the sequential build (Theorem 1's minimal index is canonical for a fixed
// vertex order), and its answers must match the ConstrainedDijkstra oracle.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "search/constrained_dijkstra.h"
#include "util/random.h"

namespace wcsd {
namespace {

using Ordering = WcIndexOptions::Ordering;

QualityGraph MakeGraph(int which, uint64_t seed) {
  QualityModel quality;
  switch (which) {
    case 0:
      quality.num_levels = 5;
      return GenerateRandomConnected(120, 360, quality, seed);
    case 1:
      quality.num_levels = 8;
      return GenerateBarabasiAlbert(150, 4, quality, seed);
    case 2: {
      RoadOptions options;
      options.rows = options.cols = 12;
      options.quality.num_levels = 6;
      options.arterial_spacing = 5;
      return GenerateRoadNetwork(options, seed);
    }
    default:
      quality.num_levels = 3;
      return GenerateWattsStrogatz(140, 3, 0.2, quality, seed);
  }
}

using IdentityCase = std::tuple<int, size_t, size_t>;

class ParallelBuildIdentityTest : public testing::TestWithParam<IdentityCase> {
};

std::string IdentityCaseName(const testing::TestParamInfo<IdentityCase>& info) {
  auto [graph_kind, threads, batch] = info.param;
  return "g" + std::to_string(graph_kind) + "t" + std::to_string(threads) +
         "b" + std::to_string(batch);
}

TEST_P(ParallelBuildIdentityTest, MatchesSequentialBitForBit) {
  auto [graph_kind, threads, batch_size] = GetParam();
  QualityGraph g = MakeGraph(graph_kind, 97 + graph_kind);

  WcIndexOptions sequential = WcIndexOptions::Plus();
  sequential.num_threads = 1;
  WcIndex expected = WcIndex::Build(g, sequential);

  WcIndexOptions parallel = WcIndexOptions::Plus();
  parallel.num_threads = threads;
  parallel.batch_size = batch_size;
  WcIndex actual = WcIndex::Build(g, parallel);

  ASSERT_EQ(actual.labels(), expected.labels())
      << "threads=" << threads << " batch=" << batch_size;
  EXPECT_EQ(actual.TotalEntries(), expected.TotalEntries());
  EXPECT_EQ(actual.build_stats().entries_added,
            expected.build_stats().entries_added);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBuildIdentityTest,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(size_t{2}, size_t{4}, size_t{8}),
                     testing::Values(size_t{0}, size_t{1}, size_t{3},
                                     size_t{17}, size_t{64})),
    IdentityCaseName);

TEST(ParallelBuild, BasicConstructionQueryAlsoIdentical) {
  // The non-query-efficient cover check (plain WC-INDEX) goes through a
  // different code path; the pipeline must preserve it too.
  QualityGraph g = MakeGraph(0, 131);
  WcIndexOptions sequential = WcIndexOptions::Basic();
  sequential.num_threads = 1;
  WcIndexOptions parallel = WcIndexOptions::Basic();
  parallel.num_threads = 4;
  parallel.batch_size = 7;
  EXPECT_EQ(WcIndex::Build(g, parallel).labels(),
            WcIndex::Build(g, sequential).labels());
}

TEST(ParallelBuild, NoFurtherPruningIdentical) {
  QualityGraph g = MakeGraph(1, 133);
  WcIndexOptions sequential = WcIndexOptions::Plus();
  sequential.further_pruning = false;
  sequential.num_threads = 1;
  WcIndexOptions parallel = sequential;
  parallel.num_threads = 3;
  EXPECT_EQ(WcIndex::Build(g, parallel).labels(),
            WcIndex::Build(g, sequential).labels());
}

TEST(ParallelBuild, RecordParentsProducesAlignedParents) {
  QualityGraph g = MakeGraph(2, 137);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.record_parents = true;
  options.num_threads = 4;
  options.batch_size = 5;
  WcIndex index = WcIndex::Build(g, options);
  ASSERT_TRUE(index.has_parents());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(index.Parents(v).size(), index.labels().For(v).size());
  }
}

TEST(ParallelBuild, AnswersMatchConstrainedDijkstra) {
  for (int kind = 0; kind < 4; ++kind) {
    QualityGraph g = MakeGraph(kind, 211 + kind);
    WcIndexOptions options = WcIndexOptions::Plus();
    options.num_threads = 4;
    WcIndex index = WcIndex::Build(g, options);
    Rng rng(17 + kind);
    const size_t n = g.NumVertices();
    for (int i = 0; i < 250; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      Quality w = static_cast<Quality>(rng.NextInRange(1, 9));
      EXPECT_EQ(index.Query(s, t, w), ConstrainedDijkstraUnit(g, s, t, w))
          << "kind=" << kind << " " << s << "->" << t << " w=" << w;
    }
  }
}

TEST(ParallelBuild, ParallelIndexPassesFullVerification) {
  QualityGraph g = MakeGraph(0, 139);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = 8;
  options.batch_size = 2;
  WcIndex index = WcIndex::Build(g, options);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ParallelBuild, AutoThreadsAndTinyGraphs) {
  // num_threads = 0 resolves to hardware concurrency; degenerate graphs
  // must not wedge the pool.
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = 0;

  GraphBuilder b0(0);
  EXPECT_EQ(WcIndex::Build(b0.Build(), options).TotalEntries(), 0u);

  GraphBuilder b1(1);
  WcIndex one = WcIndex::Build(b1.Build(), options);
  EXPECT_EQ(one.TotalEntries(), 1u);
  EXPECT_EQ(one.Query(0, 0, 1.0f), 0u);

  GraphBuilder b2(2);
  b2.AddEdge(0, 1, 2.0f);
  WcIndexOptions many = WcIndexOptions::Plus();
  many.num_threads = 16;  // more threads than vertices
  WcIndex two = WcIndex::Build(b2.Build(), many);
  EXPECT_EQ(two.Query(0, 1, 1.0f), 1u);
  EXPECT_EQ(two.Query(0, 1, 3.0f), kInfDistance);
}

}  // namespace
}  // namespace wcsd
