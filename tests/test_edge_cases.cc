// Edge-case and robustness tests for the core index: extreme topologies,
// unusual quality values (negative, fractional, duplicated), and stress
// differentials against the online oracle.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(EdgeCases, AllIsolatedVertices) {
  GraphBuilder b(10);
  WcIndex index = WcIndex::Build(b.Build());
  EXPECT_EQ(index.TotalEntries(), 10u);  // Self entries only.
  EXPECT_EQ(index.Query(3, 7, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(3, 3, 1.0f), 0u);
}

TEST(EdgeCases, StarGraph) {
  GraphBuilder b(50);
  for (Vertex leaf = 1; leaf < 50; ++leaf) {
    b.AddEdge(0, leaf, static_cast<Quality>(1 + leaf % 5));
  }
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Leaf-to-leaf distance is 2 when both spokes satisfy the constraint.
  EXPECT_EQ(index.Query(1, 6, 2.0f), 2u);   // spokes q2 and q2
  EXPECT_EQ(index.Query(1, 2, 3.0f), kInfDistance);  // spoke 1 has q2 < 3
}

TEST(EdgeCases, CompleteGraph) {
  const size_t n = 20;
  GraphBuilder b(n);
  Rng rng(3);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) {
      b.AddEdge(i, j, static_cast<Quality>(rng.NextInRange(1, 4)));
    }
  }
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(EdgeCases, LongPathDiameterStress) {
  const size_t n = 400;
  GraphBuilder b(n);
  for (Vertex i = 0; i + 1 < n; ++i) {
    b.AddEdge(i, i + 1, static_cast<Quality>(1 + i % 3));
  }
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  WcBfs bfs(&g);
  // End-to-end: only the weakest class survives the whole chain.
  EXPECT_EQ(index.Query(0, static_cast<Vertex>(n - 1), 1.0f),
            static_cast<Distance>(n - 1));
  EXPECT_EQ(index.Query(0, static_cast<Vertex>(n - 1), 2.0f), kInfDistance);
  // Random sub-ranges at every class.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 3));
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(EdgeCases, NegativeAndFractionalQualities) {
  // Qualities are arbitrary finite reals per the problem definition.
  GraphBuilder b(5);
  b.AddEdge(0, 1, -2.5f);
  b.AddEdge(1, 2, 0.0f);
  b.AddEdge(2, 3, 0.25f);
  b.AddEdge(3, 4, -10.0f);
  b.AddEdge(0, 4, 0.125f);
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  WcBfs bfs(&g);
  for (Quality w : {-11.0f, -2.5f, -1.0f, 0.0f, 0.125f, 0.2f, 0.25f, 1.0f}) {
    for (Vertex s = 0; s < 5; ++s) {
      for (Vertex t = 0; t < 5; ++t) {
        ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w))
            << s << "->" << t << " w=" << w;
      }
    }
  }
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(EdgeCases, TwoVertexGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 3.0f);
  WcIndex index = WcIndex::Build(b.Build());
  EXPECT_EQ(index.Query(0, 1, 3.0f), 1u);
  EXPECT_EQ(index.Query(0, 1, 3.5f), kInfDistance);
  EXPECT_EQ(index.Query(1, 0, 1.0f), 1u);
}

TEST(EdgeCases, DenseQualitySpectrum) {
  // Nearly every edge has a unique quality: |w| ~ |E|, the regime where
  // the Naive baseline is maximally infeasible but WC-INDEX just stores a
  // deeper frontier.
  const size_t n = 60;
  QualityModel quality;
  QualityGraph base = GenerateRandomConnected(n, 150, quality, 7);
  GraphBuilder b(n);
  Rng rng(9);
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : base.Neighbors(u)) {
      if (u < a.to) {
        b.AddEdge(u, a.to,
                  static_cast<Quality>(rng.NextDouble() * 1000.0));
      }
    }
  }
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  WcBfs bfs(&g);
  auto thresholds = g.DistinctQualities();
  Rng qrng(11);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(qrng.NextBounded(n));
    Vertex t = static_cast<Vertex>(qrng.NextBounded(n));
    Quality w = thresholds[qrng.NextBounded(thresholds.size())];
    ASSERT_EQ(index.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(EdgeCases, StressDifferentialLargeRandom) {
  // One larger randomized differential: 600 vertices, all four query
  // implementations against the oracle.
  QualityModel quality;
  quality.num_levels = 7;
  QualityGraph g = GenerateRandomConnected(600, 1800, quality, 13);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  WcBfs bfs(&g);
  Rng rng(15);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(600));
    Vertex t = static_cast<Vertex>(rng.NextBounded(600));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 8));
    Distance expected = bfs.Query(s, t, w);
    ASSERT_EQ(index.Query(s, t, w, QueryImpl::kMerge), expected);
    ASSERT_EQ(index.Query(s, t, w, QueryImpl::kBinary), expected);
    if (i % 10 == 0) {  // The quadratic scan is slow; sample it.
      ASSERT_EQ(index.Query(s, t, w, QueryImpl::kScan), expected);
      ASSERT_EQ(index.Query(s, t, w, QueryImpl::kHubGrouped), expected);
    }
  }
}

TEST(EdgeCases, RepeatedBuildsAreDeterministic) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(120, 300, quality, 17);
  WcIndex a = WcIndex::Build(g, WcIndexOptions::Plus());
  WcIndex b = WcIndex::Build(g, WcIndexOptions::Plus());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.order().by_rank(), b.order().by_rank());
}

}  // namespace
}  // namespace wcsd
