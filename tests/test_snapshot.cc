// Snapshot format tests: mmap round trips, shard slicing, and the negative
// paths — truncation, bad magic, wrong version, header and section
// corruption must all fail with a clean Status, never a crash or a silent
// wrong answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/snapshot.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WcIndex BuildFinalizedIndex() {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(150, 400, quality, 11);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  return index;
}

TEST(Snapshot, MmapRoundTripIsBitIdentical) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("round.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());

  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.deep_validate = true;
  auto loaded = WcIndex::LoadMmap(path, verify);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const WcIndex& mm = loaded.value();

  EXPECT_TRUE(mm.finalized());
  EXPECT_TRUE(mm.flat_labels().external());
  EXPECT_EQ(mm.NumVertices(), index.NumVertices());
  EXPECT_EQ(mm.TotalEntries(), index.TotalEntries());
  EXPECT_EQ(mm.flat_labels(), index.flat_labels());
  EXPECT_EQ(mm.order().by_rank(), index.order().by_rank());

  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(index.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                           QueryImpl::kBinary, QueryImpl::kMerge}) {
      ASSERT_EQ(mm.Query(s, t, w, impl), index.Query(s, t, w, impl))
          << "impl=" << static_cast<int>(impl) << " s=" << s << " t=" << t
          << " w=" << w;
    }
    HubQueryResult a = mm.QueryWithHub(s, t, w);
    HubQueryResult b = index.QueryWithHub(s, t, w);
    ASSERT_EQ(a.dist, b.dist);
    ASSERT_EQ(a.via_hub, b.via_hub);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, SurvivesSourceIndexDestruction) {
  std::string path = TempPath("lifetime.wcsnap");
  {
    WcIndex index = BuildFinalizedIndex();
    ASSERT_TRUE(index.SaveSnapshot(path).ok());
  }
  auto loaded = WcIndex::LoadMmap(path);
  ASSERT_TRUE(loaded.ok());
  // Copy the index; the copy must keep the mapping alive on its own.
  WcIndex copy = loaded.value();
  EXPECT_GT(copy.TotalEntries(), 0u);
  EXPECT_NE(copy.Query(0, 1, 1.0f), kInfDistance + 1);  // exercises a read
  std::remove(path.c_str());
}

TEST(Snapshot, MmapLoadedIndexSavesFullWcx) {
  WcIndex index = BuildFinalizedIndex();
  std::string snap = TempPath("resave.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(snap).ok());
  auto mm = WcIndex::LoadMmap(snap);
  ASSERT_TRUE(mm.ok());
  // An mmap-loaded index has empty append-oriented labels; Save must still
  // serialize the full index (from the flat backend), not an empty one.
  std::string wcx = TempPath("resave.wcx");
  ASSERT_TRUE(mm.value().Save(wcx).ok());
  auto reloaded = WcIndex::Load(wcx);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().NumVertices(), index.NumVertices());
  EXPECT_EQ(reloaded.value().TotalEntries(), index.TotalEntries());
  EXPECT_EQ(reloaded.value().labels(), index.labels());
  std::remove(snap.c_str());
  std::remove(wcx.c_str());
}

TEST(Snapshot, SaveRequiresFinalize) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  Status st = index.SaveSnapshot(TempPath("unfinalized.wcsnap"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Snapshot, LabelOnlySnapshotLoadsButNotAsWcIndex) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("label_only.wcsnap");
  ASSERT_TRUE(WriteSnapshot(path, index.flat_labels(), nullptr).ok());

  auto snapshot = LoadSnapshotMmap(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_FALSE(snapshot.value().info.has_order);
  EXPECT_EQ(snapshot.value().labels, index.flat_labels());

  auto as_index = WcIndex::LoadMmap(path);
  EXPECT_FALSE(as_index.ok());
  EXPECT_EQ(as_index.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, EmptyIndexRoundTrips) {
  WcIndex index = WcIndex::Build(QualityGraph());
  index.Finalize();
  std::string path = TempPath("empty.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  auto loaded = WcIndex::LoadMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumVertices(), 0u);
  EXPECT_EQ(loaded.value().Query(0, 1, 1.0f), kInfDistance);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsIoError) {
  auto loaded = WcIndex::LoadMmap("/does/not/exist.wcsnap");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Snapshot, TruncationRejectedAtEveryLevel) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("trunc.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 8192u);

  // Mid-header, just past the header page, and mid-section.
  for (size_t keep : {size_t{100}, size_t{4096}, bytes.size() / 2}) {
    std::string t = TempPath("trunc_cut.wcsnap");
    WriteFileBytes(t, bytes.substr(0, keep));
    auto loaded = WcIndex::LoadMmap(t);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    std::remove(t.c_str());
  }
  std::remove(path.c_str());
}

TEST(Snapshot, BadMagicRejected) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("magic.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] ^= 0x5A;
  WriteFileBytes(path, bytes);
  auto loaded = WcIndex::LoadMmap(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, WrongVersionRejected) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("version.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  // The u32 version sits right after the u64 magic.
  bytes[8] = 99;
  WriteFileBytes(path, bytes);
  auto loaded = WcIndex::LoadMmap(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, HeaderCorruptionCaughtByChecksum) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("header_corrupt.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[40] ^= 0xFF;  // inside the vertex-range fields / section table
  WriteFileBytes(path, bytes);
  auto loaded = WcIndex::LoadMmap(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, SectionCorruptionCaughtUnderVerify) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("section_corrupt.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one byte deep inside the section payloads (past the header page
  // and the order/offsets sections).
  bytes[bytes.size() - 64] ^= 0x01;
  WriteFileBytes(path, bytes);

  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto checked = WcIndex::LoadMmap(path, verify);
  EXPECT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
  EXPECT_NE(checked.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

// The middle validation tier: a corrupted hub-directory `begin` — the
// field query kernels index entry slices with — must be caught by
// verify_level = kDirectory (and kDeep), while the default O(vertices)
// load, which never reads group pages, still maps the file. This is the
// crash window the tier exists to close.
TEST(Snapshot, GroupCorruptionCaughtAtDirectoryLevel) {
  WcIndex index = BuildFinalizedIndex();
  ASSERT_GT(index.flat_labels().raw_groups().size(), 0u);
  std::string path = TempPath("group_corrupt.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  // The groups section is written last, so the file's final 8 bytes are
  // the last HubGroup and its trailing u32 is that group's `begin`. Point
  // it far outside any entry slice.
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  WriteFileBytes(path, bytes);

  // Default load trusts group payloads and succeeds.
  auto trusting = WcIndex::LoadMmap(path);
  EXPECT_TRUE(trusting.ok()) << trusting.status().ToString();

  SnapshotLoadOptions directory;
  directory.verify_level = SnapshotVerifyLevel::kDirectory;
  auto checked = WcIndex::LoadMmap(path, directory);
  EXPECT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
  EXPECT_NE(checked.status().message().find("hub directory"),
            std::string::npos);

  SnapshotLoadOptions deep;
  deep.verify_level = SnapshotVerifyLevel::kDeep;
  EXPECT_FALSE(WcIndex::LoadMmap(path, deep).ok());
  std::remove(path.c_str());
}

// An uncorrupted snapshot must pass every verification tier (the middle
// tier cannot produce false positives on writer output).
TEST(Snapshot, AllVerifyLevelsAcceptAWellFormedSnapshot) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("levels_ok.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  for (SnapshotVerifyLevel level :
       {SnapshotVerifyLevel::kOffsets, SnapshotVerifyLevel::kDirectory,
        SnapshotVerifyLevel::kDeep}) {
    SnapshotLoadOptions options;
    options.verify_level = level;
    auto loaded = WcIndex::LoadMmap(path, options);
    ASSERT_TRUE(loaded.ok())
        << "level " << static_cast<int>(level) << ": "
        << loaded.status().ToString();
    EXPECT_EQ(loaded.value().TotalEntries(), index.TotalEntries());
  }
  std::remove(path.c_str());
}

// Unsorted hub ranks inside one vertex's directory are also a
// directory-tier catch (the kernels binary-search groups by rank).
TEST(Snapshot, UnsortedHubDirectoryCaughtAtDirectoryLevel) {
  WcIndex index = BuildFinalizedIndex();
  // Find a vertex with >= 2 hub groups and swap its first two directory
  // records in the file image (the groups section is the file's tail).
  const FlatLabelSet& flat = index.flat_labels();
  auto group_offsets = flat.raw_group_offsets();
  size_t vertex_group_begin = 0;
  bool found = false;
  for (Vertex v = 0; v < flat.NumVertices(); ++v) {
    if (group_offsets[v + 1] - group_offsets[v] >= 2) {
      vertex_group_begin = group_offsets[v];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "fixture has no multi-group vertex";
  std::string path = TempPath("group_unsorted.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  const size_t groups_bytes = flat.raw_groups().size() * sizeof(HubGroup);
  const size_t section_start = bytes.size() - groups_bytes;
  const size_t at = section_start + vertex_group_begin * sizeof(HubGroup);
  // Swap the two 4-byte hub ranks (fields 0 of records 0 and 1), keeping
  // the begins intact: ranks now descend.
  std::swap_ranges(bytes.begin() + static_cast<ptrdiff_t>(at),
                   bytes.begin() + static_cast<ptrdiff_t>(at + 4),
                   bytes.begin() + static_cast<ptrdiff_t>(at + 8));
  WriteFileBytes(path, bytes);

  SnapshotLoadOptions directory;
  directory.verify_level = SnapshotVerifyLevel::kDirectory;
  auto checked = WcIndex::LoadMmap(path, directory);
  EXPECT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Snapshot, ReadInfoReportsHeaderFields) {
  WcIndex index = BuildFinalizedIndex();
  std::string path = TempPath("info.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Writers emit the smallest version that can carry the payload: a
  // parent-less index stays on v1 so pre-v6 readers keep loading it.
  EXPECT_EQ(info.value().version, 1u);
  EXPECT_FALSE(info.value().has_parents);
  EXPECT_EQ(info.value().num_vertices_total, index.NumVertices());
  EXPECT_TRUE(info.value().IsFullRange());
  EXPECT_TRUE(info.value().has_order);
  std::remove(path.c_str());
}

TEST(Snapshot, ShardFilesSliceTheIndex) {
  WcIndex index = BuildFinalizedIndex();
  const uint64_t n = index.NumVertices();
  std::string path = TempPath("one_shard.wcsnap");
  ASSERT_TRUE(
      WriteSnapshotShard(path, index.flat_labels(), 40, 110, n).ok());
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.deep_validate = true;
  auto shard = LoadSnapshotMmap(path, verify);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_EQ(shard.value().info.vertex_begin, 40u);
  EXPECT_EQ(shard.value().info.vertex_end, 110u);
  EXPECT_EQ(shard.value().info.num_vertices_total, n);
  EXPECT_FALSE(shard.value().info.IsFullRange());
  EXPECT_EQ(shard.value().labels.NumVertices(), 70u);
  for (Vertex v = 40; v < 110; ++v) {
    auto expected = index.flat_labels().For(v);
    auto got = shard.value().labels.For(v - 40);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), got.begin(),
                           got.end()))
        << "vertex " << v;
  }
  std::remove(path.c_str());
}

TEST(Snapshot, ShardWriterRejectsBadRanges) {
  WcIndex index = BuildFinalizedIndex();
  const uint64_t n = index.NumVertices();
  std::string path = TempPath("bad_shard.wcsnap");
  EXPECT_FALSE(
      WriteSnapshotShard(path, index.flat_labels(), 10, 5, n).ok());
  EXPECT_FALSE(
      WriteSnapshotShard(path, index.flat_labels(), 0, n + 1, n).ok());
  EXPECT_FALSE(
      WriteSnapshotShard(path, index.flat_labels(), 0, n, n + 7).ok());
}

// ------------------------------------------ v2 parents section (§V quads)

WcIndex BuildFinalizedIndexWithParents() {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(120, 320, quality, 17);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.record_parents = true;
  WcIndex index = WcIndex::Build(g, options);
  index.Finalize();
  return index;
}

// The §V parent quads used to be silently dropped by SaveSnapshot; they
// must now survive the round trip entry-for-entry, as a CRC'd v2 section.
TEST(Snapshot, ParentsRoundTripThroughSnapshot) {
  WcIndex index = BuildFinalizedIndexWithParents();
  ASSERT_TRUE(index.has_parents());
  std::string path = TempPath("parents.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());

  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 2u);
  EXPECT_TRUE(info.value().has_parents);

  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.deep_validate = true;
  auto loaded = WcIndex::LoadMmap(path, verify);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const WcIndex& mm = loaded.value();
  ASSERT_TRUE(mm.has_parents());
  for (Vertex v = 0; v < index.NumVertices(); ++v) {
    std::span<const Vertex> a = index.Parents(v);
    std::span<const Vertex> b = mm.Parents(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "vertex " << v << " entry " << i;
    }
  }
  std::remove(path.c_str());
}

// A parent-less index writes a v1 file (smallest-version rule: old readers
// and checked-in goldens stay byte-compatible), and loading one reports
// the degraded parent-less mode explicitly instead of pretending.
TEST(Snapshot, ParentLessSnapshotIsV1AndReportsDegradedMode) {
  WcIndex index = BuildFinalizedIndex();  // record_parents off
  ASSERT_FALSE(index.has_parents());
  std::string path = TempPath("no_parents.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 1u);
  EXPECT_FALSE(info.value().has_parents);
  auto loaded = WcIndex::LoadMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().has_parents());
  EXPECT_TRUE(loaded.value().Parents(0).empty());
  std::remove(path.c_str());
}

// Negative test against a real pre-v2 artifact: the checked-in Figure 3
// golden predates the parents section, and must load as explicit degraded
// mode — never an error, never phantom quads.
TEST(Snapshot, OldGoldenSnapshotLoadsWithoutParents) {
  std::string path =
      std::string(WCSD_TEST_DATA_DIR) + "/fig3_golden.wcsnap";
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 1u);
  EXPECT_FALSE(info.value().has_parents);
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto loaded = WcIndex::LoadMmap(path, verify);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().has_parents());
}

// The parents section is checksummed like every other section: bit rot in
// the quads must fail a verify_checksums load, not corrupt routes.
TEST(Snapshot, ParentsCorruptionCaughtUnderVerify) {
  WcIndex index = BuildFinalizedIndexWithParents();
  std::string path = TempPath("parents_corrupt.wcsnap");
  ASSERT_TRUE(index.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  // The parents section is written last in a v2 file, so the final bytes
  // are the last entries' parent vertices.
  bytes[bytes.size() - 2] ^= 0x01;
  WriteFileBytes(path, bytes);

  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto checked = WcIndex::LoadMmap(path, verify);
  EXPECT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcsd
