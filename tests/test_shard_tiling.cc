// Randomized tiling differential test: the sharding correctness story is
// that ANY valid tiling of the vertex range answers bit-identically to the
// unsharded index — a query reads exactly two label slices and hubs are
// global ranks, so where the shard cuts fall can never matter.
//
// For ~50 seeded graphs across four generator families, this suite
// generates random valid tilings (1..8 shards, uneven cuts, singleton and
// even empty shards), serves each through ShardedQueryEngine (shard files
// via OpenMmap, plus the planner + manifest path via OpenManifest), and
// asserts every answer matches the unsharded QueryEngine across all four
// QueryImpls, single and batch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

constexpr QueryImpl kImpls[] = {QueryImpl::kScan, QueryImpl::kHubGrouped,
                                QueryImpl::kBinary, QueryImpl::kMerge};

QualityGraph MakeTilingGraph(size_t family, uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + family);
  QualityModel quality;
  quality.num_levels = static_cast<int>(rng.NextInRange(2, 6));
  switch (family) {
    case 0: {
      RoadOptions options;
      options.rows = static_cast<size_t>(rng.NextInRange(4, 7));
      options.cols = static_cast<size_t>(rng.NextInRange(4, 7));
      options.quality = quality;
      return GenerateRoadNetwork(options, seed);
    }
    case 1: {
      size_t n = static_cast<size_t>(rng.NextInRange(24, 60));
      return GenerateBarabasiAlbert(
          n, static_cast<size_t>(rng.NextInRange(2, 4)), quality, seed);
    }
    case 2: {
      size_t n = static_cast<size_t>(rng.NextInRange(24, 60));
      return GenerateWattsStrogatz(
          n, static_cast<size_t>(rng.NextInRange(1, 3)), 0.2, quality, seed);
    }
    default: {
      size_t n = static_cast<size_t>(rng.NextInRange(24, 60));
      size_t m = n - 1 + static_cast<size_t>(rng.NextBounded(n));
      return GenerateRandomConnected(n, m, quality, seed);
    }
  }
}

/// A random tiling of [0, n): 1..8 shards with uneven cut points. Repeated
/// cuts produce empty shards; adjacent cuts produce singleton shards —
/// both are legal and must serve correctly.
std::vector<uint64_t> RandomFences(Rng& rng, uint64_t n) {
  size_t shards = 1 + static_cast<size_t>(rng.NextBounded(8));
  std::vector<uint64_t> fences{0, n};
  for (size_t k = 0; k + 1 < shards; ++k) {
    fences.push_back(rng.NextBounded(n + 1));
  }
  std::sort(fences.begin(), fences.end());
  return fences;
}

TEST(ShardTiling, AnyValidTilingAnswersBitIdentically) {
  const std::string dir = testing::TempDir();
  size_t graphs = 0;
  size_t tilings = 0;
  for (size_t family = 0; family < 4; ++family) {
    for (uint64_t gi = 0; gi < 13; ++gi) {
      const uint64_t seed = 7000 + 100 * family + gi;
      QualityGraph g = MakeTilingGraph(family, seed);
      const uint64_t n = g.NumVertices();
      ASSERT_GT(n, 0u);
      ++graphs;

      WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
      index.Finalize();
      const FlatLabelSet& flat = index.flat_labels();

      // Reference engines: the unsharded mmap-served QueryEngine, one per
      // impl.
      std::string snap = dir + "/tiling_" + std::to_string(seed) + ".wcsnap";
      ASSERT_TRUE(index.SaveSnapshot(snap).ok());
      std::vector<std::unique_ptr<QueryEngine>> reference;
      for (QueryImpl impl : kImpls) {
        QueryEngineOptions options;
        options.num_threads = 1;
        options.impl = impl;
        auto opened = QueryEngine::Open(snap, options);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        reference.push_back(
            std::make_unique<QueryEngine>(std::move(opened).value()));
      }

      // Fixed query workload per graph, shared by every tiling.
      Rng qrng(seed ^ 0x7115u);
      std::vector<BatchQueryInput> queries;
      for (size_t q = 0; q < 24; ++q) {
        queries.push_back(
            {static_cast<Vertex>(qrng.NextBounded(n)),
             static_cast<Vertex>(qrng.NextBounded(n)),
             static_cast<Quality>(qrng.NextInRange(0, 6)) +
                 (qrng.NextBool(0.3) ? 0.5f : 0.0f)});
      }

      Rng trng(seed ^ 0xabcdu);
      for (int round = 0; round < 3; ++round) {
        std::vector<uint64_t> fences = RandomFences(trng, n);
        std::vector<std::string> paths;
        for (size_t k = 0; k + 1 < fences.size(); ++k) {
          std::string path = dir + "/tiling_" + std::to_string(seed) + "_" +
                             std::to_string(round) + "_" +
                             std::to_string(k) + ".shard";
          ASSERT_TRUE(
              WriteSnapshotShard(path, flat, fences[k], fences[k + 1], n)
                  .ok());
          paths.push_back(path);
        }
        ++tilings;
        for (size_t impl_i = 0; impl_i < std::size(kImpls); ++impl_i) {
          QueryEngineOptions options;
          options.num_threads = 1;
          options.impl = kImpls[impl_i];
          auto sharded = ShardedQueryEngine::OpenMmap(paths, options);
          ASSERT_TRUE(sharded.ok())
              << sharded.status().ToString() << " seed=" << seed
              << " round=" << round;
          std::vector<Distance> expected;
          for (const BatchQueryInput& q : queries) {
            Distance want = reference[impl_i]->Query(q.s, q.t, q.w);
            expected.push_back(want);
            EXPECT_EQ(sharded.value().Query(q.s, q.t, q.w), want)
                << "impl=" << impl_i << " seed=" << seed
                << " shards=" << paths.size() << " s=" << q.s
                << " t=" << q.t << " w=" << q.w;
          }
          EXPECT_EQ(sharded.value().Batch(queries), expected)
              << "impl=" << impl_i << " seed=" << seed;
        }
        for (const std::string& path : paths) std::remove(path.c_str());
      }

      // The planner + manifest path: a planned shard set must be just
      // another valid tiling.
      ShardPlanOptions plan_options;
      plan_options.num_shards =
          1 + static_cast<size_t>(trng.NextBounded(5));
      auto plan = PlanShards(flat, plan_options);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto written = WriteShardSet(dir + "/tiling_" + std::to_string(seed),
                                   flat, plan.value());
      ASSERT_TRUE(written.ok()) << written.status().ToString();
      ++tilings;
      for (size_t impl_i = 0; impl_i < std::size(kImpls); ++impl_i) {
        QueryEngineOptions options;
        options.num_threads = 1;
        options.impl = kImpls[impl_i];
        SnapshotLoadOptions verify;
        verify.verify_checksums = true;  // exercise the fingerprint path
        auto sharded = ShardedQueryEngine::OpenManifest(
            written.value().manifest_path, options, verify);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        for (const BatchQueryInput& q : queries) {
          EXPECT_EQ(sharded.value().Query(q.s, q.t, q.w),
                    reference[impl_i]->Query(q.s, q.t, q.w))
              << "manifest impl=" << impl_i << " seed=" << seed;
        }
      }
      // A cache-enabled sharded engine over the same planned set must stay
      // bit-identical too — across the full query list twice, so repeat
      // queries go through the interval-hit path.
      {
        QueryEngineOptions options;
        options.num_threads = 1;
        options.cache_bytes = 16 << 10;
        auto cached = ShardedQueryEngine::OpenManifest(
            written.value().manifest_path, options);
        ASSERT_TRUE(cached.ok()) << cached.status().ToString();
        ASSERT_NE(cached.value().cache(), nullptr);
        // The cache binds to the tiling-invariant content fingerprint.
        EXPECT_EQ(cached.value().cache()->fingerprint(),
                  IndexContentFingerprint(flat));
        for (int pass = 0; pass < 2; ++pass) {
          for (const BatchQueryInput& q : queries) {
            EXPECT_EQ(cached.value().Query(q.s, q.t, q.w),
                      reference[3]->Query(q.s, q.t, q.w))
                << "cached pass=" << pass << " seed=" << seed;
          }
        }
        EXPECT_GT(cached.value().stats().cache_hits, 0u);
      }
      std::remove(written.value().manifest_path.c_str());
      for (const std::string& path : written.value().shard_paths) {
        std::remove(path.c_str());
      }
      std::remove(snap.c_str());
    }
  }
  EXPECT_GE(graphs, 50u);
  EXPECT_GE(tilings, 200u);
}

}  // namespace
}  // namespace wcsd
