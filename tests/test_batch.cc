// Batch/ranking API tests: thread-count invariance, positional alignment,
// top-k semantics, and quality-profile monotonicity.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/batch.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::vector<BatchQueryInput> RandomBatch(size_t n_vertices, int levels,
                                         size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQueryInput> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back({static_cast<Vertex>(rng.NextBounded(n_vertices)),
                     static_cast<Vertex>(rng.NextBounded(n_vertices)),
                     static_cast<Quality>(rng.NextInRange(1, levels))});
  }
  return batch;
}

TEST(BatchQueryTest, MatchesSingleQueries) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  std::vector<BatchQueryInput> batch{
      {2, 5, 2.0f}, {0, 4, 1.0f}, {0, 4, 6.0f}, {3, 3, 9.0f}};
  auto results = BatchQuery(index, batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], 2u);
  EXPECT_EQ(results[1], 2u);
  EXPECT_EQ(results[2], kInfDistance);
  EXPECT_EQ(results[3], 0u);
}

TEST(BatchQueryTest, ThreadCountDoesNotChangeResults) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(200, 600, quality, 3);
  WcIndex index = WcIndex::Build(g);
  auto batch = RandomBatch(200, 5, 2000, 7);
  auto sequential = BatchQuery(index, batch, 1);
  for (size_t threads : {2u, 4u, 8u, 64u}) {
    EXPECT_EQ(BatchQuery(index, batch, threads), sequential)
        << threads << " threads";
  }
}

TEST(BatchQueryTest, EmptyBatch) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  EXPECT_TRUE(BatchQuery(index, {}, 4).empty());
}

TEST(TopKClosestTest, OrdersByDistanceThenId) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  // Distances from v0 at w=1: v1:1, v2:2, v3:1, v4:2, v5:2.
  auto top = TopKClosest(index, 0, {1, 2, 3, 4, 5}, 1.0f, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].vertex, 1u);
  EXPECT_EQ(top[0].dist, 1u);
  EXPECT_EQ(top[1].vertex, 3u);
  EXPECT_EQ(top[1].dist, 1u);
  EXPECT_EQ(top[2].vertex, 2u);
  EXPECT_EQ(top[2].dist, 2u);
}

TEST(TopKClosestTest, OmitsUnreachable) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  // At w=4 only the subgraph {v1, v2, v3, v4} stays connected.
  auto top = TopKClosest(index, 1, {0, 2, 3, 4, 5}, 4.0f, 10);
  for (const RankedCandidate& c : top) {
    EXPECT_NE(c.vertex, 0u);
    EXPECT_NE(c.vertex, 5u);
  }
  EXPECT_EQ(top.size(), 3u);
}

TEST(TopKClosestTest, KLargerThanCandidates) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  auto top = TopKClosest(index, 0, {1, 3}, 1.0f, 99);
  EXPECT_EQ(top.size(), 2u);
}

TEST(QualityProfileTest, MonotoneNonDecreasingDistances) {
  QualityModel quality;
  quality.num_levels = 8;
  QualityGraph g = GenerateRandomConnected(120, 300, quality, 9);
  WcIndex index = WcIndex::Build(g);
  auto thresholds = g.DistinctQualities();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(120));
    Vertex t = static_cast<Vertex>(rng.NextBounded(120));
    auto profile = QualityProfile(index, s, t, thresholds);
    ASSERT_EQ(profile.size(), thresholds.size());
    for (size_t j = 1; j < profile.size(); ++j) {
      // Raising the constraint can only lengthen (or break) the path.
      EXPECT_LE(profile[j - 1].dist, profile[j].dist);
    }
  }
}

TEST(QualityProfileTest, Figure3PairV0V4) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  auto profile = QualityProfile(index, 0, 4, {1, 2, 3, 4, 5});
  ASSERT_EQ(profile.size(), 5u);
  EXPECT_EQ(profile[0].dist, 2u);
  EXPECT_EQ(profile[1].dist, 3u);
  EXPECT_EQ(profile[2].dist, 4u);
  EXPECT_EQ(profile[3].dist, kInfDistance);
  EXPECT_EQ(profile[4].dist, kInfDistance);
}

// The profile must cost one label merge per DISTINCT certified interval
// the thresholds land in — never one per threshold. Probing the same
// breakpoint structure with 100 thresholds must not merge more than
// probing it with the distinct qualities does (plus at most one for an
// above-the-top threshold), and duplicated thresholds must be free.
TEST(QualityProfileTest, MergeCountBoundedByIntervalsNotThresholds) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(120, 300, quality, 13);
  WcIndex index = WcIndex::Build(g);
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(120));
    Vertex t = static_cast<Vertex>(rng.NextBounded(120));

    // Dense sweep: 100 thresholds spread over [1, 6].
    std::vector<Quality> dense;
    for (int j = 0; j < 100; ++j) {
      dense.push_back(1.0f + 0.05f * static_cast<float>(j));
    }
    size_t dense_merges = 0;
    auto profile = QualityProfile(index, s, t, dense, &dense_merges);
    ASSERT_EQ(profile.size(), dense.size());
    // d(s,t,w) over 5 quality levels has at most 5 finite steps plus the
    // unreachable tail: at most 6 distinct intervals to certify.
    EXPECT_LE(dense_merges, 6u) << "s=" << s << " t=" << t;
    EXPECT_GE(dense_merges, 1u);

    // Re-asking the same threshold 100 times costs exactly one merge.
    std::vector<Quality> repeated(100, 2.0f);
    size_t repeated_merges = 0;
    QualityProfile(index, s, t, repeated, &repeated_merges);
    EXPECT_EQ(repeated_merges, 1u) << "s=" << s << " t=" << t;
  }
}

// The hoisted source-side scan must be bit-identical to ranking plain
// per-candidate Query calls: same survivors, same order, same distances —
// across random graphs, sources, constraints, and duplicate candidates.
TEST(TopKClosestTest, BitIdenticalToNaivePerCandidateRanking) {
  Rng rng(21);
  for (uint64_t seed : {101u, 202u, 303u}) {
    QualityModel quality;
    quality.num_levels = 5;
    const size_t n = 80 + 20 * (seed % 3);
    QualityGraph g = GenerateRandomConnected(n, 3 * n, quality, seed);
    WcIndex index = WcIndex::Build(g);
    for (int round = 0; round < 30; ++round) {
      Vertex source = static_cast<Vertex>(rng.NextBounded(n));
      Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
      size_t k = 1 + static_cast<size_t>(rng.NextBounded(10));
      std::vector<Vertex> candidates;
      const size_t count = 1 + static_cast<size_t>(rng.NextBounded(20));
      for (size_t i = 0; i < count; ++i) {
        // Includes the source itself and out-of-range ids on purpose.
        candidates.push_back(static_cast<Vertex>(rng.NextBounded(n + 2)));
      }

      auto fast = TopKClosest(index, source, candidates, w, k);

      // The naive oracle: one two-sided Query per candidate, then the same
      // (dist, vertex) sort and truncation.
      std::vector<RankedCandidate> naive;
      for (Vertex c : candidates) {
        Distance d = c == source ? 0 : index.Query(source, c, w);
        if (d != kInfDistance) naive.push_back({c, d});
      }
      std::stable_sort(naive.begin(), naive.end(),
                       [](const RankedCandidate& a,
                          const RankedCandidate& b) {
                         if (a.dist != b.dist) return a.dist < b.dist;
                         return a.vertex < b.vertex;
                       });
      if (naive.size() > k) naive.resize(k);

      ASSERT_EQ(fast.size(), naive.size())
          << "seed=" << seed << " source=" << source << " w=" << w;
      for (size_t i = 0; i < naive.size(); ++i) {
        ASSERT_EQ(fast[i].vertex, naive[i].vertex) << "rank " << i;
        ASSERT_EQ(fast[i].dist, naive[i].dist) << "rank " << i;
      }
    }
  }
}

}  // namespace
}  // namespace wcsd
