// Tests for the synthetic graph generators: structure, connectivity,
// quality model, and determinism.

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "util/random.h"

namespace wcsd {
namespace {

// Counts vertices reachable from 0 ignoring qualities.
size_t ReachableFromZero(const QualityGraph& g) {
  if (g.NumVertices() == 0) return 0;
  WcBfs bfs(&g);
  auto dist = bfs.AllDistances(0, -1e30f);
  size_t count = 0;
  for (Distance d : dist) count += (d != kInfDistance);
  return count;
}

TEST(QualityModelTest, UniformLevelsInRange) {
  QualityModel model;
  model.num_levels = 7;
  Rng rng(3);
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 7000; ++i) {
    Quality q = SampleQuality(model, &rng);
    ASSERT_GE(q, 1.0f);
    ASSERT_LE(q, 7.0f);
    ++histogram[static_cast<int>(q)];
  }
  // Every level occurs; roughly uniform (loose bound).
  for (int level = 1; level <= 7; ++level) {
    EXPECT_GT(histogram[level], 500) << "level " << level;
  }
}

TEST(QualityModelTest, ZipfSkewsLow) {
  QualityModel model;
  model.kind = QualityModel::Kind::kZipfLevels;
  model.num_levels = 5;
  model.zipf_s = 1.5;
  Rng rng(5);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    Quality q = SampleQuality(model, &rng);
    ASSERT_GE(q, 1.0f);
    ASSERT_LE(q, 5.0f);
    if (q == 1.0f) ++low;
    if (q == 5.0f) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RoadGenerator, ConnectedAndSized) {
  RoadOptions options;
  options.rows = 20;
  options.cols = 25;
  QualityGraph g = GenerateRoadNetwork(options, 42);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_EQ(ReachableFromZero(g), 500u);
  // Sparse: spanning tree <= m <= full grid + diagonals.
  EXPECT_GE(g.NumEdges(), 499u);
  EXPECT_LE(g.NumEdges(), 2 * 500u);
}

TEST(RoadGenerator, LowMaxDegree) {
  RoadOptions options;
  options.rows = 30;
  options.cols = 30;
  QualityGraph g = GenerateRoadNetwork(options, 7);
  EXPECT_LE(g.MaxDegree(), 8u);  // Grid + diagonals is degree-bounded.
}

TEST(RoadGenerator, DeterministicPerSeed) {
  RoadOptions options;
  options.rows = 10;
  options.cols = 10;
  EXPECT_EQ(GenerateRoadNetwork(options, 9), GenerateRoadNetwork(options, 9));
}

TEST(RoadGenerator, DifferentSeedsDiffer) {
  RoadOptions options;
  options.rows = 10;
  options.cols = 10;
  EXPECT_FALSE(GenerateRoadNetwork(options, 1) ==
               GenerateRoadNetwork(options, 2));
}

TEST(RoadGenerator, ArterialBackboneEnablesHeavyRouting) {
  RoadOptions options;
  options.rows = options.cols = 24;
  options.quality.num_levels = 8;
  options.arterial_spacing = 8;
  QualityGraph g = GenerateRoadNetwork(options, 5);
  // Two far-apart vertices ON arterials must be connected at top quality.
  WcBfs bfs(&g);
  Vertex a = 0;                                   // (0, 0): arterial corner.
  Vertex b = static_cast<Vertex>(16 * 24 + 16);   // (16, 16): arterial cross.
  EXPECT_NE(bfs.Query(a, b, 8.0f), kInfDistance);
  // And the arterial detour is no shorter than the unconstrained route.
  EXPECT_GE(bfs.Query(a, b, 8.0f), bfs.Query(a, b, 1.0f));
}

TEST(RoadGenerator, QualityLevelsRespected) {
  RoadOptions options;
  options.rows = 12;
  options.cols = 12;
  options.quality.num_levels = 20;
  QualityGraph g = GenerateRoadNetwork(options, 11);
  auto qualities = g.DistinctQualities();
  EXPECT_GE(qualities.size(), 15u);  // Nearly all 20 levels appear.
  EXPECT_LE(qualities.size(), 20u);
  EXPECT_GE(qualities.front(), 1.0f);
  EXPECT_LE(qualities.back(), 20.0f);
}

TEST(BarabasiAlbert, ConnectedScaleFree) {
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(2000, 4, quality, 13);
  EXPECT_EQ(g.NumVertices(), 2000u);
  EXPECT_EQ(ReachableFromZero(g), 2000u);
  // Preferential attachment: the max degree dwarfs the average.
  double avg_degree = 2.0 * static_cast<double>(g.NumEdges()) / 2000.0;
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 8.0 * avg_degree);
}

TEST(BarabasiAlbert, EdgeCountApproximatelyMN) {
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(1000, 5, quality, 17);
  // ~ m*n edges (minus the seed clique adjustment, minus dedup losses).
  EXPECT_GT(g.NumEdges(), 4500u);
  EXPECT_LT(g.NumEdges(), 5200u);
}

TEST(ErdosRenyi, RoughEdgeCount) {
  QualityModel quality;
  QualityGraph g = GenerateErdosRenyi(500, 1000, quality, 19);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_GT(g.NumEdges(), 900u);  // Some loss to duplicates/self-loops.
  EXPECT_LE(g.NumEdges(), 1000u);
}

TEST(RandomTree, ExactlyNMinus1EdgesAndConnected) {
  QualityModel quality;
  QualityGraph g = GenerateRandomTree(300, quality, 23);
  EXPECT_EQ(g.NumEdges(), 299u);
  EXPECT_EQ(ReachableFromZero(g), 300u);
}

TEST(RandomConnected, ConnectedWithRequestedEdges) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(200, 400, quality, 29);
  EXPECT_EQ(ReachableFromZero(g), 200u);
  EXPECT_GE(g.NumEdges(), 199u);
  EXPECT_LE(g.NumEdges(), 400u);
}

TEST(WattsStrogatz, RingWithRewiring) {
  QualityModel quality;
  QualityGraph g = GenerateWattsStrogatz(400, 3, 0.1, quality, 31);
  EXPECT_EQ(g.NumVertices(), 400u);
  // ~ n*k edges.
  EXPECT_GT(g.NumEdges(), 1100u);
  EXPECT_LE(g.NumEdges(), 1200u);
}

TEST(RandomDirected, ArcCountsAndDeterminism) {
  QualityModel quality;
  DirectedQualityGraph g = GenerateRandomDirected(100, 500, quality, 37);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_GT(g.NumArcs(), 400u);
  EXPECT_LE(g.NumArcs(), 500u);
}

TEST(RandomWeighted, LengthsInRange) {
  QualityModel quality;
  WeightedQualityGraph g = GenerateRandomWeighted(100, 300, 9, quality, 41);
  EXPECT_EQ(g.NumVertices(), 100u);
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const WeightedArc& a : g.Neighbors(u)) {
      EXPECT_GE(a.length, 1u);
      EXPECT_LE(a.length, 9u);
    }
  }
}

}  // namespace
}  // namespace wcsd
