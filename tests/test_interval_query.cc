// Exactness of the interval-returning merge kernel (labeling/query.h
// IntervalQueryResult): the foundation the dominance-aware result cache
// stands on. For randomized graphs across the generator families, every
// query's reported interval [w_lo, w_hi] must be
//   * correct  — re-querying at ANY breakpoint inside it returns the same
//     distance (brute-force sweep over every quality value of the graph,
//     plus half-offsets and the extremes), and
//   * maximal  — the distance changes exactly at the boundaries: one float
//     ulp below w_lo and one above w_hi answer differently.
// The span and flat kernels must agree bit-for-bit, and the distance must
// match the plain (differentially fuzzed) query path and the Dijkstra
// ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "paper_fixtures.h"
#include "search/constrained_dijkstra.h"
#include "util/random.h"

namespace wcsd {
namespace {

/// Probe constraints: every distinct quality, half-offsets probing the
/// strict thresholds, and the all-pass / all-fail extremes.
std::vector<Quality> ProbeConstraints(const QualityGraph& g) {
  std::vector<Quality> probes;
  for (Quality q : g.DistinctQualities()) {
    probes.push_back(q - 0.5f);
    probes.push_back(q);
    probes.push_back(q + 0.5f);
  }
  probes.push_back(-1.0f);
  probes.push_back(1e9f);
  return probes;
}

/// Checks one query's interval against both kernels and the brute-force
/// breakpoint sweep. `plain` answers d(s, t, w') for arbitrary w'.
void CheckInterval(const WcIndex& flat, const WcIndex& labels,
                   const std::vector<Quality>& sweep, Vertex s, Vertex t,
                   Quality w) {
  const IntervalQueryResult r = flat.QueryWithInterval(s, t, w);
  ASSERT_EQ(r, labels.QueryWithInterval(s, t, w))
      << "flat and span interval kernels disagree at s=" << s << " t=" << t
      << " w=" << w;

  // The distance half must match the plain query path.
  EXPECT_EQ(r.dist, flat.Query(s, t, w)) << "s=" << s << " t=" << t
                                         << " w=" << w;
  EXPECT_TRUE(r.Contains(w)) << "interval [" << r.w_lo << ", " << r.w_hi
                             << "] misses its own w=" << w;

  // Maximality: one ulp outside either finite end changes the answer.
  if (r.w_lo != -kInfQuality) {
    EXPECT_EQ(flat.Query(s, t, r.w_lo), r.dist) << "s=" << s << " t=" << t;
    const Quality below = std::nextafter(r.w_lo, -kInfQuality);
    EXPECT_NE(flat.Query(s, t, below), r.dist)
        << "interval is not maximal below: s=" << s << " t=" << t
        << " w_lo=" << r.w_lo;
  }
  if (r.w_hi != kInfQuality) {
    EXPECT_EQ(flat.Query(s, t, r.w_hi), r.dist) << "s=" << s << " t=" << t;
    const Quality above = std::nextafter(r.w_hi, kInfQuality);
    EXPECT_NE(flat.Query(s, t, above), r.dist)
        << "interval is not maximal above: s=" << s << " t=" << t
        << " w_hi=" << r.w_hi;
  }

  // Brute force at every breakpoint: inside the interval the answer is
  // pinned; outside it must differ (the interval is one maximal constant
  // step of a non-decreasing step function).
  for (Quality probe : sweep) {
    const Distance d = flat.Query(s, t, probe);
    if (r.Contains(probe)) {
      EXPECT_EQ(d, r.dist) << "probe " << probe << " inside ["
                           << r.w_lo << ", " << r.w_hi << "] of s=" << s
                           << " t=" << t << " w=" << w;
    } else {
      EXPECT_NE(d, r.dist) << "probe " << probe << " outside ["
                           << r.w_lo << ", " << r.w_hi << "] of s=" << s
                           << " t=" << t << " w=" << w;
    }
  }
}

QualityGraph MakeIntervalGraph(size_t family, uint64_t seed) {
  Rng rng(seed * 0x51ed2701u + family);
  QualityModel quality;
  quality.num_levels = static_cast<int>(rng.NextInRange(2, 6));
  switch (family) {
    case 0: {
      RoadOptions options;
      options.rows = static_cast<size_t>(rng.NextInRange(4, 7));
      options.cols = static_cast<size_t>(rng.NextInRange(4, 7));
      options.quality = quality;
      return GenerateRoadNetwork(options, seed);
    }
    case 1:
      return GenerateBarabasiAlbert(
          static_cast<size_t>(rng.NextInRange(24, 60)),
          static_cast<size_t>(rng.NextInRange(2, 4)), quality, seed);
    case 2:
      return GenerateWattsStrogatz(
          static_cast<size_t>(rng.NextInRange(24, 60)),
          static_cast<size_t>(rng.NextInRange(1, 3)), 0.2, quality, seed);
    default:
      return GenerateRandomConnected(
          static_cast<size_t>(rng.NextInRange(24, 60)),
          static_cast<size_t>(rng.NextInRange(30, 90)), quality, seed);
  }
}

TEST(IntervalQuery, ExactOnRandomGraphs) {
  size_t checked = 0;
  for (size_t family = 0; family < 4; ++family) {
    for (uint64_t gi = 0; gi < 5; ++gi) {
      const uint64_t seed = 4200 + 10 * family + gi;
      QualityGraph g = MakeIntervalGraph(family, seed);
      const size_t n = g.NumVertices();
      WcIndex labels = WcIndex::Build(g, WcIndexOptions::Plus());
      WcIndex flat = labels;
      flat.Finalize();
      const std::vector<Quality> sweep = ProbeConstraints(g);

      Rng rng(seed ^ 0x17e2a1u);
      for (size_t qi = 0; qi < 20; ++qi) {
        Vertex s = static_cast<Vertex>(rng.NextBounded(n));
        Vertex t = static_cast<Vertex>(rng.NextBounded(n));
        Quality w = static_cast<Quality>(rng.NextInRange(0, 6)) +
                    (rng.NextBool(0.3) ? 0.5f : 0.0f);
        // Distance ground truth, independently of the label kernels.
        ASSERT_EQ(flat.QueryWithInterval(s, t, w).dist,
                  ConstrainedDijkstraUnit(g, s, t, w))
            << "family=" << family << " seed=" << seed << " s=" << s
            << " t=" << t << " w=" << w;
        CheckInterval(flat, labels, sweep, s, t, w);
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 400u);
}

// The everywhere-valid answers: s == t and out-of-range queries certify
// the full constraint axis, including +/-infinity.
TEST(IntervalQuery, DegenerateQueriesCoverTheWholeAxis) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();

  IntervalQueryResult self = index.QueryWithInterval(2, 2, 3.0f);
  EXPECT_EQ(self.dist, 0u);
  EXPECT_EQ(self.w_lo, -kInfQuality);
  EXPECT_EQ(self.w_hi, kInfQuality);
  EXPECT_TRUE(self.Contains(kInfQuality));

  IntervalQueryResult oob = index.QueryWithInterval(
      2, static_cast<Vertex>(g.NumVertices()), 1.0f);
  EXPECT_EQ(oob.dist, kInfDistance);
  EXPECT_EQ(oob.w_lo, -kInfQuality);
  EXPECT_EQ(oob.w_hi, kInfQuality);
}

// Figure 3 spot check: dist(2, 5 | w >= 2) = 2 (the paper's example), and
// the reported interval re-answers every constraint it covers.
TEST(IntervalQuery, PaperFigure3SpotCheck) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex labels = WcIndex::Build(g, WcIndexOptions::Plus());
  WcIndex flat = labels;
  flat.Finalize();
  const std::vector<Quality> sweep = ProbeConstraints(g);

  IntervalQueryResult r = flat.QueryWithInterval(2, 5, 2.0f);
  EXPECT_EQ(r.dist, 2u);
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      for (Quality w : sweep) {
        CheckInterval(flat, labels, sweep, s, t, w);
      }
    }
  }
}

}  // namespace
}  // namespace wcsd
