// Cross-cutting coverage: option presets, order dispatch, container
// negative cases, and API corners not exercised elsewhere.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "labeling/compressed_labels.h"
#include "order/hybrid_order.h"
#include "order/tree_decomposition.h"
#include "paper_fixtures.h"
#include "util/epoch_array.h"

namespace wcsd {
namespace {

TEST(OptionsPresets, BasicAndPlusDifferOnlyInConstructionPath) {
  WcIndexOptions basic = WcIndexOptions::Basic();
  WcIndexOptions plus = WcIndexOptions::Plus();
  EXPECT_EQ(basic.ordering, plus.ordering);  // Same order => same size.
  EXPECT_FALSE(basic.query_efficient);
  EXPECT_TRUE(plus.query_efficient);
  EXPECT_FALSE(basic.further_pruning);
  EXPECT_TRUE(plus.further_pruning);
}

TEST(OptionsPresets, BasicAndPlusProduceIdenticalLabels) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(80, 220, quality, 3);
  WcIndex basic = WcIndex::Build(g, WcIndexOptions::Basic());
  WcIndex plus = WcIndex::Build(g, WcIndexOptions::Plus());
  EXPECT_EQ(basic.labels(), plus.labels());
}

TEST(MakeOrderDispatch, EverySchemeYieldsValidOrder) {
  QualityGraph g = MakeFigure3Graph();
  for (auto scheme :
       {WcIndexOptions::Ordering::kDegree,
        WcIndexOptions::Ordering::kTreeDecomposition,
        WcIndexOptions::Ordering::kHybrid, WcIndexOptions::Ordering::kRandom,
        WcIndexOptions::Ordering::kIdentity}) {
    WcIndexOptions options;
    options.ordering = scheme;
    VertexOrder order = MakeOrder(g, options);
    EXPECT_TRUE(order.IsValid());
    EXPECT_EQ(order.size(), g.NumVertices());
  }
}

TEST(MakeOrderDispatch, HybridHonorsExplicitThreshold) {
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(300, 5, quality, 5);
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kHybrid;
  options.hybrid_degree_threshold = 1000;  // Nobody is core.
  VertexOrder no_core = MakeOrder(g, options);
  options.hybrid_degree_threshold = 1;     // Almost everybody is core.
  VertexOrder all_core = MakeOrder(g, options);
  EXPECT_TRUE(no_core.IsValid());
  EXPECT_TRUE(all_core.IsValid());
  EXPECT_NE(no_core.by_rank(), all_core.by_rank());
}

TEST(LabelSetNegative, IsSortedDetectsViolations) {
  LabelSet labels(2);
  auto* lv = labels.Mutable(1);
  lv->push_back({5, 1, 1.0f});
  lv->push_back({2, 1, 2.0f});  // Hub going backwards.
  EXPECT_FALSE(labels.IsSorted());

  LabelSet labels2(2);
  auto* lv2 = labels2.Mutable(1);
  lv2->push_back({2, 3, 1.0f});
  lv2->push_back({2, 1, 2.0f});  // Distance going backwards in a group.
  EXPECT_FALSE(labels2.IsSorted());
}

TEST(SubgraphCorners, MinusInfinityKeepsEverything) {
  QualityGraph g = MakeFigure3Graph();
  QualityGraph all =
      FilterByQuality(g, -std::numeric_limits<Quality>::infinity());
  EXPECT_EQ(all.NumEdges(), g.NumEdges());
}

TEST(IoCorners, HintSmallerThanMaxIdIsIgnored) {
  auto result = ParseEdgeList("0 9 1\n", /*num_vertices_hint=*/3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumVertices(), 10u);
}

TEST(IoCorners, DimacsFileRoundTripThroughEdgeList) {
  // Write DIMACS by hand, read it, re-export as an edge list, re-read.
  std::string dimacs_path = testing::TempDir() + "/mini.gr";
  {
    std::ofstream out(dimacs_path);
    out << "c tiny\np sp 3 4\na 1 2 4\na 2 1 4\na 2 3 7\na 3 2 7\n";
  }
  auto g = ReadDimacsFile(dimacs_path);
  ASSERT_TRUE(g.ok());
  std::string edges_path = testing::TempDir() + "/mini.edges";
  ASSERT_TRUE(WriteEdgeListFile(g.value(), edges_path).ok());
  auto reread = ReadEdgeListFile(edges_path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value(), g.value());
  std::remove(dimacs_path.c_str());
  std::remove(edges_path.c_str());
}

TEST(EpochArrayCorners, WorksWithStructPayload) {
  struct Pair {
    int a = -1;
    int b = -1;
    bool operator==(const Pair&) const = default;
  };
  EpochArray<Pair> arr(3, Pair{});
  arr.Set(1, Pair{4, 5});
  EXPECT_EQ(arr.Get(1), (Pair{4, 5}));
  arr.Clear();
  EXPECT_EQ(arr.Get(1), Pair{});
}

TEST(DynamicCorners, SelfLoopInsertIsNoop) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  size_t before = index.labels().TotalEntries();
  index.InsertEdge(2, 2, 9.0f);
  EXPECT_EQ(index.labels().TotalEntries(), before);
}

TEST(DynamicCorners, BatchWithDuplicatesAndSelfLoops) {
  QualityGraph g = MakeFigure3Graph();
  DynamicWcIndex index(g);
  index.InsertEdges({{0, 5, 2.0f}, {0, 5, 4.0f}, {3, 3, 9.0f}});
  // Strongest duplicate wins.
  EXPECT_EQ(index.Query(0, 5, 4.0f), 1u);
  QualityGraph snapshot = index.Snapshot();
  EXPECT_FLOAT_EQ(snapshot.EdgeQuality(0, 5), 4.0f);
}

TEST(BatchCorners, TopKWithEmptyCandidates) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  EXPECT_TRUE(TopKClosest(index, 0, {}, 1.0f, 5).empty());
}

TEST(CompressedCorners, FractionalQualityDictionary) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.125f);
  b.AddEdge(1, 2, 2.75f);
  b.AddEdge(2, 3, 0.125f);
  b.AddEdge(0, 3, 99.5f);
  QualityGraph g = b.Build();
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  EXPECT_EQ(compressed.Decompress(), index.labels());
  EXPECT_EQ(compressed.Query(0, 2, 0.125f), index.Query(0, 2, 0.125f));
  EXPECT_EQ(compressed.Query(0, 2, 2.8f), index.Query(0, 2, 2.8f));
}

TEST(TreeDecompositionCorners, OrderWithCapIsStillPermutation) {
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(300, 6, quality, 7);
  MdeOptions options;
  options.max_fill_degree = 8;
  VertexOrder order = TreeDecompositionOrder(g, options);
  EXPECT_TRUE(order.IsValid());
}

}  // namespace
}  // namespace wcsd
