// Multi-reactor server tests (per-core serving): `num_reactors = N` runs N
// epoll loops over SO_REUSEPORT listen sockets, each owning its
// connections end-to-end. The contract under test:
//   * answers are bit-identical to the single-reactor server at any N
//     (reactors share one immutable QueryService — nothing else),
//   * stats() is exactly the sum of reactor_stats() and accounts for
//     every connection and frame the clients produced,
//   * graceful drain and hot swap behave the same with N > 1.
// These tests are TSan/ASan targets: reactor counters are owned by one
// thread each and only read off-path, and the shared stopping/draining
// flags are the only cross-reactor state.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/swap_service.h"
#include "serve/query_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

struct ReactorFixture {
  QualityGraph graph;
  std::shared_ptr<const WcIndex> index;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected;
};

ReactorFixture MakeReactorFixture(size_t n, size_t m, size_t num_queries,
                                  uint64_t seed) {
  ReactorFixture f;
  QualityModel quality;
  quality.num_levels = 5;
  f.graph = GenerateRandomConnected(n, m, quality, seed);
  const QualityGraph& g = f.graph;
  WcIndex built = WcIndex::Build(g, WcIndexOptions::Plus());
  built.Finalize();
  f.index = std::make_shared<const WcIndex>(std::move(built));
  Rng rng(seed ^ 0xfeed);
  f.workload.reserve(num_queries);
  f.expected.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected.push_back(f.index->Query(q.s, q.t, q.w));
  }
  return f;
}

WcServer StartReactors(std::shared_ptr<const QueryService> service,
                       size_t num_reactors) {
  WcServerOptions options;
  options.num_reactors = num_reactors;
  auto server = WcServer::Start(std::move(service), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

// The tentpole contract: the same workload answered through 1, 2, and 4
// reactors is bit-identical to the in-process engine — the per-core
// configuration (single-threaded engine, queries inline on reactor
// threads) changes scheduling only, never answers.
TEST(Reactor, AnswersBitIdenticalAcrossReactorCounts) {
  ReactorFixture f = MakeReactorFixture(120, 320, 300, 515);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  auto service = MakeQueryService(engine);

  for (size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
    WcServer server = StartReactors(service, reactors);
    ASSERT_EQ(server.num_reactors(), reactors);

    // Several concurrent connections so the kernel has something to
    // spread; each runs both frame shapes over the whole workload.
    constexpr size_t kConns = 8;
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kConns; ++c) {
      clients.emplace_back([&] {
        auto client = WcClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        auto pipelined = client.value().QueryPipelined(f.workload, 32);
        auto batch = client.value().Batch(f.workload);
        if (!pipelined.ok() || !batch.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (pipelined.value() != f.expected ||
            batch.value() != f.expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0u) << "reactors=" << reactors;
    EXPECT_EQ(mismatches.load(), 0u) << "reactors=" << reactors;
    server.Stop();
  }
}

// stats() must be exactly the element-wise sum of reactor_stats(), and
// the sums must account for every connection and frame the clients made —
// no double counting across reactors, no lost updates.
TEST(Reactor, StatsAggregateExactlyAcrossReactors) {
  ReactorFixture f = MakeReactorFixture(80, 200, 64, 77);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  WcServer server = StartReactors(MakeQueryService(engine), 4);

  constexpr size_t kConns = 16;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kConns; ++c) {
    clients.emplace_back([&] {
      auto client = WcClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // One frame per workload query, plus one batch frame.
      auto pipelined = client.value().QueryPipelined(f.workload, 16);
      auto batch = client.value().Batch(f.workload);
      if (!pipelined.ok() || !batch.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0u);

  const std::vector<WcReactorStats> per_reactor = server.reactor_stats();
  ASSERT_EQ(per_reactor.size(), 4u);
  WcReactorStats sum;
  for (const WcReactorStats& r : per_reactor) {
    sum.connections_accepted += r.connections_accepted;
    sum.connections_closed += r.connections_closed;
    sum.frames_served += r.frames_served;
    sum.protocol_errors += r.protocol_errors;
  }
  const WcServerStats total = server.stats();
  EXPECT_EQ(total.connections_accepted, sum.connections_accepted);
  EXPECT_EQ(total.connections_closed, sum.connections_closed);
  EXPECT_EQ(total.frames_served, sum.frames_served);
  EXPECT_EQ(total.protocol_errors, sum.protocol_errors);

  // Client-side accounting: every connection and every frame lands in
  // exactly one reactor's counters.
  EXPECT_EQ(sum.connections_accepted, kConns);
  EXPECT_EQ(sum.frames_served, kConns * (f.workload.size() + 1));
  EXPECT_EQ(sum.protocol_errors, 0u);
  server.Stop();
}

// Graceful drain with several reactors: every reactor stops accepting,
// existing connections finish, and Drain() returns with all of them
// closed.
TEST(Reactor, DrainStopsAllReactors) {
  ReactorFixture f = MakeReactorFixture(60, 150, 32, 909);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = std::make_shared<const QueryEngine>(f.index, options);
  WcServer server = StartReactors(MakeQueryService(engine), 2);

  // Touch the server from a few connections first so more than one
  // reactor has likely seen traffic.
  for (int c = 0; c < 4; ++c) {
    auto client = WcClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto batch = client.value().Batch(f.workload);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch.value(), f.expected);
  }

  server.Drain();
  const WcServerStats stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);

  // No reactor accepts after drain: connects are refused or die on first
  // use (a racing accept queue entry may still let connect(2) succeed).
  auto late = WcClient::Connect("127.0.0.1", server.port(), 500);
  if (late.ok()) {
    auto q = late.value().Query(0, 1, 1.0f);
    EXPECT_FALSE(q.ok());
  }
  server.Stop();
}

// Hot swap behind a multi-reactor server: all reactors route through the
// shared SwappableQueryService, so every answer matches one of the two
// generations no matter which reactor served it.
TEST(Reactor, SwapUnderMultiReactorLoad) {
  ReactorFixture f = MakeReactorFixture(100, 260, 160, 1313);
  // Generation B = A plus one shortcut edge at the top quality level.
  DynamicWcIndex dynamic(f.graph, WcIndexOptions::Plus());
  dynamic.InsertEdge(0, static_cast<Vertex>(f.index->NumVertices() - 1),
                     static_cast<Quality>(5));
  WcIndex built_b = WcIndex::Build(dynamic.Snapshot(), WcIndexOptions::Plus());
  built_b.Finalize();
  auto index_b = std::make_shared<const WcIndex>(std::move(built_b));
  std::vector<Distance> expected_b;
  expected_b.reserve(f.workload.size());
  for (const BatchQueryInput& q : f.workload) {
    expected_b.push_back(index_b->Query(q.s, q.t, q.w));
  }

  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine_a = std::make_shared<const QueryEngine>(f.index, options);
  auto engine_b = std::make_shared<const QueryEngine>(index_b, options);
  auto service_a = MakeQueryService(engine_a);
  auto service_b = MakeQueryService(engine_b);
  auto swappable = std::make_shared<SwappableQueryService>(service_a);
  WcServer server = StartReactors(swappable, 2);

  constexpr int kSwaps = 100;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_answers{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      auto client = WcClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0x5eac + static_cast<uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        auto d = client.value().Query(q.s, q.t, q.w);
        if (!d.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (d.value() != f.expected[i] && d.value() != expected_b[i]) {
          bad_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int s = 0; s < kSwaps; ++s) {
    swappable->Swap(s % 2 == 0 ? service_b : service_a);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(bad_answers.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
  server.Stop();
}

}  // namespace
}  // namespace wcsd
