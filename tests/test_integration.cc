// Cross-module integration tests: on shared road/social datasets every
// implemented method — online searches, Naïve, LCR-adapt, WC-INDEX under
// all orderings — must agree on the same query workload.

#include <gtest/gtest.h>

#include "bench/datasets.h"
#include "bench/workload.h"
#include "core/wc_index.h"
#include "labeling/lcr_adapt.h"
#include "labeling/naive_index.h"
#include "search/constrained_dijkstra.h"
#include "search/partitioned_bfs.h"
#include "search/wc_bfs.h"

namespace wcsd {
namespace {

class IntegrationTest : public testing::TestWithParam<const char*> {
 protected:
  static constexpr double kScale = 0.02;  // Keep graphs test-sized.

  Dataset MakeDataset() const {
    std::string name = GetParam();
    for (const std::string& road : RoadDatasetNames()) {
      if (name == road) return MakeRoadDataset(name, kScale);
    }
    return MakeSocialDataset(name, kScale);
  }
};

TEST_P(IntegrationTest, AllMethodsAgree) {
  Dataset dataset = MakeDataset();
  const QualityGraph& g = dataset.graph;
  auto workload = MakeQueryWorkload(g, 250, 42);

  WcBfs c_bfs(&g);
  PartitionedBfs w_bfs(g);
  PartitionedDijkstra dijkstra(g);
  auto naive = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(naive.ok());
  LcrAdaptIndex lcr = LcrAdaptIndex::Build(g);
  WcIndex wc_basic = WcIndex::Build(g, WcIndexOptions::Basic());
  WcIndex wc_plus = WcIndex::Build(g, WcIndexOptions::Plus());
  WcIndexOptions tree;
  tree.ordering = WcIndexOptions::Ordering::kTreeDecomposition;
  WcIndex wc_tree = WcIndex::Build(g, tree);

  for (const WcsdQuery& q : workload) {
    Distance expected = c_bfs.Query(q.s, q.t, q.w);
    ASSERT_EQ(w_bfs.Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(dijkstra.Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(naive.value().Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(lcr.Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(wc_basic.Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(wc_plus.Query(q.s, q.t, q.w), expected);
    ASSERT_EQ(wc_tree.Query(q.s, q.t, q.w), expected);
  }
}

TEST_P(IntegrationTest, IndexSizeOrderingHolds) {
  // The headline size result: one WC-INDEX is (weakly) smaller than |w|
  // separate PLLs, and WC-INDEX / WC-INDEX+ sizes coincide (§VI Exp 2:
  // "WC-INDEX and WC-INDEX+ could achieve the same index size" — with the
  // same ordering; here both use the degree order for the comparison).
  Dataset dataset = MakeDataset();
  const QualityGraph& g = dataset.graph;
  auto naive = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(naive.ok());

  WcIndexOptions basic = WcIndexOptions::Basic();
  WcIndexOptions fast = WcIndexOptions::Basic();
  fast.query_efficient = true;
  fast.further_pruning = true;
  WcIndex wc_basic = WcIndex::Build(g, basic);
  WcIndex wc_fast = WcIndex::Build(g, fast);

  EXPECT_EQ(wc_basic.MemoryBytes(), wc_fast.MemoryBytes());
  EXPECT_EQ(wc_basic.TotalEntries(), wc_fast.TotalEntries());
  EXPECT_LT(wc_basic.MemoryBytes(), naive.value().MemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         testing::Values("NY", "FLA", "MV-10", "EU", "SO-Y"));

}  // namespace
}  // namespace wcsd
