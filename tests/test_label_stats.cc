// Label-statistics tests.

#include <gtest/gtest.h>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/label_stats.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

TEST(LabelStatsTest, HandBuiltCounts) {
  LabelSet labels(4);
  labels.Append(0, {0, 0, kInfQuality});
  labels.Append(1, {0, 1, 1.0f});
  labels.Append(1, {0, 2, 2.0f});
  labels.Append(1, {1, 0, kInfQuality});
  labels.Append(2, {0, 1, 3.0f});
  // Vertex 3 empty.
  LabelStats stats = ComputeLabelStats(labels);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.total_entries, 5u);
  EXPECT_EQ(stats.max_label, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_label, 1.25);
  EXPECT_EQ(stats.hub_groups, 4u);  // (0,h0) (1,h0) (1,h1) (2,h0)
  EXPECT_DOUBLE_EQ(stats.mean_entries_per_group, 1.25);
}

TEST(LabelStatsTest, PaperExampleTotals) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  LabelStats stats = ComputeLabelStats(index.labels());
  EXPECT_EQ(stats.total_entries, 32u);  // Table II
  EXPECT_EQ(stats.max_label, 11u);      // L(v5)
  EXPECT_GT(stats.mean_entries_per_group, 1.0);  // Quality multiplies groups.
}

TEST(LabelStatsTest, EmptySet) {
  LabelStats stats = ComputeLabelStats(LabelSet(0));
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_EQ(stats.total_entries, 0u);
}

TEST(LabelStatsTest, TopHubShareInUnitRange) {
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(600, 5, quality, 3);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  LabelStats stats = ComputeLabelStats(index.labels());
  EXPECT_GT(stats.top1pct_hub_share, 0.0);
  EXPECT_LE(stats.top1pct_hub_share, 1.0);
  // Scale-free + hybrid order: the top hubs carry a large share.
  EXPECT_GT(stats.top1pct_hub_share, 0.05);
}

TEST(LabelStatsTest, HistogramCoversAllVertices) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(300, 700, quality, 5);
  WcIndex index = WcIndex::Build(g);
  auto histogram = LabelSizeHistogram(index.labels());
  size_t covered = 0;
  for (size_t count : histogram) covered += count;
  EXPECT_EQ(covered, 300u);
}

TEST(LabelStatsTest, SummaryNonEmpty) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  EXPECT_FALSE(ComputeLabelStats(index.labels()).Summary().empty());
}

}  // namespace
}  // namespace wcsd
