// Unit tests for the utility kit.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/bucket_queue.h"
#include "util/epoch_array.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace wcsd {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) diverged |= (a.Next() != b.Next());
  EXPECT_TRUE(diverged);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextInRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(EpochArray, DefaultsBeforeWrite) {
  EpochArray<int> arr(4, -1);
  EXPECT_EQ(arr.Get(0), -1);
  EXPECT_FALSE(arr.Contains(0));
}

TEST(EpochArray, SetAndGet) {
  EpochArray<int> arr(4, -1);
  arr.Set(2, 42);
  EXPECT_EQ(arr.Get(2), 42);
  EXPECT_TRUE(arr.Contains(2));
  EXPECT_EQ(arr.Get(1), -1);
}

TEST(EpochArray, ClearResetsLogically) {
  EpochArray<int> arr(4, 0);
  arr.Set(1, 5);
  arr.Clear();
  EXPECT_EQ(arr.Get(1), 0);
  EXPECT_FALSE(arr.Contains(1));
  arr.Set(1, 7);
  EXPECT_EQ(arr.Get(1), 7);
}

TEST(EpochArray, ManyClearsStayCorrect) {
  EpochArray<int> arr(2, 0);
  for (int round = 0; round < 10000; ++round) {
    arr.Set(0, round);
    EXPECT_EQ(arr.Get(0), round);
    arr.Clear();
    EXPECT_EQ(arr.Get(0), 0);
  }
}

TEST(BucketQueue, PopsInKeyOrder) {
  BucketQueue q(5);
  q.Push(0, 3);
  q.Push(1, 1);
  q.Push(2, 2);
  EXPECT_EQ(q.PopMin(), 1u);
  EXPECT_EQ(q.PopMin(), 2u);
  EXPECT_EQ(q.PopMin(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueue, UpdateKeyTakesEffect) {
  BucketQueue q(3);
  q.Push(0, 5);
  q.Push(1, 4);
  q.Push(0, 1);  // Decrease 0's key below 1's.
  EXPECT_EQ(q.PopMin(), 0u);
  EXPECT_EQ(q.PopMin(), 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueue, EraseRemoves) {
  BucketQueue q(3);
  q.Push(0, 1);
  q.Push(1, 2);
  q.Erase(0);
  EXPECT_EQ(q.PopMin(), 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueue, MinBucketCanMoveDown) {
  BucketQueue q(4);
  q.Push(0, 10);
  EXPECT_EQ(q.PopMin(), 0u);
  q.Push(1, 2);  // Below the previously scanned minimum.
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.PopMin(), 1u);
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "x", "--gamma"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("beta", ""), "x");
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.Has("delta"));
  EXPECT_EQ(flags.GetInt("delta", -7), -7);
}

TEST(Flags, ParsesDoublesAndBools) {
  const char* argv[] = {"prog", "--scale=0.5", "--verbose=false"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose", true));
}

TEST(Stats, SummaryOfKnownSample) {
  SampleStats s = Summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, EmptySampleIsZero) {
  SampleStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, HumanBytesUnits) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MB");
}

TEST(Stats, HumanSecondsUnits) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(HumanSeconds(0.012), "12.00 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 5);
  Result<int> err_result(Status::NotFound("nope"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Timer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.Restart();
  EXPECT_GE(t.Micros(), 0.0);
}

}  // namespace
}  // namespace wcsd
