// Online search tests: WC-BFS (Algorithm 1), partitioned W-BFS, the
// Dijkstra baselines, and the dominance-frontier oracles.

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.h"
#include "graph/subgraph.h"
#include "search/constrained_dijkstra.h"
#include "search/pareto_enumerator.h"
#include "search/partitioned_bfs.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(WcBfsTest, Figure3KnownDistances) {
  QualityGraph g = MakeFigure3Graph();
  WcBfs bfs(&g);
  EXPECT_EQ(bfs.Query(0, 4, 1.0f), 2u);   // v0-v3-v4
  EXPECT_EQ(bfs.Query(0, 4, 2.0f), 3u);   // v0-v1-v3-v4
  EXPECT_EQ(bfs.Query(0, 4, 3.0f), 4u);   // v0-v1-v2-v3-v4
  EXPECT_EQ(bfs.Query(0, 4, 4.0f), kInfDistance);
  EXPECT_EQ(bfs.Query(1, 3, 2.0f), 1u);
  EXPECT_EQ(bfs.Query(2, 5, 2.0f), 2u);
}

TEST(WcBfsTest, SourceEqualsTarget) {
  QualityGraph g = MakeFigure3Graph();
  WcBfs bfs(&g);
  EXPECT_EQ(bfs.Query(3, 3, 99.0f), 0u);
}

TEST(WcBfsTest, ReusableAcrossQueries) {
  QualityGraph g = MakeFigure3Graph();
  WcBfs bfs(&g);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(bfs.Query(0, 4, 1.0f), 2u);
    EXPECT_EQ(bfs.Query(0, 4, 4.0f), kInfDistance);
  }
}

TEST(WcBfsTest, AllDistancesMatchesPointQueries) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(60, 140, quality, 3);
  WcBfs bfs(&g);
  for (Quality w : {1.0f, 3.0f, 5.0f}) {
    auto all = bfs.AllDistances(7, w);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(all[t], bfs.Query(7, t, w)) << "t=" << t << " w=" << w;
    }
  }
}

TEST(WcBfsTest, Reachable) {
  QualityGraph g = MakeFigure3Graph();
  WcBfs bfs(&g);
  EXPECT_TRUE(bfs.Reachable(0, 5, 2.0f));
  EXPECT_FALSE(bfs.Reachable(0, 5, 4.0f));
}

TEST(PartitionedBfsTest, AgreesWithConstrainedBfs) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(80, 200, quality, 11);
  PartitionedBfs partitioned(g);
  WcBfs direct(&g);
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(80));
    Vertex t = static_cast<Vertex>(rng.NextBounded(80));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    EXPECT_EQ(partitioned.Query(s, t, w), direct.Query(s, t, w))
        << s << "->" << t << " w=" << w;
  }
}

TEST(PartitionedBfsTest, NonIntegerConstraintRoundsUp) {
  QualityGraph g = MakeFigure3Graph();
  PartitionedBfs partitioned(g);
  WcBfs direct(&g);
  // 1.5 behaves like 2 (no edge quality strictly between).
  EXPECT_EQ(partitioned.Query(0, 4, 1.5f), direct.Query(0, 4, 1.5f));
  EXPECT_EQ(partitioned.Query(0, 4, 1.5f), direct.Query(0, 4, 2.0f));
}

TEST(PartitionedBfsTest, AboveMaxQualityIsInf) {
  QualityGraph g = MakeFigure3Graph();
  PartitionedBfs partitioned(g);
  EXPECT_EQ(partitioned.Query(0, 4, 99.0f), kInfDistance);
  EXPECT_EQ(partitioned.Query(2, 2, 99.0f), 0u);
}

TEST(PartitionedBfsTest, MemoryGrowsWithLevels) {
  QualityGraph g = MakeFigure3Graph();
  PartitionedBfs partitioned(g);
  EXPECT_GT(partitioned.MemoryBytes(), g.MemoryBytes());
}

TEST(DijkstraBaselineTest, UnitAgreesWithBfs) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(70, 180, quality, 17);
  WcBfs bfs(&g);
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(70));
    Vertex t = static_cast<Vertex>(rng.NextBounded(70));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    EXPECT_EQ(ConstrainedDijkstraUnit(g, s, t, w), bfs.Query(s, t, w));
  }
}

TEST(DijkstraBaselineTest, PartitionedAgreesWithBfs) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(70, 180, quality, 23);
  PartitionedDijkstra dijkstra(g);
  WcBfs bfs(&g);
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(70));
    Vertex t = static_cast<Vertex>(rng.NextBounded(70));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    EXPECT_EQ(dijkstra.Query(s, t, w), bfs.Query(s, t, w));
  }
}

TEST(WeightedDijkstraTest, HandPickedWeightedPaths) {
  // 0 -2/q5- 1 -2/q5- 2   and direct 0 -3/q1- 2.
  WeightedQualityGraph g = WeightedQualityGraph::FromEdges(
      3, {{0, 1, 2, 5.0f}, {1, 2, 2, 5.0f}, {0, 2, 3, 1.0f}});
  EXPECT_EQ(ConstrainedDijkstraWeighted(g, 0, 2, 1.0f), 3u);
  EXPECT_EQ(ConstrainedDijkstraWeighted(g, 0, 2, 2.0f), 4u);
  EXPECT_EQ(ConstrainedDijkstraWeighted(g, 0, 2, 6.0f), kInfDistance);
  EXPECT_EQ(ConstrainedDijkstraWeighted(g, 1, 1, 9.0f), 0u);
}

TEST(WeightedDijkstraTest, AllDistancesConsistent) {
  QualityModel quality;
  WeightedQualityGraph g = GenerateRandomWeighted(50, 120, 7, quality, 31);
  auto all = ConstrainedDijkstraWeightedAll(g, 4, 2.0f);
  for (Vertex t = 0; t < g.NumVertices(); ++t) {
    EXPECT_EQ(all[t], ConstrainedDijkstraWeighted(g, 4, t, 2.0f));
  }
}

TEST(ParetoOracleTest, Figure3FrontierV0V4) {
  QualityGraph g = MakeFigure3Graph();
  // Frontier for (v0, v4): (2, q1), (3, q2), (4, q3) — matches L(v4)'s
  // hub-v0 entries in Table II.
  auto frontier = ParetoFrontier(g, 0, 4);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0], (FrontierPoint{2, 1.0f}));
  EXPECT_EQ(frontier[1], (FrontierPoint{3, 2.0f}));
  EXPECT_EQ(frontier[2], (FrontierPoint{4, 3.0f}));
}

TEST(ParetoOracleTest, SweepMatchesExhaustiveEnumeration) {
  QualityModel quality;
  quality.num_levels = 4;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    QualityGraph g = GenerateRandomConnected(9, 16, quality, seed);
    for (Vertex s = 0; s < 9; ++s) {
      for (Vertex t = 0; t < 9; ++t) {
        if (s == t) continue;
        EXPECT_EQ(ParetoFrontier(g, s, t),
                  EnumerateSimplePathProfile(g, s, t))
            << "seed=" << seed << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ParetoOracleTest, DisconnectedPairIsEmpty) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(2, 3, 1.0f);
  QualityGraph g = b.Build();
  EXPECT_TRUE(ParetoFrontier(g, 0, 3).empty());
}

}  // namespace
}  // namespace wcsd
