// Directed WC-INDEX tests (§V): agreement with a directed constrained-BFS
// oracle, asymmetry handling, and the undirected-equivalence sanity check.

#include <gtest/gtest.h>

#include "core/directed_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "util/epoch_array.h"
#include "util/random.h"

namespace wcsd {
namespace {

// Directed constrained-BFS oracle over out-arcs.
Distance DirectedOracle(const DirectedQualityGraph& g, Vertex s, Vertex t,
                        Quality w) {
  if (s == t) return 0;
  std::vector<bool> visited(g.NumVertices(), false);
  std::vector<Vertex> queue{s};
  visited[s] = true;
  Distance d = 0;
  size_t begin = 0;
  while (begin < queue.size()) {
    size_t end = queue.size();
    ++d;
    for (size_t i = begin; i < end; ++i) {
      for (const Arc& a : g.OutNeighbors(queue[i])) {
        if (a.quality < w || visited[a.to]) continue;
        if (a.to == t) return d;
        visited[a.to] = true;
        queue.push_back(a.to);
      }
    }
    begin = end;
  }
  return kInfDistance;
}

TEST(DirectedWcIndexTest, HandBuiltAsymmetricGraph) {
  // 0 -> 1 (q5), 1 -> 2 (q5), 2 -> 0 (q1): a quality-asymmetric cycle.
  DirectedQualityGraph g = DirectedQualityGraph::FromEdges(
      3, {{0, 1, 5.0f}, {1, 2, 5.0f}, {2, 0, 1.0f}});
  DirectedWcIndex index = DirectedWcIndex::Build(g);
  EXPECT_EQ(index.Query(0, 2, 5.0f), 2u);
  EXPECT_EQ(index.Query(2, 0, 1.0f), 1u);
  EXPECT_EQ(index.Query(2, 0, 2.0f), kInfDistance);
  EXPECT_EQ(index.Query(2, 1, 1.0f), 2u);
  EXPECT_EQ(index.Query(1, 0, 5.0f), kInfDistance);
  EXPECT_EQ(index.Query(1, 1, 9.0f), 0u);
}

TEST(DirectedWcIndexTest, OneWayChain) {
  DirectedQualityGraph g = DirectedQualityGraph::FromEdges(
      4, {{0, 1, 2.0f}, {1, 2, 3.0f}, {2, 3, 1.0f}});
  DirectedWcIndex index = DirectedWcIndex::Build(g);
  EXPECT_EQ(index.Query(0, 3, 1.0f), 3u);
  EXPECT_EQ(index.Query(0, 2, 2.0f), 2u);
  EXPECT_EQ(index.Query(3, 0, 1.0f), kInfDistance);  // No reverse arcs.
  EXPECT_EQ(index.Query(0, 3, 2.0f), kInfDistance);  // (2,3) too weak.
}

class DirectedPropertyTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, int, uint64_t>> {
};

TEST_P(DirectedPropertyTest, MatchesOracleOnRandomDigraphs) {
  auto [n, arcs, levels, seed] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  DirectedQualityGraph g = GenerateRandomDirected(n, arcs, quality, seed);
  DirectedWcIndex index = DirectedWcIndex::Build(g);
  Rng rng(seed + 3);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, levels + 1));
    ASSERT_EQ(index.Query(s, t, w), DirectedOracle(g, s, t, w))
        << s << "->" << t << " w=" << w << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectedPropertyTest,
    testing::Values(std::make_tuple(30, 120, 3, 1),
                    std::make_tuple(50, 250, 5, 2),
                    std::make_tuple(80, 320, 8, 3),
                    std::make_tuple(120, 360, 2, 4),
                    std::make_tuple(60, 600, 4, 5)));

TEST(DirectedWcIndexTest, SymmetricDigraphMatchesUndirectedIndex) {
  // Every edge in both directions with equal quality: directed and
  // undirected answers must coincide.
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph u = GenerateRandomConnected(60, 150, quality, 7);
  std::vector<std::tuple<Vertex, Vertex, Quality>> arcs;
  for (Vertex v = 0; v < u.NumVertices(); ++v) {
    for (const Arc& a : u.Neighbors(v)) arcs.emplace_back(v, a.to, a.quality);
  }
  DirectedQualityGraph d =
      DirectedQualityGraph::FromEdges(u.NumVertices(), arcs);
  DirectedWcIndex directed = DirectedWcIndex::Build(d);
  WcIndex undirected = WcIndex::Build(u);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(60));
    Vertex t = static_cast<Vertex>(rng.NextBounded(60));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    ASSERT_EQ(directed.Query(s, t, w), undirected.Query(s, t, w));
  }
}

TEST(DirectedWcIndexTest, LabelsSortedBothSides) {
  QualityModel quality;
  DirectedQualityGraph g = GenerateRandomDirected(80, 400, quality, 11);
  DirectedWcIndex index = DirectedWcIndex::Build(g);
  EXPECT_TRUE(index.in_labels().IsSorted());
  EXPECT_TRUE(index.out_labels().IsSorted());
  EXPECT_GT(index.TotalEntries(), 0u);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace wcsd
