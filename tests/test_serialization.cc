// Serialization tests: LabelSet and WcIndex round trips plus corruption
// handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/label_set.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(LabelSetSerialization, RoundTrip) {
  LabelSet labels(3);
  labels.Append(0, {0, 0, kInfQuality});
  labels.Append(1, {0, 2, 1.5f});
  labels.Append(1, {0, 3, 2.5f});
  labels.Append(1, {1, 0, kInfQuality});
  std::string path = TempPath("labels.bin");
  ASSERT_TRUE(labels.Save(path).ok());
  auto loaded = LabelSet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), labels);
  std::remove(path.c_str());
}

TEST(LabelSetSerialization, BadMagicRejected) {
  std::string path = TempPath("bad_labels.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes here";
  }
  auto loaded = LabelSet::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(WcIndexSerialization, RoundTripPreservesQueries) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(100, 260, quality, 3);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  std::string path = TempPath("index.bin");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = WcIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().TotalEntries(), index.TotalEntries());
  EXPECT_EQ(loaded.value().order().by_rank(), index.order().by_rank());
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(100));
    Vertex t = static_cast<Vertex>(rng.NextBounded(100));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    ASSERT_EQ(loaded.value().Query(s, t, w), index.Query(s, t, w));
  }
  std::remove(path.c_str());
}

TEST(WcIndexSerialization, PaperExampleRoundTrip) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  std::string path = TempPath("fig3_index.bin");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = WcIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Query(2, 5, 2.0f), 2u);
  EXPECT_EQ(loaded.value().TotalEntries(), 32u);
  std::remove(path.c_str());
}

TEST(WcIndexSerialization, TruncatedFileRejected) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  std::string path = TempPath("trunc_index.bin");
  ASSERT_TRUE(index.Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 8));
  }
  auto loaded = WcIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(WcIndexSerialization, MissingFileIsIoError) {
  auto loaded = WcIndex::Load("/does/not/exist.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// A corrupted count field must fail with Corruption before any allocation
// is attempted — not crash with std::bad_alloc.
TEST(WcIndexSerialization, AbsurdVertexCountRejectedCleanly) {
  std::string path = TempPath("huge_n.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t magic = 0x57435344'494e4458ULL;  // kIndexMagic
    uint64_t n = uint64_t{1} << 60;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  }
  auto loaded = WcIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(WcIndexSerialization, AbsurdLabelCountRejectedCleanly) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  std::string path = TempPath("huge_count.bin");
  ASSERT_TRUE(index.Save(path).ok());
  {
    // Overwrite vertex 0's entry count (right after the header and the
    // n * u32 order block) with an absurd value.
    std::fstream patch(path,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(static_cast<std::streamoff>(
        sizeof(uint64_t) * 2 + index.NumVertices() * sizeof(Vertex)));
    uint64_t count = uint64_t{1} << 59;
    patch.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  auto loaded = WcIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(LabelSetSerialization, AbsurdCountsRejectedCleanly) {
  std::string path = TempPath("huge_labels.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t magic = 0x57435344'4c41424cULL;  // kLabelMagic
    uint64_t n = uint64_t{1} << 61;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  }
  auto loaded = LabelSet::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcsd
