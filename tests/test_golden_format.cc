// Golden-file regression for the on-disk formats.
//
// tests/data holds a checked-in .wcx index and .wcsnap snapshot of the
// paper's Figure 3 graph built with the identity order — a fully
// deterministic fixture. Loading them pins semantic compatibility (old
// files must keep producing the paper's answers), and re-serializing and
// byte-comparing pins the writers: any accidental format change — field
// width, endianness, ordering, padding — fails here before it can corrupt
// anyone's saved indexes. Deliberate format changes must bump the version
// and regenerate the goldens (see tests/data/README.md).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/wc_index.h"
#include "labeling/snapshot.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(WCSD_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void ExpectPaperAnswers(const WcIndex& index) {
  // Spot checks from the paper's Figure 3 worked example.
  EXPECT_EQ(index.TotalEntries(), 32u);
  EXPECT_EQ(index.Query(2, 5, 2.0f), 2u);
  QualityGraph g = MakeFigure3Graph();
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(index.Query(s, t, 1.0f), index.Query(t, s, 1.0f));
    }
  }
}

TEST(GoldenFormat, WcxLoadsAndAnswers) {
  auto loaded = WcIndex::Load(GoldenPath("fig3_golden.wcx"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPaperAnswers(loaded.value());
}

TEST(GoldenFormat, WcxWriterIsByteStable) {
  std::string golden = GoldenPath("fig3_golden.wcx");
  auto loaded = WcIndex::Load(golden);
  ASSERT_TRUE(loaded.ok());
  std::string resaved = testing::TempDir() + "/fig3_resave.wcx";
  ASSERT_TRUE(loaded.value().Save(resaved).ok());
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(golden))
      << "the .wcx writer no longer produces the golden bytes — if the "
         "format changed deliberately, regenerate tests/data";
  std::remove(resaved.c_str());
}

TEST(GoldenFormat, SnapshotLoadsAndAnswers) {
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.deep_validate = true;
  auto loaded = WcIndex::LoadMmap(GoldenPath("fig3_golden.wcsnap"), verify);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPaperAnswers(loaded.value());
}

TEST(GoldenFormat, SnapshotWriterIsByteStable) {
  std::string golden = GoldenPath("fig3_golden.wcsnap");
  auto loaded = WcIndex::LoadMmap(golden);
  ASSERT_TRUE(loaded.ok());
  std::string resaved = testing::TempDir() + "/fig3_resave.wcsnap";
  ASSERT_TRUE(loaded.value().SaveSnapshot(resaved).ok());
  EXPECT_EQ(ReadFileBytes(resaved), ReadFileBytes(golden))
      << "the snapshot writer no longer produces the golden bytes — if the "
         "format changed deliberately, bump kSnapshotVersion and regenerate "
         "tests/data";
  std::remove(resaved.c_str());
}

TEST(GoldenFormat, GoldenMatchesFreshBuild) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex fresh = WcIndex::Build(g, options);
  auto golden = WcIndex::Load(GoldenPath("fig3_golden.wcx"));
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(golden.value().labels(), fresh.labels());
  EXPECT_EQ(golden.value().order().by_rank(), fresh.order().by_rank());
}

}  // namespace
}  // namespace wcsd
