// Weighted WC-INDEX tests (§V): agreement with constrained Dijkstra, and
// unit-length equivalence with the unweighted index.

#include <gtest/gtest.h>

#include "core/weighted_wc_index.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "search/constrained_dijkstra.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(WeightedWcIndexTest, HandBuiltWeightedGraph) {
  // Two routes 0 -> 2: short but weak (len 3, q1) vs long but strong
  // (len 4 = 2+2, q5).
  WeightedQualityGraph g = WeightedQualityGraph::FromEdges(
      3, {{0, 1, 2, 5.0f}, {1, 2, 2, 5.0f}, {0, 2, 3, 1.0f}});
  WeightedWcIndex index = WeightedWcIndex::Build(g);
  EXPECT_EQ(index.Query(0, 2, 1.0f), 3u);
  EXPECT_EQ(index.Query(0, 2, 2.0f), 4u);
  EXPECT_EQ(index.Query(0, 2, 6.0f), kInfDistance);
  EXPECT_EQ(index.Query(1, 1, 9.0f), 0u);
}

class WeightedPropertyTest
    : public testing::TestWithParam<
          std::tuple<size_t, size_t, Distance, int, uint64_t>> {};

TEST_P(WeightedPropertyTest, MatchesConstrainedDijkstra) {
  auto [n, m, max_len, levels, seed] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  WeightedQualityGraph g =
      GenerateRandomWeighted(n, m, max_len, quality, seed);
  WeightedWcIndex index = WeightedWcIndex::Build(g);
  Rng rng(seed + 9);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, levels + 1));
    ASSERT_EQ(index.Query(s, t, w), ConstrainedDijkstraWeighted(g, s, t, w))
        << s << "->" << t << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedPropertyTest,
    testing::Values(std::make_tuple(30, 70, 5, 3, 1),
                    std::make_tuple(50, 120, 9, 5, 2),
                    std::make_tuple(80, 240, 3, 8, 3),
                    std::make_tuple(120, 300, 13, 2, 4),
                    std::make_tuple(70, 280, 1, 6, 5)));

TEST(WeightedWcIndexTest, UnitLengthsMatchUnweightedIndex) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph u = GenerateRandomConnected(80, 200, quality, 7);
  std::vector<std::tuple<Vertex, Vertex, Distance, Quality>> edges;
  for (Vertex v = 0; v < u.NumVertices(); ++v) {
    for (const Arc& a : u.Neighbors(v)) {
      if (v < a.to) edges.emplace_back(v, a.to, 1, a.quality);
    }
  }
  WeightedQualityGraph w_graph =
      WeightedQualityGraph::FromEdges(u.NumVertices(), edges);
  WeightedWcIndex weighted = WeightedWcIndex::Build(w_graph);
  WcIndex unweighted = WcIndex::Build(u);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(80));
    Vertex t = static_cast<Vertex>(rng.NextBounded(80));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    ASSERT_EQ(weighted.Query(s, t, w), unweighted.Query(s, t, w));
  }
}

TEST(WeightedWcIndexTest, LabelsSortedAndMonotone) {
  QualityModel quality;
  quality.num_levels = 6;
  WeightedQualityGraph g = GenerateRandomWeighted(100, 260, 7, quality, 13);
  WeightedWcIndex index = WeightedWcIndex::Build(g);
  EXPECT_TRUE(index.labels().IsSorted());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto lv = index.labels().For(v);
    for (size_t i = 1; i < lv.size(); ++i) {
      if (lv[i - 1].hub != lv[i].hub) continue;
      // Theorem 3 carries over to weighted construction.
      EXPECT_LT(lv[i - 1].dist, lv[i].dist);
      EXPECT_LT(lv[i - 1].quality, lv[i].quality);
    }
  }
}

}  // namespace
}  // namespace wcsd
