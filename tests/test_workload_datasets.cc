// Bench-support tests: dataset registry shapes, workload generation, and
// harness formatting.

#include <gtest/gtest.h>

#include "bench/datasets.h"
#include "bench/harness.h"
#include "bench/workload.h"
#include "search/wc_bfs.h"

namespace wcsd {
namespace {

TEST(DatasetsTest, RoadFamilyNamesAndMonotoneSizes) {
  const auto& names = RoadDatasetNames();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "NY");
  EXPECT_EQ(names.back(), "CTR");
  size_t prev = 0;
  for (const std::string& name : names) {
    Dataset d = MakeRoadDataset(name, /*scale=*/0.05);
    EXPECT_GT(d.graph.NumVertices(), prev) << name;
    prev = d.graph.NumVertices();
    EXPECT_EQ(d.num_qualities, 5);
  }
}

TEST(DatasetsTest, RoadCustomQualities) {
  Dataset d = MakeRoadDataset("NY", 0.1, 20);
  EXPECT_EQ(d.num_qualities, 20);
  EXPECT_LE(d.graph.DistinctQualities().size(), 20u);
  EXPECT_GE(d.graph.DistinctQualities().size(), 10u);
}

TEST(DatasetsTest, SocialFamilyMatchesTableIV) {
  const auto& names = SocialDatasetNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(MakeSocialDataset("MV-10", 0.05).num_qualities, 5);
  EXPECT_EQ(MakeSocialDataset("EU", 0.05).num_qualities, 3);
  EXPECT_EQ(MakeSocialDataset("SO-Y", 0.05).num_qualities, 9);
}

TEST(DatasetsTest, DeterministicAcrossCalls) {
  Dataset a = MakeRoadDataset("NY", 0.05);
  Dataset b = MakeRoadDataset("NY", 0.05);
  EXPECT_EQ(a.graph, b.graph);
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(MakeRoadDataset("NOPE"), std::invalid_argument);
  EXPECT_THROW(MakeSocialDataset("NOPE"), std::invalid_argument);
}

TEST(DatasetsTest, RoadConnected) {
  Dataset d = MakeRoadDataset("NY", 0.05);
  WcBfs bfs(&d.graph);
  auto dist = bfs.AllDistances(0, -1e30f);
  for (Distance x : dist) EXPECT_NE(x, kInfDistance);
}

TEST(WorkloadTest, DeterministicAndInRange) {
  Dataset d = MakeSocialDataset("EU", 0.05);
  auto a = MakeQueryWorkload(d.graph, 500, 7);
  auto b = MakeQueryWorkload(d.graph, 500, 7);
  ASSERT_EQ(a.size(), 500u);
  auto thresholds = d.graph.DistinctQualities();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].w, b[i].w);
    EXPECT_LT(a[i].s, d.graph.NumVertices());
    EXPECT_LT(a[i].t, d.graph.NumVertices());
    EXPECT_TRUE(std::find(thresholds.begin(), thresholds.end(), a[i].w) !=
                thresholds.end());
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  Dataset d = MakeSocialDataset("EU", 0.05);
  auto a = MakeQueryWorkload(d.graph, 100, 1);
  auto b = MakeQueryWorkload(d.graph, 100, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= (a[i].s != b[i].s || a[i].t != b[i].t);
  }
  EXPECT_TRUE(any_diff);
}

TEST(HarnessTest, Formatting) {
  EXPECT_EQ(FormatSeconds(1.2345), "1.234");
  EXPECT_EQ(FormatMillis(0.12345), "0.1235");
  EXPECT_EQ(FormatGb(1ull << 30), "1.0000");
  EXPECT_EQ(InfCell(), "INF");
}

}  // namespace
}  // namespace wcsd
