// Unit tests for the deterministic fault-injection registry
// (util/failpoint.h): the spec grammar, the skip/count firing window,
// environment installation, and the inactive fast path.

#include "util/failpoint.h"

#include <cerrno>

#include "gtest/gtest.h"

namespace wcsd {
namespace {

using failpoints::AnyActive;
using failpoints::Clear;
using failpoints::ClearAll;
using failpoints::Eval;
using failpoints::InstallFromEnv;
using failpoints::Set;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearAll(); }
  void TearDown() override { ClearAll(); }
};

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(Eval("never.activated").fired());
}

TEST_F(FailpointTest, ErrorDefaultsToEio) {
  ASSERT_TRUE(Set("p", "error").ok());
  FailpointResult fp = Eval("p");
  EXPECT_EQ(fp.action, FailpointAction::kError);
  EXPECT_EQ(fp.error_errno, EIO);
}

TEST_F(FailpointTest, ErrorWithNamedErrno) {
  ASSERT_TRUE(Set("p", "error:ECONNRESET").ok());
  FailpointResult fp = Eval("p");
  EXPECT_EQ(fp.action, FailpointAction::kError);
  EXPECT_EQ(fp.error_errno, ECONNRESET);

  ASSERT_TRUE(Set("p", "error:EINTR").ok());
  EXPECT_EQ(Eval("p").error_errno, EINTR);
  ASSERT_TRUE(Set("p", "error:ENOSPC").ok());
  EXPECT_EQ(Eval("p").error_errno, ENOSPC);
}

TEST_F(FailpointTest, UnknownErrnoNameRejected) {
  EXPECT_FALSE(Set("p", "error:EWHATEVER").ok());
  EXPECT_FALSE(Eval("p").fired());
}

TEST_F(FailpointTest, ShortCarriesByteBudget) {
  ASSERT_TRUE(Set("p", "short:100").ok());
  FailpointResult fp = Eval("p");
  EXPECT_EQ(fp.action, FailpointAction::kShort);
  EXPECT_EQ(fp.arg, 100u);
}

TEST_F(FailpointTest, ShortWantsAByteCount) {
  EXPECT_FALSE(Set("p", "short").ok());
  EXPECT_FALSE(Set("p", "short:abc").ok());
}

TEST_F(FailpointTest, UnknownActionRejected) {
  EXPECT_FALSE(Set("p", "explode").ok());
  EXPECT_FALSE(Set("p", "").ok());
}

TEST_F(FailpointTest, OffDeactivates) {
  ASSERT_TRUE(Set("p", "error").ok());
  EXPECT_TRUE(Eval("p").fired());
  ASSERT_TRUE(Set("p", "off").ok());
  EXPECT_FALSE(Eval("p").fired());
  EXPECT_FALSE(AnyActive());
}

TEST_F(FailpointTest, SkipStaysInertThenFires) {
  ASSERT_TRUE(Set("p", "error@2").ok());
  EXPECT_FALSE(Eval("p").fired());  // skip 1
  EXPECT_FALSE(Eval("p").fired());  // skip 2
  EXPECT_TRUE(Eval("p").fired());   // fires from the third evaluation on
  EXPECT_TRUE(Eval("p").fired());
}

TEST_F(FailpointTest, CountFiresThenGoesInert) {
  ASSERT_TRUE(Set("p", "errorx2").ok());
  EXPECT_TRUE(Eval("p").fired());
  EXPECT_TRUE(Eval("p").fired());
  EXPECT_FALSE(Eval("p").fired());
  EXPECT_FALSE(Eval("p").fired());
}

TEST_F(FailpointTest, SkipAndCountCompose) {
  // Inert once, then exactly three EINTRs, then inert forever.
  ASSERT_TRUE(Set("p", "error:EINTR@1x3").ok());
  EXPECT_FALSE(Eval("p").fired());
  for (int i = 0; i < 3; ++i) {
    FailpointResult fp = Eval("p");
    EXPECT_EQ(fp.action, FailpointAction::kError);
    EXPECT_EQ(fp.error_errno, EINTR);
  }
  EXPECT_FALSE(Eval("p").fired());
}

TEST_F(FailpointTest, ReactivationResetsTheWindow) {
  ASSERT_TRUE(Set("p", "errorx1").ok());
  EXPECT_TRUE(Eval("p").fired());
  EXPECT_FALSE(Eval("p").fired());  // window consumed
  ASSERT_TRUE(Set("p", "errorx1").ok());
  EXPECT_TRUE(Eval("p").fired());  // fresh window
}

TEST_F(FailpointTest, InstallFromEnvActivatesSeveral) {
  ASSERT_TRUE(
      InstallFromEnv("a=error:EIO;b=short:5;c=delay:0").ok());
  EXPECT_EQ(Eval("a").action, FailpointAction::kError);
  EXPECT_EQ(Eval("b").action, FailpointAction::kShort);
  EXPECT_EQ(Eval("c").action, FailpointAction::kDelay);
  auto active = failpoints::Active();
  EXPECT_EQ(active.size(), 3u);
}

TEST_F(FailpointTest, InstallFromEnvRejectsBadEntries) {
  EXPECT_FALSE(InstallFromEnv("noequals").ok());
  EXPECT_FALSE(InstallFromEnv("=error").ok());
  EXPECT_FALSE(InstallFromEnv("a=unknownaction").ok());
  EXPECT_TRUE(InstallFromEnv("").ok());
  EXPECT_TRUE(InstallFromEnv(nullptr).ok());
}

TEST_F(FailpointTest, ClearRemovesOneName) {
  ASSERT_TRUE(Set("a", "error").ok());
  ASSERT_TRUE(Set("b", "error").ok());
  Clear("a");
  EXPECT_FALSE(Eval("a").fired());
  EXPECT_TRUE(Eval("b").fired());
  ClearAll();
  EXPECT_FALSE(Eval("b").fired());
  EXPECT_FALSE(AnyActive());
}

TEST_F(FailpointTest, DelayProceedsAfterSleeping) {
  ASSERT_TRUE(Set("p", "delay:1").ok());
  FailpointResult fp = Eval("p");
  // kDelay means "Eval already slept; proceed" — the site treats it as
  // not-fired-for-error purposes but fired() reports the activation.
  EXPECT_EQ(fp.action, FailpointAction::kDelay);
}

}  // namespace
}  // namespace wcsd
