// Fault-injected serving tests: the production-hardening contract of the
// network stack under deterministic failure injection (util/failpoint.h)
// and degraded-mode sharded serving.
//
//   * Syscall faults: injected EINTR, partial sends/receives, and
//     connection resets on the `net.send`/`net.recv` shims must either be
//     absorbed transparently (EINTR, shorts — answers stay bit-identical
//     to the in-process engine) or surface as a clean Status, never a
//     crash or a hang.
//   * Overload control: admission limits shed query frames with
//     kOverloaded error frames — the connection keeps serving, stats and
//     health stay answerable, and the client retry policy actually
//     retries.
//   * Deadlines: a frame served too late fails with kDeadlineExceeded; a
//     client-side deadline bounds the whole call against a stuck server.
//   * Timeouts: idle and slow-loris connections are closed and counted.
//   * Graceful drain: in-flight work finishes (zero dropped replies), the
//     draining flag travels the health frame, new connections stop.
//   * Degraded mode: a shard set with a corrupt/missing shard serves
//     every healthy-range query bit-identically and refuses quarantined
//     ranges with kShardUnavailable (or answers them via the fallback
//     graph), locally and over the wire.
//
// The randomized fault soak at the bottom is the configuration the
// sanitizer CI jobs run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace wcsd {
namespace {

using net::MsgType;
using net::WireError;

class NetFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoints::ClearAll(); }
  void TearDown() override { failpoints::ClearAll(); }
};

struct Fixture {
  QualityGraph graph;
  std::shared_ptr<const WcIndex> index;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected;
};

Fixture MakeFixture(size_t n, size_t m, size_t num_queries, uint64_t seed) {
  Fixture f;
  QualityModel quality;
  quality.num_levels = 5;
  f.graph = GenerateRandomConnected(n, m, quality, seed);
  WcIndex built = WcIndex::Build(f.graph, WcIndexOptions::Plus());
  built.Finalize();
  f.index = std::make_shared<const WcIndex>(std::move(built));
  Rng rng(seed ^ 0xfa17);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected.push_back(f.index->Query(q.s, q.t, q.w));
  }
  return f;
}

std::shared_ptr<QueryService> MakeService(const Fixture& f) {
  QueryEngineOptions options;
  options.num_threads = 1;
  return MakeQueryService(
      std::make_shared<const QueryEngine>(f.index, options));
}

WcServer StartServer(std::shared_ptr<const QueryService> service,
                     const WcServerOptions& options = {}) {
  auto server = WcServer::Start(std::move(service), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

WcClient ConnectTo(const WcServer& server) {
  auto client = WcClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Wraps a service so every Query (and each Batch) takes at least
/// `delay_ms` — the "server is busy" knob for deadline and drain tests.
class DelayService : public QueryService {
 public:
  DelayService(std::shared_ptr<const QueryService> inner, uint64_t delay_ms)
      : inner_(std::move(inner)), delay_ms_(delay_ms) {}
  Distance Query(Vertex s, Vertex t, Quality w) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->Query(s, t, w);
  }
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->Batch(queries);
  }
  uint64_t NumVertices() const override { return inner_->NumVertices(); }
  QueryEngineStats Stats() const override { return inner_->Stats(); }

 private:
  std::shared_ptr<const QueryService> inner_;
  uint64_t delay_ms_;
};

// ------------------------------------------------------- syscall faults

// Satellite: injected EINTR on both directions of both peers must be
// retried transparently — the regression this pins is a send/recv loop
// that treats EINTR as a hard error.
TEST_F(NetFaultsTest, EintrOnSendAndRecvIsTransparent) {
  Fixture f = MakeFixture(80, 200, 60, 31);
  WcServer server = StartServer(MakeService(f));
  WcClient client = ConnectTo(server);

  // Fire a bounded burst of EINTRs at every fourth syscall on each shim.
  ASSERT_TRUE(failpoints::Set("net.send", "error:EINTR@2x40").ok());
  ASSERT_TRUE(failpoints::Set("net.recv", "error:EINTR@3x40").ok());
  auto batch = client.Batch(f.workload);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value(), f.expected);
  failpoints::ClearAll();

  auto piped = client.QueryPipelined(f.workload, 8);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(piped.value(), f.expected);
}

// Satellite: partial sends and receives — every frame reassembles and the
// answers stay bit-identical no matter how the bytes were cut.
TEST_F(NetFaultsTest, ShortSendsAndRecvsReassemble) {
  Fixture f = MakeFixture(80, 200, 40, 32);
  WcServer server = StartServer(MakeService(f));
  WcClient client = ConnectTo(server);

  // Every syscall in the window moves at most 7 (send) / 5 (recv) bytes:
  // headers and payloads are forcibly torn across many syscalls.
  ASSERT_TRUE(failpoints::Set("net.send", "short:7x300").ok());
  ASSERT_TRUE(failpoints::Set("net.recv", "short:5x300").ok());
  for (size_t i = 0; i < 6; ++i) {
    const BatchQueryInput& q = f.workload[i];
    auto d = client.Query(q.s, q.t, q.w);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d.value(), f.expected[i]) << i;
  }
  failpoints::ClearAll();

  auto batch = client.Batch(f.workload);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value(), f.expected);
}

// An injected connection reset surfaces as a clean IoError — never a
// crash, never a hang — and a fresh connection serves again.
TEST_F(NetFaultsTest, InjectedConnResetSurfacesCleanly) {
  Fixture f = MakeFixture(60, 150, 10, 33);
  WcServer server = StartServer(MakeService(f));
  WcClient client = ConnectTo(server);

  ASSERT_TRUE(failpoints::Set("net.send", "error:ECONNRESETx1").ok());
  auto d = client.Query(f.workload[0].s, f.workload[0].t, f.workload[0].w);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIoError);
  failpoints::ClearAll();

  WcClient fresh = ConnectTo(server);
  auto again =
      fresh.Query(f.workload[0].s, f.workload[0].t, f.workload[0].w);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value(), f.expected[0]);
}

// ------------------------------------------------------ overload control

// A batch over the admission limit is shed with kOverloaded (surfaced as
// Unavailable), the connection keeps serving, and the client retry policy
// demonstrably retries: every attempt shows up in the rejection counter.
TEST_F(NetFaultsTest, OversizedBatchShedAndRetried) {
  Fixture f = MakeFixture(60, 150, 10, 34);
  WcServerOptions options;
  options.max_batch_queries = 4;
  WcServer server = StartServer(MakeService(f), options);

  // Within the limit: served.
  WcClient plain = ConnectTo(server);
  std::vector<BatchQueryInput> small(f.workload.begin(),
                                     f.workload.begin() + 4);
  auto ok = plain.Batch(small);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value(),
            std::vector<Distance>(f.expected.begin(), f.expected.begin() + 4));

  // Over the limit, no retries: one clean Unavailable, one rejection.
  auto shed = plain.Batch(f.workload);
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().overload_rejections, 1u);
  // The SAME connection still serves.
  auto after = plain.Batch(small);
  ASSERT_TRUE(after.ok());

  // With retries: the client re-sends twice more before giving up, and
  // each attempt is counted — proof the retry loop ran.
  WcClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_base_ms = 1;
  copts.jitter_seed = 7;
  auto retrying = WcClient::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(retrying.ok()) << retrying.status().ToString();
  auto still_shed = retrying.value().Batch(f.workload);
  EXPECT_FALSE(still_shed.ok());
  EXPECT_EQ(still_shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().overload_rejections, 4u);  // 1 + 3 attempts
}

// Soft overload: with a reply backlog past the shed threshold, pipelined
// query frames are refused with kOverloaded error frames while stats and
// health — the operator's eyes — are still answered.
TEST_F(NetFaultsTest, BackloggedConnectionShedsButAnswersHealth) {
  Fixture f = MakeFixture(60, 150, 10, 35);
  WcServerOptions options;
  options.overload_shed_reply_bytes = 1;  // any unflushed reply sheds
  WcServer server = StartServer(MakeService(f), options);
  WcClient client = ConnectTo(server);

  // Two pipelined queries in one write: the first is served (backlog was
  // empty), the second sees the first's un-flushed reply and is shed.
  std::vector<uint8_t> out;
  net::AppendQueryRequest(&out, 1, f.workload[0].s, f.workload[0].t,
                          f.workload[0].w);
  net::AppendQueryRequest(&out, 2, f.workload[1].s, f.workload[1].t,
                          f.workload[1].w);
  net::AppendHealthRequest(&out, 3);  // exempt from shedding
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());

  auto first = client.ReadRawFrame();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().header.type,
            static_cast<uint8_t>(MsgType::kQueryReply));
  EXPECT_EQ(first.value().header.status,
            static_cast<uint8_t>(WireError::kOk));

  auto second = client.ReadRawFrame();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().header.type,
            static_cast<uint8_t>(MsgType::kError));
  EXPECT_EQ(second.value().header.status,
            static_cast<uint8_t>(WireError::kOverloaded));
  EXPECT_EQ(second.value().header.request_id, 2u);

  auto third = client.ReadRawFrame();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third.value().header.type,
            static_cast<uint8_t>(MsgType::kHealthReply));

  EXPECT_GE(server.stats().overload_rejections, 1u);
  // Shed frames are neither protocol errors nor served frames.
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// ------------------------------------------------------------ deadlines

// A pipelined frame that waited out its deadline behind earlier slow work
// fails with kDeadlineExceeded instead of being served arbitrarily late.
TEST_F(NetFaultsTest, LateFrameFailsInsteadOfServingLate) {
  Fixture f = MakeFixture(60, 150, 10, 36);
  WcServerOptions options;
  options.request_deadline_ms = 60;
  WcServer server =
      StartServer(std::make_shared<DelayService>(MakeService(f), 200),
                  options);
  WcClient client = ConnectTo(server);

  // Both frames arrive together; the first is admitted immediately, the
  // second has burned 200 ms behind it by the time it is considered.
  std::vector<uint8_t> out;
  net::AppendQueryRequest(&out, 1, f.workload[0].s, f.workload[0].t,
                          f.workload[0].w);
  net::AppendQueryRequest(&out, 2, f.workload[1].s, f.workload[1].t,
                          f.workload[1].w);
  ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());

  auto first = client.ReadRawFrame();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().header.status,
            static_cast<uint8_t>(WireError::kOk));
  auto second = client.ReadRawFrame();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().header.type,
            static_cast<uint8_t>(MsgType::kError));
  EXPECT_EQ(second.value().header.status,
            static_cast<uint8_t>(WireError::kDeadlineExceeded));
  EXPECT_EQ(server.stats().deadline_rejections, 1u);
}

// Satellite: the client-side deadline spans the whole request — a stuck
// server cannot hold the caller past its budget.
TEST_F(NetFaultsTest, ClientDeadlineBoundsTheWholeCall) {
  Fixture f = MakeFixture(60, 150, 10, 37);
  WcServer server =
      StartServer(std::make_shared<DelayService>(MakeService(f), 1500));

  WcClientOptions copts;
  copts.deadline_ms = 120;
  auto client = WcClient::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto start = std::chrono::steady_clock::now();
  auto d = client.value().Query(f.workload[0].s, f.workload[0].t,
                                f.workload[0].w);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded)
      << d.status().ToString();
  // Generous bound: the point is "about the deadline", not "the sleep".
  EXPECT_LT(elapsed, 1000);
}

// ------------------------------------------------------------- timeouts

TEST_F(NetFaultsTest, IdleConnectionsAreClosed) {
  Fixture f = MakeFixture(60, 150, 10, 38);
  WcServerOptions options;
  options.idle_timeout_ms = 100;
  WcServer server = StartServer(MakeService(f), options);
  WcClient client = ConnectTo(server);

  // Say nothing; the sweep (every ~500 ms) must close us.
  auto frame = client.ReadRawFrame();
  EXPECT_FALSE(frame.ok());  // clean EOF, not a hang
  EXPECT_GE(server.stats().timeout_closed, 1u);
}

TEST_F(NetFaultsTest, SlowLorisPartialFrameIsClosed) {
  Fixture f = MakeFixture(60, 150, 10, 39);
  WcServerOptions options;
  options.header_timeout_ms = 100;  // idle timeout stays off
  WcServer server = StartServer(MakeService(f), options);
  WcClient client = ConnectTo(server);

  // Drip 6 bytes of a frame header and stall — the classic slow-loris.
  std::vector<uint8_t> out;
  net::AppendHealthRequest(&out, 1);
  ASSERT_TRUE(client.SendBytes(out.data(), 6).ok());
  auto frame = client.ReadRawFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_GE(server.stats().timeout_closed, 1u);

  // A connection with NO partial frame is untouched by the header
  // timeout: after sitting past the window it still serves.
  WcClient patient = ConnectTo(server);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  auto health = patient.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value(), f.index->NumVertices());
}

// --------------------------------------------------------------- drain

// Satellite acceptance: SIGTERM-style drain loses nothing. In-flight work
// finishes and is delivered, the health frame reports draining while it
// happens, and the server refuses new work once drained.
TEST_F(NetFaultsTest, DrainFinishesInFlightWithZeroDropped) {
  Fixture f = MakeFixture(60, 150, 8, 40);
  WcServer server =
      StartServer(std::make_shared<DelayService>(MakeService(f), 150));
  uint16_t port = server.port();

  std::vector<Distance> got;
  std::atomic<bool> drained{false};
  std::thread drainer;
  {
    WcClient client = ConnectTo(server);
    // A slow batch goes in flight...
    std::vector<uint8_t> out;
    net::AppendBatchRequest(&out, 1, f.workload);
    ASSERT_TRUE(client.SendBytes(out.data(), out.size()).ok());

    // ...then drain begins while it is still being served.
    drainer = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      server.Drain();
      drained.store(true);
    });

    // The in-flight batch completes and arrives intact: zero dropped.
    // (Non-fatal checks only from here on: the drainer thread must be
    // joined on every exit path.)
    auto reply = client.ReadRawFrame();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.ok()) {
      EXPECT_EQ(reply.value().header.status,
                static_cast<uint8_t>(WireError::kOk));
      uint32_t count = 0;
      std::memcpy(&count, reply.value().payload.data(), sizeof(count));
      EXPECT_EQ(count, f.workload.size());
      if (count == f.workload.size()) {
        got.resize(count);
        std::memcpy(got.data(),
                    reply.value().payload.data() + sizeof(count),
                    count * sizeof(Distance));
      }
    }

    // The connection is still served during the drain window: health
    // answers, and it says so.
    auto health = client.HealthEx();
    EXPECT_TRUE(health.ok()) << health.status().ToString();
    if (health.ok()) EXPECT_TRUE(health.value().draining);
  }
  // Client destroyed -> last connection closed -> drain returns.
  drainer.join();
  EXPECT_TRUE(drained.load());
  EXPECT_EQ(got, f.expected);
  EXPECT_TRUE(server.stats().draining);

  // Drained means stopped: new connections are refused.
  auto late = WcClient::Connect("127.0.0.1", port, 200);
  EXPECT_FALSE(late.ok());
}

// ------------------------------------------------------- degraded mode

struct DegradedSet {
  Fixture fixture;
  std::string manifest_path;
  std::vector<std::string> shard_paths;
  uint64_t q_begin = 0;  // quarantined vertex range
  uint64_t q_end = 0;
};

/// Builds a 3-shard set and corrupts the MIDDLE shard's header bytes, so
/// the manifest's header-CRC cross-check quarantines exactly that range.
DegradedSet MakeDegradedSet(uint64_t seed, const std::string& tag) {
  DegradedSet set;
  set.fixture = MakeFixture(90, 230, 80, seed);
  const FlatLabelSet& flat = set.fixture.index->flat_labels();
  ShardPlanOptions plan_options;
  plan_options.num_shards = 3;
  auto plan = PlanShards(flat, plan_options);
  EXPECT_TRUE(plan.ok());
  std::string stem = testing::TempDir() + "/degraded_" + tag;
  auto written = WriteShardSet(stem, flat, plan.value());
  EXPECT_TRUE(written.ok()) << written.status().ToString();
  set.manifest_path = written.value().manifest_path;
  set.shard_paths = written.value().shard_paths;
  set.q_begin = plan.value().shards[1].begin;
  set.q_end = plan.value().shards[1].end;

  // Flip bytes inside the middle shard's header page.
  std::fstream file(set.shard_paths[1],
                    std::ios::binary | std::ios::in | std::ios::out);
  EXPECT_TRUE(file.good());
  file.seekp(24);
  const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
  file.write(garbage, sizeof(garbage));
  file.close();
  return set;
}

bool Touches(const DegradedSet& set, const BatchQueryInput& q) {
  // s == t answers 0 without reading any label slice, so it can never
  // touch a quarantined shard — mirroring the engine's refusal predicate.
  if (q.s == q.t) return false;
  auto in = [&](Vertex v) {
    return v >= set.q_begin && v < set.q_end;
  };
  return in(q.s) || in(q.t);
}

TEST_F(NetFaultsTest, QuarantineIsOptIn) {
  DegradedSet set = MakeDegradedSet(41, "optin");
  // Default: a corrupt shard fails the whole open.
  auto strict = ShardedQueryEngine::OpenManifest(set.manifest_path);
  EXPECT_FALSE(strict.ok());

  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, {}, {},
                                                 degraded);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value().degraded());
  EXPECT_EQ(engine.value().num_quarantined(), 1u);
  EXPECT_EQ(engine.value().num_shards(), 3u);
}

TEST_F(NetFaultsTest, DegradedServesHealthyRangesBitIdentically) {
  DegradedSet set = MakeDegradedSet(42, "healthy");
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, {}, {},
                                                 degraded);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  size_t healthy = 0;
  size_t refused = 0;
  for (size_t i = 0; i < set.fixture.workload.size(); ++i) {
    const BatchQueryInput& q = set.fixture.workload[i];
    Distance d = kInfDistance;
    ServeOutcome outcome = engine.value().QueryEx(q.s, q.t, q.w, &d);
    if (!Touches(set, q)) {
      // Bit-identical to the intact index: quarantining one shard may
      // not perturb answers that never touch it.
      EXPECT_EQ(outcome, ServeOutcome::kOk) << i;
      EXPECT_EQ(d, set.fixture.expected[i]) << i;
      ++healthy;
    } else {
      EXPECT_EQ(outcome, ServeOutcome::kShardUnavailable) << i;
      EXPECT_EQ(d, kInfDistance) << i;
      EXPECT_EQ(engine.value().Query(q.s, q.t, q.w), kInfDistance) << i;
      ++refused;
    }
  }
  // The workload must genuinely exercise both sides.
  EXPECT_GT(healthy, 0u);
  EXPECT_GT(refused, 0u);
  EXPECT_GE(engine.value().stats().shard_unavailable, refused);

  // Whole-batch refusal: one touching query poisons the batch (no
  // per-query error channel in a u32 result array).
  std::vector<Distance> out;
  EXPECT_EQ(engine.value().BatchEx(set.fixture.workload, &out),
            ServeOutcome::kShardUnavailable);
  EXPECT_TRUE(out.empty());

  // A batch of only-healthy queries serves bit-identically.
  std::vector<BatchQueryInput> clean;
  std::vector<Distance> clean_expected;
  for (size_t i = 0; i < set.fixture.workload.size(); ++i) {
    if (!Touches(set, set.fixture.workload[i])) {
      clean.push_back(set.fixture.workload[i]);
      clean_expected.push_back(set.fixture.expected[i]);
    }
  }
  EXPECT_EQ(engine.value().BatchEx(clean, &out), ServeOutcome::kOk);
  EXPECT_EQ(out, clean_expected);
}

TEST_F(NetFaultsTest, FallbackGraphAnswersQuarantinedRangeExactly) {
  DegradedSet set = MakeDegradedSet(43, "fallback");
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  degraded.fallback_graph = &set.fixture.graph;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, {}, {},
                                                 degraded);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // With the fallback, EVERY query answers exactly — quarantined ranges
  // via online ConstrainedDijkstra, the rest from labels.
  for (size_t i = 0; i < set.fixture.workload.size(); ++i) {
    const BatchQueryInput& q = set.fixture.workload[i];
    Distance d = kInfDistance;
    EXPECT_EQ(engine.value().QueryEx(q.s, q.t, q.w, &d), ServeOutcome::kOk);
    EXPECT_EQ(d, set.fixture.expected[i]) << i;
  }
  std::vector<Distance> out;
  EXPECT_EQ(engine.value().BatchEx(set.fixture.workload, &out),
            ServeOutcome::kOk);
  EXPECT_EQ(out, set.fixture.expected);
}

TEST_F(NetFaultsTest, MissingShardFileQuarantinesToo) {
  DegradedSet set = MakeDegradedSet(44, "missing");
  // Delete a DIFFERENT (healthy) shard: now two are down.
  std::remove(set.shard_paths[2].c_str());
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, {}, {},
                                                 degraded);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value().num_quarantined(), 2u);

  // Balance reporting marks the quarantined shards with zero mass.
  auto balance = engine.value().ShardBalance();
  ASSERT_EQ(balance.size(), 3u);
  EXPECT_FALSE(balance[0].quarantined);
  EXPECT_TRUE(balance[1].quarantined);
  EXPECT_TRUE(balance[2].quarantined);
  EXPECT_EQ(balance[1].entry_count, 0u);
  EXPECT_EQ(balance[2].label_bytes, 0u);
  EXPECT_GT(balance[0].entry_count, 0u);
}

TEST_F(NetFaultsTest, AllShardsFailedRefusesToOpen) {
  DegradedSet set = MakeDegradedSet(45, "allgone");
  for (const std::string& path : set.shard_paths) {
    std::remove(path.c_str());
  }
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, {}, {},
                                                 degraded);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnavailable);
}

// Tentpole acceptance: degraded mode over the wire. Healthy-range queries
// answer bit-identically; quarantined-range queries get a clean
// kShardUnavailable error frame (the connection survives); the stats
// frame reports the quarantine.
TEST_F(NetFaultsTest, DegradedShardSetServesOverTheWire) {
  DegradedSet set = MakeDegradedSet(46, "wire");
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  QueryEngineOptions eopts;
  eopts.num_threads = 1;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, eopts,
                                                 {}, degraded);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  WcServer server = StartServer(MakeQueryService(
      std::make_shared<const ShardedQueryEngine>(std::move(engine).value())));
  WcClient client = ConnectTo(server);

  size_t refused = 0;
  for (size_t i = 0; i < set.fixture.workload.size(); ++i) {
    const BatchQueryInput& q = set.fixture.workload[i];
    auto d = client.Query(q.s, q.t, q.w);
    if (!Touches(set, q)) {
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      EXPECT_EQ(d.value(), set.fixture.expected[i]) << i;
    } else {
      // A clean, typed refusal on a connection that keeps serving.
      EXPECT_FALSE(d.ok()) << i;
      EXPECT_EQ(d.status().code(), StatusCode::kUnavailable) << i;
      ++refused;
    }
  }
  ASSERT_GT(refused, 0u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().shard_unavailable, refused);
  ASSERT_EQ(stats.value().shards.size(), 3u);
  EXPECT_EQ(stats.value().shards[1].quarantined, 1u);
  EXPECT_EQ(stats.value().shards[0].quarantined, 0u);
  EXPECT_EQ(server.stats().shard_unavailable, refused);
  // Refusals are not protocol errors: the input was well-formed.
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// ------------------------------------------------------------ fault soak

// Satellite: randomized fault soak — pipelined mixed traffic with random
// failpoint storms on both shims. Rounds that only inject retryable
// faults (EINTR, shorts, delays) must stay bit-identical; rounds that
// inject resets may fail calls cleanly but must never crash, hang, or
// poison a later round. This test (with the whole binary) runs under TSan
// and ASan in CI.
TEST_F(NetFaultsTest, RandomizedFaultSoakStaysBitIdentical) {
  Fixture f = MakeFixture(100, 260, 120, 47);
  WcServer server = StartServer(MakeService(f));
  Rng rng(4711);

  for (int round = 0; round < 12; ++round) {
    const bool reset_round = round % 4 == 3;
    std::string send_spec;
    std::string recv_spec;
    if (reset_round) {
      send_spec = "error:ECONNRESET@" +
                  std::to_string(rng.NextBounded(40)) + "x1";
      recv_spec = "error:EINTR@" + std::to_string(rng.NextBounded(10)) +
                  "x" + std::to_string(1 + rng.NextBounded(5));
    } else {
      switch (rng.NextBounded(3)) {
        case 0:
          send_spec = "error:EINTR@" + std::to_string(rng.NextBounded(8)) +
                      "x" + std::to_string(1 + rng.NextBounded(30));
          recv_spec = "short:" + std::to_string(1 + rng.NextBounded(9)) +
                      "x" + std::to_string(1 + rng.NextBounded(200));
          break;
        case 1:
          send_spec = "short:" + std::to_string(1 + rng.NextBounded(9)) +
                      "x" + std::to_string(1 + rng.NextBounded(200));
          recv_spec = "error:EINTR@" + std::to_string(rng.NextBounded(8)) +
                      "x" + std::to_string(1 + rng.NextBounded(30));
          break;
        default:
          send_spec = "delay:1x" + std::to_string(1 + rng.NextBounded(4));
          recv_spec = "short:" + std::to_string(2 + rng.NextBounded(8)) +
                      "x" + std::to_string(1 + rng.NextBounded(150));
          break;
      }
    }
    ASSERT_TRUE(failpoints::Set("net.send", send_spec).ok()) << send_spec;
    ASSERT_TRUE(failpoints::Set("net.recv", recv_spec).ok()) << recv_spec;

    auto client = WcClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      // Only a reset round may break the connect handshake.
      ASSERT_TRUE(reset_round) << client.status().ToString();
      failpoints::ClearAll();
      continue;
    }
    auto piped = client.value().QueryPipelined(f.workload, 8);
    auto batch = client.value().Batch(f.workload);
    failpoints::ClearAll();

    if (reset_round) {
      // Clean outcomes only: either served identically or a typed error.
      if (piped.ok()) EXPECT_EQ(piped.value(), f.expected);
      if (batch.ok()) EXPECT_EQ(batch.value(), f.expected);
    } else {
      ASSERT_TRUE(piped.ok())
          << "round " << round << " send=" << send_spec
          << " recv=" << recv_spec << ": " << piped.status().ToString();
      EXPECT_EQ(piped.value(), f.expected) << "round " << round;
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      EXPECT_EQ(batch.value(), f.expected) << "round " << round;
    }
  }

  // After the storm: a fresh connection serves the whole workload
  // bit-identically — nothing leaked, nothing wedged.
  WcClient fresh = ConnectTo(server);
  auto final_pass = fresh.Batch(f.workload);
  ASSERT_TRUE(final_pass.ok()) << final_pass.status().ToString();
  EXPECT_EQ(final_pass.value(), f.expected);
}

}  // namespace
}  // namespace wcsd
