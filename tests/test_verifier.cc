// Verifier self-tests: it must pass genuine indexes and flag planted
// violations of soundness, Theorem 3, and minimality.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/label_set.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

TEST(VerifierTest, PassesGenuineIndex) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(40, 90, quality, 3);
  WcIndex index = WcIndex::Build(g);
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.entries_checked, 0u);
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST(VerifierTest, DetectsUnsoundEntry) {
  QualityGraph g = MakeFigure3Graph();
  // Claim dist^5(v0, v5) = 1 — no such path exists.
  LabelSet labels(6);
  labels.Append(5, {0, 1, 5.0f});
  VerificationReport report =
      VerifySoundness(labels, IdentityOrder(6), g, /*require_tight=*/false);
  EXPECT_EQ(report.soundness_violations, 1u);
}

TEST(VerifierTest, DetectsLooseEntryOnlyWhenTight) {
  QualityGraph g = MakeFigure3Graph();
  // dist^1(v0, v3) = 1, but the entry claims 2: sound yet not tight.
  LabelSet labels(6);
  labels.Append(3, {0, 2, 1.0f});
  VerificationReport loose =
      VerifySoundness(labels, IdentityOrder(6), g, /*require_tight=*/false);
  EXPECT_EQ(loose.soundness_violations, 0u);
  VerificationReport tight =
      VerifySoundness(labels, IdentityOrder(6), g, /*require_tight=*/true);
  EXPECT_EQ(tight.tightness_violations, 1u);
}

TEST(VerifierTest, DetectsBogusSelfEntry) {
  QualityGraph g = MakeFigure3Graph();
  LabelSet labels(6);
  labels.Append(2, {1, 3, kInfQuality});  // inf-quality non-self entry.
  VerificationReport report =
      VerifySoundness(labels, IdentityOrder(6), g, /*require_tight=*/false);
  EXPECT_EQ(report.soundness_violations, 1u);
}

TEST(VerifierTest, DetectsMonotonicityViolation) {
  LabelSet labels(2);
  // Same hub: rising distance with non-rising quality = dominated.
  labels.Append(1, {0, 1, 3.0f});
  labels.Append(1, {0, 2, 3.0f});
  VerificationReport report = VerifyMonotonicity(labels);
  EXPECT_EQ(report.monotonicity_violations, 1u);
  EXPECT_EQ(report.dominated_entries, 1u);
}

TEST(VerifierTest, AcceptsMonotoneGroups) {
  LabelSet labels(2);
  labels.Append(1, {0, 1, 1.0f});
  labels.Append(1, {0, 2, 2.0f});
  labels.Append(1, {3, 1, 5.0f});  // New hub group resets the chain.
  labels.Append(1, {3, 9, 9.0f});
  VerificationReport report = VerifyMonotonicity(labels);
  EXPECT_EQ(report.monotonicity_violations, 0u);
}

TEST(VerifierTest, DetectsUnnecessaryEntry) {
  // Build a correct index, then duplicate one entry through a synthetic
  // "slightly worse" twin that other hubs already cover.
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  VerificationReport clean = VerifyMinimality(index);
  EXPECT_EQ(clean.unnecessary_entries, 0u) << clean.Summary();
}

TEST(VerifierTest, CompletenessCatchesMissingCoverage) {
  // An index with only self entries cannot answer any s != t query.
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex good = WcIndex::Build(g, options);
  VerificationReport report = VerifyCompleteness(good, g);
  EXPECT_EQ(report.completeness_violations, 0u);
}

TEST(VerifierTest, SummaryMentionsVerdict) {
  VerificationReport report;
  EXPECT_NE(report.Summary().find("[OK]"), std::string::npos);
  report.soundness_violations = 2;
  EXPECT_NE(report.Summary().find("[FAIL]"), std::string::npos);
}

}  // namespace
}  // namespace wcsd
