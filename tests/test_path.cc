// Path reconstruction tests (§V): reconstructed paths must be valid
// w-paths of exactly the queried distance, with and without quad-label
// parents (the fallback is pure index-guided stepping).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/path_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

void CheckPath(const QualityGraph& g, const WcIndex& index, Vertex s,
               Vertex t, Quality w) {
  Distance d = index.Query(s, t, w);
  std::vector<Vertex> path = QueryConstrainedPath(index, g, s, t, w);
  if (d == kInfDistance) {
    EXPECT_TRUE(path.empty()) << s << "->" << t << " w=" << w;
    return;
  }
  ASSERT_FALSE(path.empty()) << s << "->" << t << " w=" << w;
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);
  EXPECT_EQ(path.size(), static_cast<size_t>(d) + 1);
  EXPECT_TRUE(IsValidWPath(g, path, w));
}

TEST(PathTest, Figure3AllPairsWithParents) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.record_parents = true;
  WcIndex index = WcIndex::Build(g, options);
  ASSERT_TRUE(index.has_parents());
  for (Vertex s = 0; s < 6; ++s) {
    for (Vertex t = 0; t < 6; ++t) {
      for (Quality w : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f}) {
        CheckPath(g, index, s, t, w);
      }
    }
  }
}

TEST(PathTest, Figure3WithoutParentsFallback) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);  // No parents recorded.
  ASSERT_FALSE(index.has_parents());
  for (Vertex s = 0; s < 6; ++s) {
    for (Vertex t = 0; t < 6; ++t) {
      for (Quality w : {1.0f, 3.0f, 5.0f}) {
        CheckPath(g, index, s, t, w);
      }
    }
  }
}

TEST(PathTest, Figure1QoSRoute) {
  // The paper's motivating route: R3 -> S1 -> R4 -> S2 -> R2 at >= 3 Mbps.
  QualityGraph g = MakeFigure1Network();
  WcIndexOptions options;
  options.record_parents = true;
  WcIndex index = WcIndex::Build(g, options);
  std::vector<Vertex> path = QueryConstrainedPath(index, g, 2, 1, 3.0f);
  EXPECT_EQ(path, (std::vector<Vertex>{2, 4, 3, 5, 1}));
}

TEST(PathTest, TrivialAndUnreachable) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  EXPECT_EQ(QueryConstrainedPath(index, g, 3, 3, 9.0f),
            (std::vector<Vertex>{3}));
  EXPECT_TRUE(QueryConstrainedPath(index, g, 0, 4, 6.0f).empty());
}

TEST(PathTest, IsValidWPathRejectsBadPaths) {
  QualityGraph g = MakeFigure3Graph();
  EXPECT_FALSE(IsValidWPath(g, {}, 1.0f));
  EXPECT_FALSE(IsValidWPath(g, {0, 5}, 1.0f));        // Not an edge.
  EXPECT_FALSE(IsValidWPath(g, {0, 3, 4}, 2.0f));     // (0,3) below w=2.
  EXPECT_TRUE(IsValidWPath(g, {0, 3, 4}, 1.0f));
  EXPECT_TRUE(IsValidWPath(g, {2}, 1.0f));            // Single vertex.
}

class PathPropertyTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, int, uint64_t,
                                               bool>> {};

TEST_P(PathPropertyTest, RandomGraphPathsAreShortestWPaths) {
  auto [n, m, levels, seed, with_parents] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  WcIndexOptions options;
  options.record_parents = with_parents;
  WcIndex index = WcIndex::Build(g, options);
  Rng rng(seed + 5);
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, levels + 1));
    CheckPath(g, index, s, t, w);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathPropertyTest,
    testing::Values(std::make_tuple(40, 90, 4, 1, true),
                    std::make_tuple(40, 90, 4, 1, false),
                    std::make_tuple(80, 200, 6, 2, true),
                    std::make_tuple(80, 200, 6, 2, false),
                    std::make_tuple(150, 450, 3, 3, true),
                    std::make_tuple(150, 450, 10, 4, true)));

// An mmap-loaded snapshot with the v2 parents section must reconstruct
// paths as well as the heap index it came from — and actually USE the
// quads: the parent fast path should carry most unwind steps, with the
// graph fallback only covering pruned mid-chain entries. A parent-less
// load of the same labels must still answer correctly, purely through
// fallback stepping, and report the difference through PathQueryStats.
TEST(PathTest, MmapSnapshotKeepsParentFastPath) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(100, 260, quality, 31);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.record_parents = true;
  WcIndex built = WcIndex::Build(g, options);
  built.Finalize();
  std::string path = testing::TempDir() + "/path_parents.wcsnap";
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  auto mm = WcIndex::LoadMmap(path);
  ASSERT_TRUE(mm.ok()) << mm.status().ToString();
  ASSERT_TRUE(mm.value().has_parents());

  Rng rng(33);
  PathQueryStats stats;
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(100));
    Vertex t = static_cast<Vertex>(rng.NextBounded(100));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    CheckPath(g, mm.value(), s, t, w);
    std::vector<Vertex> route =
        QueryConstrainedPath(mm.value(), g, s, t, w, &stats);
    std::vector<Vertex> heap_route =
        QueryConstrainedPath(built, g, s, t, w);
    EXPECT_EQ(route, heap_route) << s << "->" << t << " w=" << w;
  }
  EXPECT_GT(stats.parent_steps, 0u)
      << "the mmap'd quads never drove a single unwind step";
  std::remove(path.c_str());
}

TEST(PathTest, RoadNetworkRoutes) {
  RoadOptions options;
  options.rows = options.cols = 15;
  QualityGraph g = GenerateRoadNetwork(options, 7);
  WcIndexOptions index_options;
  index_options.ordering = WcIndexOptions::Ordering::kTreeDecomposition;
  index_options.record_parents = true;
  WcIndex index = WcIndex::Build(g, index_options);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
    CheckPath(g, index, s, t, w);
  }
}

}  // namespace
}  // namespace wcsd
