// FlatLabelSet: CSR packing round-trips, serialization, query-kernel
// equivalence with the vector backend, and the WcIndex::Finalize routing.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/batch.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "labeling/flat_label_set.h"
#include "labeling/query.h"
#include "util/random.h"

namespace wcsd {
namespace {

QualityGraph TestGraph(uint64_t seed) {
  QualityModel quality;
  quality.num_levels = 6;
  return GenerateRandomConnected(140, 420, quality, seed);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(FlatLabelSet, RoundTripsThroughLabelSet) {
  WcIndex index = WcIndex::Build(TestGraph(7), WcIndexOptions::Plus());
  FlatLabelSet flat = FlatLabelSet::FromLabelSet(index.labels());
  EXPECT_EQ(flat.TotalEntries(), index.labels().TotalEntries());
  EXPECT_EQ(flat.NumVertices(), index.labels().NumVertices());
  EXPECT_EQ(flat.ToLabelSet(), index.labels());
  for (Vertex v = 0; v < flat.NumVertices(); ++v) {
    auto dense = index.labels().For(v);
    auto packed = flat.For(v);
    ASSERT_EQ(dense.size(), packed.size());
    for (size_t i = 0; i < dense.size(); ++i) EXPECT_EQ(dense[i], packed[i]);
  }
}

TEST(FlatLabelSet, HubDirectoryMatchesGroupStructure) {
  WcIndex index = WcIndex::Build(TestGraph(9), WcIndexOptions::Plus());
  FlatLabelSet flat = FlatLabelSet::FromLabelSet(index.labels());
  for (Vertex v = 0; v < flat.NumVertices(); ++v) {
    FlatLabelView view = flat.View(v);
    size_t entry = 0;
    for (size_t g = 0; g < view.groups.size(); ++g) {
      ASSERT_EQ(view.groups[g].begin, entry);
      size_t ge = view.GroupEnd(g);
      ASSERT_GT(ge, entry);
      for (size_t i = entry; i < ge; ++i) {
        EXPECT_EQ(view.entries[i].hub, view.groups[g].hub);
      }
      if (g > 0) EXPECT_LT(view.groups[g - 1].hub, view.groups[g].hub);
      entry = ge;
    }
    EXPECT_EQ(entry, view.entries.size());
  }
}

TEST(FlatLabelSet, SaveLoadRoundTrip) {
  WcIndex index = WcIndex::Build(TestGraph(11), WcIndexOptions::Plus());
  FlatLabelSet flat = FlatLabelSet::FromLabelSet(index.labels());
  std::string path = TempPath("flat_roundtrip.bin");
  ASSERT_TRUE(flat.Save(path).ok());
  auto loaded = FlatLabelSet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), flat);
  std::remove(path.c_str());
}

TEST(FlatLabelSet, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(FlatLabelSet::Load("/nonexistent/flat.bin").ok());
  std::string path = TempPath("flat_corrupt.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "definitely not a flat label file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(FlatLabelSet::Load(path).ok());
  std::remove(path.c_str());
}

TEST(FlatLabelSet, EmptyAndSingleVertex) {
  FlatLabelSet empty = FlatLabelSet::FromLabelSet(LabelSet(0));
  EXPECT_EQ(empty.NumVertices(), 0u);
  EXPECT_EQ(empty.TotalEntries(), 0u);

  GraphBuilder b(1);
  WcIndex one = WcIndex::Build(b.Build());
  FlatLabelSet flat = FlatLabelSet::FromLabelSet(one.labels());
  EXPECT_EQ(flat.TotalEntries(), 1u);
  EXPECT_EQ(flat.View(0).groups.size(), 1u);
}

TEST(FlatQueryKernels, AgreeWithVectorKernelsOnAllImpls) {
  QualityGraph g = TestGraph(13);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  FlatLabelSet flat = FlatLabelSet::FromLabelSet(index.labels());
  Rng rng(29);
  const size_t n = g.NumVertices();
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(0, 8)) +
                (rng.NextBool(0.3) ? 0.5f : 0.0f);
    auto ls = index.labels().For(s);
    auto lt = index.labels().For(t);
    FlatLabelView fs = flat.View(s);
    FlatLabelView ft = flat.View(t);
    Distance expected = QueryLabelsMerge(ls, lt, w);
    EXPECT_EQ(QueryFlatMerge(fs, ft, w), expected);
    EXPECT_EQ(QueryFlatBinary(fs, ft, w), expected);
    EXPECT_EQ(QueryFlatHubGrouped(fs, ft, w), expected);
    EXPECT_EQ(QueryFlatScan(fs, ft, w), expected);
    HubQueryResult dense_hub = QueryLabelsMergeWithHub(ls, lt, w);
    HubQueryResult flat_hub = QueryFlatMergeWithHub(fs, ft, w);
    EXPECT_EQ(flat_hub.dist, dense_hub.dist);
    EXPECT_EQ(flat_hub.via_hub, dense_hub.via_hub);
    EXPECT_EQ(flat_hub.dist_from_s, dense_hub.dist_from_s);
    EXPECT_EQ(flat_hub.dist_to_t, dense_hub.dist_to_t);
  }
}

TEST(WcIndexFinalize, FullPipelineBuildFinalizeSaveLoadQuery) {
  // The ISSUE's acceptance flow: build -> finalize -> save -> load ->
  // query, with answers identical at every stage.
  QualityGraph g = TestGraph(17);
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = 4;
  WcIndex index = WcIndex::Build(g, options);
  WcIndex reference = WcIndex::Build(g, WcIndexOptions::Plus());

  index.Finalize();
  ASSERT_TRUE(index.finalized());
  EXPECT_EQ(index.flat_labels().ToLabelSet(), reference.labels());

  std::string path = TempPath("finalized_index.wcx");
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = WcIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  loaded.value().Finalize();

  Rng rng(31);
  const size_t n = g.NumVertices();
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    Distance expected = reference.Query(s, t, w);
    EXPECT_EQ(index.Query(s, t, w), expected);
    EXPECT_EQ(loaded.value().Query(s, t, w), expected);
    for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                           QueryImpl::kBinary, QueryImpl::kMerge}) {
      EXPECT_EQ(index.Query(s, t, w, impl), expected);
    }
  }
  std::remove(path.c_str());
}

TEST(WcIndexFinalize, BatchQueryRunsOnFlatBackend) {
  QualityGraph g = TestGraph(19);
  WcIndex dense = WcIndex::Build(g, WcIndexOptions::Plus());
  WcIndex flat = WcIndex::Build(g, WcIndexOptions::Plus());
  flat.Finalize();
  Rng rng(37);
  std::vector<BatchQueryInput> queries;
  for (int i = 0; i < 500; ++i) {
    queries.push_back({static_cast<Vertex>(rng.NextBounded(g.NumVertices())),
                       static_cast<Vertex>(rng.NextBounded(g.NumVertices())),
                       static_cast<Quality>(rng.NextInRange(1, 7))});
  }
  EXPECT_EQ(BatchQuery(flat, queries, 1), BatchQuery(dense, queries, 1));
  EXPECT_EQ(BatchQuery(flat, queries, 4), BatchQuery(dense, queries, 1));
}

TEST(WcIndexFinalize, MemoryBytesReportsFlatBackend) {
  WcIndex index = WcIndex::Build(TestGraph(23), WcIndexOptions::Plus());
  size_t dense_bytes = index.MemoryBytes();
  index.Finalize();
  size_t flat_bytes = index.MemoryBytes();
  EXPECT_GT(flat_bytes, 0u);
  // CSR drops the per-vertex vector header overhead; the hub directory is
  // smaller than that on every generated graph.
  EXPECT_LE(flat_bytes,
            dense_bytes + index.flat_labels().TotalEntries() * sizeof(HubGroup));
  EXPECT_EQ(index.flat_labels().MemoryBytes(), flat_bytes);
}

TEST(WcIndexGuards, OutOfRangeVerticesReturnInf) {
  QualityGraph g = TestGraph(41);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  const Vertex n = static_cast<Vertex>(index.NumVertices());
  EXPECT_EQ(index.Query(n, 0, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(0, n + 5, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(kNullVertex, kNullVertex, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(n, 0, 1.0f, QueryImpl::kScan), kInfDistance);
  EXPECT_EQ(index.QueryWithHub(n, 0, 1.0f).dist, kInfDistance);
  EXPECT_FALSE(index.Reachable(n, 0, 1.0f));
  index.Finalize();
  EXPECT_EQ(index.Query(n, 0, 1.0f), kInfDistance);
  EXPECT_EQ(index.Query(0, n, 1.0f, QueryImpl::kBinary), kInfDistance);

  // Empty index: any query is out of range.
  GraphBuilder b0(0);
  WcIndex empty = WcIndex::Build(b0.Build());
  EXPECT_EQ(empty.Query(0, 0, 1.0f), kInfDistance);
}

}  // namespace
}  // namespace wcsd
