// LCR-adapt baseline tests: query correctness, merged-label invariants,
// and the expected size relationship to Naïve and WC-INDEX.

#include <gtest/gtest.h>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/lcr_adapt.h"
#include "labeling/naive_index.h"
#include "search/wc_bfs.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(LcrAdaptTest, Figure3AllPairsAllThresholds) {
  QualityGraph g = MakeFigure3Graph();
  LcrAdaptIndex index = LcrAdaptIndex::Build(g);
  WcBfs bfs(&g);
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      for (Quality w : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f}) {
        EXPECT_EQ(index.Query(s, t, w), bfs.Query(s, t, w))
            << s << "->" << t << " w=" << w;
      }
    }
  }
}

TEST(LcrAdaptTest, MergedLabelsAreSortedAndMonotone) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(80, 200, quality, 3);
  LcrAdaptIndex index = LcrAdaptIndex::Build(g);
  ASSERT_TRUE(index.labels().IsSorted());
  // Theorem 3-style monotonicity within each hub group.
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto lv = index.labels().For(v);
    for (size_t i = 1; i < lv.size(); ++i) {
      if (lv[i - 1].hub != lv[i].hub) continue;
      EXPECT_LT(lv[i - 1].dist, lv[i].dist);
      EXPECT_LT(lv[i - 1].quality, lv[i].quality);
    }
  }
}

TEST(LcrAdaptTest, SmallerThanNaive) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(150, 450, quality, 5);
  LcrAdaptIndex lcr = LcrAdaptIndex::Build(g);
  auto naive = NaiveWcsdIndex::Build(g);
  ASSERT_TRUE(naive.ok());
  // Merging + dominance pruning cannot exceed the sum of per-level labels.
  EXPECT_LE(lcr.MemoryBytes(), naive.value().MemoryBytes());
}

TEST(LcrAdaptTest, AgreesWithWcIndexOnRandomGraphs) {
  QualityModel quality;
  quality.num_levels = 4;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    QualityGraph g = GenerateRandomConnected(60, 150, quality, seed);
    LcrAdaptIndex lcr = LcrAdaptIndex::Build(g);
    WcIndex wc = WcIndex::Build(g);
    Rng rng(seed + 100);
    for (int i = 0; i < 200; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(60));
      Vertex t = static_cast<Vertex>(rng.NextBounded(60));
      Quality w = static_cast<Quality>(rng.NextInRange(1, 5));
      EXPECT_EQ(lcr.Query(s, t, w), wc.Query(s, t, w))
          << "seed=" << seed << " " << s << "->" << t << " w=" << w;
    }
  }
}

}  // namespace
}  // namespace wcsd
