// Unit tests for the CSR graph, builder, subgraph filtering, and the
// directed / weighted graph variants.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.h"
#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/weighted_graph.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

TEST(GraphBuilder, BasicCounts) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 2, 3.0f);
  QualityGraph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(3);
  b.AddEdge(1, 1, 5.0f);
  QualityGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilder, ParallelEdgesKeepMaxQuality) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 0, 7.0f);
  b.AddEdge(0, 1, 5.0f);
  QualityGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FLOAT_EQ(g.EdgeQuality(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(g.EdgeQuality(1, 0), 7.0f);
}

TEST(GraphBuilder, NeighborsSortedById) {
  GraphBuilder b(5);
  b.AddEdge(2, 4, 1.0f);
  b.AddEdge(2, 0, 1.0f);
  b.AddEdge(2, 3, 1.0f);
  QualityGraph g = b.Build();
  auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 0u);
  EXPECT_EQ(nbrs[1].to, 3u);
  EXPECT_EQ(nbrs[2].to, 4u);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0f);
  QualityGraph g1 = b.Build();
  b.AddEdge(1, 2, 2.0f);
  QualityGraph g2 = b.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(g2.NumEdges(), 2u);
}

TEST(QualityGraph, EdgeQualityAbsentIsNegative) {
  QualityGraph g = MakeFigure3Graph();
  EXPECT_LT(g.EdgeQuality(0, 5), 0.0f);
}

TEST(QualityGraph, DistinctQualitiesSortedUnique) {
  QualityGraph g = MakeFigure3Graph();
  // Figure 3 qualities: 3,1,5,2,4,4,2,3 -> {1,2,3,4,5}.
  EXPECT_EQ(g.DistinctQualities(),
            (std::vector<Quality>{1, 2, 3, 4, 5}));
}

TEST(QualityGraph, MaxDegree) {
  QualityGraph g = MakeFigure3Graph();
  EXPECT_EQ(g.MaxDegree(), 5u);  // v3 touches v0, v1, v2, v4, v5.
}

TEST(QualityGraph, MemoryBytesPositiveAndProportional) {
  QualityGraph small = MakeFigure3Graph();
  GraphBuilder b(100);
  for (Vertex i = 0; i + 1 < 100; ++i) b.AddEdge(i, i + 1, 1.0f);
  QualityGraph big = b.Build();
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(QualityGraph, EmptyGraph) {
  GraphBuilder b(0);
  QualityGraph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.DistinctQualities().empty());
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(Subgraph, FilterKeepsOnlyQualifyingEdges) {
  QualityGraph g = MakeFigure3Graph();
  QualityGraph f3 = FilterByQuality(g, 3.0f);
  // Edges with quality >= 3: (0,1,3) (1,2,5) (2,3,4) (3,4,4) (4,5,3).
  EXPECT_EQ(f3.NumEdges(), 5u);
  EXPECT_LT(f3.EdgeQuality(0, 3), 0.0f);
  EXPECT_FLOAT_EQ(f3.EdgeQuality(1, 2), 5.0f);
}

TEST(Subgraph, FilterAboveMaxIsEmpty) {
  QualityGraph g = MakeFigure3Graph();
  EXPECT_EQ(FilterByQuality(g, 6.0f).NumEdges(), 0u);
}

TEST(QualityPartition, LevelsMatchDistinctQualities) {
  QualityGraph g = MakeFigure3Graph();
  QualityPartition partition(g);
  EXPECT_EQ(partition.NumLevels(), 5u);
  EXPECT_EQ(partition.GraphAtLevel(0).NumEdges(), g.NumEdges());
}

TEST(QualityPartition, LevelForConstraintRounding) {
  QualityGraph g = MakeFigure3Graph();
  QualityPartition partition(g);
  // Constraint 2.5 rounds up to the level of threshold 3.
  auto level = partition.LevelForConstraint(2.5f);
  ASSERT_TRUE(level.has_value());
  EXPECT_FLOAT_EQ(partition.thresholds()[*level], 3.0f);
  // Exact hit.
  level = partition.LevelForConstraint(4.0f);
  ASSERT_TRUE(level.has_value());
  EXPECT_FLOAT_EQ(partition.thresholds()[*level], 4.0f);
  // Above max: no usable edges.
  EXPECT_FALSE(partition.LevelForConstraint(5.5f).has_value());
}

TEST(QualityPartition, MemoryCoversAllLevels) {
  QualityGraph g = MakeFigure3Graph();
  QualityPartition partition(g);
  EXPECT_GE(partition.MemoryBytes(), g.MemoryBytes());
}

TEST(DirectedGraph, OutAndInAdjacency) {
  DirectedQualityGraph g = DirectedQualityGraph::FromEdges(
      3, {{0, 1, 2.0f}, {1, 2, 3.0f}, {2, 0, 4.0f}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumArcs(), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0].to, 1u);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0].to, 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(DirectedGraph, DuplicateArcsKeepMaxQuality) {
  DirectedQualityGraph g = DirectedQualityGraph::FromEdges(
      2, {{0, 1, 2.0f}, {0, 1, 9.0f}});
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_FLOAT_EQ(g.OutNeighbors(0)[0].quality, 9.0f);
}

TEST(DirectedGraph, AsUndirectedMergesDirections) {
  DirectedQualityGraph g = DirectedQualityGraph::FromEdges(
      2, {{0, 1, 2.0f}, {1, 0, 5.0f}});
  QualityGraph u = g.AsUndirected();
  EXPECT_EQ(u.NumEdges(), 1u);
  EXPECT_FLOAT_EQ(u.EdgeQuality(0, 1), 5.0f);
}

TEST(WeightedGraph, LengthsAndQualities) {
  WeightedQualityGraph g = WeightedQualityGraph::FromEdges(
      3, {{0, 1, 4, 2.0f}, {1, 2, 1, 3.0f}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].length, 4u);
  EXPECT_FLOAT_EQ(g.Neighbors(0)[0].quality, 2.0f);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(WeightedGraph, DuplicatesKeepShortest) {
  WeightedQualityGraph g = WeightedQualityGraph::FromEdges(
      2, {{0, 1, 9, 1.0f}, {0, 1, 2, 1.0f}});
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].length, 2u);
}

}  // namespace
}  // namespace wcsd
