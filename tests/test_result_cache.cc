// The dominance-aware result cache (serve/result_cache.h): interval
// semantics, undirected key normalization, replacement under a fixed
// budget, fingerprint invalidation, engine wiring (QueryEngine and
// ShardedQueryEngine answer bit-identically with the cache on), and a
// concurrent hit/insert/invalidate hammer for the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/delta.h"
#include "labeling/shard_manifest.h"
#include "labeling/snapshot.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

IntervalQueryResult MakeInterval(Distance dist, Quality lo, Quality hi) {
  IntervalQueryResult r;
  r.dist = dist;
  r.w_lo = lo;
  r.w_hi = hi;
  return r;
}

TEST(ResultCache, IntervalHitSemantics) {
  ResultCache cache(1 << 20);
  cache.Rebind(0xf00d);
  Distance d = 0;

  EXPECT_FALSE(cache.Lookup(3, 7, 2.0f, &d));
  cache.Insert(3, 7, MakeInterval(5, 1.0f, 3.0f));

  // Any constraint inside [1, 3] hits — not just the inserted w.
  EXPECT_TRUE(cache.Lookup(3, 7, 2.0f, &d));
  EXPECT_EQ(d, 5u);
  EXPECT_TRUE(cache.Lookup(3, 7, 1.0f, &d));
  EXPECT_TRUE(cache.Lookup(3, 7, 3.0f, &d));
  EXPECT_TRUE(cache.Lookup(3, 7, 2.5f, &d));

  // Outside the interval misses; other pairs miss.
  EXPECT_FALSE(cache.Lookup(3, 7, 0.5f, &d));
  EXPECT_FALSE(cache.Lookup(3, 7, 3.5f, &d));
  EXPECT_FALSE(cache.Lookup(3, 8, 2.0f, &d));

  // The graph is undirected: (t, s) shares the entry.
  EXPECT_TRUE(cache.Lookup(7, 3, 2.0f, &d));
  EXPECT_EQ(d, 5u);

  // Unbounded intervals (unreachable pairs, s == t) work, including +inf.
  cache.Insert(1, 2, MakeInterval(kInfDistance, 4.0f, kInfQuality));
  EXPECT_TRUE(cache.Lookup(1, 2, kInfQuality, &d));
  EXPECT_EQ(d, kInfDistance);
  EXPECT_TRUE(cache.Lookup(1, 2, 1e30f, &d));
  EXPECT_FALSE(cache.Lookup(1, 2, 3.5f, &d));

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCache, MultipleDisjointIntervalsPerPair) {
  ResultCache cache(1 << 20);
  Distance d = 0;
  // Three steps of one pair's step function.
  cache.Insert(10, 20, MakeInterval(4, -kInfQuality, 1.0f));
  cache.Insert(10, 20, MakeInterval(6, 1.5f, 3.0f));
  cache.Insert(10, 20, MakeInterval(9, 3.5f, kInfQuality));
  EXPECT_TRUE(cache.Lookup(10, 20, 0.0f, &d));
  EXPECT_EQ(d, 4u);
  EXPECT_TRUE(cache.Lookup(10, 20, 2.0f, &d));
  EXPECT_EQ(d, 6u);
  EXPECT_TRUE(cache.Lookup(10, 20, 100.0f, &d));
  EXPECT_EQ(d, 9u);

  // Re-inserting a present interval is a no-op (still one insert each).
  cache.Insert(10, 20, MakeInterval(6, 1.5f, 3.0f));
  EXPECT_EQ(cache.stats().inserts, 3u);

  // A fourth distinct interval displaces one (kIntervalsPerSlot = 3).
  cache.Insert(10, 20, MakeInterval(7, 3.2f, 3.4f));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(10, 20, 3.3f, &d));
  EXPECT_EQ(d, 7u);
}

TEST(ResultCache, RebindInvalidatesWholesale) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  Distance d = 0;
  cache.Insert(3, 7, MakeInterval(5, 1.0f, 3.0f));
  ASSERT_TRUE(cache.Lookup(3, 7, 2.0f, &d));

  cache.Rebind(1);  // same identity: contents survive
  EXPECT_TRUE(cache.Lookup(3, 7, 2.0f, &d));

  cache.Rebind(2);  // new snapshot identity: wiped
  EXPECT_EQ(cache.fingerprint(), 2u);
  EXPECT_FALSE(cache.Lookup(3, 7, 2.0f, &d));
}

// ------------------------------------------------- scoped invalidation
//
// InvalidateDelta must drop exactly the entries a delta could have
// changed: intervals whose constraint range overlaps the delta's impact
// window, optionally narrowed further by the coupled-reachability probe.
// Entries it keeps must keep HITTING (the counters prove retention).

TEST(ResultCache, InvalidateDeltaQualityScope) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  Distance d = 0;
  // Pair (3, 7): one interval strictly above the impact window, one
  // overlapping it. Pair (4, 9): entirely above the window.
  cache.Insert(3, 7, MakeInterval(5, 3.0f, 5.0f));
  cache.Insert(3, 7, MakeInterval(2, 1.0f, 2.5f));
  cache.Insert(4, 9, MakeInterval(7, 4.0f, kInfQuality));

  // A delta touching edge {100, 101} with qualities up to 2: only
  // constraints w <= 2 can change.
  DeltaImpact impact{100, 101, -kInfQuality, 2.0f};
  size_t dropped = cache.InvalidateDelta(2, {&impact, 1});
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(cache.fingerprint(), 2u);

  // The overlapping interval is gone; the out-of-window intervals hit.
  EXPECT_FALSE(cache.Lookup(3, 7, 2.0f, &d));
  EXPECT_TRUE(cache.Lookup(3, 7, 4.0f, &d));
  EXPECT_EQ(d, 5u);
  EXPECT_TRUE(cache.Lookup(4, 9, 10.0f, &d));
  EXPECT_EQ(d, 7u);
  EXPECT_EQ(cache.stats().hits, 2u);

  // An upgrade q_old -> q_new only touches (q_old, q_new]: an interval
  // wholly below the window survives, while the two intervals straddling
  // it ((3,7)[3,5] and (4,9)[4,inf]) are dropped.
  cache.Insert(5, 6, MakeInterval(3, 1.0f, 2.0f));
  DeltaImpact upgrade{100, 101, 3.0f, 4.0f};
  EXPECT_EQ(cache.InvalidateDelta(3, {&upgrade, 1}), 2u);
  EXPECT_TRUE(cache.Lookup(5, 6, 1.5f, &d));
  EXPECT_FALSE(cache.Lookup(3, 7, 4.0f, &d));
}

TEST(ResultCache, InvalidateDeltaCoupledScope) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  Distance d = 0;
  cache.Insert(3, 7, MakeInterval(5, 1.0f, 3.0f));
  cache.Insert(4, 9, MakeInterval(6, 1.0f, 3.0f));

  // Both intervals overlap the impact window, but the coupled probe says
  // only pair (3, 7) can reach the changed edge from both sides. Keys are
  // normalized s <= t, so the probe sees the normalized pair.
  DeltaImpact impact{100, 101, -kInfQuality, 5.0f};
  size_t dropped = cache.InvalidateDelta(
      2, {&impact, 1},
      [](Vertex s, Vertex t, const DeltaImpact& im, Quality w_test) {
        EXPECT_EQ(im.u, 100u);
        EXPECT_GE(w_test, 1.0f);  // max(iv.w_lo, im.q_lo)
        return s == 3 && t == 7;
      });
  EXPECT_EQ(dropped, 1u);
  EXPECT_FALSE(cache.Lookup(3, 7, 2.0f, &d));
  EXPECT_TRUE(cache.Lookup(4, 9, 2.0f, &d));
  EXPECT_EQ(d, 6u);
}

TEST(ResultCache, InsertBoundDropsStaleGenerations) {
  ResultCache cache(1 << 20);
  cache.Rebind(7);
  Distance d = 0;

  // An insert bound to a stale fingerprint is dropped silently — this is
  // the race where an old-generation engine finishes a query after the
  // cache moved on.
  cache.InsertBound(3, 7, MakeInterval(5, 1.0f, 3.0f), /*expected=*/6);
  EXPECT_FALSE(cache.Lookup(3, 7, 2.0f, &d));

  // Bound to the live fingerprint it lands.
  cache.InsertBound(3, 7, MakeInterval(5, 1.0f, 3.0f), /*expected=*/7);
  EXPECT_TRUE(cache.Lookup(3, 7, 2.0f, &d));
  EXPECT_EQ(d, 5u);
}

TEST(ResultCache, TinyBudgetReplacesInsteadOfGrowing) {
  // The smallest cache: one shard, one probe window of slots. Admission is
  // off so every displacing insert evicts immediately (the policy under
  // test here is replacement, not admission).
  ResultCache cache(1, /*second_chance_admission=*/false);
  EXPECT_EQ(cache.num_shards(), 1u);
  EXPECT_EQ(cache.slots_per_shard(), ResultCache::kProbeWindow);
  EXPECT_LE(cache.MemoryBytes(), 4096u);

  // Insert far more pairs than fit; the cache must stay within budget and
  // keep answering correctly for whatever it retained.
  Distance d = 0;
  for (Vertex i = 0; i < 256; ++i) {
    cache.Insert(i, i + 1000, MakeInterval(i, 1.0f, 3.0f));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  size_t retained = 0;
  for (Vertex i = 0; i < 256; ++i) {
    if (cache.Lookup(i, i + 1000, 2.0f, &d)) {
      EXPECT_EQ(d, Distance{i});
      ++retained;
    }
  }
  EXPECT_GT(retained, 0u);
  EXPECT_LE(retained, cache.num_shards() * cache.slots_per_shard());
}

TEST(ResultCache, SecondChanceAdmissionProtectsResidents) {
  // One shard, four slots, window four: every key probes every slot, so a
  // fifth pair can only land by displacing a resident.
  ResultCache cache(1);
  ASSERT_EQ(cache.num_shards(), 1u);
  ASSERT_EQ(cache.slots_per_shard(), ResultCache::kProbeWindow);
  Distance d = 0;
  for (Vertex i = 0; i < 4; ++i) {
    cache.Insert(i, i + 1000, MakeInterval(i, 1.0f, 3.0f));
  }
  for (Vertex i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.Lookup(i, i + 1000, 2.0f, &d));
  }

  // First touch of a displacing key: refused, residents untouched.
  cache.Insert(50, 1050, MakeInterval(99, 1.0f, 3.0f));
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_FALSE(cache.Lookup(50, 1050, 2.0f, &d));
  for (Vertex i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.Lookup(i, i + 1000, 2.0f, &d));
  }

  // Second touch: the key proved it recurs; admitted by displacement.
  cache.Insert(50, 1050, MakeInterval(99, 1.0f, 3.0f));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(50, 1050, 2.0f, &d));
  EXPECT_EQ(d, 99u);

  // Re-inserting a resident key never needs admission (new interval for a
  // cached pair), and an empty-slot insert is always admitted.
  ResultCache roomy(1 << 20);
  roomy.Insert(1, 2, MakeInterval(5, 1.0f, 2.0f));
  roomy.Insert(1, 2, MakeInterval(7, 3.0f, 4.0f));
  EXPECT_EQ(roomy.stats().admission_rejects, 0u);
  EXPECT_TRUE(roomy.Lookup(1, 2, 3.5f, &d));
  EXPECT_EQ(d, 7u);
}

// --------------------------------------------- generation-bound lookups
//
// Regression for the cross-generation readback bug: Lookup was not
// fingerprint-bound, so after InvalidateDelta an old-generation engine
// sharing the cache could read an entry the NEW generation inserted for a
// delta-touched pair — answering from the wrong index. LookupBound checks
// the slot's certified fingerprint under the same slot-version protocol.

TEST(ResultCache, LookupBoundRefusesOtherGenerations) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  Distance d = 0;
  cache.Insert(3, 7, MakeInterval(5, 1.0f, 3.0f));

  EXPECT_TRUE(cache.LookupBound(3, 7, 2.0f, /*expected=*/1, &d));
  EXPECT_EQ(d, 5u);
  // Same entry, wrong generation: refused (the unbound Lookup still hits).
  EXPECT_FALSE(cache.LookupBound(3, 7, 2.0f, /*expected=*/2, &d));
  EXPECT_TRUE(cache.Lookup(3, 7, 2.0f, &d));
}

TEST(ResultCache, CrossGenerationReadbackAfterInvalidateDelta) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  Distance d = 0;
  // Old generation caches two pairs; the delta touches only (3, 7).
  cache.InsertBound(3, 7, MakeInterval(5, 1.0f, 3.0f), /*expected=*/1);
  cache.InsertBound(4, 9, MakeInterval(6, 1.0f, 3.0f), /*expected=*/1);

  DeltaImpact impact{100, 101, -kInfQuality, kInfQuality};
  size_t dropped = cache.InvalidateDelta(
      2, {&impact, 1},
      [](Vertex s, Vertex t, const DeltaImpact&, Quality) {
        return s == 3 && t == 7;
      });
  EXPECT_EQ(dropped, 1u);

  // The new generation recomputes the delta-touched pair — the delta
  // changed its answer from 5 to 42 — and caches it.
  cache.InsertBound(3, 7, MakeInterval(42, 1.0f, 3.0f), /*expected=*/2);

  // The OLD generation must not read the new generation's entry for the
  // delta-touched pair (it would serve distance 42 from an index where the
  // answer is 5), nor the survivor (re-certified for generation 2 only).
  EXPECT_FALSE(cache.LookupBound(3, 7, 2.0f, /*expected=*/1, &d));
  EXPECT_FALSE(cache.LookupBound(4, 9, 2.0f, /*expected=*/1, &d));

  // The new generation reads both: the fresh entry and the survivor.
  EXPECT_TRUE(cache.LookupBound(3, 7, 2.0f, /*expected=*/2, &d));
  EXPECT_EQ(d, 42u);
  EXPECT_TRUE(cache.LookupBound(4, 9, 2.0f, /*expected=*/2, &d));
  EXPECT_EQ(d, 6u);
}

// ------------------------------------------------------- engine wiring

QualityGraph MakeCacheGraph(uint64_t seed) {
  QualityModel quality;
  quality.num_levels = 5;
  return GenerateBarabasiAlbert(60, 3, quality, seed);
}

std::vector<BatchQueryInput> MakeCacheWorkload(size_t n, size_t count,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQueryInput> queries;
  for (size_t i = 0; i < count; ++i) {
    queries.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Quality>(rng.NextInRange(0, 6)) +
                           (rng.NextBool(0.3) ? 0.5f : 0.0f)});
  }
  return queries;
}

TEST(ResultCache, CachedQueryEngineAnswersBitIdentically) {
  QualityGraph g = MakeCacheGraph(99);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  auto shared = std::make_shared<const WcIndex>(std::move(index));
  const size_t n = shared->NumVertices();

  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    QueryEngineOptions plain_options;
    plain_options.num_threads = 1;
    plain_options.impl = impl;
    QueryEngine plain(shared, plain_options);

    QueryEngineOptions cached_options = plain_options;
    cached_options.cache_bytes = 64 << 10;
    QueryEngine cached(shared, cached_options);
    ASSERT_NE(cached.cache(), nullptr);
    ASSERT_EQ(cached.cache()->fingerprint(),
              IndexContentFingerprint(shared->flat_labels()));

    // Two passes over a repeating workload: the second is mostly hits and
    // must still be bit-identical.
    auto queries = MakeCacheWorkload(n, 300, 5);
    const std::vector<BatchQueryInput> repeats(queries.begin(),
                                               queries.begin() + 150);
    queries.insert(queries.end(), repeats.begin(), repeats.end());
    for (int pass = 0; pass < 2; ++pass) {
      for (const BatchQueryInput& q : queries) {
        ASSERT_EQ(cached.Query(q.s, q.t, q.w), plain.Query(q.s, q.t, q.w))
            << "pass=" << pass << " s=" << q.s << " t=" << q.t
            << " w=" << q.w;
      }
      ASSERT_EQ(cached.Batch(queries), plain.Batch(queries)) << "pass="
                                                             << pass;
    }

    QueryEngineStats stats = cached.stats();
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_GT(stats.cache_misses, 0u);
    EXPECT_GT(stats.cache_inserts, 0u);
    // Degenerate queries bypass the cache entirely.
    Distance self = cached.Query(3, 3, 1.0f);
    Distance oob = cached.Query(0, static_cast<Vertex>(n + 7), 1.0f);
    EXPECT_EQ(self, 0u);
    EXPECT_EQ(oob, kInfDistance);
    EXPECT_EQ(cached.stats().cache_hits + cached.stats().cache_misses,
              stats.cache_hits + stats.cache_misses);
    // An uncached engine reports zero cache counters.
    EXPECT_EQ(plain.stats().cache_hits, 0u);
    EXPECT_EQ(plain.stats().cache_misses, 0u);
  }
}

TEST(ResultCache, CachedShardedEngineAnswersBitIdentically) {
  QualityGraph g = MakeCacheGraph(123);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  const uint64_t n = index.NumVertices();

  const std::string dir = testing::TempDir();
  std::vector<std::string> paths;
  for (int k = 0; k < 3; ++k) {
    std::string path = dir + "/cache_shard" + std::to_string(k);
    ASSERT_TRUE(WriteSnapshotShard(path, index.flat_labels(), n * k / 3,
                                   n * (k + 1) / 3, n)
                    .ok());
    paths.push_back(path);
  }

  QueryEngineOptions plain_options;
  plain_options.num_threads = 1;
  auto plain = ShardedQueryEngine::OpenMmap(paths, plain_options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  QueryEngineOptions cached_options = plain_options;
  cached_options.cache_bytes = 64 << 10;
  auto cached = ShardedQueryEngine::OpenMmap(paths, cached_options);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ASSERT_NE(cached.value().cache(), nullptr);
  // The sharded fingerprint is tiling-invariant: it must equal the
  // unsharded index's content fingerprint.
  EXPECT_EQ(cached.value().cache()->fingerprint(),
            IndexContentFingerprint(index.flat_labels()));

  auto queries = MakeCacheWorkload(n, 400, 17);
  for (int pass = 0; pass < 2; ++pass) {
    for (const BatchQueryInput& q : queries) {
      ASSERT_EQ(cached.value().Query(q.s, q.t, q.w),
                plain.value().Query(q.s, q.t, q.w))
          << "pass=" << pass << " s=" << q.s << " t=" << q.t << " w=" << q.w;
    }
    ASSERT_EQ(cached.value().Batch(queries), plain.value().Batch(queries));
  }
  EXPECT_GT(cached.value().stats().cache_hits, 0u);

  for (const std::string& path : paths) std::remove(path.c_str());
}

// --------------------------------------------------- concurrency hammer

// Raw cache hammered from many threads — lookups, inserts, and periodic
// wholesale invalidation racing each other. Run under the TSan CI job.
TEST(ResultCache, ConcurrentHitInsertInvalidateHammer) {
  ResultCache cache(32 << 10);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong{0};

  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    Distance d = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(128));
      Vertex t = static_cast<Vertex>(rng.NextBounded(128));
      Quality w = static_cast<Quality>(rng.NextInRange(0, 8));
      // The "index" the hammer simulates: dist = s ^ t, valid on a fixed
      // interval — so any hit can be verified against ground truth.
      if (cache.Lookup(s, t, w, &d)) {
        if (d != (s ^ t)) wrong.fetch_add(1, std::memory_order_relaxed);
      } else {
        cache.Insert(s, t, MakeInterval(s ^ t, -kInfQuality, kInfQuality));
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint64_t i = 0; i < 4; ++i) threads.emplace_back(worker, 100 + i);
  std::thread invalidator([&] {
    for (int round = 0; round < 50; ++round) {
      cache.Rebind(static_cast<uint64_t>(round));
      std::this_thread::yield();
      (void)cache.stats();  // stats() races the workers too
    }
  });
  invalidator.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  ResultCacheStats stats = cache.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// Seqlock torn-read hammer: the lock-free read path must never observe a
// half-written slot. Writers keep overwriting the SAME few slots with
// self-consistent (interval, distance) tuples — interval [v, v] paired
// with distance v — while lock-free readers assert that any hit returns
// the distance matching the constraint it asked. A torn read would stitch
// w_lo/w_hi from one write to dist from another and trip the assertion;
// the all-atomic slot fields plus the version protocol are what TSan
// checks here (run under the TSan CI job).
TEST(ResultCache, SeqlockReaderTornReadHammer) {
  ResultCache cache(1 << 20);
  cache.Rebind(1);
  constexpr Vertex kPairs = 8;
  constexpr uint32_t kValues = 64;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  auto writer = [&](uint64_t seed) {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(kPairs));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(kValues));
      // Same slot, ever-changing payload: interval [v, v] certifies
      // distance v. Writers rotate through a slot's three intervals, so
      // the same interval index is overwritten constantly.
      cache.Insert(s, s + 100,
                   MakeInterval(v, static_cast<Quality>(v),
                                static_cast<Quality>(v)));
    }
  };
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    Distance d = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(kPairs));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(kValues));
      Quality w = static_cast<Quality>(v);
      // Both read paths are lock-free; exercise both.
      if (cache.Lookup(s, s + 100, w, &d) && d != Distance{v}) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      if (cache.LookupBound(s, s + 100, w, 1, &d) && d != Distance{v}) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint64_t i = 0; i < 2; ++i) threads.emplace_back(writer, 200 + i);
  for (uint64_t i = 0; i < 4; ++i) threads.emplace_back(reader, 300 + i);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u);
  ResultCacheStats stats = cache.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.hits, 0u);
}

// A cache-enabled engine hammered by concurrent batches from many caller
// threads: every result must still be bit-identical to the uncached
// reference. Run under the TSan CI job.
TEST(ResultCache, ConcurrentCachedBatchesStayCorrect) {
  QualityGraph g = MakeCacheGraph(7);
  WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
  index.Finalize();
  auto shared = std::make_shared<const WcIndex>(std::move(index));
  const size_t n = shared->NumVertices();

  QueryEngineOptions options;
  options.num_threads = 3;
  options.cache_bytes = 64 << 10;
  QueryEngine cached(shared, options);
  QueryEngineOptions plain_options;
  plain_options.num_threads = 1;
  QueryEngine plain(shared, plain_options);

  auto queries = MakeCacheWorkload(n, 512, 29);
  const std::vector<Distance> expected = plain.Batch(queries);

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        if (cached.Batch(queries) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(cached.stats().cache_hits, 0u);
}

// The full live-update handoff: one shared cache is filled by generation
// A, delta-invalidated with the coupled probe against A's index, and then
// serves generation B — bit-identical to an uncached B engine, with
// surviving entries still hitting (retention is the point of scoped
// invalidation; wholesale Rebind would start cold).
TEST(ResultCache, CachedEngineAcrossSwapBitIdentical) {
  QualityGraph g = MakeCacheGraph(314);
  WcIndex index_a = WcIndex::Build(g, WcIndexOptions::Plus());
  index_a.Finalize();
  auto shared_a = std::make_shared<const WcIndex>(std::move(index_a));
  const size_t n = shared_a->NumVertices();

  // Generation B: upgrade one existing edge — a tight impact window, so
  // most cached intervals survive the scoped invalidation.
  const Vertex eu = 0;
  const Vertex ev = g.Neighbors(0)[0].to;
  const Quality q_old = g.EdgeQuality(eu, ev);
  const Quality q_new = 5.0f;
  ASSERT_LT(q_old, q_new);
  DynamicWcIndex dyn(g);
  dyn.InsertEdge(eu, ev, q_new);
  WcIndex index_b =
      WcIndex::Build(dyn.Snapshot(), WcIndexOptions::Plus());
  index_b.Finalize();
  auto shared_b = std::make_shared<const WcIndex>(std::move(index_b));

  auto cache = std::make_shared<ResultCache>(1 << 20);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.shared_cache = cache;
  QueryEngine engine_a(shared_a, options);
  QueryEngine engine_b(shared_b, options);
  ASSERT_NE(engine_a.cache_fingerprint(), engine_b.cache_fingerprint());
  cache->Rebind(engine_a.cache_fingerprint());

  // Fill the cache through generation A.
  auto queries = MakeCacheWorkload(n, 400, 777);
  for (const BatchQueryInput& q : queries) engine_a.Query(q.s, q.t, q.w);
  ASSERT_GT(cache->stats().inserts, 0u);

  // Scoped invalidation with the coupled probe against A's index — the
  // exact recipe `wcsd_cli serve --watch` runs before swapping.
  DeltaImpact impact{eu, ev, q_old, q_new};
  const WcIndex& old_index = *shared_a;
  size_t dropped = cache->InvalidateDelta(
      engine_b.cache_fingerprint(), {&impact, 1},
      [&old_index](Vertex s, Vertex t, const DeltaImpact& im,
                   Quality w_test) {
        return (old_index.Query(s, im.u, w_test) != kInfDistance &&
                old_index.Query(im.v, t, w_test) != kInfDistance) ||
               (old_index.Query(s, im.v, w_test) != kInfDistance &&
                old_index.Query(im.u, t, w_test) != kInfDistance);
      });

  // Generation B through the retained cache must be bit-identical to an
  // uncached engine over B.
  QueryEngineOptions plain_options;
  plain_options.num_threads = 1;
  QueryEngine plain_b(shared_b, plain_options);
  ResultCacheStats before = cache->stats();
  for (const BatchQueryInput& q : queries) {
    ASSERT_EQ(engine_b.Query(q.s, q.t, q.w), plain_b.Query(q.s, q.t, q.w))
        << "s=" << q.s << " t=" << q.t << " w=" << q.w
        << " (dropped=" << dropped << ")";
  }
  // Retention: the replay hit entries that survived the invalidation.
  EXPECT_GT(cache->stats().hits, before.hits);
}

}  // namespace
}  // namespace wcsd
