// Shared fixtures reconstructing the paper's worked examples.

#ifndef WCSD_TESTS_PAPER_FIXTURES_H_
#define WCSD_TESTS_PAPER_FIXTURES_H_

#include "graph/builder.h"
#include "graph/graph.h"

namespace wcsd {

/// The running-example graph of Figure 3, reconstructed from Table II and
/// Examples 2-4 (every edge below is forced by some label entry or worked
/// step in the text):
///   (v0,v1,3) (v0,v3,1) (v1,v2,5) (v1,v3,2) (v2,v3,4) (v3,v4,4)
///   (v3,v5,2) (v4,v5,3)
inline QualityGraph MakeFigure3Graph() {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 3);
  b.AddEdge(0, 3, 1);
  b.AddEdge(1, 2, 5);
  b.AddEdge(1, 3, 2);
  b.AddEdge(2, 3, 4);
  b.AddEdge(3, 4, 4);
  b.AddEdge(3, 5, 2);
  b.AddEdge(4, 5, 3);
  return b.Build();
}

/// A graph consistent with every fact the paper states about its Figure 2
/// example (the figure itself is underspecified in the text, so this is a
/// witness reconstruction — Example 1's assertions must all hold on it):
///   * {v0 -> v2 -> v8} is a 1-path and the shortest one: dist^1(v0,v8)=2;
///   * (v0, v2) has quality < 2, so that path is not a 2-path;
///   * {v0 -> v1 -> v2 -> v8} is the shortest 2-path: dist^2(v0,v8)=3;
///   * {v1 -> v2 -> v9 -> v8 -> v5 -> v4} is both a 2-path and a 3-path;
///   * {v1 -> v2 -> v8 -> v5 -> v4} is a shorter 2-path between v1 and v4.
inline QualityGraph MakeFigure2Graph() {
  GraphBuilder b(10);
  b.AddEdge(0, 1, 2);  // v0 - v1
  b.AddEdge(0, 2, 1);  // v0 - v2 (quality < 2, per Example 1)
  b.AddEdge(1, 2, 3);  // v1 - v2
  b.AddEdge(2, 8, 2);  // v2 - v8
  b.AddEdge(2, 9, 3);  // v2 - v9
  b.AddEdge(9, 8, 3);  // v9 - v8
  b.AddEdge(8, 5, 3);  // v8 - v5
  b.AddEdge(5, 4, 3);  // v5 - v4
  // Remaining vertices of the figure, attached with weak links.
  b.AddEdge(3, 0, 1);
  b.AddEdge(6, 5, 1);
  b.AddEdge(7, 9, 1);
  return b.Build();
}

/// A graph matching the motivating communication network of Figure 1:
/// routers R1..R4 (0-3) and switches S1..S2 (4-5), edge qualities are link
/// bandwidths in Mbps. The query "distance from R3 to R2 with >= 3 Mbps"
/// must be 4 via R3 -> S1 -> R4 -> S2 -> R2, because S1 -> R2 only carries
/// 2 Mbps.
inline QualityGraph MakeFigure1Network() {
  // Vertices: R1=0, R2=1, R3=2, R4=3, S1=4, S2=5.
  GraphBuilder b(6);
  b.AddEdge(2, 4, 5);  // R3 - S1, fast uplink
  b.AddEdge(4, 1, 2);  // S1 - R2, the 2 Mbps bottleneck from Example (1)
  b.AddEdge(4, 3, 4);  // S1 - R4
  b.AddEdge(3, 5, 4);  // R4 - S2
  b.AddEdge(5, 1, 3);  // S2 - R2
  b.AddEdge(0, 4, 3);  // R1 - S1 (extra router, not on the example route)
  return b.Build();
}

}  // namespace wcsd

#endif  // WCSD_TESTS_PAPER_FIXTURES_H_
