// Shard planner + manifest tests.
//
// Planner properties (seeded random label distributions + real indexes of
// the paper's graphs): planned boundaries always tile [0, n), never split
// below one vertex, respect --max-bytes, and the planned byte skew is
// never worse than the even-vertex split (and strictly better on
// hub-heavy inputs — the point of the planner).
//
// Manifest: round-trip encode/decode, the shard-set writer, and
// ShardedQueryEngine::OpenManifest's validation ladder — every negative
// (bad tiling, wrong fingerprint, missing file, swapped file, corrupt
// payload, corrupt/truncated manifest) must fail with a clean Status that
// names the offending shard, never crash. A golden manifest fixture in
// tests/data pins the on-disk encoding byte-for-byte (regenerate with
// WCSD_REGEN_SHARD_GOLDEN=1 after a deliberate format change).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "paper_fixtures.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/checksum.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(WCSD_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// A synthetic label distribution with controllable per-vertex mass:
/// vertex v gets `entries_of(v)` single-entry hub groups.
template <typename EntriesOf>
FlatLabelSet MakeSyntheticFlat(size_t n, EntriesOf entries_of) {
  LabelSet labels(n);
  for (Vertex v = 0; v < n; ++v) {
    size_t count = entries_of(v);
    for (size_t k = 0; k < count; ++k) {
      labels.Append(v, LabelEntry{static_cast<Rank>(k),
                                  static_cast<Distance>(k + 1), 1.0f});
    }
  }
  return FlatLabelSet::FromLabelSet(labels);
}

/// Checks the universal plan invariants: shards tile [0, n) in order and
/// (given n > 0) no shard is empty; per-shard masses add up.
void ExpectValidPlan(const FlatLabelSet& flat, const ShardPlan& plan) {
  ASSERT_FALSE(plan.shards.empty());
  EXPECT_EQ(plan.num_vertices, flat.NumVertices());
  uint64_t cursor = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  for (const PlannedShard& shard : plan.shards) {
    EXPECT_EQ(shard.begin, cursor);
    if (flat.NumVertices() > 0) {
      EXPECT_GT(shard.end, shard.begin) << "empty shard in plan";
    }
    cursor = shard.end;
    entries += shard.entry_count;
    bytes += shard.bytes;
    uint64_t from_vertices = 0;
    for (uint64_t v = shard.begin; v < shard.end; ++v) {
      from_vertices += VertexLabelBytes(flat, static_cast<Vertex>(v));
    }
    EXPECT_EQ(shard.bytes, from_vertices);
  }
  EXPECT_EQ(cursor, flat.NumVertices());
  EXPECT_EQ(entries, flat.TotalEntries());
  EXPECT_EQ(bytes, plan.total_bytes);
}

TEST(ShardPlan, OptionValidation) {
  FlatLabelSet flat = MakeSyntheticFlat(4, [](Vertex) { return 1u; });
  EXPECT_FALSE(PlanShards(flat, {}).ok());
  ShardPlanOptions both;
  both.num_shards = 2;
  both.max_bytes = 100;
  EXPECT_FALSE(PlanShards(flat, both).ok());
  ShardPlanOptions even_only;
  even_only.even_vertex = true;
  even_only.max_bytes = 100;
  EXPECT_FALSE(PlanShards(flat, even_only).ok());
}

TEST(ShardPlan, TilesRandomDistributions) {
  Rng rng(0x9a7d);
  for (int round = 0; round < 40; ++round) {
    size_t n = 1 + static_cast<size_t>(rng.NextBounded(300));
    uint64_t salt = rng.NextBounded(1u << 30);
    FlatLabelSet flat = MakeSyntheticFlat(n, [&](Vertex v) {
      // Mix of uniform, spiky, and empty label sizes.
      uint64_t h = (v * 2654435761u) ^ salt;
      return static_cast<size_t>(h % 7 == 0 ? h % 97 : h % 4);
    });
    ShardPlanOptions options;
    options.num_shards = 1 + static_cast<size_t>(rng.NextBounded(10));
    auto plan = PlanShards(flat, options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ExpectValidPlan(flat, plan.value());
    // Clamped: never more shards than vertices, never an empty shard.
    EXPECT_EQ(plan.value().shards.size(),
              std::min<uint64_t>(options.num_shards, n));

    ShardPlanOptions by_bytes;
    by_bytes.max_bytes = 16 + rng.NextBounded(4096);
    auto capped = PlanShards(flat, by_bytes);
    ASSERT_TRUE(capped.ok()) << capped.status().ToString();
    ExpectValidPlan(flat, capped.value());
    for (const PlannedShard& shard : capped.value().shards) {
      // The cap holds unless the shard is a single vertex that alone
      // exceeds it (a shard never splits below one vertex).
      if (shard.num_vertices() > 1) {
        EXPECT_LE(shard.bytes, by_bytes.max_bytes);
      }
    }
  }
}

TEST(ShardPlan, PlannedNeverWorseThanEven) {
  Rng rng(0xbeef);
  for (int round = 0; round < 30; ++round) {
    size_t n = 2 + static_cast<size_t>(rng.NextBounded(200));
    uint64_t salt = rng.NextBounded(1u << 30);
    bool hub_heavy = round % 2 == 0;
    FlatLabelSet flat = MakeSyntheticFlat(n, [&](Vertex v) {
      if (hub_heavy) return static_cast<size_t>(v < n / 8 ? 64 : 1);
      return static_cast<size_t>(((v * 2654435761u) ^ salt) % 5);
    });
    ShardPlanOptions options;
    options.num_shards = 2 + static_cast<size_t>(rng.NextBounded(6));
    auto planned = PlanShards(flat, options);
    options.even_vertex = true;
    auto even = PlanShards(flat, options);
    ASSERT_TRUE(planned.ok() && even.ok());
    EXPECT_LE(planned.value().MaxShardBytes(), even.value().MaxShardBytes())
        << "n=" << n << " shards=" << options.num_shards
        << " hub_heavy=" << hub_heavy;
  }
}

TEST(ShardPlan, HubHeavyPrefixGetsBalanced) {
  // The motivating shape: label mass concentrated on a hub prefix. An
  // even split puts nearly everything in shard 0; the planner must do
  // strictly better.
  FlatLabelSet flat = MakeSyntheticFlat(
      256, [](Vertex v) { return static_cast<size_t>(v < 16 ? 200 : 1); });
  ShardPlanOptions options;
  options.num_shards = 4;
  auto planned = PlanShards(flat, options);
  options.even_vertex = true;
  auto even = PlanShards(flat, options);
  ASSERT_TRUE(planned.ok() && even.ok());
  EXPECT_GT(even.value().ByteSkew(), 2.0);     // even split is badly skewed
  EXPECT_LT(planned.value().ByteSkew(), 1.5);  // planner fixes it
  EXPECT_LT(planned.value().ByteSkew(), even.value().ByteSkew());
  // And the hub prefix ends up alone in a small first shard.
  EXPECT_LT(planned.value().shards[0].num_vertices(), 64u);
}

TEST(ShardPlan, RealIndexesOfPaperGraphs) {
  for (const QualityGraph& g :
       {MakeFigure3Graph(), MakeFigure2Graph(), MakeFigure1Network()}) {
    WcIndex index = WcIndex::Build(g, WcIndexOptions::Plus());
    index.Finalize();
    const FlatLabelSet& flat = index.flat_labels();
    for (size_t shards : {1u, 2u, 3u, 17u}) {
      ShardPlanOptions options;
      options.num_shards = shards;
      auto plan = PlanShards(flat, options);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      ExpectValidPlan(flat, plan.value());
      options.even_vertex = true;
      auto even = PlanShards(flat, options);
      ASSERT_TRUE(even.ok());
      EXPECT_LE(plan.value().MaxShardBytes(), even.value().MaxShardBytes());
    }
    ShardPlanOptions by_bytes;
    by_bytes.max_bytes = 128;
    auto capped = PlanShards(flat, by_bytes);
    ASSERT_TRUE(capped.ok());
    ExpectValidPlan(flat, capped.value());
  }
}

TEST(ShardPlan, EdgeSizes) {
  FlatLabelSet empty = MakeSyntheticFlat(0, [](Vertex) { return 0u; });
  ShardPlanOptions options;
  options.num_shards = 4;
  auto plan = PlanShards(empty, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().shards.size(), 1u);
  EXPECT_EQ(plan.value().shards[0].begin, 0u);
  EXPECT_EQ(plan.value().shards[0].end, 0u);
  EXPECT_EQ(plan.value().ByteSkew(), 0.0);

  FlatLabelSet one = MakeSyntheticFlat(1, [](Vertex) { return 3u; });
  auto single = PlanShards(one, options);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single.value().shards.size(), 1u);  // clamped to n
  EXPECT_EQ(single.value().shards[0].end, 1u);
}

// ---------------------------------------------------------------- manifest

/// One deterministic fixture index (the golden snapshot's graph) shared by
/// the manifest tests.
WcIndex BuildFigure3Index() {
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(MakeFigure3Graph(), options);
  index.Finalize();
  return index;
}

TEST(ShardManifestFormat, RoundTrip) {
  ShardManifest manifest;
  manifest.num_vertices_total = 42;
  manifest.total_entries = 1000;
  manifest.total_groups = 600;
  manifest.total_label_bytes = 17472;
  manifest.fingerprint = 0x1234'5678'9abc'def0ULL;
  manifest.shards = {
      {"a.shard0", 0, 10, 400, 300, 8000, 0xdeadbeef},
      {"deep/dir/b.shard1", 10, 42, 600, 300, 9472, 0x01020304},
  };
  std::string path = testing::TempDir() + "/roundtrip.manifest";
  ASSERT_TRUE(WriteShardManifest(path, manifest).ok());
  auto read = ReadShardManifest(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), manifest);
  std::remove(path.c_str());
}

TEST(ShardManifestFormat, ResolveShardPath) {
  EXPECT_EQ(ResolveShardPath("/data/set.manifest", "set.shard0"),
            "/data/set.shard0");
  EXPECT_EQ(ResolveShardPath("set.manifest", "set.shard0"), "set.shard0");
  EXPECT_EQ(ResolveShardPath("/data/set.manifest", "/abs/other.shard0"),
            "/abs/other.shard0");
}

TEST(ShardManifestFormat, ValidateTilingCatchesBadSets) {
  ShardManifest manifest;
  manifest.num_vertices_total = 6;
  manifest.shards = {{"s0", 0, 4, 0, 0, 0, 0}, {"s1", 3, 6, 0, 0, 0, 0}};
  Status overlap = manifest.ValidateTiling();
  EXPECT_FALSE(overlap.ok());
  EXPECT_NE(overlap.message().find("tile"), std::string::npos);
  EXPECT_NE(overlap.message().find("s1"), std::string::npos);

  manifest.shards = {{"s0", 0, 2, 0, 0, 0, 0}, {"s1", 3, 6, 0, 0, 0, 0}};
  EXPECT_FALSE(manifest.ValidateTiling().ok());  // gap

  manifest.shards = {{"s0", 0, 6, 0, 0, 0, 0}};
  manifest.total_entries = 99;  // masses don't add up
  Status totals = manifest.ValidateTiling();
  EXPECT_FALSE(totals.ok());
  EXPECT_NE(totals.message().find("add up"), std::string::npos);

  manifest.total_entries = 0;
  EXPECT_TRUE(manifest.ValidateTiling().ok());
}

TEST(ShardManifestFormat, FingerprintIsContentAndTilingInvariant) {
  WcIndex index = BuildFigure3Index();
  uint64_t fingerprint = IndexContentFingerprint(index.flat_labels());
  EXPECT_NE(fingerprint, 0u);
  // Recomputing on an identical rebuild agrees; a different index differs.
  WcIndex again = BuildFigure3Index();
  EXPECT_EQ(IndexContentFingerprint(again.flat_labels()), fingerprint);
  WcIndex other = WcIndex::Build(MakeFigure2Graph(), WcIndexOptions::Plus());
  other.Finalize();
  EXPECT_NE(IndexContentFingerprint(other.flat_labels()), fingerprint);
}

/// Writes a fresh 2-shard planned set of the Figure 3 index under
/// `stem` (in TempDir unless absolute) and returns the written set.
WrittenShardSet WriteFigure3ShardSet(const std::string& stem) {
  WcIndex index = BuildFigure3Index();
  ShardPlanOptions options;
  options.num_shards = 2;
  auto plan = PlanShards(index.flat_labels(), options);
  EXPECT_TRUE(plan.ok());
  auto written = WriteShardSet(stem, index.flat_labels(), plan.value());
  EXPECT_TRUE(written.ok()) << written.status().ToString();
  return std::move(written).value();
}

void RemoveShardSet(const WrittenShardSet& set) {
  std::remove(set.manifest_path.c_str());
  for (const std::string& path : set.shard_paths) {
    std::remove(path.c_str());
  }
}

TEST(ShardManifestFormat, WriteShardSetMatchesIndex) {
  WcIndex index = BuildFigure3Index();
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_set");
  EXPECT_EQ(set.manifest.num_vertices_total, index.NumVertices());
  EXPECT_EQ(set.manifest.total_entries, index.TotalEntries());
  EXPECT_EQ(set.manifest.fingerprint,
            IndexContentFingerprint(index.flat_labels()));
  EXPECT_TRUE(set.manifest.ValidateTiling().ok());
  // Shard paths are stored manifest-relative.
  for (const ShardManifestEntry& shard : set.manifest.shards) {
    EXPECT_EQ(shard.path.find('/'), std::string::npos);
  }
  auto read = ReadShardManifest(set.manifest_path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), set.manifest);
  RemoveShardSet(set);
}

TEST(ShardManifestServe, OpenManifestAnswersLikeUnsharded) {
  WcIndex index = BuildFigure3Index();
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_serve");
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.verify_level = SnapshotVerifyLevel::kDeep;
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = ShardedQueryEngine::OpenManifest(set.manifest_path, options,
                                                 verify);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value().NumVertices(), index.NumVertices());
  EXPECT_EQ(engine.value().num_shards(), 2u);
  for (Vertex s = 0; s < index.NumVertices(); ++s) {
    for (Vertex t = 0; t < index.NumVertices(); ++t) {
      for (Quality w : {1.0f, 2.0f, 3.0f, 5.0f}) {
        EXPECT_EQ(engine.value().Query(s, t, w), index.Query(s, t, w))
            << s << " " << t << " " << w;
      }
    }
  }
  // Balance reporting covers the whole range in tiling order.
  auto balance = engine.value().ShardBalance();
  ASSERT_EQ(balance.size(), 2u);
  EXPECT_EQ(balance[0].vertex_begin, 0u);
  EXPECT_EQ(balance[1].vertex_end, index.NumVertices());
  EXPECT_EQ(balance[0].entry_count + balance[1].entry_count,
            index.TotalEntries());
  RemoveShardSet(set);
}

TEST(ShardManifestServe, RejectsBadTilings) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_badtile");
  // Overlap: stretch shard 0's recorded range over shard 1's start.
  ShardManifest bad = set.manifest;
  bad.shards[1].vertex_begin -= 1;
  ASSERT_TRUE(WriteShardManifest(set.manifest_path, bad).ok());
  auto overlap = ShardedQueryEngine::OpenManifest(set.manifest_path);
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.status().message().find("tile"), std::string::npos);
  EXPECT_NE(overlap.status().message().find(bad.shards[1].path),
            std::string::npos);

  // Gap.
  bad = set.manifest;
  bad.shards[1].vertex_begin += 1;
  ASSERT_TRUE(WriteShardManifest(set.manifest_path, bad).ok());
  EXPECT_FALSE(ShardedQueryEngine::OpenManifest(set.manifest_path).ok());

  // Truncated coverage.
  bad = set.manifest;
  bad.num_vertices_total += 5;
  ASSERT_TRUE(WriteShardManifest(set.manifest_path, bad).ok());
  auto uncovered = ShardedQueryEngine::OpenManifest(set.manifest_path);
  ASSERT_FALSE(uncovered.ok());
  EXPECT_NE(uncovered.status().message().find("cover"), std::string::npos);
  RemoveShardSet(set);
}

TEST(ShardManifestServe, RejectsWrongFingerprint) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_fp");
  ShardManifest bad = set.manifest;
  bad.fingerprint ^= 1;
  ASSERT_TRUE(WriteShardManifest(set.manifest_path, bad).ok());
  // The fingerprint is only recomputed under verify_checksums (it must
  // read every payload page); the cheap path still opens.
  EXPECT_TRUE(ShardedQueryEngine::OpenManifest(set.manifest_path).ok());
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto checked =
      ShardedQueryEngine::OpenManifest(set.manifest_path, {}, verify);
  ASSERT_FALSE(checked.ok());
  EXPECT_NE(checked.status().message().find("fingerprint"),
            std::string::npos);
  RemoveShardSet(set);
}

TEST(ShardManifestServe, RejectsMissingShardFile) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_missing");
  std::remove(set.shard_paths[1].c_str());
  auto missing = ShardedQueryEngine::OpenManifest(set.manifest_path);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("shard 1"), std::string::npos);
  EXPECT_NE(missing.status().message().find(set.shard_paths[1]),
            std::string::npos);
  RemoveShardSet(set);
}

TEST(ShardManifestServe, RejectsSwappedShardFile) {
  // A shard file regenerated from a different index (same vertex range)
  // fails the recorded snapshot-header CRC before any payload is trusted.
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_swap");
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 1);
  b.AddEdge(2, 3, 1);
  b.AddEdge(3, 4, 1);
  b.AddEdge(4, 5, 1);
  WcIndex other = WcIndex::Build(b.Build(), WcIndexOptions::Plus());
  other.Finalize();
  const ShardManifestEntry& entry = set.manifest.shards[0];
  ASSERT_TRUE(WriteSnapshotShard(set.shard_paths[0], other.flat_labels(),
                                 entry.vertex_begin, entry.vertex_end,
                                 set.manifest.num_vertices_total)
                  .ok());
  auto swapped = ShardedQueryEngine::OpenManifest(set.manifest_path);
  ASSERT_FALSE(swapped.ok());
  EXPECT_NE(swapped.status().message().find("shard 0"), std::string::npos);
  EXPECT_NE(swapped.status().message().find("not the file"),
            std::string::npos);
  RemoveShardSet(set);
}

TEST(ShardManifestServe, RejectsCorruptShardPayload) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_corrupt");
  // Flip one payload byte past the (self-checked) header page.
  std::string bytes = ReadFileBytes(set.shard_paths[0]);
  ASSERT_GT(bytes.size(), 4097u);
  bytes[4100] = static_cast<char>(bytes[4100] ^ 0x40);
  WriteFileBytes(set.shard_paths[0], bytes);
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto corrupt =
      ShardedQueryEngine::OpenManifest(set.manifest_path, {}, verify);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("shard 0"), std::string::npos);
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos);
  RemoveShardSet(set);
}

TEST(ShardManifestFormat, RejectsCorruptOrTruncatedManifest) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_mfbad");
  std::string bytes = ReadFileBytes(set.manifest_path);

  // Any body flip breaks the trailing CRC.
  std::string flipped = bytes;
  flipped[20] = static_cast<char>(flipped[20] ^ 0x01);
  std::string path = testing::TempDir() + "/bad.manifest";
  WriteFileBytes(path, flipped);
  auto corrupt = ReadShardManifest(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos);

  // Truncation.
  WriteFileBytes(path, bytes.substr(0, 10));
  auto truncated = ReadShardManifest(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated"),
            std::string::npos);

  // Bad magic / version, with the trailing CRC re-fixed so the check under
  // test is the one that fires.
  auto refix = [&](std::string mutated) {
    uint32_t crc =
        Crc32c(mutated.data(), mutated.size() - sizeof(uint32_t));
    std::memcpy(mutated.data() + mutated.size() - sizeof(uint32_t), &crc,
                sizeof(crc));
    return mutated;
  };
  std::string bad_magic = bytes;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xff);
  WriteFileBytes(path, refix(bad_magic));
  auto magic = ReadShardManifest(path);
  ASSERT_FALSE(magic.ok());
  EXPECT_NE(magic.status().message().find("magic"), std::string::npos);

  std::string bad_version = bytes;
  bad_version[8] = 99;
  WriteFileBytes(path, refix(bad_version));
  auto version = ReadShardManifest(path);
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.status().message().find("version"), std::string::npos);

  std::remove(path.c_str());
  RemoveShardSet(set);
}

// ---------------------------------------------------- OpenMmap diagnostics

TEST(ShardedOpenMmap, TilingErrorsNameTheShard) {
  WcIndex index = BuildFigure3Index();
  const FlatLabelSet& flat = index.flat_labels();
  const uint64_t n = flat.NumVertices();
  std::string dir = testing::TempDir();
  std::string a = dir + "/diag_a.shard";
  std::string b = dir + "/diag_b.shard";

  // Gap: [0, 3) + [4, n).
  ASSERT_TRUE(WriteSnapshotShard(a, flat, 0, 3, n).ok());
  ASSERT_TRUE(WriteSnapshotShard(b, flat, 4, n, n).ok());
  auto gap = ShardedQueryEngine::OpenMmap({a, b});
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.status().message().find("gap at vertex 3"),
            std::string::npos)
      << gap.status().message();
  EXPECT_NE(gap.status().message().find("shard 1"), std::string::npos);
  EXPECT_NE(gap.status().message().find(b), std::string::npos);

  // Overlap: [0, 5) + [3, n).
  ASSERT_TRUE(WriteSnapshotShard(a, flat, 0, 5, n).ok());
  ASSERT_TRUE(WriteSnapshotShard(b, flat, 3, n, n).ok());
  auto overlap = ShardedQueryEngine::OpenMmap({a, b});
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.status().message().find("overlap at vertex 3"),
            std::string::npos)
      << overlap.status().message();
  EXPECT_NE(overlap.status().message().find(b), std::string::npos);

  // Missing tail: [0, 3) alone.
  ASSERT_TRUE(WriteSnapshotShard(a, flat, 0, 3, n).ok());
  auto uncovered = ShardedQueryEngine::OpenMmap({a});
  ASSERT_FALSE(uncovered.ok());
  EXPECT_NE(uncovered.status().message().find("cover"), std::string::npos);
  EXPECT_NE(uncovered.status().message().find(a), std::string::npos);

  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ------------------------------------------------------------- golden pins

bool RegenRequested() {
  const char* regen = std::getenv("WCSD_REGEN_SHARD_GOLDEN");
  return regen != nullptr && regen[0] == '1';
}

// The checked-in fig3_golden.manifest + fig3_golden.shard{0,1} pin the
// manifest encoding and the shard writer, like the snapshot and wire
// goldens: the fixture index (Figure 3, identity order) is fully
// deterministic, so a byte difference means the format changed.
TEST(ShardGolden, WriterIsByteStable) {
  WrittenShardSet set =
      WriteFigure3ShardSet(testing::TempDir() + "/fig3_golden");
  if (RegenRequested()) {
    WriteFileBytes(GoldenPath("fig3_golden.manifest"),
                   ReadFileBytes(set.manifest_path));
    for (size_t k = 0; k < set.shard_paths.size(); ++k) {
      WriteFileBytes(GoldenPath("fig3_golden.shard" + std::to_string(k)),
                     ReadFileBytes(set.shard_paths[k]));
    }
  }
  EXPECT_EQ(ReadFileBytes(set.manifest_path),
            ReadFileBytes(GoldenPath("fig3_golden.manifest")))
      << "the manifest writer no longer produces the golden bytes — if the "
         "format changed deliberately, bump kShardManifestVersion and "
         "regenerate with WCSD_REGEN_SHARD_GOLDEN=1";
  for (size_t k = 0; k < set.shard_paths.size(); ++k) {
    EXPECT_EQ(ReadFileBytes(set.shard_paths[k]),
              ReadFileBytes(GoldenPath("fig3_golden.shard" +
                                       std::to_string(k))))
        << "shard " << k << " bytes changed — regenerate with "
           "WCSD_REGEN_SHARD_GOLDEN=1 after a deliberate format change";
  }
  RemoveShardSet(set);
}

TEST(ShardGolden, GoldenSetLoadsAndAnswers) {
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  verify.verify_level = SnapshotVerifyLevel::kDeep;
  QueryEngineOptions options;
  options.num_threads = 1;
  auto engine = ShardedQueryEngine::OpenManifest(
      GoldenPath("fig3_golden.manifest"), options, verify);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  WcIndex index = BuildFigure3Index();
  ASSERT_EQ(engine.value().NumVertices(), index.NumVertices());
  EXPECT_EQ(engine.value().Query(2, 5, 2.0f), 2u);  // the paper spot check
  for (Vertex s = 0; s < index.NumVertices(); ++s) {
    for (Vertex t = 0; t < index.NumVertices(); ++t) {
      for (Quality w : {1.0f, 2.0f, 4.0f}) {
        EXPECT_EQ(engine.value().Query(s, t, w), index.Query(s, t, w));
      }
    }
  }
}

}  // namespace
}  // namespace wcsd
