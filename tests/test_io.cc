// Graph IO tests: edge-list text, DIMACS, binary snapshots, error paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/io.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EdgeListIo, ParsesSimpleList) {
  auto result = ParseEdgeList("0 1 2.5\n1 2 3\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QualityGraph& g = result.value();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_FLOAT_EQ(g.EdgeQuality(0, 1), 2.5f);
}

TEST(EdgeListIo, SkipsCommentsAndBlanks) {
  auto result = ParseEdgeList("# header\n\n% other comment\n0 1 1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 1u);
}

TEST(EdgeListIo, HonorsVertexHint) {
  auto result = ParseEdgeList("0 1 1\n", /*num_vertices_hint=*/10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumVertices(), 10u);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  auto result = ParseEdgeList("0 1\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(EdgeListIo, FileRoundTrip) {
  QualityGraph g = MakeFigure3Graph();
  std::string path = TempPath("fig3.edges");
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto loaded = ReadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), g);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileIsIoError) {
  auto result = ReadEdgeListFile("/nonexistent/definitely/missing.edges");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DimacsIo, ParsesArcsAsQualities) {
  auto result = ParseDimacs(
      "c comment line\n"
      "p sp 3 4\n"
      "a 1 2 5\n"
      "a 2 1 5\n"
      "a 2 3 7\n"
      "a 3 2 7\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QualityGraph& g = result.value();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_FLOAT_EQ(g.EdgeQuality(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(g.EdgeQuality(1, 2), 7.0f);
}

TEST(DimacsIo, MissingHeaderIsCorruption) {
  auto result = ParseDimacs("a 1 2 3\n");
  EXPECT_FALSE(result.ok());
}

TEST(DimacsIo, ZeroBasedIdIsCorruption) {
  auto result = ParseDimacs("p sp 2 1\na 0 1 3\n");
  EXPECT_FALSE(result.ok());
}

TEST(DimacsIo, OutOfRangeIdIsCorruption) {
  auto result = ParseDimacs("p sp 2 1\na 1 9 3\n");
  EXPECT_FALSE(result.ok());
}

TEST(BinaryIo, RoundTrip) {
  QualityGraph g = MakeFigure3Graph();
  std::string path = TempPath("fig3.bin");
  ASSERT_TRUE(WriteBinaryGraph(g, path).ok());
  auto loaded = ReadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), g);
  std::remove(path.c_str());
}

TEST(BinaryIo, BadMagicRejected) {
  std::string path = TempPath("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  auto result = ReadBinaryGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryIo, TruncatedFileRejected) {
  QualityGraph g = MakeFigure3Graph();
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBinaryGraph(g, path).ok());
  // Truncate the file to cut edge records.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  auto result = ReadBinaryGraph(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcsd
