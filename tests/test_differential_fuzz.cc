// Differential fuzzing of the whole query stack.
//
// For randomized graphs across four generator families and random
// (s, t, w) triples, every answer path must agree bit-for-bit:
//   * the four QueryImpls on the append-oriented LabelSet backend,
//   * the four QueryImpls on the finalized flat CSR backend,
//   * a QueryEngine serving the mmap-loaded snapshot of the index,
//   * the same engine behind a deliberately tiny dominance-aware result
//     cache (serve/result_cache.h), queried twice per case so both the
//     miss+insert and the interval-hit paths are differentially checked,
//   * a ShardedQueryEngine stitching vertex-range shard snapshots,
//   * a second ShardedQueryEngine over a label-mass-planned shard set
//     opened through its manifest (labeling/shard_manifest.h),
//   * a WcServer + WcClient round trip over the wire protocol (the
//     networked path serves the same mmap engine through a real socket),
//   * the ConstrainedDijkstra ground truth on the raw graph.
// Builds alternate between the sequential and the rank-batched parallel
// pipeline, so construction is fuzzed too (and races surface under the
// TSan CI job, which runs this suite).
//
// On a mismatch the failing case is minimized — edges are greedily removed
// while the disagreement persists — and a self-contained reproduction
// (edge list + query + seeds) is printed.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "labeling/delta.h"
#include "graph/generators.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "net/client.h"
#include "net/server.h"
#include "search/constrained_dijkstra.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

constexpr const char* kFamilies[] = {"road", "social", "smallworld",
                                     "random"};

QualityGraph MakeFuzzGraph(size_t family, uint64_t seed) {
  Rng rng(seed * 2654435761u + family);
  QualityModel quality;
  quality.num_levels = static_cast<int>(rng.NextInRange(2, 6));
  switch (family) {
    case 0: {  // road-like perturbed grid
      RoadOptions options;
      options.rows = static_cast<size_t>(rng.NextInRange(4, 8));
      options.cols = static_cast<size_t>(rng.NextInRange(4, 8));
      options.quality = quality;
      return GenerateRoadNetwork(options, seed);
    }
    case 1: {  // social-like scale-free
      size_t n = static_cast<size_t>(rng.NextInRange(30, 70));
      size_t epv = static_cast<size_t>(rng.NextInRange(2, 4));
      return GenerateBarabasiAlbert(n, epv, quality, seed);
    }
    case 2: {  // small world
      size_t n = static_cast<size_t>(rng.NextInRange(30, 70));
      size_t k = static_cast<size_t>(rng.NextInRange(1, 3));
      return GenerateWattsStrogatz(n, k, 0.2, quality, seed);
    }
    default: {  // connected random
      size_t n = static_cast<size_t>(rng.NextInRange(30, 80));
      size_t m = n - 1 + static_cast<size_t>(rng.NextInRange(0, n));
      return GenerateRandomConnected(n, m, quality, seed);
    }
  }
}

using EdgeList = std::vector<std::tuple<Vertex, Vertex, Quality>>;

EdgeList EdgesOf(const QualityGraph& g) {
  EdgeList edges;
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (a.to > u) edges.emplace_back(u, a.to, a.quality);
    }
  }
  return edges;
}

QualityGraph FromEdges(size_t n, const EdgeList& edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v, q] : edges) builder.AddEdge(u, v, q);
  return builder.Build();
}

// Runs every answer path for one (s, t, w) and reports the first
// disagreement against the Dijkstra ground truth (empty string = all
// agree). Exercising the snapshot layers is part of the check: the index
// is snapshotted to `dir` and served via mmap and via two shards.
struct Stack {
  WcIndex index;          // not finalized: vector-of-vectors backend
  WcIndex flat;           // finalized flat backend
  WcIndex mm;             // mmap-loaded snapshot
  std::shared_ptr<const QueryEngine> engine;
  std::shared_ptr<const QueryEngine> cached;  // dominance-aware result cache
  std::unique_ptr<ShardedQueryEngine> sharded;
  std::unique_ptr<ShardedQueryEngine> planned;  // manifest-opened shard set
  std::unique_ptr<WcServer> server;  // serves `engine` over the wire
  std::unique_ptr<WcClient> client;
};

Stack BuildStack(const QualityGraph& g, size_t build_threads,
                 const std::string& tag) {
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = build_threads;
  WcIndex index = WcIndex::Build(g, options);
  WcIndex flat = index;
  flat.Finalize();

  std::string dir = testing::TempDir();
  std::string full = dir + "/fuzz_" + tag + ".wcsnap";
  EXPECT_TRUE(flat.SaveSnapshot(full).ok());
  auto mm = WcIndex::LoadMmap(full);
  EXPECT_TRUE(mm.ok()) << mm.status().ToString();

  QueryEngineOptions serve;
  serve.num_threads = 1;  // concurrency is hammered in test_serve/test_net
  auto engine = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(mm.value()), serve);

  // The cached path: the same mmap index behind the dominance-aware result
  // cache, deliberately tiny so replacement churns during the fuzz run.
  QueryEngineOptions cached_serve = serve;
  cached_serve.cache_bytes = 8 << 10;
  auto cached = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(mm.value()), cached_serve);

  // The networked path: an in-process server over the same mmap engine,
  // queried through a real loopback socket.
  auto started = WcServer::Start(MakeQueryService(engine));
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::make_unique<WcServer>(std::move(started).value());
  auto connected = WcClient::Connect("127.0.0.1", server->port());
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::make_unique<WcClient>(std::move(connected).value());

  const uint64_t n = flat.NumVertices();
  std::vector<std::string> shard_paths;
  for (int k = 0; k < 2; ++k) {
    std::string path = dir + "/fuzz_" + tag + ".shard" + std::to_string(k);
    EXPECT_TRUE(WriteSnapshotShard(path, flat.flat_labels(), n * k / 2,
                                   n * (k + 1) / 2, n)
                    .ok());
    shard_paths.push_back(path);
  }
  auto sharded = ShardedQueryEngine::OpenMmap(shard_paths, serve);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto sharded_ptr = std::make_unique<ShardedQueryEngine>(
      std::move(sharded).value());

  // The planned path: a label-mass-balanced shard set round-tripped
  // through its manifest, fingerprint verification included.
  ShardPlanOptions plan_options;
  plan_options.num_shards = 3;
  auto plan = PlanShards(flat.flat_labels(), plan_options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  // Distinct stem: the even 2-shard files above are already mmap'd under
  // "fuzz_<tag>.shard*", and overwriting a live mapping would SIGBUS.
  auto written = WriteShardSet(dir + "/fuzz_planned_" + tag,
                               flat.flat_labels(), plan.value());
  EXPECT_TRUE(written.ok()) << written.status().ToString();
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto planned = ShardedQueryEngine::OpenManifest(
      written.value().manifest_path, serve, verify);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  auto planned_ptr =
      std::make_unique<ShardedQueryEngine>(std::move(planned).value());
  std::remove(written.value().manifest_path.c_str());
  for (const std::string& p : written.value().shard_paths) {
    std::remove(p.c_str());
  }

  std::remove(full.c_str());
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  return Stack{std::move(index),  std::move(flat),
               std::move(mm).value(), std::move(engine),
               std::move(cached),
               std::move(sharded_ptr), std::move(planned_ptr),
               std::move(server), std::move(client)};
}

std::string CheckOne(const QualityGraph& g, const Stack& stack, Vertex s,
                     Vertex t, Quality w) {
  const Distance truth = ConstrainedDijkstraUnit(g, s, t, w);
  std::ostringstream out;
  auto expect = [&](const char* what, Distance got) {
    if (got != truth && out.tellp() == 0) {
      out << what << " = " << got << " but dijkstra = " << truth;
    }
  };
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    expect("labels impl", stack.index.Query(s, t, w, impl));
    expect("flat impl", stack.flat.Query(s, t, w, impl));
    expect("mmap impl", stack.mm.Query(s, t, w, impl));
  }
  expect("engine", stack.engine->Query(s, t, w));
  // Twice: the first call may miss and insert, the second must hit the
  // cached interval — both answers have to match the ground truth.
  expect("cached (miss path)", stack.cached->Query(s, t, w));
  expect("cached (hit path)", stack.cached->Query(s, t, w));
  expect("sharded", stack.sharded->Query(s, t, w));
  expect("planned", stack.planned->Query(s, t, w));
  auto net = stack.client->Query(s, t, w);
  if (!net.ok()) {
    if (out.tellp() == 0) out << "net error: " << net.status().ToString();
  } else {
    expect("net", net.value());
  }
  return out.str();
}

// Greedy edge-removal minimization: keep dropping edges while the
// disagreement persists, bounded by a rebuild budget.
std::string MinimizeAndReport(size_t family, uint64_t seed, size_t n,
                              EdgeList edges, Vertex s, Vertex t, Quality w,
                              size_t build_threads) {
  auto mismatches = [&](const EdgeList& candidate) {
    QualityGraph g = FromEdges(n, candidate);
    Stack stack = BuildStack(g, build_threads, "minimize");
    return !CheckOne(g, stack, s, t, w).empty();
  };
  size_t budget = 300;
  bool shrunk = true;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t i = 0; i < edges.size() && budget > 0; ++i) {
      EdgeList candidate = edges;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      --budget;
      if (mismatches(candidate)) {
        edges = std::move(candidate);
        shrunk = true;
        --i;
      }
    }
  }
  std::ostringstream out;
  out << "minimized reproduction (family=" << kFamilies[family]
      << " seed=" << seed << " build_threads=" << build_threads
      << "):\n  n=" << n << " s=" << s << " t=" << t << " w=" << w
      << "\n  edges:";
  for (const auto& [u, v, q] : edges) {
    out << " (" << u << "," << v << ",q=" << q << ")";
  }
  return out.str();
}

TEST(DifferentialFuzz, AllAnswerPathsAgree) {
  constexpr size_t kGraphsPerFamily = 9;
  constexpr size_t kTriplesPerGraph = 30;  // 4 * 9 * 30 = 1080 cases
  size_t cases = 0;
  for (size_t family = 0; family < 4; ++family) {
    for (size_t gi = 0; gi < kGraphsPerFamily; ++gi) {
      const uint64_t seed = 1000 * family + gi + 1;
      const QualityGraph g = MakeFuzzGraph(family, seed);
      const size_t n = g.NumVertices();
      ASSERT_GT(n, 0u);
      // Alternate sequential and parallel construction.
      const size_t build_threads = gi % 2 == 0 ? 1 : 3;
      Stack stack = BuildStack(g, build_threads,
                               std::to_string(family) + "_" +
                                   std::to_string(gi));

      Rng rng(seed ^ 0xf022u);
      std::vector<BatchQueryInput> batch;
      std::vector<Distance> expected;
      for (size_t qi = 0; qi < kTriplesPerGraph; ++qi) {
        Vertex s = static_cast<Vertex>(rng.NextBounded(n));
        Vertex t = static_cast<Vertex>(rng.NextBounded(n));
        // Levels are integers 1..6; half-offsets probe strict threshold
        // behavior, and the extremes probe all-pass / all-fail.
        Quality w = static_cast<Quality>(rng.NextInRange(0, 6)) +
                    (rng.NextBool(0.3) ? 0.5f : 0.0f);
        ++cases;
        std::string mismatch = CheckOne(g, stack, s, t, w);
        if (!mismatch.empty()) {
          FAIL() << mismatch << "\n"
                 << MinimizeAndReport(family, seed, n, EdgesOf(g), s, t, w,
                                      build_threads);
        }
        batch.push_back({s, t, w});
        expected.push_back(ConstrainedDijkstraUnit(g, s, t, w));
      }
      // The batch path over the mmap engine must match, positionally.
      ASSERT_EQ(stack.engine->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.cached->Batch(batch), expected)
          << "cached family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.sharded->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.planned->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      // And both networked batch shapes: one kBatchQuery frame, and the
      // pipelined stream of kQuery frames.
      auto net_batch = stack.client->Batch(batch);
      ASSERT_TRUE(net_batch.ok()) << net_batch.status().ToString();
      ASSERT_EQ(net_batch.value(), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      auto net_pipelined = stack.client->QueryPipelined(batch, 8);
      ASSERT_TRUE(net_pipelined.ok()) << net_pipelined.status().ToString();
      ASSERT_EQ(net_pipelined.value(), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
    }
  }
  EXPECT_GE(cases, 1000u);
}

// Live-update differential fuzz (ISSUE 7): random insert / delete /
// upgrade sequences on a DynamicWcIndex must stay bit-identical AT EVERY
// STEP to a fresh WcIndex built on the materialized graph — across all
// four QueryImpls and both label backends. The recorded sequence is then
// round-tripped through the on-disk delta log and replayed onto an
// adopted copy of the ORIGINAL index (the offline `wcsd_cli update`
// path), which must land on the same answers as the always-live index.
TEST(DifferentialFuzz, LiveUpdateMatchesFreshRebuild) {
  constexpr size_t kN = 30;
  constexpr int kLevels = 5;
  constexpr int kSteps = 12;
  constexpr size_t kTriples = 20;
  for (uint64_t seed : {21u, 22u, 23u}) {
    QualityModel quality;
    quality.num_levels = kLevels;
    QualityGraph initial = GenerateRandomConnected(kN, 50, quality, seed);
    WcIndexOptions options = WcIndexOptions::Plus();
    DynamicWcIndex live(initial, options);
    DeltaLog log;
    Rng rng(seed ^ 0xdeadu);

    auto pick_edge = [&](const QualityGraph& g) {
      for (;;) {
        Vertex u = static_cast<Vertex>(rng.NextBounded(kN));
        if (g.Degree(u) == 0) continue;
        const auto neighbors = g.Neighbors(u);
        return std::make_pair(
            u, neighbors[rng.NextBounded(neighbors.size())]);
      }
    };

    for (int step = 0; step < kSteps; ++step) {
      QualityGraph before = live.Snapshot();
      DeltaBatch batch;
      const int kind = static_cast<int>(rng.NextBounded(3));
      if (kind == 0) {  // insert (may upgrade a parallel edge: same path)
        Vertex u = static_cast<Vertex>(rng.NextBounded(kN));
        Vertex v = static_cast<Vertex>((u + 1 + rng.NextBounded(kN - 1)) %
                                       kN);
        Quality q = static_cast<Quality>(rng.NextInRange(1, kLevels));
        live.InsertEdge(u, v, q);
        batch.records.push_back(
            {static_cast<uint8_t>(DeltaOp::kInsert), {}, u, v, q, 0.0f});
      } else if (kind == 1) {  // delete an existing edge
        auto [u, arc] = pick_edge(before);
        live.DeleteEdge(u, arc.to);
        batch.records.push_back({static_cast<uint8_t>(DeltaOp::kDelete),
                                 {},
                                 u,
                                 arc.to,
                                 arc.quality,
                                 0.0f});
      } else {  // upgrade an existing upgradable edge (else fall back)
        bool upgraded = false;
        for (int tries = 0; tries < 32 && !upgraded; ++tries) {
          auto [u, arc] = pick_edge(before);
          if (arc.quality < static_cast<Quality>(kLevels)) {
            Quality q_new = arc.quality + 1.0f;
            live.InsertEdge(u, arc.to, q_new);
            batch.records.push_back(
                {static_cast<uint8_t>(DeltaOp::kUpgrade),
                 {},
                 u,
                 arc.to,
                 q_new,
                 arc.quality});
            upgraded = true;
          }
        }
        if (!upgraded) continue;
      }
      log.batches.push_back(std::move(batch));

      // Bit-identical at this step: fresh build on the materialized
      // graph, all four impls, both backends.
      QualityGraph current = live.Snapshot();
      WcIndex fresh = WcIndex::Build(current, options);
      WcIndex flat = fresh;
      flat.Finalize();
      Rng probe(seed * 1000 + static_cast<uint64_t>(step));
      for (size_t qi = 0; qi < kTriples; ++qi) {
        Vertex s = static_cast<Vertex>(probe.NextBounded(kN));
        Vertex t = static_cast<Vertex>(probe.NextBounded(kN));
        Quality w = static_cast<Quality>(probe.NextInRange(1, kLevels));
        const Distance expected = live.Query(s, t, w);
        ASSERT_EQ(expected, ConstrainedDijkstraUnit(current, s, t, w))
            << "seed=" << seed << " step=" << step << " " << s << "->" << t
            << " w=" << w;
        for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                               QueryImpl::kBinary, QueryImpl::kMerge}) {
          ASSERT_EQ(fresh.Query(s, t, w, impl), expected)
              << "seed=" << seed << " step=" << step;
          ASSERT_EQ(flat.Query(s, t, w, impl), expected)
              << "seed=" << seed << " step=" << step;
        }
      }
    }

    // Offline replay: write the recorded log to disk, read it back, adopt
    // the original index, Apply — answers must match the live index.
    std::string delta_path = testing::TempDir() + "/fuzz_live_" +
                             std::to_string(seed) + ".wcdelta";
    ASSERT_TRUE(WriteDeltaLog(delta_path, log).ok());
    auto reread = ReadDeltaLog(delta_path);
    ASSERT_TRUE(reread.ok()) << reread.status().ToString();
    std::remove(delta_path.c_str());

    WcIndex base = WcIndex::Build(initial, options);
    DynamicWcIndex replayed(initial, base.order(), base.labels(), options);
    replayed.Apply(reread.value());
    QualityGraph final_graph = live.Snapshot();
    ASSERT_EQ(replayed.Snapshot(), final_graph) << "seed=" << seed;
    Rng probe(seed * 7919);
    for (size_t qi = 0; qi < 2 * kTriples; ++qi) {
      Vertex s = static_cast<Vertex>(probe.NextBounded(kN));
      Vertex t = static_cast<Vertex>(probe.NextBounded(kN));
      Quality w = static_cast<Quality>(probe.NextInRange(1, kLevels));
      ASSERT_EQ(replayed.Query(s, t, w), live.Query(s, t, w))
          << "seed=" << seed << " " << s << "->" << t << " w=" << w;
    }
  }
}

}  // namespace
}  // namespace wcsd
