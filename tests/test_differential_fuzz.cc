// Differential fuzzing of the whole query stack.
//
// For randomized graphs across four generator families and random
// (s, t, w) triples, every answer path must agree bit-for-bit:
//   * the four QueryImpls on the append-oriented LabelSet backend,
//   * the four QueryImpls on the finalized flat CSR backend,
//   * a QueryEngine serving the mmap-loaded snapshot of the index,
//   * the same engine behind a deliberately tiny dominance-aware result
//     cache (serve/result_cache.h), queried twice per case so both the
//     miss+insert and the interval-hit paths are differentially checked,
//   * the four QueryImpls on the COMPRESSED backend (a v3 snapshot,
//     labeling/compressed_flat.h — kMerge streams the varint bytes, the
//     rest decode then run the flat kernel),
//   * a cold-tier QueryEngine: the compressed mmap behind a tiny
//     decoded-label cache, queried twice per case so decode-miss and
//     decode-hit both get checked,
//   * a ShardedQueryEngine stitching vertex-range shard snapshots,
//   * a second ShardedQueryEngine over a label-mass-planned shard set
//     opened through its manifest (labeling/shard_manifest.h),
//   * a third, mixed-backend ShardedQueryEngine: one compressed shard
//     stitched next to one flat shard,
//   * a WcServer + WcClient round trip over the wire protocol (the
//     networked path serves the same mmap engine through a real socket),
//     and a second round trip over the cold-tier engine,
//   * the ConstrainedDijkstra ground truth on the raw graph.
// Builds alternate between the sequential and the rank-batched parallel
// pipeline, so construction is fuzzed too (and races surface under the
// TSan CI job, which runs this suite).
//
// On a mismatch the failing case is minimized — edges are greedily removed
// while the disagreement persists — and a self-contained reproduction
// (edge list + query + seeds) is printed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/path_index.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "labeling/delta.h"
#include "graph/generators.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "net/client.h"
#include "net/server.h"
#include "search/constrained_dijkstra.h"
#include "search/pareto_enumerator.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

constexpr const char* kFamilies[] = {"road", "social", "smallworld",
                                     "random"};

QualityGraph MakeFuzzGraph(size_t family, uint64_t seed) {
  Rng rng(seed * 2654435761u + family);
  QualityModel quality;
  quality.num_levels = static_cast<int>(rng.NextInRange(2, 6));
  switch (family) {
    case 0: {  // road-like perturbed grid
      RoadOptions options;
      options.rows = static_cast<size_t>(rng.NextInRange(4, 8));
      options.cols = static_cast<size_t>(rng.NextInRange(4, 8));
      options.quality = quality;
      return GenerateRoadNetwork(options, seed);
    }
    case 1: {  // social-like scale-free
      size_t n = static_cast<size_t>(rng.NextInRange(30, 70));
      size_t epv = static_cast<size_t>(rng.NextInRange(2, 4));
      return GenerateBarabasiAlbert(n, epv, quality, seed);
    }
    case 2: {  // small world
      size_t n = static_cast<size_t>(rng.NextInRange(30, 70));
      size_t k = static_cast<size_t>(rng.NextInRange(1, 3));
      return GenerateWattsStrogatz(n, k, 0.2, quality, seed);
    }
    default: {  // connected random
      size_t n = static_cast<size_t>(rng.NextInRange(30, 80));
      size_t m = n - 1 + static_cast<size_t>(rng.NextInRange(0, n));
      return GenerateRandomConnected(n, m, quality, seed);
    }
  }
}

using EdgeList = std::vector<std::tuple<Vertex, Vertex, Quality>>;

EdgeList EdgesOf(const QualityGraph& g) {
  EdgeList edges;
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (a.to > u) edges.emplace_back(u, a.to, a.quality);
    }
  }
  return edges;
}

QualityGraph FromEdges(size_t n, const EdgeList& edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v, q] : edges) builder.AddEdge(u, v, q);
  return builder.Build();
}

// Runs every answer path for one (s, t, w) and reports the first
// disagreement against the Dijkstra ground truth (empty string = all
// agree). Exercising the snapshot layers is part of the check: the index
// is snapshotted to `dir` and served via mmap and via two shards.
struct Stack {
  WcIndex index;          // not finalized: vector-of-vectors backend
  WcIndex flat;           // finalized flat backend
  WcIndex mm;             // mmap-loaded snapshot
  WcIndex cmm;            // mmap-loaded COMPRESSED (v3) snapshot
  std::shared_ptr<const QueryEngine> engine;
  std::shared_ptr<const QueryEngine> cached;  // dominance-aware result cache
  /// Cold tier: the compressed mmap behind a deliberately tiny
  /// decoded-label cache, so admission and eviction churn during the run.
  std::shared_ptr<const QueryEngine> cold;
  std::unique_ptr<ShardedQueryEngine> sharded;
  std::unique_ptr<ShardedQueryEngine> planned;  // manifest-opened shard set
  /// Mixed-backend shard set: one compressed shard, one flat.
  std::unique_ptr<ShardedQueryEngine> csharded;
  std::unique_ptr<WcServer> server;  // serves `engine` over the wire
  std::unique_ptr<WcClient> client;
  std::unique_ptr<WcServer> cold_server;  // serves `cold` over the wire
  std::unique_ptr<WcClient> cold_client;
};

Stack BuildStack(const QualityGraph& g, size_t build_threads,
                 const std::string& tag, bool record_parents = false) {
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = build_threads;
  // Alternating parents also fuzzes the v2 snapshot section end to end:
  // with quads the mmap stack serves paths off the fast unwind, without
  // them every layer runs the explicit degraded fallback.
  options.record_parents = record_parents;
  WcIndex index = WcIndex::Build(g, options);
  WcIndex flat = index;
  flat.Finalize();

  std::string dir = testing::TempDir();
  std::string full = dir + "/fuzz_" + tag + ".wcsnap";
  EXPECT_TRUE(flat.SaveSnapshot(full).ok());
  auto mm = WcIndex::LoadMmap(full);
  EXPECT_TRUE(mm.ok()) << mm.status().ToString();

  // The compressed backend: the same labels delta/varint-encoded in a v3
  // snapshot, mmap-served. Compressed files never carry parent quads, so
  // on this layer the path family always runs the index-guided fallback.
  std::string cfull = dir + "/fuzz_" + tag + "_c.wcsnap";
  SnapshotWriteOptions compress_opts;
  compress_opts.compress = true;
  EXPECT_TRUE(WriteSnapshot(cfull, flat.flat_labels(), &flat.order(), {},
                            compress_opts)
                  .ok());
  auto cmm = WcIndex::LoadMmap(cfull);
  EXPECT_TRUE(cmm.ok()) << cmm.status().ToString();
  EXPECT_TRUE(cmm.value().compressed());

  QueryEngineOptions serve;
  serve.num_threads = 1;  // concurrency is hammered in test_serve/test_net
  // Every serving layer gets the graph, so the kPath family is checked
  // through the engines and over the wire too.
  serve.graph = std::make_shared<const QualityGraph>(g);
  auto engine = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(mm.value()), serve);

  // The cached path: the same mmap index behind the dominance-aware result
  // cache, deliberately tiny so replacement churns during the fuzz run.
  QueryEngineOptions cached_serve = serve;
  cached_serve.cache_bytes = 8 << 10;
  auto cached = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(mm.value()), cached_serve);

  // The cold tier: compressed mmap behind a tiny decoded-label cache.
  QueryEngineOptions cold_serve = serve;
  cold_serve.decode_cache_bytes = 32 << 10;
  auto cold = std::make_shared<const QueryEngine>(
      std::make_shared<const WcIndex>(cmm.value()), cold_serve);

  // The networked path: an in-process server over the same mmap engine,
  // queried through a real loopback socket.
  auto started = WcServer::Start(MakeQueryService(engine));
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::make_unique<WcServer>(std::move(started).value());
  auto connected = WcClient::Connect("127.0.0.1", server->port());
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::make_unique<WcClient>(std::move(connected).value());

  // A second loopback server over the cold-tier engine: the compressed
  // backend checked end to end over the wire too.
  auto cold_started = WcServer::Start(MakeQueryService(cold));
  EXPECT_TRUE(cold_started.ok()) << cold_started.status().ToString();
  auto cold_server =
      std::make_unique<WcServer>(std::move(cold_started).value());
  auto cold_connected = WcClient::Connect("127.0.0.1", cold_server->port());
  EXPECT_TRUE(cold_connected.ok()) << cold_connected.status().ToString();
  auto cold_client =
      std::make_unique<WcClient>(std::move(cold_connected).value());

  const uint64_t n = flat.NumVertices();
  std::vector<std::string> shard_paths;
  for (int k = 0; k < 2; ++k) {
    std::string path = dir + "/fuzz_" + tag + ".shard" + std::to_string(k);
    EXPECT_TRUE(WriteSnapshotShard(path, flat.flat_labels(), n * k / 2,
                                   n * (k + 1) / 2, n)
                    .ok());
    shard_paths.push_back(path);
  }
  auto sharded = ShardedQueryEngine::OpenMmap(shard_paths, serve);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto sharded_ptr = std::make_unique<ShardedQueryEngine>(
      std::move(sharded).value());

  // Mixed-backend shard set: the low range compressed, the high range
  // flat, stitched by one engine with the decode cache in front of the
  // compressed half.
  std::vector<std::string> cshard_paths;
  for (int k = 0; k < 2; ++k) {
    std::string path = dir + "/fuzz_" + tag + "_c.shard" + std::to_string(k);
    SnapshotWriteOptions shard_opts;
    shard_opts.compress = k == 0;
    EXPECT_TRUE(WriteSnapshotShard(path, flat.flat_labels(), n * k / 2,
                                   n * (k + 1) / 2, n, {}, shard_opts)
                    .ok());
    cshard_paths.push_back(path);
  }
  auto csharded = ShardedQueryEngine::OpenMmap(cshard_paths, cold_serve);
  EXPECT_TRUE(csharded.ok()) << csharded.status().ToString();
  EXPECT_TRUE(csharded.value().compressed());
  auto csharded_ptr =
      std::make_unique<ShardedQueryEngine>(std::move(csharded).value());

  // The planned path: a label-mass-balanced shard set round-tripped
  // through its manifest, fingerprint verification included.
  ShardPlanOptions plan_options;
  plan_options.num_shards = 3;
  auto plan = PlanShards(flat.flat_labels(), plan_options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  // Distinct stem: the even 2-shard files above are already mmap'd under
  // "fuzz_<tag>.shard*", and overwriting a live mapping would SIGBUS.
  auto written = WriteShardSet(dir + "/fuzz_planned_" + tag,
                               flat.flat_labels(), plan.value());
  EXPECT_TRUE(written.ok()) << written.status().ToString();
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  auto planned = ShardedQueryEngine::OpenManifest(
      written.value().manifest_path, serve, verify);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  auto planned_ptr =
      std::make_unique<ShardedQueryEngine>(std::move(planned).value());
  std::remove(written.value().manifest_path.c_str());
  for (const std::string& p : written.value().shard_paths) {
    std::remove(p.c_str());
  }

  std::remove(full.c_str());
  std::remove(cfull.c_str());
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  for (const std::string& p : cshard_paths) std::remove(p.c_str());
  return Stack{std::move(index),       std::move(flat),
               std::move(mm).value(),  std::move(cmm).value(),
               std::move(engine),      std::move(cached),
               std::move(cold),        std::move(sharded_ptr),
               std::move(planned_ptr), std::move(csharded_ptr),
               std::move(server),      std::move(client),
               std::move(cold_server), std::move(cold_client)};
}

std::string CheckOne(const QualityGraph& g, const Stack& stack, Vertex s,
                     Vertex t, Quality w) {
  const Distance truth = ConstrainedDijkstraUnit(g, s, t, w);
  std::ostringstream out;
  auto expect = [&](const char* what, Distance got) {
    if (got != truth && out.tellp() == 0) {
      out << what << " = " << got << " but dijkstra = " << truth;
    }
  };
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    expect("labels impl", stack.index.Query(s, t, w, impl));
    expect("flat impl", stack.flat.Query(s, t, w, impl));
    expect("mmap impl", stack.mm.Query(s, t, w, impl));
    // Every impl on the compressed backend too: kMerge streams the varint
    // bytes directly, the rest decode then run the flat kernel.
    expect("compressed impl", stack.cmm.Query(s, t, w, impl));
  }
  expect("engine", stack.engine->Query(s, t, w));
  // Twice: the first call may miss and insert, the second must hit the
  // cached interval — both answers have to match the ground truth.
  expect("cached (miss path)", stack.cached->Query(s, t, w));
  expect("cached (hit path)", stack.cached->Query(s, t, w));
  // Same for the decoded-label cache: decode-miss, then decode-hit.
  expect("cold (decode miss)", stack.cold->Query(s, t, w));
  expect("cold (decode hit)", stack.cold->Query(s, t, w));
  expect("sharded", stack.sharded->Query(s, t, w));
  expect("planned", stack.planned->Query(s, t, w));
  expect("csharded", stack.csharded->Query(s, t, w));
  auto net = stack.client->Query(s, t, w);
  if (!net.ok()) {
    if (out.tellp() == 0) out << "net error: " << net.status().ToString();
  } else {
    expect("net", net.value());
  }
  auto cold_net = stack.cold_client->Query(s, t, w);
  if (!cold_net.ok()) {
    if (out.tellp() == 0) {
      out << "cold net error: " << cold_net.status().ToString();
    }
  } else {
    expect("cold net", cold_net.value());
  }
  return out.str();
}

// The three richer query families, checked across the same spread of
// layers: top-k against a per-candidate Dijkstra oracle, profiles
// against a per-threshold Dijkstra oracle cross-checked with the Pareto
// frontier enumerator, and paths validated as w-paths of exactly the
// true distance. Routes may legitimately differ between the parent
// unwind, the engine's index-guided fallback, and the sharded greedy
// stepping — validity plus optimal length is the contract, not the
// exact vertex sequence.
std::string CheckFamilies(const QualityGraph& g, const Stack& stack,
                          Vertex s, Vertex t, Quality w, Rng& rng) {
  std::ostringstream out;
  const size_t n = g.NumVertices();

  // kTopK: a random candidate set; duplicates and the source included.
  std::vector<Vertex> candidates;
  const size_t count = 1 + rng.NextBounded(8);
  for (size_t i = 0; i < count; ++i) {
    candidates.push_back(static_cast<Vertex>(rng.NextBounded(n)));
  }
  const size_t k = 1 + rng.NextBounded(5);
  std::vector<RankedCandidate> oracle;
  for (Vertex c : candidates) {
    const Distance d = c == s ? 0 : ConstrainedDijkstraUnit(g, s, c, w);
    if (d != kInfDistance) oracle.push_back({c, d});
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.vertex < b.vertex;
            });
  if (oracle.size() > k) oracle.resize(k);
  auto expect_topk = [&](const char* what,
                         const std::vector<RankedCandidate>& got) {
    if (out.tellp() != 0) return;
    bool same = got.size() == oracle.size();
    for (size_t i = 0; same && i < got.size(); ++i) {
      same = got[i].vertex == oracle[i].vertex &&
             got[i].dist == oracle[i].dist;
    }
    if (!same) {
      out << what << " topk disagrees with dijkstra (s=" << s << " w=" << w
          << " k=" << k << ")";
    }
  };
  expect_topk("labels", TopKClosest(stack.index, s, candidates, w, k));
  expect_topk("flat", TopKClosest(stack.flat, s, candidates, w, k));
  expect_topk("mmap", TopKClosest(stack.mm, s, candidates, w, k));
  expect_topk("compressed", TopKClosest(stack.cmm, s, candidates, w, k));
  expect_topk("engine", stack.engine->TopK(s, candidates, w, k));
  expect_topk("cold", stack.cold->TopK(s, candidates, w, k));
  std::vector<RankedCandidate> ranked;
  if (stack.sharded->TopKEx(s, candidates, w, k, &ranked) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "sharded topk refused a healthy request";
  } else {
    expect_topk("sharded", ranked);
  }
  ranked.clear();
  if (stack.planned->TopKEx(s, candidates, w, k, &ranked) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "planned topk refused a healthy request";
  } else {
    expect_topk("planned", ranked);
  }
  ranked.clear();
  if (stack.csharded->TopKEx(s, candidates, w, k, &ranked) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "csharded topk refused a healthy request";
  } else {
    expect_topk("csharded", ranked);
  }
  auto net_topk =
      stack.client->TopK(s, candidates, w, static_cast<uint32_t>(k));
  if (!net_topk.ok()) {
    if (out.tellp() == 0) {
      out << "net topk error: " << net_topk.status().ToString();
    }
  } else {
    expect_topk("net", net_topk.value());
  }

  // kProfile: thresholds straddling every integer level, both extremes
  // included (0.5 certifies everything, 6.5 nothing).
  std::vector<Quality> thresholds;
  for (int j = 0; j <= 12; ++j) {
    thresholds.push_back(0.5f + 0.5f * static_cast<float>(j));
  }
  std::vector<Distance> truth_profile;
  truth_profile.reserve(thresholds.size());
  for (Quality wt : thresholds) {
    truth_profile.push_back(ConstrainedDijkstraUnit(g, s, t, wt));
  }
  // Cross-check the oracle itself: the profile at wt must equal the
  // smallest Pareto-frontier distance whose quality certifies wt. The
  // trivial s == t case is skipped — its distance is 0 at EVERY
  // threshold, which no finite-quality frontier point can certify.
  const auto frontier = s == t ? std::vector<FrontierPoint>{}
                               : ParetoFrontier(g, s, t);
  for (size_t j = 0; s != t && out.tellp() == 0 && j < thresholds.size();
       ++j) {
    Distance from_frontier = kInfDistance;
    for (const FrontierPoint& p : frontier) {
      if (p.quality >= thresholds[j]) {
        from_frontier = p.distance;  // ascending distance: first wins
        break;
      }
    }
    if (from_frontier != truth_profile[j]) {
      out << "pareto frontier disagrees with dijkstra at w=" << thresholds[j]
          << " (" << from_frontier << " vs " << truth_profile[j] << ")";
    }
  }
  auto expect_profile = [&](const char* what,
                            const std::vector<ProfilePoint>& got) {
    if (out.tellp() != 0) return;
    bool same = got.size() == truth_profile.size();
    for (size_t j = 0; same && j < got.size(); ++j) {
      same = got[j].quality == thresholds[j] &&
             got[j].dist == truth_profile[j];
    }
    if (!same) {
      out << what << " profile disagrees with dijkstra (s=" << s
          << " t=" << t << ")";
    }
  };
  expect_profile("labels", QualityProfile(stack.index, s, t, thresholds));
  expect_profile("flat", QualityProfile(stack.flat, s, t, thresholds));
  expect_profile("mmap", QualityProfile(stack.mm, s, t, thresholds));
  expect_profile("compressed", QualityProfile(stack.cmm, s, t, thresholds));
  expect_profile("engine", stack.engine->Profile(s, t, thresholds));
  expect_profile("cold", stack.cold->Profile(s, t, thresholds));
  std::vector<ProfilePoint> profile;
  if (stack.sharded->ProfileEx(s, t, thresholds, &profile) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "sharded profile refused a healthy request";
  } else {
    expect_profile("sharded", profile);
  }
  profile.clear();
  if (stack.planned->ProfileEx(s, t, thresholds, &profile) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "planned profile refused a healthy request";
  } else {
    expect_profile("planned", profile);
  }
  profile.clear();
  if (stack.csharded->ProfileEx(s, t, thresholds, &profile) !=
      ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "csharded profile refused a healthy request";
  } else {
    expect_profile("csharded", profile);
  }
  auto net_profile = stack.client->Profile(s, t, thresholds);
  if (!net_profile.ok()) {
    if (out.tellp() == 0) {
      out << "net profile error: " << net_profile.status().ToString();
    }
  } else {
    expect_profile("net", net_profile.value());
  }

  // kPath: every layer must produce a valid w-path of exactly the true
  // distance (or nothing when unreachable).
  const Distance truth = ConstrainedDijkstraUnit(g, s, t, w);
  auto expect_path = [&](const char* what, const std::vector<Vertex>& path) {
    if (out.tellp() != 0) return;
    if (truth == kInfDistance) {
      if (!path.empty()) {
        out << what << " found a path where dijkstra sees none (s=" << s
            << " t=" << t << " w=" << w << ")";
      }
      return;
    }
    if (path.size() != static_cast<size_t>(truth) + 1 || path.front() != s ||
        path.back() != t || !IsValidWPath(g, path, w)) {
      out << what << " path is not a shortest valid w-path (s=" << s
          << " t=" << t << " w=" << w << ")";
    }
  };
  expect_path("labels", QueryConstrainedPath(stack.index, g, s, t, w));
  expect_path("mmap", QueryConstrainedPath(stack.mm, g, s, t, w));
  // Compressed snapshots carry no parent quads: this layer always runs
  // the index-guided fallback, which must still produce optimal w-paths.
  expect_path("compressed", QueryConstrainedPath(stack.cmm, g, s, t, w));
  auto engine_path = stack.engine->Path(s, t, w);
  if (!engine_path.ok()) {
    if (out.tellp() == 0) {
      out << "engine path error: " << engine_path.status().ToString();
    }
  } else {
    expect_path("engine", engine_path.value());
  }
  auto cold_path = stack.cold->Path(s, t, w);
  if (!cold_path.ok()) {
    if (out.tellp() == 0) {
      out << "cold path error: " << cold_path.status().ToString();
    }
  } else {
    expect_path("cold", cold_path.value());
  }
  std::vector<Vertex> route;
  if (stack.sharded->PathEx(s, t, w, &route) != ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "sharded path refused a healthy request";
  } else {
    expect_path("sharded", route);
  }
  route.clear();
  if (stack.planned->PathEx(s, t, w, &route) != ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "planned path refused a healthy request";
  } else {
    expect_path("planned", route);
  }
  route.clear();
  if (stack.csharded->PathEx(s, t, w, &route) != ServeOutcome::kOk) {
    if (out.tellp() == 0) out << "csharded path refused a healthy request";
  } else {
    expect_path("csharded", route);
  }
  auto net_path = stack.client->Path(s, t, w);
  if (!net_path.ok()) {
    if (out.tellp() == 0) {
      out << "net path error: " << net_path.status().ToString();
    }
  } else {
    expect_path("net", net_path.value());
  }
  return out.str();
}

// Greedy edge-removal minimization: keep dropping edges while the
// disagreement persists, bounded by a rebuild budget.
std::string MinimizeAndReport(size_t family, uint64_t seed, size_t n,
                              EdgeList edges, Vertex s, Vertex t, Quality w,
                              size_t build_threads) {
  auto mismatches = [&](const EdgeList& candidate) {
    QualityGraph g = FromEdges(n, candidate);
    Stack stack = BuildStack(g, build_threads, "minimize");
    return !CheckOne(g, stack, s, t, w).empty();
  };
  size_t budget = 300;
  bool shrunk = true;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t i = 0; i < edges.size() && budget > 0; ++i) {
      EdgeList candidate = edges;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      --budget;
      if (mismatches(candidate)) {
        edges = std::move(candidate);
        shrunk = true;
        --i;
      }
    }
  }
  std::ostringstream out;
  out << "minimized reproduction (family=" << kFamilies[family]
      << " seed=" << seed << " build_threads=" << build_threads
      << "):\n  n=" << n << " s=" << s << " t=" << t << " w=" << w
      << "\n  edges:";
  for (const auto& [u, v, q] : edges) {
    out << " (" << u << "," << v << ",q=" << q << ")";
  }
  return out.str();
}

TEST(DifferentialFuzz, AllAnswerPathsAgree) {
  constexpr size_t kGraphsPerFamily = 9;
  constexpr size_t kTriplesPerGraph = 30;  // 4 * 9 * 30 = 1080 cases
  size_t cases = 0;
  for (size_t family = 0; family < 4; ++family) {
    for (size_t gi = 0; gi < kGraphsPerFamily; ++gi) {
      const uint64_t seed = 1000 * family + gi + 1;
      const QualityGraph g = MakeFuzzGraph(family, seed);
      const size_t n = g.NumVertices();
      ASSERT_GT(n, 0u);
      // Alternate sequential and parallel construction, and (on a
      // decorrelated cadence) §V parent quads, so all four combinations
      // of {build pipeline} x {v1/v2 snapshot} get fuzzed.
      const size_t build_threads = gi % 2 == 0 ? 1 : 3;
      const bool record_parents = gi % 4 >= 2;
      Stack stack = BuildStack(g, build_threads,
                               std::to_string(family) + "_" +
                                   std::to_string(gi),
                               record_parents);

      Rng rng(seed ^ 0xf022u);
      std::vector<BatchQueryInput> batch;
      std::vector<Distance> expected;
      for (size_t qi = 0; qi < kTriplesPerGraph; ++qi) {
        Vertex s = static_cast<Vertex>(rng.NextBounded(n));
        Vertex t = static_cast<Vertex>(rng.NextBounded(n));
        // Levels are integers 1..6; half-offsets probe strict threshold
        // behavior, and the extremes probe all-pass / all-fail.
        Quality w = static_cast<Quality>(rng.NextInRange(0, 6)) +
                    (rng.NextBool(0.3) ? 0.5f : 0.0f);
        ++cases;
        std::string mismatch = CheckOne(g, stack, s, t, w);
        if (!mismatch.empty()) {
          FAIL() << mismatch << "\n"
                 << MinimizeAndReport(family, seed, n, EdgesOf(g), s, t, w,
                                      build_threads);
        }
        // Every third triple additionally runs the three query families
        // through every layer (oracle recomputation per candidate and
        // threshold keeps this the expensive part of the suite).
        if (qi % 3 == 0) {
          std::string families_mismatch = CheckFamilies(g, stack, s, t, w,
                                                        rng);
          if (!families_mismatch.empty()) {
            FAIL() << families_mismatch << "\n  family="
                   << kFamilies[family] << " seed=" << seed
                   << " build_threads=" << build_threads
                   << " record_parents=" << record_parents << " n=" << n;
          }
        }
        batch.push_back({s, t, w});
        expected.push_back(ConstrainedDijkstraUnit(g, s, t, w));
      }
      // The batch path over the mmap engine must match, positionally.
      ASSERT_EQ(stack.engine->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.cached->Batch(batch), expected)
          << "cached family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.cold->Batch(batch), expected)
          << "cold family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.sharded->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.planned->Batch(batch), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      ASSERT_EQ(stack.csharded->Batch(batch), expected)
          << "csharded family=" << kFamilies[family] << " seed=" << seed;
      // And both networked batch shapes: one kBatchQuery frame, and the
      // pipelined stream of kQuery frames.
      auto net_batch = stack.client->Batch(batch);
      ASSERT_TRUE(net_batch.ok()) << net_batch.status().ToString();
      ASSERT_EQ(net_batch.value(), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
      auto net_pipelined = stack.client->QueryPipelined(batch, 8);
      ASSERT_TRUE(net_pipelined.ok()) << net_pipelined.status().ToString();
      ASSERT_EQ(net_pipelined.value(), expected)
          << "family=" << kFamilies[family] << " seed=" << seed;
    }
  }
  EXPECT_GE(cases, 1000u);
}

// Degraded (--quarantine) refusal semantics for the three families: with
// one shard quarantined, any top-k / profile / path request touching the
// quarantined range must be refused whole with kShardUnavailable (an
// Unavailable status over the wire) — the online Dijkstra fallback covers
// the plain distance family only — while requests confined to healthy
// shards keep answering bit-identically to the intact index.
TEST(DifferentialFuzz, QuarantinedShardsRefuseFamiliesCleanly) {
  QualityModel quality;
  quality.num_levels = 5;
  const size_t n = 90;
  QualityGraph g = GenerateRandomConnected(n, 230, quality, 47);
  WcIndexOptions options = WcIndexOptions::Plus();
  WcIndex flat = WcIndex::Build(g, options);
  flat.Finalize();

  ShardPlanOptions plan_options;
  plan_options.num_shards = 3;
  auto plan = PlanShards(flat.flat_labels(), plan_options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().shards.size(), 3u);
  auto written = WriteShardSet(testing::TempDir() + "/fuzz_degraded",
                               flat.flat_labels(), plan.value());
  ASSERT_TRUE(written.ok()) << written.status().ToString();

  // Corrupt the middle shard's header so the verified open quarantines it.
  {
    std::fstream file(written.value().shard_paths[1],
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(24);
    file.write("XXXXXXXX", 8);
  }
  const Vertex q_begin = static_cast<Vertex>(plan.value().shards[1].begin);
  const Vertex q_end = static_cast<Vertex>(plan.value().shards[1].end);
  ASSERT_LT(q_begin, q_end);
  ASSERT_GT(q_begin, 0u);   // shard 0 holds healthy vertices
  ASSERT_LT(q_end, n);      // shard 2 too

  QueryEngineOptions serve;
  serve.num_threads = 1;
  serve.graph = std::make_shared<const QualityGraph>(g);
  SnapshotLoadOptions verify;
  verify.verify_checksums = true;
  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = true;
  degraded.fallback_graph = serve.graph.get();
  auto opened = ShardedQueryEngine::OpenManifest(
      written.value().manifest_path, serve, verify, degraded);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto engine = std::make_shared<const ShardedQueryEngine>(
      std::move(opened).value());

  auto started = WcServer::Start(MakeQueryService(engine));
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  WcServer server = std::move(started).value();
  auto connected = WcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  WcClient client = std::move(connected).value();

  const Vertex healthy_a = 0;
  const Vertex healthy_b = static_cast<Vertex>(n - 1);
  const Vertex quarantined = q_begin;
  const Quality w = 2.0f;

  // The distance family still answers quarantined touches exactly,
  // through the configured Dijkstra fallback.
  Distance d = kInfDistance;
  EXPECT_EQ(engine->QueryEx(healthy_a, quarantined, w, &d),
            ServeOutcome::kOk);
  EXPECT_EQ(d, ConstrainedDijkstraUnit(g, healthy_a, quarantined, w));

  // kTopK: one quarantined candidate poisons the whole ranking.
  std::vector<RankedCandidate> ranked;
  const std::vector<Vertex> mixed_candidates = {healthy_b, quarantined};
  const std::vector<Vertex> healthy_pair = {healthy_a, healthy_b};
  EXPECT_EQ(engine->TopKEx(healthy_a, mixed_candidates, w, 2, &ranked),
            ServeOutcome::kShardUnavailable);
  EXPECT_EQ(engine->TopKEx(quarantined, healthy_pair, w, 2, &ranked),
            ServeOutcome::kShardUnavailable);
  std::vector<Vertex> healthy_candidates;
  for (Vertex v = 0; v < q_begin; ++v) {
    if (v != healthy_a) healthy_candidates.push_back(v);
  }
  ASSERT_EQ(engine->TopKEx(healthy_a, healthy_candidates, w, 5, &ranked),
            ServeOutcome::kOk);
  auto intact_ranked = TopKClosest(flat, healthy_a, healthy_candidates, w, 5);
  ASSERT_EQ(ranked.size(), intact_ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].vertex, intact_ranked[i].vertex);
    EXPECT_EQ(ranked[i].dist, intact_ranked[i].dist);
  }

  // kProfile: a quarantined endpoint is refused; healthy pairs match the
  // intact index positionally.
  const std::vector<Quality> thresholds = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<ProfilePoint> profile;
  EXPECT_EQ(engine->ProfileEx(healthy_a, quarantined, thresholds, &profile),
            ServeOutcome::kShardUnavailable);
  ASSERT_EQ(engine->ProfileEx(healthy_a, healthy_b, thresholds, &profile),
            ServeOutcome::kOk);
  auto intact_profile = QualityProfile(flat, healthy_a, healthy_b,
                                       thresholds);
  ASSERT_EQ(profile.size(), intact_profile.size());
  for (size_t i = 0; i < profile.size(); ++i) {
    EXPECT_EQ(profile[i].quality, intact_profile[i].quality);
    EXPECT_EQ(profile[i].dist, intact_profile[i].dist);
  }

  // kPath: quarantined endpoints are refused; a healthy pair either routes
  // around the quarantined range (and must then be a shortest valid
  // w-path) or is refused cleanly when every route needs it.
  std::vector<Vertex> route;
  EXPECT_EQ(engine->PathEx(quarantined, healthy_b, w, &route),
            ServeOutcome::kShardUnavailable);
  const ServeOutcome path_outcome =
      engine->PathEx(healthy_a, healthy_b, w, &route);
  ASSERT_NE(path_outcome, ServeOutcome::kNotSupported);
  if (path_outcome == ServeOutcome::kOk && !route.empty()) {
    const Distance truth = ConstrainedDijkstraUnit(g, healthy_a, healthy_b,
                                                   w);
    EXPECT_EQ(route.size(), static_cast<size_t>(truth) + 1);
    EXPECT_EQ(route.front(), healthy_a);
    EXPECT_EQ(route.back(), healthy_b);
    EXPECT_TRUE(IsValidWPath(g, route, w));
  }

  // Over the wire the refusals surface as Unavailable, and the connection
  // stays healthy for follow-up requests.
  auto net_topk = client.TopK(healthy_a, {healthy_b, quarantined}, w, 2);
  ASSERT_FALSE(net_topk.ok());
  EXPECT_EQ(net_topk.status().code(), StatusCode::kUnavailable);
  auto net_profile = client.Profile(quarantined, healthy_b, thresholds);
  ASSERT_FALSE(net_profile.ok());
  EXPECT_EQ(net_profile.status().code(), StatusCode::kUnavailable);
  auto net_path = client.Path(healthy_a, quarantined, w);
  ASSERT_FALSE(net_path.ok());
  EXPECT_EQ(net_path.status().code(), StatusCode::kUnavailable);
  auto net_ok = client.TopK(healthy_a, healthy_candidates, w, 5);
  ASSERT_TRUE(net_ok.ok()) << net_ok.status().ToString();
  ASSERT_EQ(net_ok.value().size(), intact_ranked.size());
  for (size_t i = 0; i < net_ok.value().size(); ++i) {
    EXPECT_EQ(net_ok.value()[i].vertex, intact_ranked[i].vertex);
    EXPECT_EQ(net_ok.value()[i].dist, intact_ranked[i].dist);
  }

  std::remove(written.value().manifest_path.c_str());
  for (const std::string& p : written.value().shard_paths) {
    std::remove(p.c_str());
  }
}

// Live-update differential fuzz (ISSUE 7): random insert / delete /
// upgrade sequences on a DynamicWcIndex must stay bit-identical AT EVERY
// STEP to a fresh WcIndex built on the materialized graph — across all
// four QueryImpls and both label backends. The recorded sequence is then
// round-tripped through the on-disk delta log and replayed onto an
// adopted copy of the ORIGINAL index (the offline `wcsd_cli update`
// path), which must land on the same answers as the always-live index.
TEST(DifferentialFuzz, LiveUpdateMatchesFreshRebuild) {
  constexpr size_t kN = 30;
  constexpr int kLevels = 5;
  constexpr int kSteps = 12;
  constexpr size_t kTriples = 20;
  for (uint64_t seed : {21u, 22u, 23u}) {
    QualityModel quality;
    quality.num_levels = kLevels;
    QualityGraph initial = GenerateRandomConnected(kN, 50, quality, seed);
    WcIndexOptions options = WcIndexOptions::Plus();
    DynamicWcIndex live(initial, options);
    DeltaLog log;
    Rng rng(seed ^ 0xdeadu);

    auto pick_edge = [&](const QualityGraph& g) {
      for (;;) {
        Vertex u = static_cast<Vertex>(rng.NextBounded(kN));
        if (g.Degree(u) == 0) continue;
        const auto neighbors = g.Neighbors(u);
        return std::make_pair(
            u, neighbors[rng.NextBounded(neighbors.size())]);
      }
    };

    for (int step = 0; step < kSteps; ++step) {
      QualityGraph before = live.Snapshot();
      DeltaBatch batch;
      const int kind = static_cast<int>(rng.NextBounded(3));
      if (kind == 0) {  // insert (may upgrade a parallel edge: same path)
        Vertex u = static_cast<Vertex>(rng.NextBounded(kN));
        Vertex v = static_cast<Vertex>((u + 1 + rng.NextBounded(kN - 1)) %
                                       kN);
        Quality q = static_cast<Quality>(rng.NextInRange(1, kLevels));
        live.InsertEdge(u, v, q);
        batch.records.push_back(
            {static_cast<uint8_t>(DeltaOp::kInsert), {}, u, v, q, 0.0f});
      } else if (kind == 1) {  // delete an existing edge
        auto [u, arc] = pick_edge(before);
        live.DeleteEdge(u, arc.to);
        batch.records.push_back({static_cast<uint8_t>(DeltaOp::kDelete),
                                 {},
                                 u,
                                 arc.to,
                                 arc.quality,
                                 0.0f});
      } else {  // upgrade an existing upgradable edge (else fall back)
        bool upgraded = false;
        for (int tries = 0; tries < 32 && !upgraded; ++tries) {
          auto [u, arc] = pick_edge(before);
          if (arc.quality < static_cast<Quality>(kLevels)) {
            Quality q_new = arc.quality + 1.0f;
            live.InsertEdge(u, arc.to, q_new);
            batch.records.push_back(
                {static_cast<uint8_t>(DeltaOp::kUpgrade),
                 {},
                 u,
                 arc.to,
                 q_new,
                 arc.quality});
            upgraded = true;
          }
        }
        if (!upgraded) continue;
      }
      log.batches.push_back(std::move(batch));

      // Bit-identical at this step: fresh build on the materialized
      // graph, all four impls, both backends.
      QualityGraph current = live.Snapshot();
      WcIndex fresh = WcIndex::Build(current, options);
      WcIndex flat = fresh;
      flat.Finalize();
      Rng probe(seed * 1000 + static_cast<uint64_t>(step));
      for (size_t qi = 0; qi < kTriples; ++qi) {
        Vertex s = static_cast<Vertex>(probe.NextBounded(kN));
        Vertex t = static_cast<Vertex>(probe.NextBounded(kN));
        Quality w = static_cast<Quality>(probe.NextInRange(1, kLevels));
        const Distance expected = live.Query(s, t, w);
        ASSERT_EQ(expected, ConstrainedDijkstraUnit(current, s, t, w))
            << "seed=" << seed << " step=" << step << " " << s << "->" << t
            << " w=" << w;
        for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                               QueryImpl::kBinary, QueryImpl::kMerge}) {
          ASSERT_EQ(fresh.Query(s, t, w, impl), expected)
              << "seed=" << seed << " step=" << step;
          ASSERT_EQ(flat.Query(s, t, w, impl), expected)
              << "seed=" << seed << " step=" << step;
        }
      }
    }

    // Offline replay: write the recorded log to disk, read it back, adopt
    // the original index, Apply — answers must match the live index.
    std::string delta_path = testing::TempDir() + "/fuzz_live_" +
                             std::to_string(seed) + ".wcdelta";
    ASSERT_TRUE(WriteDeltaLog(delta_path, log).ok());
    auto reread = ReadDeltaLog(delta_path);
    ASSERT_TRUE(reread.ok()) << reread.status().ToString();
    std::remove(delta_path.c_str());

    WcIndex base = WcIndex::Build(initial, options);
    DynamicWcIndex replayed(initial, base.order(), base.labels(), options);
    replayed.Apply(reread.value());
    QualityGraph final_graph = live.Snapshot();
    ASSERT_EQ(replayed.Snapshot(), final_graph) << "seed=" << seed;
    Rng probe(seed * 7919);
    for (size_t qi = 0; qi < 2 * kTriples; ++qi) {
      Vertex s = static_cast<Vertex>(probe.NextBounded(kN));
      Vertex t = static_cast<Vertex>(probe.NextBounded(kN));
      Quality w = static_cast<Quality>(probe.NextInRange(1, kLevels));
      ASSERT_EQ(replayed.Query(s, t, w), live.Query(s, t, w))
          << "seed=" << seed << " " << s << "->" << t << " w=" << w;
    }
  }
}

}  // namespace
}  // namespace wcsd
