// Compressed label tests: exact round trips, query equivalence, size
// savings, and serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/compressed_labels.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CompressedLabelsTest, RoundTripPaperExample) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  EXPECT_EQ(compressed.Decompress(), index.labels());
}

TEST(CompressedLabelsTest, RoundTripRandomGraphs) {
  QualityModel quality;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    quality.num_levels = static_cast<int>(2 + seed * 3);
    QualityGraph g = GenerateRandomConnected(80, 200, quality, seed);
    WcIndex index = WcIndex::Build(g);
    CompressedLabelSet compressed =
        CompressedLabelSet::Compress(index.labels());
    ASSERT_EQ(compressed.Decompress(), index.labels()) << "seed " << seed;
  }
}

TEST(CompressedLabelsTest, DecodeVertexMatchesFullDecode) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(60, 150, quality, 7);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto expected = index.labels().For(v);
    auto decoded = compressed.DecodeVertex(v);
    ASSERT_EQ(decoded.size(), expected.size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i], expected[i]);
    }
  }
}

TEST(CompressedLabelsTest, QueriesMatchUncompressed) {
  QualityModel quality;
  quality.num_levels = 6;
  QualityGraph g = GenerateRandomConnected(100, 280, quality, 9);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(100));
    Vertex t = static_cast<Vertex>(rng.NextBounded(100));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    ASSERT_EQ(compressed.Query(s, t, w), index.Query(s, t, w));
  }
}

TEST(CompressedLabelsTest, MeaningfulCompressionRatio) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(400, 1000, quality, 13);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  // Expect at least 2.5x savings over the 12-byte working entries.
  EXPECT_LT(compressed.MemoryBytes() * 5, index.MemoryBytes() * 2)
      << "compressed=" << compressed.MemoryBytes()
      << " raw=" << index.MemoryBytes();
}

TEST(CompressedLabelsTest, SaveLoadRoundTrip) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(80, 200, quality, 15);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  std::string path = TempPath("compressed.bin");
  ASSERT_TRUE(compressed.Save(path).ok());
  auto loaded = CompressedLabelSet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Decompress(), index.labels());
  std::remove(path.c_str());
}

TEST(CompressedLabelsTest, BadFileRejected) {
  std::string path = TempPath("junk_compressed.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a compressed label set";
  }
  EXPECT_FALSE(CompressedLabelSet::Load(path).ok());
  std::remove(path.c_str());
}

TEST(CompressedLabelsTest, EmptySet) {
  CompressedLabelSet compressed = CompressedLabelSet::Compress(LabelSet(0));
  EXPECT_EQ(compressed.NumVertices(), 0u);
  EXPECT_EQ(compressed.Decompress(), LabelSet(0));
}

// Out-of-range vertices must answer cleanly, not index past offsets_.
TEST(CompressedLabelsTest, OutOfRangeVertexAnswersClean) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  Vertex n = static_cast<Vertex>(compressed.NumVertices());
  EXPECT_TRUE(compressed.DecodeVertex(n).empty());
  EXPECT_TRUE(compressed.DecodeVertex(n + 100).empty());
  EXPECT_EQ(compressed.Query(n, 0, 1.0f), kInfDistance);
  EXPECT_EQ(compressed.Query(0, n + 7, 1.0f), kInfDistance);
  // Both out of range, and the s == t short-circuit must not fire first.
  EXPECT_EQ(compressed.Query(n + 3, n + 3, 1.0f), kInfDistance);
}

// A corrupted offsets table (non-monotone, or pointing past the payload)
// must be rejected at Load: decode paths index the payload through it.
TEST(CompressedLabelsTest, CorruptOffsetsRejectedAtLoad) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  std::string path = TempPath("corrupt_offsets.bin");
  ASSERT_TRUE(compressed.Save(path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Layout: magic + n + dict + payload (u64 each), dictionary (f32 each),
  // offsets (u64, n+1), payload bytes. Overwrite offsets[1] with a value
  // past the payload; the prefix/suffix invariants still hold.
  uint64_t n = 0, dict = 0;
  std::memcpy(&n, bytes.data() + 8, sizeof(n));
  std::memcpy(&dict, bytes.data() + 16, sizeof(dict));
  ASSERT_GE(n, 2u);
  size_t offsets_at = 32 + dict * sizeof(Quality);
  uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(bytes.data() + offsets_at + sizeof(uint64_t), &huge,
              sizeof(huge));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = CompressedLabelSet::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// Payload-level corruption passes the offsets checks, so decode must be
// bounds-checked: a truncating stream or an out-of-dictionary quality code
// yields an empty label, never an out-of-range read. Setting every payload
// byte to 0xFF makes each vertex's slice one endless truncated varint.
TEST(CompressedLabelsTest, CorruptPayloadDecodesToEmptyNotOutOfBounds) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  std::string path = TempPath("corrupt_payload.bin");
  ASSERT_TRUE(compressed.Save(path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  uint64_t n = 0, dict = 0;
  std::memcpy(&n, bytes.data() + 8, sizeof(n));
  std::memcpy(&dict, bytes.data() + 16, sizeof(dict));
  size_t payload_at = 32 + dict * sizeof(Quality) + (n + 1) * sizeof(uint64_t);
  for (size_t i = payload_at; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = CompressedLabelSet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_TRUE(loaded.value().DecodeVertex(v).empty()) << "vertex " << v;
  }
  EXPECT_EQ(loaded.value().Query(0, 1, 1.0f), kInfDistance);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcsd
