// Compressed label tests: exact round trips, query equivalence, size
// savings, and serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/compressed_labels.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CompressedLabelsTest, RoundTripPaperExample) {
  QualityGraph g = MakeFigure3Graph();
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  EXPECT_EQ(compressed.Decompress(), index.labels());
}

TEST(CompressedLabelsTest, RoundTripRandomGraphs) {
  QualityModel quality;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    quality.num_levels = static_cast<int>(2 + seed * 3);
    QualityGraph g = GenerateRandomConnected(80, 200, quality, seed);
    WcIndex index = WcIndex::Build(g);
    CompressedLabelSet compressed =
        CompressedLabelSet::Compress(index.labels());
    ASSERT_EQ(compressed.Decompress(), index.labels()) << "seed " << seed;
  }
}

TEST(CompressedLabelsTest, DecodeVertexMatchesFullDecode) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(60, 150, quality, 7);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto expected = index.labels().For(v);
    auto decoded = compressed.DecodeVertex(v);
    ASSERT_EQ(decoded.size(), expected.size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i], expected[i]);
    }
  }
}

TEST(CompressedLabelsTest, QueriesMatchUncompressed) {
  QualityModel quality;
  quality.num_levels = 6;
  QualityGraph g = GenerateRandomConnected(100, 280, quality, 9);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(100));
    Vertex t = static_cast<Vertex>(rng.NextBounded(100));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 7));
    ASSERT_EQ(compressed.Query(s, t, w), index.Query(s, t, w));
  }
}

TEST(CompressedLabelsTest, MeaningfulCompressionRatio) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(400, 1000, quality, 13);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  // Expect at least 2.5x savings over the 12-byte working entries.
  EXPECT_LT(compressed.MemoryBytes() * 5, index.MemoryBytes() * 2)
      << "compressed=" << compressed.MemoryBytes()
      << " raw=" << index.MemoryBytes();
}

TEST(CompressedLabelsTest, SaveLoadRoundTrip) {
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(80, 200, quality, 15);
  WcIndex index = WcIndex::Build(g);
  CompressedLabelSet compressed =
      CompressedLabelSet::Compress(index.labels());
  std::string path = TempPath("compressed.bin");
  ASSERT_TRUE(compressed.Save(path).ok());
  auto loaded = CompressedLabelSet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Decompress(), index.labels());
  std::remove(path.c_str());
}

TEST(CompressedLabelsTest, BadFileRejected) {
  std::string path = TempPath("junk_compressed.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a compressed label set";
  }
  EXPECT_FALSE(CompressedLabelSet::Load(path).ok());
  std::remove(path.c_str());
}

TEST(CompressedLabelsTest, EmptySet) {
  CompressedLabelSet compressed = CompressedLabelSet::Compress(LabelSet(0));
  EXPECT_EQ(compressed.NumVertices(), 0u);
  EXPECT_EQ(compressed.Decompress(), LabelSet(0));
}

}  // namespace
}  // namespace wcsd
