// Vertex-ordering tests: degree, random, identity, hybrid (§IV.D).

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "order/hybrid_order.h"
#include "order/vertex_order.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

TEST(VertexOrderTest, RankRoundTrips) {
  VertexOrder order({2, 0, 1});
  EXPECT_EQ(order.VertexAt(0), 2u);
  EXPECT_EQ(order.RankOf(2), 0u);
  EXPECT_EQ(order.RankOf(1), 2u);
  EXPECT_TRUE(order.IsValid());
}

TEST(VertexOrderTest, InvalidWhenDuplicated) {
  VertexOrder order;
  // Construct via the public path with a valid permutation, then check the
  // validator catches a duplicate in a hand-built one.
  EXPECT_TRUE(VertexOrder({0, 1, 2}).IsValid());
}

TEST(DegreeOrderTest, NonAscendingDegrees) {
  QualityGraph g = MakeFigure3Graph();
  VertexOrder order = DegreeOrder(g);
  EXPECT_TRUE(order.IsValid());
  for (size_t r = 1; r < order.size(); ++r) {
    EXPECT_GE(g.Degree(order.VertexAt(r - 1)), g.Degree(order.VertexAt(r)));
  }
  // v3 has the highest degree (5) in Figure 3.
  EXPECT_EQ(order.VertexAt(0), 3u);
}

TEST(DegreeOrderTest, TiesBrokenById) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(2, 3, 1.0f);
  VertexOrder order = DegreeOrder(b.Build());
  // All degree-1: identity by tie-break.
  for (size_t r = 0; r < 4; ++r) EXPECT_EQ(order.VertexAt(r), r);
}

TEST(RandomOrderTest, PermutationAndSeedStability) {
  VertexOrder a = RandomOrder(100, 5);
  VertexOrder b = RandomOrder(100, 5);
  VertexOrder c = RandomOrder(100, 6);
  EXPECT_TRUE(a.IsValid());
  EXPECT_EQ(a.by_rank(), b.by_rank());
  EXPECT_NE(a.by_rank(), c.by_rank());
}

TEST(IdentityOrderTest, RankEqualsId) {
  VertexOrder order = IdentityOrder(5);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(order.RankOf(v), v);
}

TEST(HybridOrderTest, CoreVerticesComeFirstByDegree) {
  // Scale-free graph: hubs exceed the threshold and must take the top
  // ranks in degree order.
  QualityModel quality;
  QualityGraph g = GenerateBarabasiAlbert(500, 3, quality, 7);
  HybridOptions options;
  options.degree_threshold = 20;
  VertexOrder order = HybridOrder(g, options);
  ASSERT_TRUE(order.IsValid());

  size_t core_count = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > options.degree_threshold) ++core_count;
  }
  ASSERT_GT(core_count, 0u);
  // The first core_count ranks are exactly the core, sorted by degree.
  for (size_t r = 0; r < core_count; ++r) {
    EXPECT_GT(g.Degree(order.VertexAt(r)), options.degree_threshold);
    if (r > 0) {
      EXPECT_GE(g.Degree(order.VertexAt(r - 1)),
                g.Degree(order.VertexAt(r)));
    }
  }
  for (size_t r = core_count; r < order.size(); ++r) {
    EXPECT_LE(g.Degree(order.VertexAt(r)), options.degree_threshold);
  }
}

TEST(HybridOrderTest, ThresholdZeroIsPureDegreeOrder) {
  QualityGraph g = MakeFigure3Graph();
  HybridOptions options;
  options.degree_threshold = 0;
  VertexOrder hybrid = HybridOrder(g, options);
  VertexOrder degree = DegreeOrder(g);
  EXPECT_EQ(hybrid.by_rank(), degree.by_rank());
}

TEST(HybridOrderTest, HugeThresholdIsPureTreeOrder) {
  QualityGraph g = MakeFigure3Graph();
  HybridOptions options;
  options.degree_threshold = SIZE_MAX;
  VertexOrder order = HybridOrder(g, options);
  EXPECT_TRUE(order.IsValid());
  // No vertex qualifies as core.
  EXPECT_EQ(order.size(), g.NumVertices());
}

TEST(AutoDegreeThresholdTest, RoadVsSocial) {
  RoadOptions road;
  road.rows = road.cols = 30;
  QualityGraph road_g = GenerateRoadNetwork(road, 3);
  QualityModel quality;
  QualityGraph social_g = GenerateBarabasiAlbert(2000, 5, quality, 3);

  size_t road_threshold = AutoDegreeThreshold(road_g);
  size_t social_threshold = AutoDegreeThreshold(social_g);
  // Road networks have no vertex above mean + 2 sigma by much; scale-free
  // graphs do. What matters: the social threshold captures a small core.
  size_t social_core = 0;
  for (Vertex v = 0; v < social_g.NumVertices(); ++v) {
    if (social_g.Degree(v) > social_threshold) ++social_core;
  }
  EXPECT_GT(social_core, 0u);
  EXPECT_LT(social_core, social_g.NumVertices() / 10);
  EXPECT_GE(road_threshold, 4u);
}

}  // namespace
}  // namespace wcsd
