// MDE tree-decomposition tests (Def. 7-8): validity on known topologies,
// width bounds, capped elimination, and the derived vertex order.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "order/tree_decomposition.h"
#include "paper_fixtures.h"

namespace wcsd {
namespace {

QualityGraph MakePath(size_t n) {
  GraphBuilder b(n);
  for (Vertex i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1, 1.0f);
  return b.Build();
}

QualityGraph MakeCycle(size_t n) {
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    b.AddEdge(i, static_cast<Vertex>((i + 1) % n), 1.0f);
  }
  return b.Build();
}

QualityGraph MakeClique(size_t n) {
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) b.AddEdge(i, j, 1.0f);
  }
  return b.Build();
}

QualityGraph MakeGrid(size_t rows, size_t cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1), 1.0f);
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c), 1.0f);
    }
  }
  return b.Build();
}

TEST(Mde, PathHasWidth1) {
  QualityGraph g = MakePath(20);
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_EQ(td.width, 1u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, TreeHasWidth1) {
  QualityModel quality;
  QualityGraph g = GenerateRandomTree(64, quality, 3);
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_EQ(td.width, 1u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, CycleHasWidth2) {
  QualityGraph g = MakeCycle(15);
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_EQ(td.width, 2u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, CliqueHasWidthNMinus1) {
  QualityGraph g = MakeClique(6);
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_EQ(td.width, 5u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, GridWidthIsAtLeastMinSide) {
  // Treewidth of an r x c grid (r <= c) is exactly r; MDE is a heuristic so
  // it may exceed it slightly, but must be >= r and reasonably close.
  QualityGraph g = MakeGrid(4, 8);
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_GE(td.width, 4u);
  EXPECT_LE(td.width, 8u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, SingleVertexAndEmpty) {
  GraphBuilder b1(1);
  TreeDecomposition td1 = MdeDecompose(b1.Build());
  EXPECT_EQ(td1.elimination_order.size(), 1u);
  EXPECT_EQ(td1.width, 0u);

  GraphBuilder b0(0);
  TreeDecomposition td0 = MdeDecompose(b0.Build());
  EXPECT_TRUE(td0.elimination_order.empty());
}

TEST(Mde, DisconnectedGraphStillValid) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(2, 3, 1.0f);
  // 4, 5 isolated.
  QualityGraph g = b.Build();
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_EQ(td.elimination_order.size(), 6u);
  EXPECT_TRUE(td.IsValidFor(g));
}

TEST(Mde, EliminationOrderIsPermutation) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(128, 256, quality, 5);
  TreeDecomposition td = MdeDecompose(g);
  std::vector<bool> seen(128, false);
  for (Vertex v : td.elimination_order) {
    ASSERT_LT(v, 128u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Mde, RandomGraphsAlwaysValid) {
  QualityModel quality;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    QualityGraph g = GenerateRandomConnected(60, 120, quality, seed);
    TreeDecomposition td = MdeDecompose(g);
    EXPECT_TRUE(td.IsValidFor(g)) << "seed " << seed;
  }
}

TEST(Mde, WidthBoundsOnFigure3) {
  QualityGraph g = MakeFigure3Graph();
  TreeDecomposition td = MdeDecompose(g);
  EXPECT_TRUE(td.IsValidFor(g));
  EXPECT_GE(td.width, 2u);  // Figure 3 contains cycles sharing chords.
  EXPECT_LE(td.width, 3u);
}

TEST(Mde, DegreeCapDefersDenseVertices) {
  QualityGraph g = MakeClique(8);
  MdeOptions options;
  options.max_fill_degree = 3;
  TreeDecomposition td = MdeDecompose(g, options);
  // All vertices still appear exactly once.
  EXPECT_EQ(td.elimination_order.size(), 8u);
}

TEST(TreeOrderTest, Permutation) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(100, 200, quality, 7);
  VertexOrder order = TreeDecompositionOrder(g);
  EXPECT_TRUE(order.IsValid());
}

TEST(TreeOrderTest, PathCenterTopRank) {
  // On a path, MDE peels leaves inward; the last vertex eliminated (rank 0)
  // must be an interior vertex, not an endpoint.
  QualityGraph g = MakePath(31);
  VertexOrder order = TreeDecompositionOrder(g);
  Vertex top = order.VertexAt(0);
  EXPECT_NE(top, 0u);
  EXPECT_NE(top, 30u);
}

}  // namespace
}  // namespace wcsd
