// Query-implementation tests (§IV.A, §IV.C): the four algorithms must
// return identical answers, FirstWithQuality must honor Theorem 3, and the
// hub-reporting variant must be consistent with the plain query.

#include <gtest/gtest.h>

#include <tuple>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "labeling/query.h"
#include "paper_fixtures.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(FirstWithQualityTest, BinarySearchSemantics) {
  std::vector<LabelEntry> entries{
      {7, 1, 1.0f}, {7, 2, 3.0f}, {7, 4, 5.0f}, {7, 9, 9.0f}};
  std::span<const LabelEntry> span{entries.data(), entries.size()};
  EXPECT_EQ(FirstWithQuality(span, 0, 4, 0.5f), 0u);
  EXPECT_EQ(FirstWithQuality(span, 0, 4, 1.0f), 0u);
  EXPECT_EQ(FirstWithQuality(span, 0, 4, 2.0f), 1u);
  EXPECT_EQ(FirstWithQuality(span, 0, 4, 5.0f), 2u);
  EXPECT_EQ(FirstWithQuality(span, 0, 4, 9.5f), 4u);  // none
  // Sub-range variant.
  EXPECT_EQ(FirstWithQuality(span, 1, 3, 4.0f), 2u);
}

TEST(QueryImplsTest, EmptyLabelsAreInf) {
  std::vector<LabelEntry> empty;
  std::vector<LabelEntry> some{{0, 1, 2.0f}};
  std::span<const LabelEntry> e{empty.data(), empty.size()};
  std::span<const LabelEntry> s{some.data(), some.size()};
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    EXPECT_EQ(QueryLabels(e, s, 1.0f, impl), kInfDistance);
    EXPECT_EQ(QueryLabels(s, e, 1.0f, impl), kInfDistance);
    EXPECT_EQ(QueryLabels(e, e, 1.0f, impl), kInfDistance);
  }
}

TEST(QueryImplsTest, HandConstructedLabels) {
  // L(s): hub 0 at (2, q3); hub 2 at (1, q1), (3, q4).
  std::vector<LabelEntry> ls{{0, 2, 3.0f}, {2, 1, 1.0f}, {2, 3, 4.0f}};
  // L(t): hub 0 at (1, q2); hub 2 at (2, q4); hub 5 at (1, q9).
  std::vector<LabelEntry> lt{{0, 1, 2.0f}, {2, 2, 4.0f}, {5, 1, 9.0f}};
  std::span<const LabelEntry> s{ls.data(), ls.size()};
  std::span<const LabelEntry> t{lt.data(), lt.size()};
  for (QueryImpl impl : {QueryImpl::kScan, QueryImpl::kHubGrouped,
                         QueryImpl::kBinary, QueryImpl::kMerge}) {
    EXPECT_EQ(QueryLabels(s, t, 1.0f, impl), 3u);  // hub 0: 2+1 or hub 2: 1+2
    EXPECT_EQ(QueryLabels(s, t, 2.0f, impl), 3u);  // hub 0 still valid
    EXPECT_EQ(QueryLabels(s, t, 4.0f, impl), 5u);  // only hub 2: 3+2
    EXPECT_EQ(QueryLabels(s, t, 5.0f, impl), kInfDistance);
  }
}

TEST(QueryImplsTest, HubGroupedPrunesHighHubs) {
  // Hub 9 appears only in L(t); L(s)'s max hub is 3, so the group must be
  // skipped without affecting the result.
  std::vector<LabelEntry> ls{{3, 0, kInfQuality}};
  std::vector<LabelEntry> lt{{3, 2, 5.0f}, {9, 1, 9.0f}};
  std::span<const LabelEntry> s{ls.data(), ls.size()};
  std::span<const LabelEntry> t{lt.data(), lt.size()};
  EXPECT_EQ(QueryLabelsHubGrouped(s, t, 1.0f), 2u);
}

class QueryImplAgreementTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, int, uint64_t>> {
};

TEST_P(QueryImplAgreementTest, AllFourAgreeOnRandomIndex) {
  auto [n, m, levels, seed] = GetParam();
  QualityModel quality;
  quality.num_levels = levels;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);
  WcIndex index = WcIndex::Build(g);
  Rng rng(seed + 1);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Quality w = static_cast<Quality>(rng.NextInRange(1, levels + 1));
    Distance merge = index.Query(s, t, w, QueryImpl::kMerge);
    EXPECT_EQ(index.Query(s, t, w, QueryImpl::kScan), merge);
    EXPECT_EQ(index.Query(s, t, w, QueryImpl::kHubGrouped), merge);
    EXPECT_EQ(index.Query(s, t, w, QueryImpl::kBinary), merge);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomIndexes, QueryImplAgreementTest,
    testing::Values(std::make_tuple(30, 60, 3, 1),
                    std::make_tuple(50, 100, 5, 2),
                    std::make_tuple(80, 240, 8, 3),
                    std::make_tuple(120, 300, 2, 4),
                    std::make_tuple(60, 400, 12, 5)));

TEST(QueryWithHubTest, ConsistentWithPlainQuery) {
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(70, 180, quality, 7);
  WcIndex index = WcIndex::Build(g);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(70));
    Vertex t = static_cast<Vertex>(rng.NextBounded(70));
    Quality w = static_cast<Quality>(rng.NextInRange(1, 6));
    HubQueryResult r = index.QueryWithHub(s, t, w);
    EXPECT_EQ(r.dist, index.Query(s, t, w));
    if (r.dist != kInfDistance && s != t) {
      EXPECT_EQ(r.dist_from_s + r.dist_to_t, r.dist);
      // The hub is a real vertex rank.
      EXPECT_LT(r.via_hub, g.NumVertices());
    }
  }
}

TEST(QueryWithHubTest, SelfQuery) {
  QualityGraph g = MakeFigure3Graph();
  WcIndex index = WcIndex::Build(g);
  HubQueryResult r = index.QueryWithHub(4, 4, 99.0f);
  EXPECT_EQ(r.dist, 0u);
  EXPECT_EQ(r.dist_from_s, 0u);
  EXPECT_EQ(r.dist_to_t, 0u);
}

}  // namespace
}  // namespace wcsd
