// Sampled-betweenness ordering tests.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "order/betweenness_order.h"
#include "search/wc_bfs.h"
#include "util/random.h"

namespace wcsd {
namespace {

TEST(BetweennessTest, StarCenterDominates) {
  // Star: every shortest path between leaves crosses the center.
  GraphBuilder b(8);
  for (Vertex leaf = 1; leaf < 8; ++leaf) b.AddEdge(0, leaf, 1.0f);
  QualityGraph g = b.Build();
  auto centrality = SampledBetweenness(g, 64, 3);
  for (Vertex leaf = 1; leaf < 8; ++leaf) {
    EXPECT_GT(centrality[0], centrality[leaf]);
  }
  VertexOrder order = BetweennessOrder(g, 64, 3);
  EXPECT_EQ(order.VertexAt(0), 0u);
}

TEST(BetweennessTest, PathCenterBeatsEndpoints) {
  GraphBuilder b(9);
  for (Vertex i = 0; i + 1 < 9; ++i) b.AddEdge(i, i + 1, 1.0f);
  QualityGraph g = b.Build();
  auto centrality = SampledBetweenness(g, 128, 5);
  EXPECT_GT(centrality[4], centrality[0]);
  EXPECT_GT(centrality[4], centrality[8]);
}

TEST(BetweennessTest, OrderIsValidPermutation) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(200, 500, quality, 7);
  VertexOrder order = BetweennessOrder(g, 32, 7);
  EXPECT_TRUE(order.IsValid());
}

TEST(BetweennessTest, DeterministicPerSeed) {
  QualityModel quality;
  QualityGraph g = GenerateRandomConnected(100, 250, quality, 9);
  EXPECT_EQ(BetweennessOrder(g, 16, 1).by_rank(),
            BetweennessOrder(g, 16, 1).by_rank());
}

TEST(BetweennessTest, WcIndexUnderBetweennessOrderIsCorrect) {
  // Any permutation yields a correct WC-INDEX; this exercises the full
  // verification under the sampled ordering.
  QualityModel quality;
  quality.num_levels = 4;
  QualityGraph g = GenerateRandomConnected(50, 120, quality, 11);
  WcIndex index =
      WcIndex::BuildWithOrder(g, BetweennessOrder(g, 24, 11));
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(BetweennessTest, CompetitiveLabelSizesOnScaleFree) {
  // On scale-free graphs betweenness correlates with degree, so its label
  // sizes should be within a small factor of the degree ordering's.
  QualityModel quality;
  quality.num_levels = 3;
  QualityGraph g = GenerateBarabasiAlbert(500, 4, quality, 13);
  WcIndex by_degree = WcIndex::Build(g);  // Default: degree order.
  WcIndex by_betweenness =
      WcIndex::BuildWithOrder(g, BetweennessOrder(g, 64, 13));
  EXPECT_LT(by_betweenness.TotalEntries(), by_degree.TotalEntries() * 2);
}

}  // namespace
}  // namespace wcsd
