// Golden tests: the construction and query walkthroughs of the paper
// (Table II, Examples 1-4) must be reproduced exactly.

#include <gtest/gtest.h>

#include <vector>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "labeling/label_set.h"
#include "paper_fixtures.h"
#include "search/wc_bfs.h"

namespace wcsd {
namespace {

WcIndex BuildPaperIndex() {
  // The paper's walkthrough processes v0, v1, ... in id order.
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  return WcIndex::Build(MakeFigure3Graph(), options);
}

std::vector<LabelEntry> Entries(const WcIndex& index, Vertex v) {
  auto span = index.labels().For(v);
  return {span.begin(), span.end()};
}

TEST(PaperExample, TableIILabelOfV0) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 0),
            (std::vector<LabelEntry>{{0, 0, kInfQuality}}));
}

TEST(PaperExample, TableIILabelOfV1) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 1),
            (std::vector<LabelEntry>{{0, 1, 3}, {1, 0, kInfQuality}}));
}

TEST(PaperExample, TableIILabelOfV2) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 2),
            (std::vector<LabelEntry>{
                {0, 2, 3}, {1, 1, 5}, {2, 0, kInfQuality}}));
}

TEST(PaperExample, TableIILabelOfV3) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 3),
            (std::vector<LabelEntry>{{0, 1, 1},
                                     {0, 2, 2},
                                     {0, 3, 3},
                                     {1, 1, 2},
                                     {1, 2, 4},
                                     {2, 1, 4},
                                     {3, 0, kInfQuality}}));
}

TEST(PaperExample, TableIILabelOfV4) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 4),
            (std::vector<LabelEntry>{{0, 2, 1},
                                     {0, 3, 2},
                                     {0, 4, 3},
                                     {1, 2, 2},
                                     {1, 3, 4},
                                     {2, 2, 4},
                                     {3, 1, 4},
                                     {4, 0, kInfQuality}}));
}

TEST(PaperExample, TableIILabelOfV5) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(Entries(index, 5),
            (std::vector<LabelEntry>{{0, 2, 1},
                                     {0, 3, 2},
                                     {0, 5, 3},
                                     {1, 2, 2},
                                     {1, 4, 3},
                                     {2, 2, 2},
                                     {2, 3, 3},
                                     {3, 1, 2},
                                     {3, 2, 3},
                                     {4, 1, 3},
                                     {5, 0, kInfQuality}}));
}

TEST(PaperExample, TableIITotalSize) {
  // Table II lists 1+2+3+7+8+11 = 32 entries.
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(index.TotalEntries(), 32u);
}

TEST(PaperExample, Example3QueryV2V5W2) {
  // "Given a query Q(v2, v5, 2) ... resulting in dist2 = 0 + 2 = 2."
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(index.Query(2, 5, 2.0f), 2u);
}

TEST(PaperExample, Example3IntermediateCandidates) {
  // The walkthrough's intermediate candidates for Q(v2, v5, 2): via hub v0
  // the sum is 2 + 3 = 5, via hub v1 it is 1 + 2 = 3, and via hub v2 it is
  // 0 + 2 = 2. Each must correspond to a real 2-path in the graph.
  QualityGraph g = MakeFigure3Graph();
  WcBfs bfs(&g);
  EXPECT_LE(bfs.Query(2, 5, 2.0f), 5u);
  EXPECT_LE(bfs.Query(2, 5, 2.0f), 3u);
  EXPECT_EQ(bfs.Query(2, 5, 2.0f), 2u);
  // And the hub split distances themselves are w-constrained distances.
  EXPECT_EQ(bfs.Query(0, 2, 3.0f), 2u);  // (v0, 2, 3) in L(v2)
  EXPECT_EQ(bfs.Query(0, 5, 2.0f), 3u);  // (v0, 3, 2) in L(v5)
  EXPECT_EQ(bfs.Query(1, 5, 2.0f), 2u);  // (v1, 2, 2) in L(v5)
}

TEST(PaperExample, Example2DominanceDistances) {
  // From Example 2: dist^1(v0, v4) = 2 via {v0, v3, v4}; the 3-constrained
  // path {v1, v2, v3} gives dist^3(v1, v3) = dist^4(v1, v3) = 2;
  // dist^2(v1, v3) = 1 via the direct edge.
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(index.Query(0, 4, 1.0f), 2u);
  EXPECT_EQ(index.Query(1, 3, 3.0f), 2u);
  EXPECT_EQ(index.Query(1, 3, 4.0f), 2u);
  EXPECT_EQ(index.Query(1, 3, 2.0f), 1u);
}

TEST(PaperExample, UnsatisfiableConstraintIsInf) {
  WcIndex index = BuildPaperIndex();
  EXPECT_EQ(index.Query(0, 4, 6.0f), kInfDistance);
}

TEST(PaperExample, IndexPassesFullVerification) {
  WcIndex index = BuildPaperIndex();
  QualityGraph g = MakeFigure3Graph();
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(PaperExample, Example1Figure2Facts) {
  // All of Example 1's assertions must hold on the Figure 2 witness graph
  // (see MakeFigure2Graph), both via online search and via the index.
  QualityGraph g = MakeFigure2Graph();
  WcIndex index = WcIndex::Build(g);
  WcBfs bfs(&g);
  // dist^1(v0, v8) = 2 via {v0, v2, v8}.
  EXPECT_EQ(bfs.Query(0, 8, 1.0f), 2u);
  EXPECT_EQ(index.Query(0, 8, 1.0f), 2u);
  // dist^2(v0, v8) = 3 via {v0, v1, v2, v8} ((v0, v2) is below 2).
  EXPECT_EQ(index.Query(0, 8, 2.0f), 3u);
  // {v1, v2, v9, v8, v5, v4} is a 3-path, so dist^3(v1, v4) <= 5...
  EXPECT_LE(index.Query(1, 4, 3.0f), 5u);
  // ...but the 2-path {v1, v2, v8, v5, v4} is shorter: dist^2(v1, v4) = 4.
  EXPECT_EQ(index.Query(1, 4, 2.0f), 4u);
  // And the whole index is consistent on this graph too.
  VerificationReport report = VerifyAll(index, g);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(PaperExample, Figure1QoSQuery) {
  // Example (1): distance from R3 to R2 with a 3 Mbps guarantee is 4,
  // because the short route through S1 -> R2 only carries 2 Mbps.
  QualityGraph g = MakeFigure1Network();
  WcIndex index = WcIndex::Build(g);
  EXPECT_EQ(index.Query(2, 1, 3.0f), 4u);
  // Without the bandwidth guarantee the distance is 2 (R3 - S1 - R2).
  EXPECT_EQ(index.Query(2, 1, 1.0f), 2u);
}

TEST(PaperExample, Example4BfsHub0Entries) {
  // Figure 4 walkthrough: v0's round contributes exactly the hub-0 entries
  // of Table II — 1 (self) + 1 (v1) + 1 (v2) + 3 (v3) + 3 (v4) + 3 (v5).
  WcIndex index = BuildPaperIndex();
  size_t hub0_entries = 0;
  for (Vertex v = 0; v < 6; ++v) {
    for (const LabelEntry& e : index.labels().For(v)) {
      if (e.hub == 0) ++hub0_entries;
    }
  }
  EXPECT_EQ(hub0_entries, 12u);
}

}  // namespace
}  // namespace wcsd
