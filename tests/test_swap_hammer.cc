// Swap-under-load hammer: N threads query a SwappableQueryService while
// another thread hot-swaps the serving engine in a tight loop. The contract
// under test (ISSUE 7 tentpole): zero dropped or failed queries, every
// answer bit-identical to one of the two engine generations, and the
// generation counter monotone — in-process and over the wire. These tests
// are the TSan/ASan targets for the RCU-style swap path and the
// fingerprint-bound result-cache handoff.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/swap_service.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/random.h"

namespace wcsd {
namespace {

// Two index generations over the same vertex set: B is A plus one extra
// edge, so some (but not all) answers differ between them.
struct SwapFixture {
  std::shared_ptr<const WcIndex> index_a;
  std::shared_ptr<const WcIndex> index_b;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected_a;
  std::vector<Distance> expected_b;
};

SwapFixture MakeSwapFixture(size_t n, size_t m, size_t num_queries,
                            uint64_t seed) {
  SwapFixture f;
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);

  WcIndex built_a = WcIndex::Build(g, WcIndexOptions::Plus());
  built_a.Finalize();
  f.index_a = std::make_shared<const WcIndex>(std::move(built_a));

  // Generation B: insert a high-quality shortcut edge between two vertices
  // the generator left far apart, so plenty of workload answers change.
  DynamicWcIndex dyn(g, WcIndexOptions::Plus());
  Vertex u = 0;
  Vertex v = static_cast<Vertex>(n - 1);
  dyn.InsertEdge(u, v, static_cast<Quality>(quality.num_levels));
  WcIndex built_b = WcIndex::Build(dyn.Snapshot(), WcIndexOptions::Plus());
  built_b.Finalize();
  f.index_b = std::make_shared<const WcIndex>(std::move(built_b));

  Rng rng(seed ^ 0xabcd);
  f.workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected_a.push_back(f.index_a->Query(q.s, q.t, q.w));
    f.expected_b.push_back(f.index_b->Query(q.s, q.t, q.w));
  }
  return f;
}

std::shared_ptr<const QueryService> ServiceOver(
    std::shared_ptr<const WcIndex> index, const QueryEngineOptions& options) {
  return MakeQueryService(
      std::make_shared<const QueryEngine>(std::move(index), options));
}

// In-process hammer: every answer must match generation A or generation B,
// and the generation counter each thread observes must never go backwards.
TEST(SwapHammer, InProcessAnswersAlwaysFromOneGeneration) {
  SwapFixture f = MakeSwapFixture(120, 320, 200, 1217);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto service_a = ServiceOver(f.index_a, options);
  auto service_b = ServiceOver(f.index_b, options);

  auto swappable = std::make_shared<SwappableQueryService>(service_a);
  EXPECT_EQ(swappable->generation(), 1u);

  constexpr int kQueryThreads = 4;
  constexpr int kSwaps = 300;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> generation_regressions{0};

  std::vector<std::thread> workers;
  workers.reserve(kQueryThreads);
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0x5eed + static_cast<uint64_t>(w));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        Distance d = swappable->Query(q.s, q.t, q.w);
        if (d != f.expected_a[i] && d != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        uint64_t generation = swappable->Stats().generation;
        if (generation < last_generation) {
          generation_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = generation;
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    swappable->Swap((s % 2 == 0) ? service_b : service_a);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(generation_regressions.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
}

// Wire hammer: the same contract holds end to end through WcServer —
// no connection ever drops mid-swap, answers stay within {A, B}, and the
// kStatsReply generation is monotone per connection.
TEST(SwapHammer, WireServerSurvivesSwapsWithoutDrops) {
  SwapFixture f = MakeSwapFixture(80, 200, 120, 4119);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto service_a = ServiceOver(f.index_a, options);
  auto service_b = ServiceOver(f.index_b, options);

  auto swappable = std::make_shared<SwappableQueryService>(service_a);
  auto server = WcServer::Start(swappable, WcServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Exact wire semantics before the storm: a fresh swappable service
  // reports generation 1, and one swap bumps it to 2.
  {
    auto client = WcClient::Connect("127.0.0.1", server.value().port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto stats = client.value().Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().generation, 1u);
    EXPECT_EQ(swappable->Swap(service_b), 2u);
    stats = client.value().Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().generation, 2u);
  }

  constexpr int kClientThreads = 3;
  constexpr int kSwaps = 150;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> generation_regressions{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      auto client = WcClient::Connect("127.0.0.1", server.value().port());
      if (!client.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0xc11e + static_cast<uint64_t>(c));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        auto d = client.value().Query(q.s, q.t, q.w);
        if (!d.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (d.value() != f.expected_a[i] && d.value() != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        auto stats = client.value().Stats();
        if (!stats.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (stats.value().generation < last_generation) {
          generation_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = stats.value().generation;
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    swappable->Swap((s % 2 == 0) ? service_a : service_b);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(generation_regressions.load(), 0u);
}

// Shared-cache hammer: one ResultCache outlives the generations, engines
// bind their inserts to their own fingerprint, and the swapper rebinds the
// cache before each swap. A stale insert racing the rebind must either be
// swept or dropped — never served to the other generation. Under TSan this
// exercises the fingerprint-check-after-lock ordering in InsertBound.
TEST(SwapHammer, SharedCacheStaysCoherentAcrossSwaps) {
  SwapFixture f = MakeSwapFixture(100, 260, 160, 907);
  auto cache = std::make_shared<ResultCache>(256 << 10);

  QueryEngineOptions options;
  options.num_threads = 1;
  options.shared_cache = cache;
  auto engine_a =
      std::make_shared<const QueryEngine>(f.index_a, options);
  auto engine_b =
      std::make_shared<const QueryEngine>(f.index_b, options);
  ASSERT_NE(engine_a->cache_fingerprint(), engine_b->cache_fingerprint());
  cache->Rebind(engine_a->cache_fingerprint());

  auto swappable = std::make_shared<SwappableQueryService>(
      MakeQueryService(engine_a));

  constexpr int kQueryThreads = 4;
  constexpr int kSwaps = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kQueryThreads);
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0xcafe + static_cast<uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        Distance d = swappable->Query(q.s, q.t, q.w);
        if (d != f.expected_a[i] && d != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    const bool to_b = (s % 2 == 0);
    // Invalidate first, then swap: the incoming generation must never read
    // an entry only the outgoing index certified.
    cache->Rebind(to_b ? engine_b->cache_fingerprint()
                       : engine_a->cache_fingerprint());
    swappable->Swap(MakeQueryService(to_b ? engine_b : engine_a));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
}

// Cross-generation delta readback (regression for the unbound-Lookup bug):
// two engine generations serve CONCURRENTLY from one shared cache — the
// pinned old generation keeps answering during and after a swap — while an
// invalidator runs scoped InvalidateDelta back and forth between the two
// fingerprints. The strong assertion: an engine bound to generation X
// answers exactly generation X's value for every query, including the
// delta-touched pairs whose answers differ between generations. With an
// unbound Lookup, an old-generation engine could hit an entry the new
// generation inserted for a differing pair mid-sweep (slot certified by
// the new fingerprint while the sweep is still running) and answer from
// the wrong index; LookupBound's per-slot fingerprint check makes that
// impossible.
TEST(SwapHammer, CrossGenerationDeltaReadbackStaysBound) {
  SwapFixture f = MakeSwapFixture(100, 260, 200, 3391);
  auto cache = std::make_shared<ResultCache>(256 << 10);

  QueryEngineOptions options;
  options.num_threads = 1;
  options.shared_cache = cache;
  auto engine_a = std::make_shared<const QueryEngine>(f.index_a, options);
  auto engine_b = std::make_shared<const QueryEngine>(f.index_b, options);
  const uint64_t fp_a = engine_a->cache_fingerprint();
  const uint64_t fp_b = engine_b->cache_fingerprint();
  ASSERT_NE(fp_a, fp_b);

  // The pairs whose answers differ anywhere in the sampled workload: the
  // "delta-touched" set the scoped invalidation must always drop. Keys are
  // normalized (s <= t) like the cache's own.
  std::vector<uint64_t> differing;
  for (size_t i = 0; i < f.workload.size(); ++i) {
    if (f.expected_a[i] != f.expected_b[i]) {
      Vertex s = f.workload[i].s, t = f.workload[i].t;
      if (s > t) std::swap(s, t);
      differing.push_back((uint64_t{s} << 32) | t);
    }
  }
  ASSERT_FALSE(differing.empty()) << "fixture must have differing answers";
  auto is_differing = [&differing](Vertex s, Vertex t) {
    const uint64_t key = (uint64_t{s} << 32) | t;
    for (uint64_t k : differing) {
      if (k == key) return true;
    }
    return false;
  };

  constexpr int kThreadsPerGen = 2;
  constexpr int kRounds = 120;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_generation_answers{0};

  auto worker = [&](const QueryEngine* engine,
                    const std::vector<Distance>* expected, uint64_t seed) {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      size_t i = rng.NextBounded(f.workload.size());
      const BatchQueryInput& q = f.workload[i];
      // Exact-generation assertion: "either generation's answer" is NOT
      // good enough here — that is what the unbound bug would produce.
      if (engine->Query(q.s, q.t, q.w) != (*expected)[i]) {
        wrong_generation_answers.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreadsPerGen; ++w) {
    workers.emplace_back(worker, engine_a.get(), &f.expected_a,
                         0xaaa0 + static_cast<uint64_t>(w));
    workers.emplace_back(worker, engine_b.get(), &f.expected_b,
                         0xbbb0 + static_cast<uint64_t>(w));
  }

  // The invalidator alternates which generation the cache is bound to,
  // always dropping the differing pairs (the delta-touched set) and
  // re-certifying only pairs both generations agree on — the scoped-
  // invalidation soundness contract, exercised while both generations
  // read and insert concurrently.
  DeltaImpact impact{0, 0, -kInfQuality, kInfQuality};
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t next_fp = (round % 2 == 0) ? fp_b : fp_a;
    cache->InvalidateDelta(
        next_fp, {&impact, 1},
        [&is_differing](Vertex s, Vertex t, const DeltaImpact&, Quality) {
          return is_differing(s, t);
        });
    // Let each binding serve for a moment so both generations get real
    // cache traffic (hits + inserts) between rebinds.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(wrong_generation_answers.load(), 0u);
  // The cache was actually in play (hits happened).
  EXPECT_GT(cache->stats().hits, 0u);
}

// Marker service for the Stats()/generation consistency check: Stats()
// reports a constant marker in `queries`, so a reader can tell WHICH
// service produced the counters it got.
class MarkerService final : public QueryService {
 public:
  explicit MarkerService(uint64_t marker) : marker_(marker) {}
  Distance Query(Vertex, Vertex, Quality) const override { return 0; }
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const override {
    return std::vector<Distance>(queries.size(), 0);
  }
  uint64_t NumVertices() const override { return 1; }
  QueryEngineStats Stats() const override {
    QueryEngineStats stats;
    stats.queries = marker_;
    return stats;
  }

 private:
  uint64_t marker_;
};

// Regression for the Stats()/generation race: the service pointer and the
// generation counter must be captured under one critical section. The
// swapper maintains the invariant that the service installed at generation
// g carries marker g % 2; any Stats() result whose marker disagrees with
// its generation's parity means the counters of one generation were
// labeled with another generation's number — exactly what reading
// generation() after Pin() allowed.
TEST(SwapHammer, StatsGenerationStaysConsistentAcrossSwaps) {
  auto even = std::make_shared<MarkerService>(0);
  auto odd = std::make_shared<MarkerService>(1);

  // Initial generation is 1: install the odd marker.
  auto swappable = std::make_shared<SwappableQueryService>(odd);

  constexpr int kReaderThreads = 4;
  constexpr int kSwaps = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mislabeled{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QueryEngineStats stats = swappable->Stats();
        if (stats.queries != stats.generation % 2) {
          mislabeled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int s = 1; s <= kSwaps; ++s) {
    // This swap bumps the generation to 1 + s; install the matching
    // parity's marker service.
    swappable->Swap((1 + s) % 2 == 0 ? even : odd);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mislabeled.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
}

}  // namespace
}  // namespace wcsd
