// Swap-under-load hammer: N threads query a SwappableQueryService while
// another thread hot-swaps the serving engine in a tight loop. The contract
// under test (ISSUE 7 tentpole): zero dropped or failed queries, every
// answer bit-identical to one of the two engine generations, and the
// generation counter monotone — in-process and over the wire. These tests
// are the TSan/ASan targets for the RCU-style swap path and the
// fingerprint-bound result-cache handoff.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/swap_service.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/random.h"

namespace wcsd {
namespace {

// Two index generations over the same vertex set: B is A plus one extra
// edge, so some (but not all) answers differ between them.
struct SwapFixture {
  std::shared_ptr<const WcIndex> index_a;
  std::shared_ptr<const WcIndex> index_b;
  std::vector<BatchQueryInput> workload;
  std::vector<Distance> expected_a;
  std::vector<Distance> expected_b;
};

SwapFixture MakeSwapFixture(size_t n, size_t m, size_t num_queries,
                            uint64_t seed) {
  SwapFixture f;
  QualityModel quality;
  quality.num_levels = 5;
  QualityGraph g = GenerateRandomConnected(n, m, quality, seed);

  WcIndex built_a = WcIndex::Build(g, WcIndexOptions::Plus());
  built_a.Finalize();
  f.index_a = std::make_shared<const WcIndex>(std::move(built_a));

  // Generation B: insert a high-quality shortcut edge between two vertices
  // the generator left far apart, so plenty of workload answers change.
  DynamicWcIndex dyn(g, WcIndexOptions::Plus());
  Vertex u = 0;
  Vertex v = static_cast<Vertex>(n - 1);
  dyn.InsertEdge(u, v, static_cast<Quality>(quality.num_levels));
  WcIndex built_b = WcIndex::Build(dyn.Snapshot(), WcIndexOptions::Plus());
  built_b.Finalize();
  f.index_b = std::make_shared<const WcIndex>(std::move(built_b));

  Rng rng(seed ^ 0xabcd);
  f.workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    BatchQueryInput q{static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Quality>(rng.NextInRange(1, 5))};
    f.workload.push_back(q);
    f.expected_a.push_back(f.index_a->Query(q.s, q.t, q.w));
    f.expected_b.push_back(f.index_b->Query(q.s, q.t, q.w));
  }
  return f;
}

std::shared_ptr<const QueryService> ServiceOver(
    std::shared_ptr<const WcIndex> index, const QueryEngineOptions& options) {
  return MakeQueryService(
      std::make_shared<const QueryEngine>(std::move(index), options));
}

// In-process hammer: every answer must match generation A or generation B,
// and the generation counter each thread observes must never go backwards.
TEST(SwapHammer, InProcessAnswersAlwaysFromOneGeneration) {
  SwapFixture f = MakeSwapFixture(120, 320, 200, 1217);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto service_a = ServiceOver(f.index_a, options);
  auto service_b = ServiceOver(f.index_b, options);

  auto swappable = std::make_shared<SwappableQueryService>(service_a);
  EXPECT_EQ(swappable->generation(), 1u);

  constexpr int kQueryThreads = 4;
  constexpr int kSwaps = 300;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> generation_regressions{0};

  std::vector<std::thread> workers;
  workers.reserve(kQueryThreads);
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0x5eed + static_cast<uint64_t>(w));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        Distance d = swappable->Query(q.s, q.t, q.w);
        if (d != f.expected_a[i] && d != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        uint64_t generation = swappable->Stats().generation;
        if (generation < last_generation) {
          generation_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = generation;
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    swappable->Swap((s % 2 == 0) ? service_b : service_a);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(generation_regressions.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
}

// Wire hammer: the same contract holds end to end through WcServer —
// no connection ever drops mid-swap, answers stay within {A, B}, and the
// kStatsReply generation is monotone per connection.
TEST(SwapHammer, WireServerSurvivesSwapsWithoutDrops) {
  SwapFixture f = MakeSwapFixture(80, 200, 120, 4119);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto service_a = ServiceOver(f.index_a, options);
  auto service_b = ServiceOver(f.index_b, options);

  auto swappable = std::make_shared<SwappableQueryService>(service_a);
  auto server = WcServer::Start(swappable, WcServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Exact wire semantics before the storm: a fresh swappable service
  // reports generation 1, and one swap bumps it to 2.
  {
    auto client = WcClient::Connect("127.0.0.1", server.value().port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto stats = client.value().Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().generation, 1u);
    EXPECT_EQ(swappable->Swap(service_b), 2u);
    stats = client.value().Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().generation, 2u);
  }

  constexpr int kClientThreads = 3;
  constexpr int kSwaps = 150;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> generation_regressions{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      auto client = WcClient::Connect("127.0.0.1", server.value().port());
      if (!client.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0xc11e + static_cast<uint64_t>(c));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        auto d = client.value().Query(q.s, q.t, q.w);
        if (!d.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (d.value() != f.expected_a[i] && d.value() != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        auto stats = client.value().Stats();
        if (!stats.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (stats.value().generation < last_generation) {
          generation_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = stats.value().generation;
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    swappable->Swap((s % 2 == 0) ? service_a : service_b);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(generation_regressions.load(), 0u);
}

// Shared-cache hammer: one ResultCache outlives the generations, engines
// bind their inserts to their own fingerprint, and the swapper rebinds the
// cache before each swap. A stale insert racing the rebind must either be
// swept or dropped — never served to the other generation. Under TSan this
// exercises the fingerprint-check-after-lock ordering in InsertBound.
TEST(SwapHammer, SharedCacheStaysCoherentAcrossSwaps) {
  SwapFixture f = MakeSwapFixture(100, 260, 160, 907);
  auto cache = std::make_shared<ResultCache>(256 << 10);

  QueryEngineOptions options;
  options.num_threads = 1;
  options.shared_cache = cache;
  auto engine_a =
      std::make_shared<const QueryEngine>(f.index_a, options);
  auto engine_b =
      std::make_shared<const QueryEngine>(f.index_b, options);
  ASSERT_NE(engine_a->cache_fingerprint(), engine_b->cache_fingerprint());
  cache->Rebind(engine_a->cache_fingerprint());

  auto swappable = std::make_shared<SwappableQueryService>(
      MakeQueryService(engine_a));

  constexpr int kQueryThreads = 4;
  constexpr int kSwaps = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kQueryThreads);
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0xcafe + static_cast<uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = rng.NextBounded(f.workload.size());
        const BatchQueryInput& q = f.workload[i];
        Distance d = swappable->Query(q.s, q.t, q.w);
        if (d != f.expected_a[i] && d != f.expected_b[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    const bool to_b = (s % 2 == 0);
    // Invalidate first, then swap: the incoming generation must never read
    // an entry only the outgoing index certified.
    cache->Rebind(to_b ? engine_b->cache_fingerprint()
                       : engine_a->cache_fingerprint());
    swappable->Swap(MakeQueryService(to_b ? engine_b : engine_a));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(swappable->generation(), 1u + kSwaps);
}

}  // namespace
}  // namespace wcsd
