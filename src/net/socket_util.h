// Shared socket-layer helpers for the net/ module.

#ifndef WCSD_NET_SOCKET_UTIL_H_
#define WCSD_NET_SOCKET_UTIL_H_

#include <cerrno>
#include <cstring>
#include <string>

#include "util/status.h"

namespace wcsd {
namespace net {

/// Formats the current errno as an IoError ("what: strerror").
inline Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace net
}  // namespace wcsd

#endif  // WCSD_NET_SOCKET_UTIL_H_
