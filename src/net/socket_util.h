// Shared socket-layer helpers for the net/ module.
//
// SendSome/RecvSome are the single chokepoint through which the server and
// client touch send(2)/recv(2). They exist so deterministic fault injection
// (util/failpoint.h) can interpose on network IO without a mock transport:
// activating the `net.send` / `net.recv` failpoints makes the next calls
// fail with an injected errno (EINTR, ECONNRESET, EPIPE, ...) or return a
// short count, exactly as a flaky kernel would. With no failpoint active
// they compile down to the bare syscall.

#ifndef WCSD_NET_SOCKET_UTIL_H_
#define WCSD_NET_SOCKET_UTIL_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/failpoint.h"
#include "util/status.h"

namespace wcsd {
namespace net {

/// Formats the current errno as an IoError ("what: strerror").
inline Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// send(2) with the `net.send` failpoint in front. An injected error sets
/// errno and returns -1 without touching the socket; an injected short
/// count caps how many bytes this call may move (the kernel is always
/// allowed to send less — callers already loop).
inline ssize_t SendSome(int fd, const void* data, size_t size, int flags) {
  FailpointResult fp = WCSD_FAILPOINT("net.send");
  if (fp.action == FailpointAction::kError) {
    errno = fp.error_errno;
    return -1;
  }
  if (fp.action == FailpointAction::kShort && fp.arg < size) {
    size = static_cast<size_t>(fp.arg);
    if (size == 0) {
      errno = EINTR;  // a zero-byte send is not a thing; surface as EINTR
      return -1;
    }
  }
  return send(fd, data, size, flags);
}

/// recv(2) with the `net.recv` failpoint in front; same contract as
/// SendSome. A short count trims the buffer the kernel may fill, which is
/// indistinguishable from a slow peer.
inline ssize_t RecvSome(int fd, void* data, size_t size, int flags) {
  FailpointResult fp = WCSD_FAILPOINT("net.recv");
  if (fp.action == FailpointAction::kError) {
    errno = fp.error_errno;
    return -1;
  }
  if (fp.action == FailpointAction::kShort && fp.arg < size) {
    size = static_cast<size_t>(fp.arg);
    if (size == 0) {
      errno = EINTR;
      return -1;
    }
  }
  return recv(fd, data, size, flags);
}

}  // namespace net
}  // namespace wcsd

#endif  // WCSD_NET_SOCKET_UTIL_H_
