// WcClient: the wire-protocol client library (net/wire.h).
//
// Blocking sockets, two call shapes:
//   * sync      — Query/Batch/Stats/Health send one request frame and wait
//                 for its reply;
//   * pipelined — QueryPipelined keeps a window of single-query frames in
//                 flight on the one connection, overlapping the network
//                 round trip with the server's work. Replies are matched by
//                 request id, not arrival order.
// A connection is not thread-safe; open one WcClient per caller thread
// (the server multiplexes any number of connections).
//
// Reliability (WcClientOptions): `deadline_ms` is a real end-to-end
// deadline — one monotonic clock armed at the top of every public call
// (and across connect) and re-checked before every send and receive, so a
// call can never outlive its budget no matter how the time is spent.
// `max_retries` retries with exponential backoff plus jitter, and only
// where a retry is safe: connect failures (nothing was ever sent) and
// kOverloaded rejections (the server explicitly promised the request was
// never executed and the stream stays healthy). kShardUnavailable and
// kDeadlineExceeded are NOT retried — the former will keep failing until
// the shard is repaired, the latter means the budget is already spent.
//
// The raw escape hatches (SendBytes/ReadRawFrame) exist for protocol tests
// and tooling that must speak malformed or future frames on purpose.

#ifndef WCSD_NET_CLIENT_H_
#define WCSD_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// One decoded frame, payload copied out of the stream.
struct WireFrame {
  net::WireHeader header;
  std::vector<uint8_t> payload;
};

/// Server counters as reported over the wire (kStatsReply): the engine
/// counters, the result-cache counters (zero when the server's engine
/// serves uncached), plus the per-shard balance section (empty when the
/// server's engine is not sharded).
struct WireStats {
  uint64_t num_vertices = 0;
  uint64_t queries = 0;
  uint64_t reachable = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  uint64_t overload_rejections = 0;
  uint64_t deadline_rejections = 0;
  uint64_t shard_unavailable = 0;
  /// Hot-swap generation serving when the stats were read; 0 when the
  /// server's service is not swappable, monotone per server otherwise.
  uint64_t generation = 0;
  bool draining = false;
  /// True when the served index carries §V parent quads; false is the
  /// explicit degraded parent-less mode (e.g. a v1 snapshot).
  bool has_parents = false;
  /// Path unwind steps the server resolved through the graph fallback.
  uint64_t path_fallbacks = 0;
  /// True when the engine serves the compressed label backend (a v3
  /// compressed snapshot, or any compressed shard).
  bool compressed = false;
  /// Decoded-label cache counters (zero without a decode cache);
  /// cold_pageins counts decode misses that walked mmap-backed bytes.
  uint64_t decode_hits = 0;
  uint64_t decode_misses = 0;
  uint64_t cold_pageins = 0;
  /// Label mass actually served vs. the same labels' flat-backend mass;
  /// the ratio is the compression ratio (equal on the flat backend).
  uint64_t label_bytes = 0;
  uint64_t uncompressed_label_bytes = 0;
  std::vector<net::ShardBalancePayload> shards;
};

/// Decoded kHealthReply.
struct WireHealth {
  uint64_t num_vertices = 0;
  bool draining = false;
};

/// Reliability policy for a connection. Defaults are fully backward
/// compatible: no deadline, no retries.
struct WcClientOptions {
  /// End-to-end budget for every public call (and for Connect itself),
  /// spanning all sends, receives, and retry backoffs within the call.
  /// 0 = unbounded.
  uint64_t deadline_ms = 0;
  /// Retries after the first attempt, for connect failures and
  /// kOverloaded rejections only. 0 = fail fast.
  uint32_t max_retries = 0;
  /// Exponential backoff: sleep ~backoff_base_ms * 2^attempt between
  /// retries (halved-then-jittered to decorrelate clients), capped at
  /// backoff_max_ms.
  uint64_t backoff_base_ms = 10;
  uint64_t backoff_max_ms = 1000;
  /// Seed for backoff jitter; 0 picks a fixed default (tests stay
  /// deterministic by seeding explicitly).
  uint64_t jitter_seed = 0;
};

class WcClient {
 public:
  /// Connects to host:port. `host` must be a numeric IPv4 address or
  /// "localhost". `timeout_ms` > 0 bounds connect and every subsequent
  /// send/receive (SO_SNDTIMEO/SO_RCVTIMEO); an expired deadline surfaces
  /// as a clean IoError instead of a hang. 0 = fully blocking. (Legacy
  /// shape: per-syscall timeouts, not an end-to-end deadline — prefer the
  /// options overload.)
  static Result<WcClient> Connect(const std::string& host, uint16_t port,
                                  int timeout_ms = 0);

  /// Connects with a reliability policy: options.deadline_ms bounds the
  /// whole connect (all attempts and backoffs), options.max_retries
  /// retries refused connections with exponential backoff + jitter, and
  /// the returned client applies the same policy to every call.
  static Result<WcClient> Connect(const std::string& host, uint16_t port,
                                  const WcClientOptions& options);

  WcClient(WcClient&& other) noexcept;
  WcClient& operator=(WcClient&& other) noexcept;
  ~WcClient();

  /// One query, one round trip.
  Result<Distance> Query(Vertex s, Vertex t, Quality w);

  /// All queries in one kBatchQuery frame; results positionally aligned.
  Result<std::vector<Distance>> Batch(
      const std::vector<BatchQueryInput>& queries);

  /// All queries as individual kQuery frames with up to `window` in flight
  /// at once; results positionally aligned. This is the low-latency shape
  /// for streams of independent queries.
  Result<std::vector<Distance>> QueryPipelined(
      const std::vector<BatchQueryInput>& queries, size_t window = 64);

  /// One kTopK frame: up to k candidates closest to `source` under w,
  /// ascending by distance (ties by vertex id), unreachable candidates
  /// omitted — core/batch.h TopKClosest semantics, served remotely.
  Result<std::vector<RankedCandidate>> TopK(
      Vertex source, const std::vector<Vertex>& candidates, Quality w,
      uint32_t k);

  /// One kProfile frame: the (w, d) trade-off curve for (s, t) at the
  /// given thresholds, positionally aligned with the input.
  Result<std::vector<ProfilePoint>> Profile(
      Vertex s, Vertex t, const std::vector<Quality>& thresholds);

  /// One kPath frame: a shortest w-path s ... t inclusive; empty =
  /// unreachable. Servers without a graph refuse with kNotSupported
  /// (surfaced as an Unimplemented Status).
  Result<std::vector<Vertex>> Path(Vertex s, Vertex t, Quality w);

  Result<WireStats> Stats();

  /// Round-trips a kHealth frame; returns the served vertex count.
  Result<uint64_t> Health();

  /// Round-trips a kHealth frame; returns the full decoded payload
  /// (vertex count plus the draining flag).
  Result<WireHealth> HealthEx();

  // ---- raw protocol access (tests, tooling) ----

  /// Writes bytes verbatim to the socket.
  Status SendBytes(const void* data, size_t size);

  /// Reads one frame off the socket (any type, including kError). Fails
  /// with IoError on EOF and Corruption if the server's framing is bad.
  Result<WireFrame> ReadRawFrame();

  /// Half-closes the write side (signals EOF to the server while replies
  /// can still be read).
  Status ShutdownSend();

 private:
  explicit WcClient(int fd) : fd_(fd) {}

  static Result<WcClient> ConnectOnce(const std::string& host, uint16_t port,
                                      uint64_t deadline_at_ms);

  /// Reads one frame and checks it is `expected` with status kOk and the
  /// given request id; turns kError frames into a clean Status (recording
  /// the wire error so the retry loop can tell kOverloaded apart).
  Result<WireFrame> ReadReply(net::MsgType expected, uint64_t request_id);

  /// Arms the whole-request deadline for one public call: deadline_at_ms_
  /// = now + options.deadline_ms (0 = unbounded). Every send/receive
  /// below re-checks the remaining budget.
  void BeginRequest();
  /// Checks the remaining budget and narrows the socket timeout to it.
  /// `which` is SO_SNDTIMEO or SO_RCVTIMEO.
  Status ArmTimeout(int which);
  /// Runs `attempt` under the retry policy: retries only kOverloaded
  /// rejections, with exponential backoff + jitter, never past the
  /// deadline.
  template <typename T>
  Result<T> RetryLoop(const std::function<Result<T>()>& attempt);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  WcClientOptions options_;
  /// Monotonic ms instant the current call must finish by; 0 = none.
  uint64_t deadline_at_ms_ = 0;
  /// Wire error of the last kError reply, for the retry-safety decision.
  net::WireError last_wire_error_ = net::WireError::kOk;
  /// Backoff jitter state.
  uint64_t jitter_state_ = 0;
};

}  // namespace wcsd

#endif  // WCSD_NET_CLIENT_H_
