// WcClient: the wire-protocol client library (net/wire.h).
//
// Blocking sockets, two call shapes:
//   * sync      — Query/Batch/Stats/Health send one request frame and wait
//                 for its reply;
//   * pipelined — QueryPipelined keeps a window of single-query frames in
//                 flight on the one connection, overlapping the network
//                 round trip with the server's work. Replies are matched by
//                 request id, not arrival order.
// A connection is not thread-safe; open one WcClient per caller thread
// (the server multiplexes any number of connections).
//
// The raw escape hatches (SendBytes/ReadRawFrame) exist for protocol tests
// and tooling that must speak malformed or future frames on purpose.

#ifndef WCSD_NET_CLIENT_H_
#define WCSD_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// One decoded frame, payload copied out of the stream.
struct WireFrame {
  net::WireHeader header;
  std::vector<uint8_t> payload;
};

/// Server counters as reported over the wire (kStatsReply): the engine
/// counters, the result-cache counters (zero when the server's engine
/// serves uncached), plus the per-shard balance section (empty when the
/// server's engine is not sharded).
struct WireStats {
  uint64_t num_vertices = 0;
  uint64_t queries = 0;
  uint64_t reachable = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  std::vector<net::ShardBalancePayload> shards;
};

class WcClient {
 public:
  /// Connects to host:port. `host` must be a numeric IPv4 address or
  /// "localhost". `timeout_ms` > 0 bounds connect and every subsequent
  /// send/receive (SO_SNDTIMEO/SO_RCVTIMEO); an expired deadline surfaces
  /// as a clean IoError instead of a hang. 0 = fully blocking.
  static Result<WcClient> Connect(const std::string& host, uint16_t port,
                                  int timeout_ms = 0);

  WcClient(WcClient&& other) noexcept;
  WcClient& operator=(WcClient&& other) noexcept;
  ~WcClient();

  /// One query, one round trip.
  Result<Distance> Query(Vertex s, Vertex t, Quality w);

  /// All queries in one kBatchQuery frame; results positionally aligned.
  Result<std::vector<Distance>> Batch(
      const std::vector<BatchQueryInput>& queries);

  /// All queries as individual kQuery frames with up to `window` in flight
  /// at once; results positionally aligned. This is the low-latency shape
  /// for streams of independent queries.
  Result<std::vector<Distance>> QueryPipelined(
      const std::vector<BatchQueryInput>& queries, size_t window = 64);

  Result<WireStats> Stats();

  /// Round-trips a kHealth frame; returns the served vertex count.
  Result<uint64_t> Health();

  // ---- raw protocol access (tests, tooling) ----

  /// Writes bytes verbatim to the socket.
  Status SendBytes(const void* data, size_t size);

  /// Reads one frame off the socket (any type, including kError). Fails
  /// with IoError on EOF and Corruption if the server's framing is bad.
  Result<WireFrame> ReadRawFrame();

  /// Half-closes the write side (signals EOF to the server while replies
  /// can still be read).
  Status ShutdownSend();

 private:
  explicit WcClient(int fd) : fd_(fd) {}

  /// Reads one frame and checks it is `expected` with status kOk and the
  /// given request id; turns kError frames into a clean Status.
  Result<WireFrame> ReadReply(net::MsgType expected, uint64_t request_id);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace wcsd

#endif  // WCSD_NET_CLIENT_H_
