#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/socket_util.h"
#include "util/endian.h"

namespace wcsd {

namespace {

using net::ErrnoStatus;
using net::MsgType;
using net::WireError;
using net::WireHeader;

Status StatusFromError(WireError error) {
  return Status::InvalidArgument(std::string("server rejected request: ") +
                                 net::WireErrorName(error));
}

}  // namespace

Result<WcClient> WcClient::Connect(const std::string& host, uint16_t port,
                                   int timeout_ms) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address " + host);
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (timeout_ms > 0) {
    // SO_SNDTIMEO also bounds connect(2) on Linux, so one pair of options
    // covers the whole deadline story.
    timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return WcClient(fd);
}

WcClient::WcClient(WcClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

WcClient& WcClient::operator=(WcClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

WcClient::~WcClient() {
  if (fd_ >= 0) close(fd_);
}

Status WcClient::SendBytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("send timed out");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireFrame> WcClient::ReadRawFrame() {
  auto read_exact = [&](uint8_t* into, size_t size) -> Status {
    size_t got = 0;
    while (got < size) {
      ssize_t n = recv(fd_, into + got, size - got, 0);
      if (n == 0) {
        return Status::IoError(got == 0 ? "connection closed"
                                        : "connection closed mid-frame");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::IoError("timed out waiting for a reply");
        }
        return ErrnoStatus("recv");
      }
      got += static_cast<size_t>(n);
    }
    return Status::OK();
  };

  WireFrame frame;
  WCSD_RETURN_NOT_OK(read_exact(reinterpret_cast<uint8_t*>(&frame.header),
                                sizeof(frame.header)));
  if (frame.header.magic != net::kWireMagic) {
    return Status::Corruption("bad frame magic from server");
  }
  if (frame.header.version != net::kWireVersion) {
    return Status::Corruption("unsupported protocol version from server");
  }
  if (frame.header.payload_bytes > net::kMaxPayloadBytes) {
    return Status::Corruption("oversized frame from server");
  }
  frame.payload.resize(frame.header.payload_bytes);
  if (!frame.payload.empty()) {
    WCSD_RETURN_NOT_OK(read_exact(frame.payload.data(),
                                  frame.payload.size()));
  }
  return frame;
}

Status WcClient::ShutdownSend() {
  if (shutdown(fd_, SHUT_WR) < 0) return ErrnoStatus("shutdown");
  return Status::OK();
}

Result<WireFrame> WcClient::ReadReply(MsgType expected,
                                      uint64_t request_id) {
  Result<WireFrame> frame = ReadRawFrame();
  if (!frame.ok()) return frame;
  const WireHeader& header = frame.value().header;
  if (static_cast<MsgType>(header.type) == MsgType::kError) {
    return StatusFromError(static_cast<WireError>(header.status));
  }
  if (static_cast<MsgType>(header.type) != expected ||
      header.status != static_cast<uint8_t>(WireError::kOk)) {
    return Status::Corruption("unexpected reply type from server");
  }
  if (header.request_id != request_id) {
    return Status::Corruption("reply id does not match request");
  }
  return frame;
}

Result<Distance> WcClient::Query(Vertex s, Vertex t, Quality w) {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendQueryRequest(&out, id, s, t, w);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kQueryReply, id);
  if (!reply.ok()) return reply.status();
  if (reply.value().payload.size() != sizeof(net::QueryReplyPayload)) {
    return Status::Corruption("bad query reply payload");
  }
  net::QueryReplyPayload payload;
  std::memcpy(&payload, reply.value().payload.data(), sizeof(payload));
  return Distance{payload.dist};
}

Result<std::vector<Distance>> WcClient::Batch(
    const std::vector<BatchQueryInput>& queries) {
  if (queries.size() > net::kMaxBatchQueries) {
    // An oversized frame would be a FRAMING error server-side (it closes
    // the connection); fail the call instead and keep the stream healthy.
    return Status::InvalidArgument(
        "batch of " + std::to_string(queries.size()) +
        " queries exceeds the wire frame limit of " +
        std::to_string(net::kMaxBatchQueries) + "; split it across frames");
  }
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendBatchRequest(&out, id, queries);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kBatchQueryReply, id);
  if (!reply.ok()) return reply.status();
  const std::vector<uint8_t>& payload = reply.value().payload;
  uint32_t count = 0;
  if (payload.size() < sizeof(count)) {
    return Status::Corruption("bad batch reply payload");
  }
  std::memcpy(&count, payload.data(), sizeof(count));
  if (count != queries.size() ||
      payload.size() != sizeof(count) + uint64_t{count} * sizeof(uint32_t)) {
    return Status::Corruption("batch reply count mismatch");
  }
  std::vector<Distance> results(count);
  if (count > 0) {
    std::memcpy(results.data(), payload.data() + sizeof(count),
                uint64_t{count} * sizeof(uint32_t));
  }
  return results;
}

Result<std::vector<Distance>> WcClient::QueryPipelined(
    const std::vector<BatchQueryInput>& queries, size_t window) {
  if (window == 0) window = 1;
  std::vector<Distance> results(queries.size(), kInfDistance);
  const uint64_t base_id = next_request_id_;
  next_request_id_ += queries.size();

  size_t sent = 0;
  auto send_some = [&](size_t upto) -> Status {
    std::vector<uint8_t> out;
    for (; sent < upto; ++sent) {
      const BatchQueryInput& q = queries[sent];
      net::AppendQueryRequest(&out, base_id + sent, q.s, q.t, q.w);
    }
    if (out.empty()) return Status::OK();
    return SendBytes(out.data(), out.size());
  };

  WCSD_RETURN_NOT_OK(send_some(std::min(window, queries.size())));
  for (size_t received = 0; received < queries.size(); ++received) {
    Result<WireFrame> frame = ReadRawFrame();
    if (!frame.ok()) return frame.status();
    const WireHeader& header = frame.value().header;
    if (static_cast<MsgType>(header.type) == MsgType::kError) {
      return StatusFromError(static_cast<WireError>(header.status));
    }
    if (static_cast<MsgType>(header.type) != MsgType::kQueryReply ||
        header.request_id < base_id ||
        header.request_id >= base_id + queries.size() ||
        frame.value().payload.size() != sizeof(net::QueryReplyPayload)) {
      return Status::Corruption("unexpected pipelined reply");
    }
    net::QueryReplyPayload payload;
    std::memcpy(&payload, frame.value().payload.data(), sizeof(payload));
    results[header.request_id - base_id] = payload.dist;
    // Keep the window full: one reply in, one request out.
    WCSD_RETURN_NOT_OK(send_some(std::min(sent + 1, queries.size())));
  }
  return results;
}

Result<WireStats> WcClient::Stats() {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendStatsRequest(&out, id);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kStatsReply, id);
  if (!reply.ok()) return reply.status();
  const std::vector<uint8_t>& bytes = reply.value().payload;
  if (bytes.size() < net::StatsReplyBytes(0)) {
    return Status::Corruption("bad stats reply payload");
  }
  net::StatsReplyPayload payload;
  std::memcpy(&payload, bytes.data(), sizeof(payload));
  uint32_t shard_count;
  std::memcpy(&shard_count, bytes.data() + sizeof(payload),
              sizeof(shard_count));
  if (bytes.size() != net::StatsReplyBytes(shard_count)) {
    return Status::Corruption("bad stats reply shard section");
  }
  WireStats stats{payload.num_vertices,  payload.queries,
                  payload.reachable,     payload.batches,
                  payload.cache_hits,    payload.cache_misses,
                  payload.cache_inserts, payload.cache_evictions,
                  {}};
  stats.shards.resize(shard_count);
  if (shard_count > 0) {
    std::memcpy(stats.shards.data(), bytes.data() + net::StatsReplyBytes(0),
                uint64_t{shard_count} * sizeof(net::ShardBalancePayload));
  }
  return stats;
}

Result<uint64_t> WcClient::Health() {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendHealthRequest(&out, id);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kHealthReply, id);
  if (!reply.ok()) return reply.status();
  if (reply.value().payload.size() != sizeof(net::HealthReplyPayload)) {
    return Status::Corruption("bad health reply payload");
  }
  net::HealthReplyPayload payload;
  std::memcpy(&payload, reply.value().payload.data(), sizeof(payload));
  return uint64_t{payload.num_vertices};
}

}  // namespace wcsd
