#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/socket_util.h"
#include "util/endian.h"

namespace wcsd {

namespace {

using net::ErrnoStatus;
using net::MsgType;
using net::WireError;
using net::WireHeader;

Status StatusFromError(WireError error) {
  const std::string msg =
      std::string("server rejected request: ") + net::WireErrorName(error);
  switch (error) {
    case WireError::kOverloaded:
    case WireError::kShardUnavailable:
      return Status::Unavailable(msg);
    case WireError::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case WireError::kNotSupported:
      return Status::Unimplemented(msg);
    default:
      return Status::InvalidArgument(msg);
  }
}

/// Milliseconds on the steady clock, for the end-to-end deadline.
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// xorshift64* step for backoff jitter — no need to drag in a full RNG.
uint64_t NextJitter(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace

Result<WcClient> WcClient::Connect(const std::string& host, uint16_t port,
                                   int timeout_ms) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address " + host);
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (timeout_ms > 0) {
    // SO_SNDTIMEO also bounds connect(2) on Linux, so one pair of options
    // covers the legacy per-syscall timeout story. (The options overload
    // narrows these to the remaining end-to-end budget before every
    // syscall instead.)
    timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return WcClient(fd);
}

Result<WcClient> WcClient::ConnectOnce(const std::string& host,
                                       uint16_t port,
                                       uint64_t deadline_at_ms) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address " + host);
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (deadline_at_ms != 0) {
    const uint64_t now = NowMs();
    if (now >= deadline_at_ms) {
      close(fd);
      return Status::DeadlineExceeded("deadline expired before connect");
    }
    // SO_SNDTIMEO bounds connect(2) on Linux; arm it with exactly the
    // remaining budget.
    const uint64_t remaining = deadline_at_ms - now;
    timeval tv;
    tv.tv_sec = static_cast<time_t>(remaining / 1000);
    tv.tv_usec = static_cast<suseconds_t>((remaining % 1000) * 1000);
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = (errno == EAGAIN || errno == EWOULDBLOCK ||
                 errno == EINPROGRESS)
                    ? Status::DeadlineExceeded(
                          "deadline expired during connect to " + host +
                          ":" + std::to_string(port))
                    : ErrnoStatus("connect " + host + ":" +
                                  std::to_string(port));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return WcClient(fd);
}

Result<WcClient> WcClient::Connect(const std::string& host, uint16_t port,
                                   const WcClientOptions& options) {
  const uint64_t deadline_at =
      options.deadline_ms != 0 ? NowMs() + options.deadline_ms : 0;
  uint64_t jitter = options.jitter_seed != 0 ? options.jitter_seed
                                             : 0x9E3779B97F4A7C15ULL;
  uint64_t backoff = std::max<uint64_t>(1, options.backoff_base_ms);
  for (uint32_t attempt = 0;; ++attempt) {
    Result<WcClient> connected = ConnectOnce(host, port, deadline_at);
    if (connected.ok()) {
      WcClient client = std::move(connected).value();
      client.options_ = options;
      client.jitter_state_ = jitter;
      return client;
    }
    const StatusCode code = connected.status().code();
    // Bad addresses never get better, and a spent deadline has no budget
    // left to sleep on. Everything else (refused, unreachable, reset
    // mid-handshake) is the transient class connect retries exist for.
    if (attempt >= options.max_retries ||
        code == StatusCode::kInvalidArgument ||
        code == StatusCode::kDeadlineExceeded) {
      return connected;
    }
    uint64_t sleep_ms = backoff / 2 + NextJitter(&jitter) % (backoff / 2 + 1);
    if (deadline_at != 0) {
      const uint64_t now = NowMs();
      if (now + sleep_ms >= deadline_at) return connected;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff = std::min(backoff * 2, std::max<uint64_t>(
                                        1, options.backoff_max_ms));
  }
}

WcClient::WcClient(WcClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      options_(other.options_),
      deadline_at_ms_(other.deadline_at_ms_),
      last_wire_error_(other.last_wire_error_),
      jitter_state_(other.jitter_state_) {}

WcClient& WcClient::operator=(WcClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    options_ = other.options_;
    deadline_at_ms_ = other.deadline_at_ms_;
    last_wire_error_ = other.last_wire_error_;
    jitter_state_ = other.jitter_state_;
  }
  return *this;
}

void WcClient::BeginRequest() {
  deadline_at_ms_ =
      options_.deadline_ms != 0 ? NowMs() + options_.deadline_ms : 0;
}

Status WcClient::ArmTimeout(int which) {
  if (deadline_at_ms_ == 0) return Status::OK();
  const uint64_t now = NowMs();
  if (now >= deadline_at_ms_) {
    return Status::DeadlineExceeded("request deadline expired");
  }
  const uint64_t remaining = deadline_at_ms_ - now;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(remaining / 1000);
  // Round up to a whole tick: a 0/0 timeval means "block forever", the
  // opposite of an almost-expired deadline.
  tv.tv_usec = static_cast<suseconds_t>((remaining % 1000) * 1000);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  setsockopt(fd_, SOL_SOCKET, which, &tv, sizeof(tv));
  return Status::OK();
}

template <typename T>
Result<T> WcClient::RetryLoop(const std::function<Result<T>()>& attempt) {
  uint64_t backoff = std::max<uint64_t>(1, options_.backoff_base_ms);
  for (uint32_t tries = 0;; ++tries) {
    last_wire_error_ = WireError::kOk;
    Result<T> result = attempt();
    // Only kOverloaded is retry-safe on a live connection: the server
    // explicitly never executed the request and kept the stream healthy.
    // IO errors are NOT retried here — after a torn send the request may
    // have executed, and this transport has no request dedup.
    if (result.ok() || tries >= options_.max_retries ||
        last_wire_error_ != WireError::kOverloaded) {
      return result;
    }
    uint64_t sleep_ms =
        backoff / 2 + NextJitter(&jitter_state_) % (backoff / 2 + 1);
    if (deadline_at_ms_ != 0 && NowMs() + sleep_ms >= deadline_at_ms_) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff =
        std::min(backoff * 2, std::max<uint64_t>(1, options_.backoff_max_ms));
  }
}

WcClient::~WcClient() {
  if (fd_ >= 0) close(fd_);
}

Status WcClient::SendBytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    // Re-armed per syscall so a stalled peer cannot stretch one send past
    // the whole-request deadline (no-op when no deadline is set).
    WCSD_RETURN_NOT_OK(ArmTimeout(SO_SNDTIMEO));
    ssize_t n = net::SendSome(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return deadline_at_ms_ != 0
                   ? Status::DeadlineExceeded("request deadline expired "
                                              "during send")
                   : Status::IoError("send timed out");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireFrame> WcClient::ReadRawFrame() {
  auto read_exact = [&](uint8_t* into, size_t size) -> Status {
    size_t got = 0;
    while (got < size) {
      WCSD_RETURN_NOT_OK(ArmTimeout(SO_RCVTIMEO));
      ssize_t n = net::RecvSome(fd_, into + got, size - got, 0);
      if (n == 0) {
        return Status::IoError(got == 0 ? "connection closed"
                                        : "connection closed mid-frame");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return deadline_at_ms_ != 0
                     ? Status::DeadlineExceeded("request deadline expired "
                                                "waiting for a reply")
                     : Status::IoError("timed out waiting for a reply");
        }
        return ErrnoStatus("recv");
      }
      got += static_cast<size_t>(n);
    }
    return Status::OK();
  };

  WireFrame frame;
  WCSD_RETURN_NOT_OK(read_exact(reinterpret_cast<uint8_t*>(&frame.header),
                                sizeof(frame.header)));
  if (frame.header.magic != net::kWireMagic) {
    return Status::Corruption("bad frame magic from server");
  }
  if (frame.header.version != net::kWireVersion) {
    return Status::Corruption("unsupported protocol version from server");
  }
  if (frame.header.payload_bytes > net::kMaxPayloadBytes) {
    return Status::Corruption("oversized frame from server");
  }
  frame.payload.resize(frame.header.payload_bytes);
  if (!frame.payload.empty()) {
    WCSD_RETURN_NOT_OK(read_exact(frame.payload.data(),
                                  frame.payload.size()));
  }
  return frame;
}

Status WcClient::ShutdownSend() {
  if (shutdown(fd_, SHUT_WR) < 0) return ErrnoStatus("shutdown");
  return Status::OK();
}

Result<WireFrame> WcClient::ReadReply(MsgType expected,
                                      uint64_t request_id) {
  Result<WireFrame> frame = ReadRawFrame();
  if (!frame.ok()) return frame;
  const WireHeader& header = frame.value().header;
  if (static_cast<MsgType>(header.type) == MsgType::kError) {
    last_wire_error_ = static_cast<WireError>(header.status);
    return StatusFromError(last_wire_error_);
  }
  if (static_cast<MsgType>(header.type) != expected ||
      header.status != static_cast<uint8_t>(WireError::kOk)) {
    return Status::Corruption("unexpected reply type from server");
  }
  if (header.request_id != request_id) {
    return Status::Corruption("reply id does not match request");
  }
  return frame;
}

Result<Distance> WcClient::Query(Vertex s, Vertex t, Quality w) {
  BeginRequest();
  return RetryLoop<Distance>([&]() -> Result<Distance> {
    const uint64_t id = next_request_id_++;
    std::vector<uint8_t> out;
    net::AppendQueryRequest(&out, id, s, t, w);
    WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
    Result<WireFrame> reply = ReadReply(MsgType::kQueryReply, id);
    if (!reply.ok()) return reply.status();
    if (reply.value().payload.size() != sizeof(net::QueryReplyPayload)) {
      return Status::Corruption("bad query reply payload");
    }
    net::QueryReplyPayload payload;
    std::memcpy(&payload, reply.value().payload.data(), sizeof(payload));
    return Distance{payload.dist};
  });
}

Result<std::vector<Distance>> WcClient::Batch(
    const std::vector<BatchQueryInput>& queries) {
  if (queries.size() > net::kMaxBatchQueries) {
    // An oversized frame would be a FRAMING error server-side (it closes
    // the connection); fail the call instead and keep the stream healthy.
    return Status::InvalidArgument(
        "batch of " + std::to_string(queries.size()) +
        " queries exceeds the wire frame limit of " +
        std::to_string(net::kMaxBatchQueries) + "; split it across frames");
  }
  BeginRequest();
  return RetryLoop<std::vector<Distance>>(
      [&]() -> Result<std::vector<Distance>> {
        const uint64_t id = next_request_id_++;
        std::vector<uint8_t> out;
        net::AppendBatchRequest(&out, id, queries);
        WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
        Result<WireFrame> reply = ReadReply(MsgType::kBatchQueryReply, id);
        if (!reply.ok()) return reply.status();
        const std::vector<uint8_t>& payload = reply.value().payload;
        uint32_t count = 0;
        if (payload.size() < sizeof(count)) {
          return Status::Corruption("bad batch reply payload");
        }
        std::memcpy(&count, payload.data(), sizeof(count));
        if (count != queries.size() ||
            payload.size() !=
                sizeof(count) + uint64_t{count} * sizeof(uint32_t)) {
          return Status::Corruption("batch reply count mismatch");
        }
        std::vector<Distance> results(count);
        if (count > 0) {
          std::memcpy(results.data(), payload.data() + sizeof(count),
                      uint64_t{count} * sizeof(uint32_t));
        }
        return results;
      });
}

Result<std::vector<RankedCandidate>> WcClient::TopK(
    Vertex source, const std::vector<Vertex>& candidates, Quality w,
    uint32_t k) {
  if (candidates.size() > net::kMaxTopKCandidates) {
    return Status::InvalidArgument(
        "candidate set of " + std::to_string(candidates.size()) +
        " exceeds the wire frame limit of " +
        std::to_string(net::kMaxTopKCandidates) + "; split it across frames");
  }
  BeginRequest();
  return RetryLoop<std::vector<RankedCandidate>>(
      [&]() -> Result<std::vector<RankedCandidate>> {
        const uint64_t id = next_request_id_++;
        std::vector<uint8_t> out;
        net::AppendTopKRequest(&out, id, source, candidates, w, k);
        WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
        Result<WireFrame> reply = ReadReply(MsgType::kTopKReply, id);
        if (!reply.ok()) return reply.status();
        const std::vector<uint8_t>& payload = reply.value().payload;
        uint32_t count = 0;
        if (payload.size() < sizeof(count)) {
          return Status::Corruption("bad top-k reply payload");
        }
        std::memcpy(&count, payload.data(), sizeof(count));
        if (count > candidates.size() || count > k ||
            payload.size() !=
                sizeof(count) +
                    uint64_t{count} * sizeof(net::RankedCandidatePayload)) {
          return Status::Corruption("top-k reply count mismatch");
        }
        std::vector<RankedCandidate> ranked(count);
        if (count > 0) {
          std::memcpy(ranked.data(), payload.data() + sizeof(count),
                      uint64_t{count} * sizeof(net::RankedCandidatePayload));
        }
        return ranked;
      });
}

Result<std::vector<ProfilePoint>> WcClient::Profile(
    Vertex s, Vertex t, const std::vector<Quality>& thresholds) {
  if (thresholds.size() > net::kMaxProfileThresholds) {
    return Status::InvalidArgument(
        "threshold list of " + std::to_string(thresholds.size()) +
        " exceeds the wire frame limit of " +
        std::to_string(net::kMaxProfileThresholds) +
        "; split it across frames");
  }
  BeginRequest();
  return RetryLoop<std::vector<ProfilePoint>>(
      [&]() -> Result<std::vector<ProfilePoint>> {
        const uint64_t id = next_request_id_++;
        std::vector<uint8_t> out;
        net::AppendProfileRequest(&out, id, s, t, thresholds);
        WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
        Result<WireFrame> reply = ReadReply(MsgType::kProfileReply, id);
        if (!reply.ok()) return reply.status();
        const std::vector<uint8_t>& payload = reply.value().payload;
        uint32_t count = 0;
        if (payload.size() < sizeof(count)) {
          return Status::Corruption("bad profile reply payload");
        }
        std::memcpy(&count, payload.data(), sizeof(count));
        // Positional alignment is the contract; a count mismatch means the
        // reply cannot be trusted at all.
        if (count != thresholds.size() ||
            payload.size() !=
                sizeof(count) +
                    uint64_t{count} * sizeof(net::ProfilePointPayload)) {
          return Status::Corruption("profile reply count mismatch");
        }
        std::vector<ProfilePoint> profile(count);
        if (count > 0) {
          std::memcpy(profile.data(), payload.data() + sizeof(count),
                      uint64_t{count} * sizeof(net::ProfilePointPayload));
        }
        return profile;
      });
}

Result<std::vector<Vertex>> WcClient::Path(Vertex s, Vertex t, Quality w) {
  BeginRequest();
  return RetryLoop<std::vector<Vertex>>(
      [&]() -> Result<std::vector<Vertex>> {
        const uint64_t id = next_request_id_++;
        std::vector<uint8_t> out;
        net::AppendPathRequest(&out, id, s, t, w);
        WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
        Result<WireFrame> reply = ReadReply(MsgType::kPathReply, id);
        if (!reply.ok()) return reply.status();
        const std::vector<uint8_t>& payload = reply.value().payload;
        uint32_t count = 0;
        if (payload.size() < sizeof(count)) {
          return Status::Corruption("bad path reply payload");
        }
        std::memcpy(&count, payload.data(), sizeof(count));
        if (payload.size() !=
            sizeof(count) + uint64_t{count} * sizeof(uint32_t)) {
          return Status::Corruption("path reply count mismatch");
        }
        std::vector<Vertex> path(count);
        if (count > 0) {
          std::memcpy(path.data(), payload.data() + sizeof(count),
                      uint64_t{count} * sizeof(uint32_t));
        }
        return path;
      });
}

Result<std::vector<Distance>> WcClient::QueryPipelined(
    const std::vector<BatchQueryInput>& queries, size_t window) {
  // Deadline applies; retry does not — replies already consumed from the
  // pipeline cannot be safely replayed.
  BeginRequest();
  if (window == 0) window = 1;
  std::vector<Distance> results(queries.size(), kInfDistance);
  const uint64_t base_id = next_request_id_;
  next_request_id_ += queries.size();

  size_t sent = 0;
  auto send_some = [&](size_t upto) -> Status {
    std::vector<uint8_t> out;
    for (; sent < upto; ++sent) {
      const BatchQueryInput& q = queries[sent];
      net::AppendQueryRequest(&out, base_id + sent, q.s, q.t, q.w);
    }
    if (out.empty()) return Status::OK();
    return SendBytes(out.data(), out.size());
  };

  WCSD_RETURN_NOT_OK(send_some(std::min(window, queries.size())));
  for (size_t received = 0; received < queries.size(); ++received) {
    Result<WireFrame> frame = ReadRawFrame();
    if (!frame.ok()) return frame.status();
    const WireHeader& header = frame.value().header;
    if (static_cast<MsgType>(header.type) == MsgType::kError) {
      return StatusFromError(static_cast<WireError>(header.status));
    }
    if (static_cast<MsgType>(header.type) != MsgType::kQueryReply ||
        header.request_id < base_id ||
        header.request_id >= base_id + queries.size() ||
        frame.value().payload.size() != sizeof(net::QueryReplyPayload)) {
      return Status::Corruption("unexpected pipelined reply");
    }
    net::QueryReplyPayload payload;
    std::memcpy(&payload, frame.value().payload.data(), sizeof(payload));
    results[header.request_id - base_id] = payload.dist;
    // Keep the window full: one reply in, one request out.
    WCSD_RETURN_NOT_OK(send_some(std::min(sent + 1, queries.size())));
  }
  return results;
}

Result<WireStats> WcClient::Stats() {
  BeginRequest();
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendStatsRequest(&out, id);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kStatsReply, id);
  if (!reply.ok()) return reply.status();
  const std::vector<uint8_t>& bytes = reply.value().payload;
  if (bytes.size() < net::StatsReplyBytes(0)) {
    return Status::Corruption("bad stats reply payload");
  }
  net::StatsReplyPayload payload;
  std::memcpy(&payload, bytes.data(), sizeof(payload));
  uint32_t shard_count;
  std::memcpy(&shard_count, bytes.data() + sizeof(payload),
              sizeof(shard_count));
  if (bytes.size() != net::StatsReplyBytes(shard_count)) {
    return Status::Corruption("bad stats reply shard section");
  }
  WireStats stats;
  stats.num_vertices = payload.num_vertices;
  stats.queries = payload.queries;
  stats.reachable = payload.reachable;
  stats.batches = payload.batches;
  stats.cache_hits = payload.cache_hits;
  stats.cache_misses = payload.cache_misses;
  stats.cache_inserts = payload.cache_inserts;
  stats.cache_evictions = payload.cache_evictions;
  stats.overload_rejections = payload.overload_rejections;
  stats.deadline_rejections = payload.deadline_rejections;
  stats.shard_unavailable = payload.shard_unavailable;
  stats.generation = payload.generation;
  stats.draining = payload.draining != 0;
  stats.has_parents = payload.has_parents != 0;
  stats.path_fallbacks = payload.path_fallbacks;
  stats.compressed = payload.compressed != 0;
  stats.decode_hits = payload.decode_hits;
  stats.decode_misses = payload.decode_misses;
  stats.cold_pageins = payload.cold_pageins;
  stats.label_bytes = payload.label_bytes;
  stats.uncompressed_label_bytes = payload.uncompressed_label_bytes;
  stats.shards.resize(shard_count);
  if (shard_count > 0) {
    std::memcpy(stats.shards.data(), bytes.data() + net::StatsReplyBytes(0),
                uint64_t{shard_count} * sizeof(net::ShardBalancePayload));
  }
  return stats;
}

Result<WireHealth> WcClient::HealthEx() {
  BeginRequest();
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> out;
  net::AppendHealthRequest(&out, id);
  WCSD_RETURN_NOT_OK(SendBytes(out.data(), out.size()));
  Result<WireFrame> reply = ReadReply(MsgType::kHealthReply, id);
  if (!reply.ok()) return reply.status();
  if (reply.value().payload.size() != sizeof(net::HealthReplyPayload)) {
    return Status::Corruption("bad health reply payload");
  }
  net::HealthReplyPayload payload;
  std::memcpy(&payload, reply.value().payload.data(), sizeof(payload));
  return WireHealth{payload.num_vertices, payload.draining != 0};
}

Result<uint64_t> WcClient::Health() {
  Result<WireHealth> health = HealthEx();
  if (!health.ok()) return health.status();
  return uint64_t{health.value().num_vertices};
}

}  // namespace wcsd
