#include "net/swap_service.h"

#include <cassert>
#include <utility>

namespace wcsd {

SwappableQueryService::SwappableQueryService(
    std::shared_ptr<const QueryService> initial)
    : current_(std::move(initial)) {
  assert(current_ != nullptr);
}

uint64_t SwappableQueryService::Swap(
    std::shared_ptr<const QueryService> next) {
  assert(next != nullptr);
  std::shared_ptr<const QueryService> old;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old = std::move(current_);
    current_ = std::move(next);
    // Bumped inside the critical section so generation observations are
    // consistent with which service answers: a request that pinned the new
    // service never reports the old generation.
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  // `old` dies here (or when the last in-flight pin releases it) — outside
  // the lock, so tearing down a whole engine never stalls the swap path.
  return generation;
}

std::shared_ptr<const QueryService> SwappableQueryService::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Distance SwappableQueryService::Query(Vertex s, Vertex t, Quality w) const {
  return Pin()->Query(s, t, w);
}

std::vector<Distance> SwappableQueryService::Batch(
    const std::vector<BatchQueryInput>& queries) const {
  return Pin()->Batch(queries);
}

uint64_t SwappableQueryService::NumVertices() const {
  return Pin()->NumVertices();
}

QueryEngineStats SwappableQueryService::Stats() const {
  // Service and generation must be captured under ONE critical section:
  // pinning first and reading generation() after would let a concurrent
  // Swap land in between and label the old service's counters with the new
  // generation. The inner Stats() call runs outside the lock so a slow
  // stats aggregation never stalls the swap path.
  std::shared_ptr<const QueryService> pinned;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned = current_;
    generation = generation_.load(std::memory_order_acquire);
  }
  QueryEngineStats stats = pinned->Stats();
  stats.generation = generation;
  return stats;
}

std::vector<ShardBalanceEntry> SwappableQueryService::ShardBalance() const {
  return Pin()->ShardBalance();
}

ServeOutcome SwappableQueryService::QueryEx(Vertex s, Vertex t, Quality w,
                                            Distance* out) const {
  return Pin()->QueryEx(s, t, w, out);
}

ServeOutcome SwappableQueryService::BatchEx(
    const std::vector<BatchQueryInput>& queries,
    std::vector<Distance>* out) const {
  return Pin()->BatchEx(queries, out);
}

ServeOutcome SwappableQueryService::TopKEx(
    Vertex source, std::span<const Vertex> candidates, Quality w, size_t k,
    std::vector<RankedCandidate>* out) const {
  return Pin()->TopKEx(source, candidates, w, k, out);
}

ServeOutcome SwappableQueryService::ProfileEx(
    Vertex s, Vertex t, std::span<const Quality> thresholds,
    std::vector<ProfilePoint>* out) const {
  return Pin()->ProfileEx(s, t, thresholds, out);
}

ServeOutcome SwappableQueryService::PathEx(Vertex s, Vertex t, Quality w,
                                           std::vector<Vertex>* out) const {
  return Pin()->PathEx(s, t, w, out);
}

}  // namespace wcsd
