// WcServer: a dependency-free epoll TCP front end over the serving engines.
//
// The engine layer (serve/query_engine.h) turned the index into a
// thread-safe in-process service; WcServer turns that service into a
// network one. N reactor threads (options.num_reactors, default 1) each
// run their own epoll loop over their own SO_REUSEPORT listen socket —
// the kernel hashes each incoming 4-tuple to one reactor, and that
// reactor owns the connection end-to-end: accept, read, parse, serve,
// flush, close all happen on one thread, so per-connection state needs no
// synchronization and per-reactor stats counters are aggregated only
// off-path (stats()/reactor_stats()). Per-connection read buffers
// accumulate bytes until complete frames (net/wire.h) can be cut, each
// frame is routed through the immutable QueryService (thread-safe by
// contract — the only state reactors share), and replies accumulate in
// per-connection write buffers flushed as the socket drains. Clients may
// pipeline — any number of requests in flight per connection — and a
// kBatchQuery frame fans out across the engine's ThreadPool. For per-core
// serving, pair N reactors with single-threaded engines (queries run
// inline on the reactor thread — `serve --reactors N` does this) so each
// core runs one reactor end-to-end with no cross-core handoff; answers
// are bit-identical at any N because reactors share one immutable
// service.
//
// Robustness contract (exercised by tests/test_net.cc and
// tests/test_net_faults.cc): malformed input never crashes the server.
// Framing errors (bad magic/version, oversized length) get one kError
// frame and a close, because the stream can no longer be trusted;
// frame-local errors (bad payload size, unknown type) get a kError reply
// and the connection keeps serving; truncated frames and abrupt
// disconnects just release the connection.
//
// Production hardening on top of that:
//   - Overload control: admission limits (max batch size, buffered-reply
//     soft cap) shed work with clean kOverloaded error frames instead of
//     disconnecting — the stream stays healthy and the client can back
//     off and retry.
//   - Per-request deadlines: a frame that waited longer than the
//     configured deadline behind earlier work is failed with
//     kDeadlineExceeded rather than served late.
//   - Idle and header (slow-loris) timeouts close connections that hold
//     fds without making progress.
//   - Graceful drain (Drain()): stop accepting, keep serving existing
//     connections until they close or the drain deadline passes, report
//     `draining` in health/stats frames so load balancers steer away.

#ifndef WCSD_NET_SERVER_H_
#define WCSD_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.h"
#include "net/wire.h"
#include "serve/batch_runner.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// The request-routing surface the server needs from a serving engine.
/// Implementations must be safe to call from any thread (both engines are).
class QueryService {
 public:
  virtual ~QueryService() = default;
  virtual Distance Query(Vertex s, Vertex t, Quality w) const = 0;
  virtual std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const = 0;
  virtual uint64_t NumVertices() const = 0;
  virtual QueryEngineStats Stats() const = 0;
  /// Per-shard balance for the wire Stats frame; empty when the engine is
  /// not sharded.
  virtual std::vector<ShardBalanceEntry> ShardBalance() const { return {}; }

  /// Outcome-reporting variants for degraded-mode engines. The defaults
  /// delegate to Query/Batch and always succeed; a sharded engine serving
  /// with quarantined shards overrides them to refuse queries whose label
  /// slices are unavailable (the server surfaces kShardUnavailable).
  virtual ServeOutcome QueryEx(Vertex s, Vertex t, Quality w,
                               Distance* out) const {
    *out = Query(s, t, w);
    return ServeOutcome::kOk;
  }
  virtual ServeOutcome BatchEx(const std::vector<BatchQueryInput>& queries,
                               std::vector<Distance>* out) const {
    *out = Batch(queries);
    return ServeOutcome::kOk;
  }

  /// The v6 query families. Defaults report kNotSupported so a minimal
  /// service implementation keeps working: the server answers the frames
  /// with a clean kNotSupported error instead of wrong data. Both engine
  /// adapters override all three (path only serves when the engine was
  /// configured with a graph).
  virtual ServeOutcome TopKEx(Vertex source,
                              std::span<const Vertex> candidates, Quality w,
                              size_t k,
                              std::vector<RankedCandidate>* out) const {
    (void)source, (void)candidates, (void)w, (void)k, (void)out;
    return ServeOutcome::kNotSupported;
  }
  virtual ServeOutcome ProfileEx(Vertex s, Vertex t,
                                 std::span<const Quality> thresholds,
                                 std::vector<ProfilePoint>* out) const {
    (void)s, (void)t, (void)thresholds, (void)out;
    return ServeOutcome::kNotSupported;
  }
  virtual ServeOutcome PathEx(Vertex s, Vertex t, Quality w,
                              std::vector<Vertex>* out) const {
    (void)s, (void)t, (void)w, (void)out;
    return ServeOutcome::kNotSupported;
  }
};

/// Adapters for the two engines. The shared_ptr keeps the engine (and its
/// mmap'd snapshot) alive for the service's lifetime.
std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const QueryEngine> engine);
std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const ShardedQueryEngine> engine);

struct WcServerOptions {
  /// Address to bind. Loopback by default: exposing an index to a wider
  /// interface is a deliberate deployment decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned ephemeral port (see WcServer::port).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Event-loop (reactor) threads. 1 keeps the classic single-loop server.
  /// More than 1 creates that many epoll loops, each with its own
  /// SO_REUSEPORT listen socket; the kernel spreads connections across
  /// them by 4-tuple hash. Values above 1 only pay off with real cores
  /// and an engine that does not itself fan out (see the header comment).
  /// 0 is treated as 1.
  size_t num_reactors = 1;
  /// Frames announcing a larger payload are rejected before allocation
  /// with WireError::kOversizedFrame. Tests shrink this to probe the path.
  uint32_t max_payload_bytes = net::kMaxPayloadBytes;
  /// Per-connection cap on buffered reply bytes. A client that pipelines
  /// requests faster than it reads replies accumulates output here; past
  /// the cap the server stops serving that connection and closes it after
  /// the backlog flushes — backpressure by disconnect rather than
  /// unbounded server memory.
  size_t max_buffered_reply_bytes = 64u << 20;
  /// Soft overload threshold, below the hard cap: while a connection's
  /// unflushed reply backlog exceeds this, new query/batch frames are shed
  /// with kOverloaded error frames instead of being served. The connection
  /// stays healthy (stats/health still answered) and the client can back
  /// off and retry. 0 disables soft shedding.
  size_t overload_shed_reply_bytes = 32u << 20;
  /// Largest batch one kBatchQuery frame may carry; bigger batches are
  /// shed with kOverloaded (the client can split and resend). 0 = no
  /// limit beyond what the frame size allows.
  uint32_t max_batch_queries = 0;
  /// Per-request deadline: a query/batch frame that waited longer than
  /// this (behind earlier frames on any connection) is failed with
  /// kDeadlineExceeded instead of served late. 0 disables.
  uint64_t request_deadline_ms = 0;
  /// Close a connection with no traffic in either direction for this
  /// long. 0 disables.
  uint64_t idle_timeout_ms = 0;
  /// Slow-loris guard: a connection holding a partial frame must complete
  /// it within this long or be closed. 0 disables.
  uint64_t header_timeout_ms = 0;
  /// Upper bound on graceful drain: Drain() force-closes connections that
  /// have not finished after this long.
  uint64_t drain_deadline_ms = 5000;
};

/// Monotonic server-level counters (engine-level query counters live in
/// QueryService::Stats).
struct WcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_served = 0;    // replies to well-formed requests
  uint64_t protocol_errors = 0;  // error frames sent for malformed input
  uint64_t overload_rejections = 0;   // frames shed with kOverloaded
  uint64_t deadline_rejections = 0;   // frames failed with kDeadlineExceeded
  uint64_t shard_unavailable = 0;     // frames failed with kShardUnavailable
  uint64_t timeout_closed = 0;        // idle / slow-loris closes
  bool draining = false;              // graceful drain in progress
};

/// One reactor's share of the traffic (stats() aggregates these). Each
/// counter is owned by exactly one reactor thread and read off-path, so
/// per-reactor accounting adds no hot-path synchronization.
struct WcReactorStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_served = 0;
  uint64_t protocol_errors = 0;
};

class WcServer {
 public:
  /// Binds, listens, and starts the event-loop thread. On success the
  /// server is already accepting connections on port().
  static Result<WcServer> Start(std::shared_ptr<const QueryService> service,
                                const WcServerOptions& options = {});

  WcServer(WcServer&&) noexcept;
  WcServer& operator=(WcServer&&) noexcept;
  ~WcServer();

  /// The bound port (resolves option port 0 to the kernel's choice). All
  /// reactors share it via SO_REUSEPORT.
  uint16_t port() const;

  /// Number of reactor event loops actually running.
  size_t num_reactors() const;

  /// Stops accepting, closes every connection, and joins the event loop.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Graceful drain: stops accepting new connections, keeps serving the
  /// existing ones (health/stats report `draining` so balancers steer
  /// away), and returns once every connection has closed or
  /// options.drain_deadline_ms has passed — whichever comes first. Any
  /// connections still open at the deadline are force-closed. Idempotent
  /// with Stop(); safe to call from a signal-notified thread.
  void Drain();

  WcServerStats stats() const;

  /// Per-reactor traffic breakdown, index-aligned with the reactors.
  std::vector<WcReactorStats> reactor_stats() const;

 private:
  struct Impl;
  explicit WcServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace wcsd

#endif  // WCSD_NET_SERVER_H_
