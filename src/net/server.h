// WcServer: a dependency-free epoll TCP front end over the serving engines.
//
// The engine layer (serve/query_engine.h) turned the index into a
// thread-safe in-process service; WcServer turns that service into a
// network one. One event-loop thread multiplexes every connection with
// epoll: per-connection read buffers accumulate bytes until complete
// frames (net/wire.h) can be cut, each frame is routed through the
// immutable QueryService, and replies accumulate in per-connection write
// buffers flushed as the socket drains. Clients may pipeline — any number
// of requests in flight per connection — and a kBatchQuery frame fans out
// across the engine's ThreadPool, so one event-loop thread is enough to
// saturate the query kernels.
//
// Robustness contract (exercised by tests/test_net.cc): malformed input
// never crashes the server. Framing errors (bad magic/version, oversized
// length) get one kError frame and a close, because the stream can no
// longer be trusted; frame-local errors (bad payload size, unknown type)
// get a kError reply and the connection keeps serving; truncated frames
// and abrupt disconnects just release the connection.

#ifndef WCSD_NET_SERVER_H_
#define WCSD_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.h"
#include "net/wire.h"
#include "serve/batch_runner.h"
#include "serve/query_engine.h"
#include "serve/sharded_engine.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// The request-routing surface the server needs from a serving engine.
/// Implementations must be safe to call from any thread (both engines are).
class QueryService {
 public:
  virtual ~QueryService() = default;
  virtual Distance Query(Vertex s, Vertex t, Quality w) const = 0;
  virtual std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const = 0;
  virtual uint64_t NumVertices() const = 0;
  virtual QueryEngineStats Stats() const = 0;
  /// Per-shard balance for the wire Stats frame; empty when the engine is
  /// not sharded.
  virtual std::vector<ShardBalanceEntry> ShardBalance() const { return {}; }
};

/// Adapters for the two engines. The shared_ptr keeps the engine (and its
/// mmap'd snapshot) alive for the service's lifetime.
std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const QueryEngine> engine);
std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const ShardedQueryEngine> engine);

struct WcServerOptions {
  /// Address to bind. Loopback by default: exposing an index to a wider
  /// interface is a deliberate deployment decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned ephemeral port (see WcServer::port).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Frames announcing a larger payload are rejected before allocation
  /// with WireError::kOversizedFrame. Tests shrink this to probe the path.
  uint32_t max_payload_bytes = net::kMaxPayloadBytes;
  /// Per-connection cap on buffered reply bytes. A client that pipelines
  /// requests faster than it reads replies accumulates output here; past
  /// the cap the server stops serving that connection and closes it after
  /// the backlog flushes — backpressure by disconnect rather than
  /// unbounded server memory.
  size_t max_buffered_reply_bytes = 64u << 20;
};

/// Monotonic server-level counters (engine-level query counters live in
/// QueryService::Stats).
struct WcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_served = 0;    // replies to well-formed requests
  uint64_t protocol_errors = 0;  // error frames sent
};

class WcServer {
 public:
  /// Binds, listens, and starts the event-loop thread. On success the
  /// server is already accepting connections on port().
  static Result<WcServer> Start(std::shared_ptr<const QueryService> service,
                                const WcServerOptions& options = {});

  WcServer(WcServer&&) noexcept;
  WcServer& operator=(WcServer&&) noexcept;
  ~WcServer();

  /// The bound port (resolves option port 0 to the kernel's choice).
  uint16_t port() const;

  /// Stops accepting, closes every connection, and joins the event loop.
  /// Idempotent; also run by the destructor.
  void Stop();

  WcServerStats stats() const;

 private:
  struct Impl;
  explicit WcServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace wcsd

#endif  // WCSD_NET_SERVER_H_
