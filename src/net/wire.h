// The WCSD wire protocol: length-prefixed little-endian binary frames.
//
// Versioned like labeling/snapshot.h: every frame starts with a fixed
// 24-byte header carrying magic, protocol version, message type, a status
// byte (meaningful on replies), a client-chosen request id echoed verbatim
// in the matching reply, and the payload length. Request ids are what make
// pipelining work — a client may have any number of frames in flight on one
// connection and correlate replies without assuming ordering (the server
// happens to reply in order, but the protocol does not promise it).
//
// All fields are little-endian fixed-width, the same contract as the
// on-disk formats (util/endian.h): hosts that can serve a snapshot can
// speak the protocol with plain struct reads, no per-field marshalling.
//
// Message types and payloads (sizes in bytes):
//   kQuery       (12)  u32 s, u32 t, f32 w
//   kQueryReply  (4)   u32 dist (kInfDistance = unreachable)
//   kBatchQuery  (4+12n) u32 count, then count (s, t, w) triples
//   kBatchQueryReply (4+4n) u32 count, then count u32 distances,
//                      positionally aligned with the request
//   kTopK        (16+4n) u32 source, f32 w, u32 k, u32 count, then count
//                      u32 candidate vertices
//   kTopKReply   (4+8n) u32 count (<= min(k, candidates)), then count
//                      (u32 vertex, u32 dist) records ascending by
//                      distance, ties by vertex id; unreachable candidates
//                      are omitted
//   kProfile     (12+4n) u32 s, u32 t, u32 count, then count f32
//                      thresholds (any order)
//   kProfileReply (4+8n) u32 count, then count (f32 w, u32 dist) records,
//                      positionally aligned with the request's thresholds
//   kPath        (12)  u32 s, u32 t, f32 w (same shape as kQuery)
//   kPathReply   (4+4n) u32 count, then count u32 vertices: the path
//                      s ... t inclusive; count 0 = unreachable
//   kStats       (0)
//   kStatsReply  (176+40n) u64 num_vertices, queries, reachable, batches,
//                      cache_hits, cache_misses, cache_inserts,
//                      cache_evictions (result-cache counters; zero when
//                      the engine serves uncached), overload_rejections,
//                      deadline_rejections, shard_unavailable, generation
//                      (hot-swap generation, monotone per server; 0 when
//                      the service is not swappable), u32
//                      draining, u32 reserved2, u64 has_parents (1 when
//                      the index carries §V parent quads), u64
//                      path_fallbacks (path unwind steps served through
//                      the graph fallback), u64 compressed (1 when the
//                      engine serves the compressed label backend), u64
//                      decode_hits, decode_misses, cold_pageins
//                      (decoded-label cache counters; zero without a
//                      decode cache), u64 label_bytes,
//                      uncompressed_label_bytes (served vs. flat label
//                      mass; their ratio is the compression ratio), then
//                      u32 shard_count, u32 reserved, then shard_count
//                      per-shard balance records (u64 vertex_begin,
//                      vertex_end, entry_count, label_bytes, u32
//                      quarantined, u32 reserved) in tiling order;
//                      shard_count is 0 for unsharded engines. The first
//                      120 bytes are the v6 layout, unchanged
//                      (static_asserted below).
//   kHealth      (0)
//   kHealthReply (16)  u64 num_vertices, u32 draining (1 while the server
//                      is in graceful drain), u32 reserved
//   kError       (0)   header.status carries the WireError; sent in place
//                      of a reply when a frame is well-delimited but
//                      invalid, when the server sheds it under overload
//                      (kOverloaded), misses its deadline
//                      (kDeadlineExceeded), cannot serve it in degraded
//                      mode (kShardUnavailable), does not serve that query
//                      family at all (kNotSupported — e.g. kPath on a
//                      server without a graph), or before closing on a
//                      framing error
//
// Framing errors (bad magic, bad version, oversized length) poison the
// byte stream — the receiver cannot trust where the next frame starts — so
// the server replies with one kError frame and closes. Payload errors
// (wrong payload size for the type, unknown type, batch count mismatch)
// are frame-local: the server replies kError with the offending request id
// and the connection keeps serving.

#ifndef WCSD_NET_WIRE_H_
#define WCSD_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/batch.h"
#include "util/types.h"

namespace wcsd {
namespace net {

/// First four bytes of every frame: "WCSN" on the wire.
inline constexpr uint32_t kWireMagic = 0x4e534357;

/// Current protocol version. Bump on any frame-layout change; peers reject
/// other versions with a clean error frame. v2: kStatsReply grew the
/// per-shard balance section. v3: the kStatsReply fixed prefix grew the
/// result-cache hit/miss/insert/evict counters. v4: robustness fields —
/// kStatsReply grew overload/deadline/shard-unavailable rejection counters
/// and a draining flag, kHealthReply grew the draining flag, per-shard
/// balance records grew a quarantined flag, and the kOverloaded /
/// kDeadlineExceeded / kShardUnavailable error codes were added. v5:
/// kStatsReply grew the hot-swap generation counter (live-update serving).
/// v6: the kTopK / kProfile / kPath query families, the kNotSupported
/// error code, and the kStatsReply has_parents / path_fallbacks counters
/// (appended after the v5 prefix, whose layout is unchanged). v7: the
/// kStatsReply compressed-backend / decoded-label-cache counters and the
/// label-mass fields (appended after the v6 prefix, whose layout is
/// unchanged).
inline constexpr uint16_t kWireVersion = 7;

/// Default upper bound on one frame's payload (16 MiB ≈ 1.4M batched
/// queries). A header announcing more is treated as a framing error before
/// any allocation happens.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

enum class MsgType : uint8_t {
  kQuery = 1,
  kBatchQuery = 2,
  kStats = 3,
  kHealth = 4,
  kTopK = 5,
  kProfile = 6,
  kPath = 7,
  kQueryReply = 65,
  kBatchQueryReply = 66,
  kStatsReply = 67,
  kHealthReply = 68,
  kTopKReply = 69,
  kProfileReply = 70,
  kPathReply = 71,
  kError = 255,
};

/// Reply-header status byte. kOk on every successful reply; error frames
/// carry the reason here (the payload stays empty, keeping error frames
/// deterministic for the golden fixtures).
enum class WireError : uint8_t {
  kOk = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kOversizedFrame = 3,
  kBadPayload = 4,
  kUnknownType = 5,
  /// The server shed this frame under overload. Frame-local and
  /// retry-safe: the request was never executed and the stream stays
  /// healthy — back off and resend.
  kOverloaded = 6,
  /// The frame's per-request deadline expired before (or while) serving
  /// it. Frame-local; whether a retry makes sense is the caller's call.
  kDeadlineExceeded = 7,
  /// Degraded mode: the query needs a label slice from a quarantined
  /// shard. Frame-local; retrying the same server will not help until the
  /// shard is repaired.
  kShardUnavailable = 8,
  /// The server does not serve this query family at all (e.g. kPath on a
  /// server started without a graph). Frame-local; retrying never helps.
  kNotSupported = 9,
};

/// Human-readable name of a WireError, for Status messages and logs.
const char* WireErrorName(WireError error);

/// The fixed frame header. POD with explicit padding so the wire bytes are
/// exactly the struct bytes on the little-endian hosts we support.
struct WireHeader {
  uint32_t magic;
  uint16_t version;
  uint8_t type;          // MsgType
  uint8_t status;        // WireError; 0 on requests
  uint64_t request_id;   // echoed verbatim in the reply
  uint32_t payload_bytes;
  uint32_t reserved;     // zero
};
static_assert(sizeof(WireHeader) == 24);

/// kQuery payload. Matches BatchQueryInput's layout so batch payloads can
/// be copied in bulk.
struct QueryPayload {
  uint32_t s;
  uint32_t t;
  float w;
};
static_assert(sizeof(QueryPayload) == 12);
static_assert(sizeof(BatchQueryInput) == sizeof(QueryPayload));

/// Most queries one kBatchQuery frame can carry under kMaxPayloadBytes.
/// Clients must split larger workloads across frames (WcClient::Batch
/// rejects bigger inputs rather than poison the stream).
inline constexpr size_t kMaxBatchQueries =
    (kMaxPayloadBytes - sizeof(uint32_t)) / sizeof(QueryPayload);

/// kQueryReply payload.
struct QueryReplyPayload {
  uint32_t dist;
};
static_assert(sizeof(QueryReplyPayload) == 4);

/// kTopK request fixed prefix; `count` candidate vertex ids follow.
struct TopKRequestPayload {
  uint32_t source;
  float w;
  uint32_t k;
  uint32_t count;
};
static_assert(sizeof(TopKRequestPayload) == 16);

/// One kTopKReply record. Matches core/batch.h RankedCandidate so replies
/// can be encoded and decoded with bulk copies.
struct RankedCandidatePayload {
  uint32_t vertex;
  uint32_t dist;
};
static_assert(sizeof(RankedCandidatePayload) == 8);
static_assert(sizeof(RankedCandidate) == sizeof(RankedCandidatePayload));

/// kProfile request fixed prefix; `count` f32 thresholds follow.
struct ProfileRequestPayload {
  uint32_t s;
  uint32_t t;
  uint32_t count;
};
static_assert(sizeof(ProfileRequestPayload) == 12);

/// One kProfileReply record, positionally aligned with the request's
/// thresholds. Matches core/batch.h ProfilePoint for bulk copies.
struct ProfilePointPayload {
  float w;
  uint32_t dist;
};
static_assert(sizeof(ProfilePointPayload) == 8);
static_assert(sizeof(ProfilePoint) == sizeof(ProfilePointPayload));

/// Most candidates / thresholds one kTopK / kProfile frame can carry.
/// Deliberately the same cap as kMaxBatchQueries (the batch cap is the
/// tighter of the two per-element limits), so one knob governs "how much
/// work may one frame request".
inline constexpr size_t kMaxTopKCandidates = kMaxBatchQueries;
inline constexpr size_t kMaxProfileThresholds = kMaxBatchQueries;

/// kStatsReply fixed prefix: the serving engine's aggregate counters,
/// including the result-cache counters (all zero when the server's engine
/// runs without a cache). The wire payload continues with u32 shard_count,
/// u32 reserved, and shard_count ShardBalancePayload records (empty for
/// unsharded engines).
struct StatsReplyPayload {
  uint64_t num_vertices;
  uint64_t queries;
  uint64_t reachable;
  uint64_t batches;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t cache_inserts;
  uint64_t cache_evictions;
  uint64_t overload_rejections;   // frames shed with kOverloaded
  uint64_t deadline_rejections;   // frames failed with kDeadlineExceeded
  uint64_t shard_unavailable;     // frames failed with kShardUnavailable
  uint64_t generation;            // hot-swap generation; 0 = not swappable
  uint32_t draining;              // 1 while the server is in graceful drain
  uint32_t reserved2;             // zero
  uint64_t has_parents;           // v6: 1 when the index carries §V quads
  uint64_t path_fallbacks;        // v6: path steps served via graph fallback
  uint64_t compressed;            // v7: 1 = compressed label backend
  uint64_t decode_hits;           // v7: decoded-label cache hits
  uint64_t decode_misses;         // v7: decoded-label cache misses
  uint64_t cold_pageins;          // v7: decode misses over mmap'd bytes
  uint64_t label_bytes;           // v7: label mass actually served
  uint64_t uncompressed_label_bytes;  // v7: the same labels' flat mass
};
static_assert(sizeof(StatsReplyPayload) == 168);
// Earlier prefixes must never move: each version only appends. A v5 / v6
// decoder reading the first 104 / 120 bytes of a v7 stats payload sees
// exactly its own layout.
static_assert(offsetof(StatsReplyPayload, has_parents) == 104);
static_assert(offsetof(StatsReplyPayload, compressed) == 120);

/// One per-shard balance record in a kStatsReply: the shard's vertex range
/// and the label mass it serves. Matches serve's ShardBalanceEntry. A
/// quarantined shard reports the planned range with zero mass — its labels
/// never loaded.
struct ShardBalancePayload {
  uint64_t vertex_begin;
  uint64_t vertex_end;
  uint64_t entry_count;
  uint64_t label_bytes;
  uint32_t quarantined;  // 1 when the shard failed to load (degraded mode)
  uint32_t reserved;     // zero
};
static_assert(sizeof(ShardBalancePayload) == 40);

/// Bytes of a kStatsReply payload carrying `shard_count` balance records.
inline constexpr size_t StatsReplyBytes(size_t shard_count) {
  return sizeof(StatsReplyPayload) + 2 * sizeof(uint32_t) +
         shard_count * sizeof(ShardBalancePayload);
}

/// kHealthReply payload: nonzero vertex count doubles as "index mapped".
/// `draining` flips to 1 the moment graceful drain begins, so load
/// balancers can steer new traffic away while in-flight work completes.
struct HealthReplyPayload {
  uint64_t num_vertices;
  uint32_t draining;
  uint32_t reserved;
};
static_assert(sizeof(HealthReplyPayload) == 16);

// ------------------------------------------------------------- encoding

/// Appends one frame (header + payload copy) to `out`. `payload_bytes`
/// must not exceed kMaxPayloadBytes (asserted): the header field is
/// 32-bit, and a silently truncated length would desync the stream.
void AppendFrame(std::vector<uint8_t>* out, MsgType type, WireError status,
                 uint64_t request_id, const void* payload,
                 size_t payload_bytes);

void AppendQueryRequest(std::vector<uint8_t>* out, uint64_t request_id,
                        Vertex s, Vertex t, Quality w);
void AppendBatchRequest(std::vector<uint8_t>* out, uint64_t request_id,
                        std::span<const BatchQueryInput> queries);
void AppendStatsRequest(std::vector<uint8_t>* out, uint64_t request_id);
void AppendHealthRequest(std::vector<uint8_t>* out, uint64_t request_id);
void AppendTopKRequest(std::vector<uint8_t>* out, uint64_t request_id,
                       Vertex source, std::span<const Vertex> candidates,
                       Quality w, uint32_t k);
void AppendProfileRequest(std::vector<uint8_t>* out, uint64_t request_id,
                          Vertex s, Vertex t,
                          std::span<const Quality> thresholds);
void AppendPathRequest(std::vector<uint8_t>* out, uint64_t request_id,
                       Vertex s, Vertex t, Quality w);

/// Appends a kBatchQueryReply frame, writing the count and distances
/// straight into `out` (batch payloads are the big ones; no staging copy).
void AppendBatchReply(std::vector<uint8_t>* out, uint64_t request_id,
                      std::span<const Distance> results);

/// Appends a kTopKReply / kProfileReply / kPathReply frame (u32 count +
/// bulk-copied records, like AppendBatchReply).
void AppendTopKReply(std::vector<uint8_t>* out, uint64_t request_id,
                     std::span<const RankedCandidate> ranked);
void AppendProfileReply(std::vector<uint8_t>* out, uint64_t request_id,
                        std::span<const ProfilePoint> profile);
void AppendPathReply(std::vector<uint8_t>* out, uint64_t request_id,
                     std::span<const Vertex> path);

/// Appends a kStatsReply frame: the fixed counter prefix plus the
/// per-shard balance section.
void AppendStatsReply(std::vector<uint8_t>* out, uint64_t request_id,
                      const StatsReplyPayload& stats,
                      std::span<const ShardBalancePayload> shards);

// ------------------------------------------------------------- decoding

/// Outcome of trying to delimit one frame in a byte stream.
enum class FrameStatus {
  kNeedMore,    // fewer bytes than one complete frame; read more
  kOk,          // *header/*payload describe one complete frame
  kBadMagic,    // stream poisoned: close after an error frame
  kBadVersion,  // stream poisoned: close after an error frame
  kOversized,   // announced payload exceeds max_payload: close
};

/// Attempts to parse one frame from [data, data + size). On kOk, fills
/// `header` and points `payload` at the payload bytes inside the input
/// (no copy; valid only while the input buffer is). Magic and version are
/// validated as soon as the header is complete, so a poisoned stream is
/// detected without waiting for the announced payload to arrive.
FrameStatus ParseFrame(const uint8_t* data, size_t size, size_t max_payload,
                       WireHeader* header, const uint8_t** payload);

}  // namespace net
}  // namespace wcsd

#endif  // WCSD_NET_WIRE_H_
