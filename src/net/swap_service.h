// Hot snapshot swap: epoch/RCU-style generation switching for live serving.
//
// A SwappableQueryService fronts the server's QueryService with an
// indirection the swap coordinator (serve --watch) can retarget while
// connections are live. Every request pins the current inner service with
// a shared_ptr copy, so an in-flight query finishes on the generation it
// started on while new requests land on the new one — Swap() never blocks
// a query and never drops one. The old generation (engine + mmap'd
// snapshot) is destroyed when its last in-flight request releases the pin.
//
// The generation counter starts at 1 and is bumped by every Swap; Stats()
// stamps it into QueryEngineStats.generation, which the wire kStatsReply
// carries (protocol v5), so clients can observe reloads. Non-swappable
// services report generation 0.

#ifndef WCSD_NET_SWAP_SERVICE_H_
#define WCSD_NET_SWAP_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "net/server.h"

namespace wcsd {

class SwappableQueryService : public QueryService {
 public:
  explicit SwappableQueryService(
      std::shared_ptr<const QueryService> initial);

  /// Atomically retargets all future requests to `next` and returns the
  /// new generation number. In-flight requests finish on the old service.
  /// Callers sharing a result cache across generations must invalidate it
  /// (Rebind or InvalidateDelta with the new fingerprint) BEFORE calling
  /// Swap, so the new generation never reads entries certified only by the
  /// old index.
  uint64_t Swap(std::shared_ptr<const QueryService> next);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// The currently serving inner service (a pin: safe to use after a
  /// concurrent Swap).
  std::shared_ptr<const QueryService> Current() const { return Pin(); }

  Distance Query(Vertex s, Vertex t, Quality w) const override;
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const override;
  uint64_t NumVertices() const override;
  QueryEngineStats Stats() const override;
  std::vector<ShardBalanceEntry> ShardBalance() const override;
  ServeOutcome QueryEx(Vertex s, Vertex t, Quality w,
                       Distance* out) const override;
  ServeOutcome BatchEx(const std::vector<BatchQueryInput>& queries,
                       std::vector<Distance>* out) const override;
  ServeOutcome TopKEx(Vertex source, std::span<const Vertex> candidates,
                      Quality w, size_t k,
                      std::vector<RankedCandidate>* out) const override;
  ServeOutcome ProfileEx(Vertex s, Vertex t,
                         std::span<const Quality> thresholds,
                         std::vector<ProfilePoint>* out) const override;
  ServeOutcome PathEx(Vertex s, Vertex t, Quality w,
                      std::vector<Vertex>* out) const override;

 private:
  /// A shared_ptr copy under a short critical section. A plain mutex-
  /// protected copy (rather than std::atomic<std::shared_ptr>) keeps the
  /// implementation portable across the toolchains CI builds with; the
  /// critical section is two refcount ops.
  std::shared_ptr<const QueryService> Pin() const;

  mutable std::mutex mu_;
  std::shared_ptr<const QueryService> current_;
  std::atomic<uint64_t> generation_{1};
};

}  // namespace wcsd

#endif  // WCSD_NET_SWAP_SERVICE_H_
