#include "net/wire.h"

#include <cassert>
#include <cstring>

namespace wcsd {
namespace net {

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kBadMagic:
      return "bad magic";
    case WireError::kBadVersion:
      return "unsupported protocol version";
    case WireError::kOversizedFrame:
      return "oversized frame";
    case WireError::kBadPayload:
      return "bad payload";
    case WireError::kUnknownType:
      return "unknown message type";
    case WireError::kOverloaded:
      return "server overloaded";
    case WireError::kDeadlineExceeded:
      return "deadline exceeded";
    case WireError::kShardUnavailable:
      return "shard unavailable";
    case WireError::kNotSupported:
      return "not supported";
  }
  return "unknown error";
}

namespace {

/// Grows `out` by one frame's worth of bytes, writes the header, and
/// returns the offset where the payload goes.
size_t AppendHeader(std::vector<uint8_t>* out, MsgType type,
                    WireError status, uint64_t request_id,
                    size_t payload_bytes) {
  // Contract (wire.h): no legitimate frame exceeds kMaxPayloadBytes, and
  // the header field is 32-bit — a silent mod-2^32 truncation here would
  // desync the stream, so fail loudly instead.
  assert(payload_bytes <= kMaxPayloadBytes);
  WireHeader header;
  header.magic = kWireMagic;
  header.version = kWireVersion;
  header.type = static_cast<uint8_t>(type);
  header.status = static_cast<uint8_t>(status);
  header.request_id = request_id;
  header.payload_bytes = static_cast<uint32_t>(payload_bytes);
  header.reserved = 0;
  size_t at = out->size();
  out->resize(at + sizeof(header) + payload_bytes);
  std::memcpy(out->data() + at, &header, sizeof(header));
  return at + sizeof(header);
}

}  // namespace

void AppendFrame(std::vector<uint8_t>* out, MsgType type, WireError status,
                 uint64_t request_id, const void* payload,
                 size_t payload_bytes) {
  size_t at = AppendHeader(out, type, status, request_id, payload_bytes);
  if (payload_bytes > 0) {
    std::memcpy(out->data() + at, payload, payload_bytes);
  }
}

void AppendQueryRequest(std::vector<uint8_t>* out, uint64_t request_id,
                        Vertex s, Vertex t, Quality w) {
  QueryPayload payload{s, t, w};
  AppendFrame(out, MsgType::kQuery, WireError::kOk, request_id, &payload,
              sizeof(payload));
}

void AppendBatchRequest(std::vector<uint8_t>* out, uint64_t request_id,
                        std::span<const BatchQueryInput> queries) {
  const uint32_t count = static_cast<uint32_t>(queries.size());
  // Written straight into `out` — a 16 MiB max-size batch should not pay
  // for a staging copy of its own payload.
  size_t at = AppendHeader(out, MsgType::kBatchQuery, WireError::kOk,
                           request_id,
                           sizeof(count) + queries.size() * sizeof(QueryPayload));
  std::memcpy(out->data() + at, &count, sizeof(count));
  if (!queries.empty()) {
    std::memcpy(out->data() + at + sizeof(count), queries.data(),
                queries.size() * sizeof(QueryPayload));
  }
}

void AppendBatchReply(std::vector<uint8_t>* out, uint64_t request_id,
                      std::span<const Distance> results) {
  const uint32_t count = static_cast<uint32_t>(results.size());
  size_t at = AppendHeader(out, MsgType::kBatchQueryReply, WireError::kOk,
                           request_id,
                           sizeof(count) + results.size() * sizeof(uint32_t));
  std::memcpy(out->data() + at, &count, sizeof(count));
  if (!results.empty()) {
    std::memcpy(out->data() + at + sizeof(count), results.data(),
                results.size() * sizeof(uint32_t));
  }
}

void AppendStatsReply(std::vector<uint8_t>* out, uint64_t request_id,
                      const StatsReplyPayload& stats,
                      std::span<const ShardBalancePayload> shards) {
  const uint32_t count = static_cast<uint32_t>(shards.size());
  const uint32_t reserved = 0;
  size_t at = AppendHeader(out, MsgType::kStatsReply, WireError::kOk,
                           request_id, StatsReplyBytes(shards.size()));
  std::memcpy(out->data() + at, &stats, sizeof(stats));
  at += sizeof(stats);
  std::memcpy(out->data() + at, &count, sizeof(count));
  at += sizeof(count);
  std::memcpy(out->data() + at, &reserved, sizeof(reserved));
  at += sizeof(reserved);
  if (!shards.empty()) {
    std::memcpy(out->data() + at, shards.data(),
                shards.size() * sizeof(ShardBalancePayload));
  }
}

void AppendTopKRequest(std::vector<uint8_t>* out, uint64_t request_id,
                       Vertex source, std::span<const Vertex> candidates,
                       Quality w, uint32_t k) {
  TopKRequestPayload prefix{source, w, k,
                            static_cast<uint32_t>(candidates.size())};
  size_t at = AppendHeader(out, MsgType::kTopK, WireError::kOk, request_id,
                           sizeof(prefix) +
                               candidates.size() * sizeof(uint32_t));
  std::memcpy(out->data() + at, &prefix, sizeof(prefix));
  if (!candidates.empty()) {
    std::memcpy(out->data() + at + sizeof(prefix), candidates.data(),
                candidates.size() * sizeof(uint32_t));
  }
}

void AppendProfileRequest(std::vector<uint8_t>* out, uint64_t request_id,
                          Vertex s, Vertex t,
                          std::span<const Quality> thresholds) {
  ProfileRequestPayload prefix{s, t,
                               static_cast<uint32_t>(thresholds.size())};
  size_t at = AppendHeader(out, MsgType::kProfile, WireError::kOk,
                           request_id,
                           sizeof(prefix) + thresholds.size() * sizeof(float));
  std::memcpy(out->data() + at, &prefix, sizeof(prefix));
  if (!thresholds.empty()) {
    std::memcpy(out->data() + at + sizeof(prefix), thresholds.data(),
                thresholds.size() * sizeof(float));
  }
}

void AppendPathRequest(std::vector<uint8_t>* out, uint64_t request_id,
                       Vertex s, Vertex t, Quality w) {
  QueryPayload payload{s, t, w};
  AppendFrame(out, MsgType::kPath, WireError::kOk, request_id, &payload,
              sizeof(payload));
}

void AppendTopKReply(std::vector<uint8_t>* out, uint64_t request_id,
                     std::span<const RankedCandidate> ranked) {
  const uint32_t count = static_cast<uint32_t>(ranked.size());
  size_t at =
      AppendHeader(out, MsgType::kTopKReply, WireError::kOk, request_id,
                   sizeof(count) + ranked.size() * sizeof(RankedCandidate));
  std::memcpy(out->data() + at, &count, sizeof(count));
  if (!ranked.empty()) {
    std::memcpy(out->data() + at + sizeof(count), ranked.data(),
                ranked.size() * sizeof(RankedCandidate));
  }
}

void AppendProfileReply(std::vector<uint8_t>* out, uint64_t request_id,
                        std::span<const ProfilePoint> profile) {
  const uint32_t count = static_cast<uint32_t>(profile.size());
  size_t at =
      AppendHeader(out, MsgType::kProfileReply, WireError::kOk, request_id,
                   sizeof(count) + profile.size() * sizeof(ProfilePoint));
  std::memcpy(out->data() + at, &count, sizeof(count));
  if (!profile.empty()) {
    std::memcpy(out->data() + at + sizeof(count), profile.data(),
                profile.size() * sizeof(ProfilePoint));
  }
}

void AppendPathReply(std::vector<uint8_t>* out, uint64_t request_id,
                     std::span<const Vertex> path) {
  const uint32_t count = static_cast<uint32_t>(path.size());
  size_t at =
      AppendHeader(out, MsgType::kPathReply, WireError::kOk, request_id,
                   sizeof(count) + path.size() * sizeof(uint32_t));
  std::memcpy(out->data() + at, &count, sizeof(count));
  if (!path.empty()) {
    std::memcpy(out->data() + at + sizeof(count), path.data(),
                path.size() * sizeof(uint32_t));
  }
}

void AppendStatsRequest(std::vector<uint8_t>* out, uint64_t request_id) {
  AppendFrame(out, MsgType::kStats, WireError::kOk, request_id, nullptr, 0);
}

void AppendHealthRequest(std::vector<uint8_t>* out, uint64_t request_id) {
  AppendFrame(out, MsgType::kHealth, WireError::kOk, request_id, nullptr, 0);
}

FrameStatus ParseFrame(const uint8_t* data, size_t size, size_t max_payload,
                       WireHeader* header, const uint8_t** payload) {
  if (size < sizeof(WireHeader)) return FrameStatus::kNeedMore;
  std::memcpy(header, data, sizeof(WireHeader));
  if (header->magic != kWireMagic) return FrameStatus::kBadMagic;
  if (header->version != kWireVersion) return FrameStatus::kBadVersion;
  if (header->payload_bytes > max_payload) return FrameStatus::kOversized;
  if (size - sizeof(WireHeader) < header->payload_bytes) {
    return FrameStatus::kNeedMore;
  }
  *payload = data + sizeof(WireHeader);
  return FrameStatus::kOk;
}

}  // namespace net
}  // namespace wcsd
