#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/socket_util.h"
#include "util/endian.h"

namespace wcsd {

namespace {

using net::ErrnoStatus;
using net::FrameStatus;
using net::MsgType;
using net::WireError;
using net::WireHeader;

/// Milliseconds on the steady clock, for timeouts and deadlines.
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class EngineService final : public QueryService {
 public:
  explicit EngineService(std::shared_ptr<const QueryEngine> engine)
      : engine_(std::move(engine)) {}

  Distance Query(Vertex s, Vertex t, Quality w) const override {
    return engine_->Query(s, t, w);
  }
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const override {
    return engine_->Batch(queries);
  }
  uint64_t NumVertices() const override {
    return engine_->index().NumVertices();
  }
  QueryEngineStats Stats() const override { return engine_->stats(); }
  ServeOutcome TopKEx(Vertex source, std::span<const Vertex> candidates,
                      Quality w, size_t k,
                      std::vector<RankedCandidate>* out) const override {
    *out = engine_->TopK(source, candidates, w, k);
    return ServeOutcome::kOk;
  }
  ServeOutcome ProfileEx(Vertex s, Vertex t,
                         std::span<const Quality> thresholds,
                         std::vector<ProfilePoint>* out) const override {
    *out = engine_->Profile(s, t, thresholds);
    return ServeOutcome::kOk;
  }
  ServeOutcome PathEx(Vertex s, Vertex t, Quality w,
                      std::vector<Vertex>* out) const override {
    if (!engine_->has_graph()) return ServeOutcome::kNotSupported;
    Result<std::vector<Vertex>> path = engine_->Path(s, t, w);
    if (!path.ok()) return ServeOutcome::kNotSupported;
    *out = std::move(path).value();
    return ServeOutcome::kOk;
  }

 private:
  std::shared_ptr<const QueryEngine> engine_;
};

class ShardedService final : public QueryService {
 public:
  explicit ShardedService(std::shared_ptr<const ShardedQueryEngine> engine)
      : engine_(std::move(engine)) {}

  Distance Query(Vertex s, Vertex t, Quality w) const override {
    return engine_->Query(s, t, w);
  }
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const override {
    return engine_->Batch(queries);
  }
  uint64_t NumVertices() const override { return engine_->NumVertices(); }
  QueryEngineStats Stats() const override { return engine_->stats(); }
  std::vector<ShardBalanceEntry> ShardBalance() const override {
    return engine_->ShardBalance();
  }
  ServeOutcome QueryEx(Vertex s, Vertex t, Quality w,
                       Distance* out) const override {
    return engine_->QueryEx(s, t, w, out);
  }
  ServeOutcome BatchEx(const std::vector<BatchQueryInput>& queries,
                       std::vector<Distance>* out) const override {
    return engine_->BatchEx(queries, out);
  }
  ServeOutcome TopKEx(Vertex source, std::span<const Vertex> candidates,
                      Quality w, size_t k,
                      std::vector<RankedCandidate>* out) const override {
    return engine_->TopKEx(source, candidates, w, k, out);
  }
  ServeOutcome ProfileEx(Vertex s, Vertex t,
                         std::span<const Quality> thresholds,
                         std::vector<ProfilePoint>* out) const override {
    return engine_->ProfileEx(s, t, thresholds, out);
  }
  ServeOutcome PathEx(Vertex s, Vertex t, Quality w,
                      std::vector<Vertex>* out) const override {
    return engine_->PathEx(s, t, w, out);
  }

 private:
  std::shared_ptr<const ShardedQueryEngine> engine_;
};

}  // namespace

std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const QueryEngine> engine) {
  return std::make_shared<EngineService>(std::move(engine));
}

std::shared_ptr<QueryService> MakeQueryService(
    std::shared_ptr<const ShardedQueryEngine> engine) {
  return std::make_shared<ShardedService>(std::move(engine));
}

struct WcServer::Impl {
  /// One connection's streaming state. `in` accumulates raw bytes until
  /// whole frames can be cut (in_consumed avoids re-compacting per frame);
  /// `out` holds encoded replies not yet accepted by the socket.
  struct Connection {
    std::vector<uint8_t> in;
    size_t in_consumed = 0;
    std::vector<uint8_t> out;
    size_t out_sent = 0;
    bool close_after_flush = false;
    bool want_write = false;
    /// Last time bytes moved in either direction (idle timeout).
    uint64_t last_activity_ms = 0;
    /// When an incomplete frame first appeared in `in`; 0 while the buffer
    /// holds no partial frame (slow-loris timeout).
    uint64_t partial_since_ms = 0;
    /// When the read pass that completed the currently-parsed frames ran;
    /// the per-request deadline measures from here.
    uint64_t arrival_ms = 0;
  };

  /// One event loop owning its share of the traffic end-to-end: its own
  /// listen socket (SO_REUSEPORT when there are several reactors — the
  /// kernel hashes each incoming 4-tuple to one reactor), epoll instance,
  /// wake eventfd, EMFILE spare fd, connection table, and stats counters.
  /// A connection is accepted, served, and closed by exactly one reactor
  /// thread, so none of the per-connection state needs synchronization;
  /// the only cross-thread traffic is the shared QueryService (thread-safe
  /// by contract) and the relaxed stats counters aggregated off-path.
  struct Reactor {
    Reactor(Impl* server_, size_t index_) : server(server_), index(index_) {}
    ~Reactor() { CloseAll(); }

    Impl* server;
    size_t index;
    int listen_fd = -1;
    int epoll_fd = -1;
    int wake_fd = -1;
    /// Reserved fd sacrificed to shed pending connections under EMFILE.
    int spare_fd = -1;
    uint16_t port = 0;
    std::thread loop;
    std::unordered_map<int, Connection> connections;

    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> frames_served{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> overload_rejections{0};
    std::atomic<uint64_t> deadline_rejections{0};
    std::atomic<uint64_t> shard_unavailable_rejections{0};
    std::atomic<uint64_t> timeout_closed{0};

    Status Listen(uint16_t bind_port, bool reuse_port) {
      const WcServerOptions& options = server->options;
      listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
      if (listen_fd < 0) return ErrnoStatus("socket");
      int one = 1;
      setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (reuse_port &&
          setsockopt(listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) < 0) {
        return ErrnoStatus("setsockopt SO_REUSEPORT");
      }
      sockaddr_in addr = {};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(bind_port);
      if (inet_pton(AF_INET, options.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        return Status::InvalidArgument("bad bind address " +
                                       options.bind_address);
      }
      if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        return ErrnoStatus("bind " + options.bind_address + ":" +
                           std::to_string(bind_port));
      }
      if (listen(listen_fd, options.backlog) < 0) {
        return ErrnoStatus("listen");
      }
      socklen_t len = sizeof(addr);
      if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
          0) {
        return ErrnoStatus("getsockname");
      }
      port = ntohs(addr.sin_port);

      spare_fd = open("/dev/null", O_RDONLY | O_CLOEXEC);
      epoll_fd = epoll_create1(EPOLL_CLOEXEC);
      if (epoll_fd < 0) return ErrnoStatus("epoll_create1");
      wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (wake_fd < 0) return ErrnoStatus("eventfd");
      WCSD_RETURN_NOT_OK(Watch(listen_fd, EPOLLIN));
      WCSD_RETURN_NOT_OK(Watch(wake_fd, EPOLLIN));
      return Status::OK();
    }

    void Wake() {
      if (wake_fd >= 0) {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n = write(wake_fd, &one, sizeof(one));
      }
    }

    /// Post-join cleanup: closes every connection and owned fd. Only safe
    /// once the loop thread is no longer running.
    void CloseAll() {
      for (auto& [fd, conn] : connections) {
        close(fd);
        connections_closed.fetch_add(1, std::memory_order_relaxed);
      }
      connections.clear();
      auto close_fd = [](int* fd) {
        if (*fd >= 0) close(*fd);
        *fd = -1;
      };
      close_fd(&listen_fd);
      close_fd(&wake_fd);
      close_fd(&epoll_fd);
      close_fd(&spare_fd);
    }

    Status Watch(int fd, uint32_t events) {
      epoll_event ev = {};
      ev.events = events;
      ev.data.fd = fd;
      if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        return ErrnoStatus("epoll_ctl add");
      }
      return Status::OK();
    }

    void Rearm(int fd, uint32_t events) {
      epoll_event ev = {};
      ev.events = events;
      ev.data.fd = fd;
      epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
    }

    void Loop() {
      constexpr int kMaxEvents = 64;
      epoll_event events[kMaxEvents];
      bool drain_started = false;
      uint64_t drain_deadline_ms = 0;
      while (!server->stopping.load(std::memory_order_acquire)) {
        if (server->draining.load(std::memory_order_acquire)) {
          if (!drain_started) {
            drain_started = true;
            // Stop accepting: pending and future connections belong to
            // whoever replaces this server. Existing connections keep
            // being served below until they close or the deadline passes.
            if (listen_fd >= 0) {
              epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
              close(listen_fd);
              listen_fd = -1;
            }
            drain_deadline_ms = NowMs() + server->options.drain_deadline_ms;
          }
          if (connections.empty() || NowMs() >= drain_deadline_ms) break;
        }
        // The 500ms tick doubles as the timeout/drain sweep cadence.
        int n = epoll_wait(epoll_fd, events, kMaxEvents, /*timeout_ms=*/500);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        for (int i = 0; i < n; ++i) {
          int fd = events[i].data.fd;
          uint32_t ev = events[i].events;
          if (fd == wake_fd) {
            uint64_t drained;
            [[maybe_unused]] ssize_t r = read(wake_fd, &drained,
                                              sizeof(drained));
            continue;
          }
          if (fd == listen_fd) {
            Accept();
            continue;
          }
          auto it = connections.find(fd);
          if (it == connections.end()) continue;
          if (ev & (EPOLLHUP | EPOLLERR)) {
            CloseConnection(it);
            continue;
          }
          bool alive = true;
          if (ev & EPOLLIN) alive = OnReadable(it);
          if (alive && (ev & EPOLLOUT)) FlushConnection(it);
        }
        SweepTimeouts(NowMs());
      }
    }

    /// Closes connections that exceeded the idle or header (slow-loris)
    /// timeout. Runs every loop tick, so enforcement granularity is the
    /// epoll timeout (500ms) — fine for timeouts meant in seconds.
    void SweepTimeouts(uint64_t now) {
      const WcServerOptions& options = server->options;
      if (options.idle_timeout_ms == 0 && options.header_timeout_ms == 0) {
        return;
      }
      std::vector<int> doomed;
      for (const auto& [fd, conn] : connections) {
        if (options.header_timeout_ms != 0 && conn.partial_since_ms != 0 &&
            now - conn.partial_since_ms >= options.header_timeout_ms) {
          doomed.push_back(fd);
          continue;
        }
        // A connection still flushing replies is not idle, however long
        // ago the peer last wrote.
        if (options.idle_timeout_ms != 0 &&
            conn.out_sent == conn.out.size() &&
            now - conn.last_activity_ms >= options.idle_timeout_ms) {
          doomed.push_back(fd);
        }
      }
      for (int fd : doomed) {
        auto it = connections.find(fd);
        if (it != connections.end()) {
          timeout_closed.fetch_add(1, std::memory_order_relaxed);
          CloseConnection(it);
        }
      }
    }

    void Accept() {
      for (;;) {
        int fd = accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          // Out of file descriptors: the pending connection would keep the
          // level-triggered listen fd hot forever (a busy-spin). Shed it
          // via the reserved spare fd, then re-reserve.
          if ((errno == EMFILE || errno == ENFILE) && spare_fd >= 0) {
            close(spare_fd);
            spare_fd = -1;
            int shed = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (shed >= 0) close(shed);
            spare_fd = open("/dev/null", O_RDONLY | O_CLOEXEC);
            if (shed >= 0) continue;
          }
          return;  // EAGAIN or transient error; epoll re-reports
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (!Watch(fd, EPOLLIN).ok()) {
          close(fd);
          continue;
        }
        Connection conn;
        conn.last_activity_ms = NowMs();
        connections.emplace(fd, std::move(conn));
        connections_accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }

    void CloseConnection(std::unordered_map<int, Connection>::iterator it) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->first, nullptr);
      close(it->first);
      connections.erase(it);
      connections_closed.fetch_add(1, std::memory_order_relaxed);
    }

    /// Reads everything the socket has, cuts and serves complete frames,
    /// then flushes replies. Returns false if the connection was closed.
    bool OnReadable(std::unordered_map<int, Connection>::iterator it) {
      const WcServerOptions& options = server->options;
      Connection& conn = it->second;
      // A draining connection reads nothing more: new bytes would pile up
      // unparsed (the frame loop is closed) and unbounded.
      if (conn.close_after_flush) return FlushConnection(it);
      uint8_t chunk[65536];
      bool peer_eof = false;
      // Bounded read pass: one connection streaming faster than the loop
      // must not starve the others — leftover bytes keep the level-
      // triggered fd hot, so the next epoll_wait resumes it.
      constexpr size_t kMaxReadPerPass = 1u << 20;
      size_t read_this_pass = 0;
      while (read_this_pass < kMaxReadPerPass) {
        ssize_t got = net::RecvSome(it->first, chunk, sizeof(chunk), 0);
        if (got > 0) {
          conn.in.insert(conn.in.end(), chunk, chunk + got);
          read_this_pass += static_cast<size_t>(got);
          continue;
        }
        if (got == 0) {
          peer_eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseConnection(it);
        return false;
      }
      const uint64_t now = NowMs();
      if (read_this_pass > 0) {
        conn.last_activity_ms = now;
        // Frames completed by this pass measure their deadline from here:
        // time spent behind earlier frames (a monster batch ahead in the
        // buffer) counts against them.
        conn.arrival_ms = now;
      }

      while (!conn.close_after_flush) {
        if (conn.out.size() - conn.out_sent >
            options.max_buffered_reply_bytes) {
          // The client pipelines faster than it reads replies; cap the
          // buffered output and drop the connection once it drains.
          conn.close_after_flush = true;
          break;
        }
        WireHeader header;
        const uint8_t* payload = nullptr;
        FrameStatus st = net::ParseFrame(
            conn.in.data() + conn.in_consumed,
            conn.in.size() - conn.in_consumed, options.max_payload_bytes,
            &header, &payload);
        if (st == FrameStatus::kNeedMore) break;
        if (st != FrameStatus::kOk) {
          // Framing error: the stream is poisoned. Reply once and close.
          // The oversized case has a trustworthy header, so echo its id.
          WireError error = st == FrameStatus::kBadMagic
                                ? WireError::kBadMagic
                            : st == FrameStatus::kBadVersion
                                ? WireError::kBadVersion
                                : WireError::kOversizedFrame;
          uint64_t id =
              st == FrameStatus::kOversized ? header.request_id : 0;
          net::AppendFrame(&conn.out, MsgType::kError, error, id, nullptr,
                           0);
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          conn.close_after_flush = true;
          break;
        }
        HandleFrame(conn, header, payload);
        conn.in_consumed += sizeof(WireHeader) + header.payload_bytes;
      }
      if (conn.in_consumed == conn.in.size()) {
        conn.in.clear();
        conn.in_consumed = 0;
      } else if (conn.in_consumed > (64u << 10)) {
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() +
                          static_cast<ptrdiff_t>(conn.in_consumed));
        conn.in_consumed = 0;
      }
      // Slow-loris tracking: leftover bytes are a partial frame. The clock
      // starts when the partial first appears and resets whenever the
      // buffer drains to a frame boundary.
      if (conn.in.size() > conn.in_consumed) {
        if (conn.partial_since_ms == 0) conn.partial_since_ms = now;
      } else {
        conn.partial_since_ms = 0;
      }

      if (!FlushConnection(it)) return false;
      if (peer_eof) {
        // Orderly shutdown: the peer sent everything it will (half-close).
        // Replies it has not yet read may still be in the write buffer —
        // drain them before closing, watching only writability (EOF keeps
        // the fd read-hot forever otherwise).
        if (conn.out_sent < conn.out.size()) {
          conn.close_after_flush = true;
          conn.want_write = true;
          Rearm(it->first, EPOLLOUT);
          return true;
        }
        CloseConnection(it);
        return false;
      }
      return true;
    }

    void HandleFrame(Connection& conn, const WireHeader& header,
                     const uint8_t* payload) {
      const WcServerOptions& options = server->options;
      const QueryService& service = *server->service;
      auto reject = [&](WireError error) {
        net::AppendFrame(&conn.out, MsgType::kError, error,
                         header.request_id, nullptr, 0);
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
      };
      // Load shedding sends a clean error frame too, but it is not a
      // protocol error: the request was well-formed and never executed,
      // and the stream stays healthy for a backed-off retry.
      auto shed = [&](WireError error) {
        net::AppendFrame(&conn.out, MsgType::kError, error,
                         header.request_id, nullptr, 0);
      };
      const MsgType type = static_cast<MsgType>(header.type);
      const bool is_query_frame =
          type == MsgType::kQuery || type == MsgType::kBatchQuery ||
          type == MsgType::kTopK || type == MsgType::kProfile ||
          type == MsgType::kPath;
      if (is_query_frame) {
        // Admission control. Stats/health frames are exempt: they are tiny
        // and exactly what an operator needs while the server is unhappy.
        if (options.overload_shed_reply_bytes != 0 &&
            conn.out.size() - conn.out_sent >
                options.overload_shed_reply_bytes) {
          shed(WireError::kOverloaded);
          overload_rejections.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (options.request_deadline_ms != 0 &&
            NowMs() - conn.arrival_ms > options.request_deadline_ms) {
          shed(WireError::kDeadlineExceeded);
          deadline_rejections.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      switch (type) {
        case MsgType::kQuery: {
          if (header.payload_bytes != sizeof(net::QueryPayload)) {
            reject(WireError::kBadPayload);
            return;
          }
          net::QueryPayload q;
          std::memcpy(&q, payload, sizeof(q));
          net::QueryReplyPayload reply{kInfDistance};
          if (service.QueryEx(q.s, q.t, q.w, &reply.dist) !=
              ServeOutcome::kOk) {
            shed(WireError::kShardUnavailable);
            shard_unavailable_rejections.fetch_add(
                1, std::memory_order_relaxed);
            return;
          }
          net::AppendFrame(&conn.out, MsgType::kQueryReply, WireError::kOk,
                           header.request_id, &reply, sizeof(reply));
          break;
        }
        case MsgType::kBatchQuery: {
          uint32_t count = 0;
          if (header.payload_bytes < sizeof(count)) {
            reject(WireError::kBadPayload);
            return;
          }
          std::memcpy(&count, payload, sizeof(count));
          if (header.payload_bytes !=
              sizeof(count) + uint64_t{count} * sizeof(net::QueryPayload)) {
            reject(WireError::kBadPayload);
            return;
          }
          if (options.max_batch_queries != 0 &&
              count > options.max_batch_queries) {
            shed(WireError::kOverloaded);
            overload_rejections.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          std::vector<BatchQueryInput> queries(count);
          if (count > 0) {
            std::memcpy(queries.data(), payload + sizeof(count),
                        uint64_t{count} * sizeof(net::QueryPayload));
          }
          std::vector<Distance> results;
          if (service.BatchEx(queries, &results) != ServeOutcome::kOk) {
            shed(WireError::kShardUnavailable);
            shard_unavailable_rejections.fetch_add(
                1, std::memory_order_relaxed);
            return;
          }
          net::AppendBatchReply(&conn.out, header.request_id, results);
          break;
        }
        case MsgType::kTopK: {
          net::TopKRequestPayload prefix;
          if (header.payload_bytes < sizeof(prefix)) {
            reject(WireError::kBadPayload);
            return;
          }
          std::memcpy(&prefix, payload, sizeof(prefix));
          if (header.payload_bytes !=
              sizeof(prefix) + uint64_t{prefix.count} * sizeof(uint32_t)) {
            reject(WireError::kBadPayload);
            return;
          }
          // One candidate is one query's worth of work; the batch
          // admission knob governs it too.
          if (options.max_batch_queries != 0 &&
              prefix.count > options.max_batch_queries) {
            shed(WireError::kOverloaded);
            overload_rejections.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          std::vector<Vertex> candidates(prefix.count);
          if (prefix.count > 0) {
            std::memcpy(candidates.data(), payload + sizeof(prefix),
                        uint64_t{prefix.count} * sizeof(uint32_t));
          }
          std::vector<RankedCandidate> ranked;
          const ServeOutcome outcome = service.TopKEx(
              prefix.source, candidates, prefix.w, prefix.k, &ranked);
          if (outcome != ServeOutcome::kOk) {
            if (outcome == ServeOutcome::kNotSupported) {
              shed(WireError::kNotSupported);
            } else {
              shed(WireError::kShardUnavailable);
              shard_unavailable_rejections.fetch_add(
                  1, std::memory_order_relaxed);
            }
            return;
          }
          net::AppendTopKReply(&conn.out, header.request_id, ranked);
          break;
        }
        case MsgType::kProfile: {
          net::ProfileRequestPayload prefix;
          if (header.payload_bytes < sizeof(prefix)) {
            reject(WireError::kBadPayload);
            return;
          }
          std::memcpy(&prefix, payload, sizeof(prefix));
          if (header.payload_bytes !=
              sizeof(prefix) + uint64_t{prefix.count} * sizeof(float)) {
            reject(WireError::kBadPayload);
            return;
          }
          if (options.max_batch_queries != 0 &&
              prefix.count > options.max_batch_queries) {
            shed(WireError::kOverloaded);
            overload_rejections.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          std::vector<Quality> thresholds(prefix.count);
          if (prefix.count > 0) {
            std::memcpy(thresholds.data(), payload + sizeof(prefix),
                        uint64_t{prefix.count} * sizeof(float));
          }
          std::vector<ProfilePoint> profile;
          const ServeOutcome outcome =
              service.ProfileEx(prefix.s, prefix.t, thresholds, &profile);
          if (outcome != ServeOutcome::kOk) {
            if (outcome == ServeOutcome::kNotSupported) {
              shed(WireError::kNotSupported);
            } else {
              shed(WireError::kShardUnavailable);
              shard_unavailable_rejections.fetch_add(
                  1, std::memory_order_relaxed);
            }
            return;
          }
          net::AppendProfileReply(&conn.out, header.request_id, profile);
          break;
        }
        case MsgType::kPath: {
          if (header.payload_bytes != sizeof(net::QueryPayload)) {
            reject(WireError::kBadPayload);
            return;
          }
          net::QueryPayload q;
          std::memcpy(&q, payload, sizeof(q));
          std::vector<Vertex> path;
          const ServeOutcome outcome = service.PathEx(q.s, q.t, q.w, &path);
          if (outcome != ServeOutcome::kOk) {
            if (outcome == ServeOutcome::kNotSupported) {
              shed(WireError::kNotSupported);
            } else {
              shed(WireError::kShardUnavailable);
              shard_unavailable_rejections.fetch_add(
                  1, std::memory_order_relaxed);
            }
            return;
          }
          net::AppendPathReply(&conn.out, header.request_id, path);
          break;
        }
        case MsgType::kStats: {
          if (header.payload_bytes != 0) {
            reject(WireError::kBadPayload);
            return;
          }
          QueryEngineStats stats = service.Stats();
          const WcServerStats server_stats = server->Aggregate();
          net::StatsReplyPayload reply{
              service.NumVertices(),
              stats.queries,
              stats.reachable,
              stats.batches,
              stats.cache_hits,
              stats.cache_misses,
              stats.cache_inserts,
              stats.cache_evictions,
              server_stats.overload_rejections,
              server_stats.deadline_rejections,
              stats.shard_unavailable,
              stats.generation,
              server->draining.load(std::memory_order_relaxed) ? 1u : 0u,
              0,
              stats.has_parents,
              stats.path_fallbacks,
              stats.compressed,
              stats.decode_hits,
              stats.decode_misses,
              stats.cold_pageins,
              stats.label_bytes,
              stats.uncompressed_label_bytes};
          std::vector<net::ShardBalancePayload> shards;
          for (const ShardBalanceEntry& shard : service.ShardBalance()) {
            shards.push_back(net::ShardBalancePayload{
                shard.vertex_begin, shard.vertex_end, shard.entry_count,
                shard.label_bytes, shard.quarantined ? 1u : 0u, 0});
          }
          net::AppendStatsReply(&conn.out, header.request_id, reply, shards);
          break;
        }
        case MsgType::kHealth: {
          if (header.payload_bytes != 0) {
            reject(WireError::kBadPayload);
            return;
          }
          net::HealthReplyPayload reply{
              service.NumVertices(),
              server->draining.load(std::memory_order_relaxed) ? 1u : 0u,
              0};
          net::AppendFrame(&conn.out, MsgType::kHealthReply, WireError::kOk,
                           header.request_id, &reply, sizeof(reply));
          break;
        }
        default:
          reject(WireError::kUnknownType);
          return;
      }
      frames_served.fetch_add(1, std::memory_order_relaxed);
    }

    /// Writes as much buffered output as the socket accepts; keeps
    /// EPOLLOUT armed while a backlog remains. Returns false if the
    /// connection was closed (write error, or close_after_flush with a
    /// drained buffer).
    bool FlushConnection(std::unordered_map<int, Connection>::iterator it) {
      Connection& conn = it->second;
      while (conn.out_sent < conn.out.size()) {
        ssize_t sent =
            net::SendSome(it->first, conn.out.data() + conn.out_sent,
                          conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
        if (sent > 0) {
          conn.out_sent += static_cast<size_t>(sent);
          conn.last_activity_ms = NowMs();
          continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (sent < 0 && errno == EINTR) continue;
        CloseConnection(it);
        return false;
      }
      if (conn.out_sent == conn.out.size()) {
        conn.out.clear();
        conn.out_sent = 0;
        if (conn.close_after_flush) {
          CloseConnection(it);
          return false;
        }
        if (conn.want_write) {
          conn.want_write = false;
          Rearm(it->first, EPOLLIN);
        }
      } else {
        // Backlog remains. A draining connection watches writability only
        // (readable bytes we will never parse would wake the loop
        // forever).
        conn.want_write = true;
        Rearm(it->first,
              conn.close_after_flush ? EPOLLOUT : EPOLLIN | EPOLLOUT);
      }
      return true;
    }
  };

  std::shared_ptr<const QueryService> service;
  WcServerOptions options;
  uint16_t port = 0;
  std::atomic<bool> stopping{false};
  std::atomic<bool> draining{false};
  std::vector<std::unique_ptr<Reactor>> reactors;

  ~Impl() { StopAndJoin(); }

  /// Binds and wires every reactor. With several reactors all listen
  /// sockets join one SO_REUSEPORT group; the first bind resolves a
  /// kernel-assigned port 0 so the rest can join it.
  Status Listen() {
    const size_t n = std::max<size_t>(1, options.num_reactors);
    const bool reuse_port = n > 1;
    reactors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      reactors.push_back(std::make_unique<Reactor>(this, i));
      const uint16_t bind_port = i == 0 ? options.port : port;
      WCSD_RETURN_NOT_OK(reactors[i]->Listen(bind_port, reuse_port));
      if (i == 0) port = reactors[0]->port;
    }
    return Status::OK();
  }

  void WakeAll() {
    for (auto& reactor : reactors) reactor->Wake();
  }

  void JoinAll() {
    for (auto& reactor : reactors) {
      if (reactor->loop.joinable()) reactor->loop.join();
    }
  }

  /// Graceful drain: flags every loop, which closes its listen fd and
  /// keeps serving existing connections until they close or the drain
  /// deadline passes; then finishes the usual teardown.
  void DrainAndJoin() {
    draining.store(true, std::memory_order_release);
    WakeAll();
    JoinAll();
    StopAndJoin();
  }

  void StopAndJoin() {
    bool was_stopping = stopping.exchange(true);
    if (!was_stopping) WakeAll();
    JoinAll();
    for (auto& reactor : reactors) reactor->CloseAll();
  }

  WcServerStats Aggregate() const {
    WcServerStats stats;
    for (const auto& reactor : reactors) {
      stats.connections_accepted +=
          reactor->connections_accepted.load(std::memory_order_relaxed);
      stats.connections_closed +=
          reactor->connections_closed.load(std::memory_order_relaxed);
      stats.frames_served +=
          reactor->frames_served.load(std::memory_order_relaxed);
      stats.protocol_errors +=
          reactor->protocol_errors.load(std::memory_order_relaxed);
      stats.overload_rejections +=
          reactor->overload_rejections.load(std::memory_order_relaxed);
      stats.deadline_rejections +=
          reactor->deadline_rejections.load(std::memory_order_relaxed);
      stats.shard_unavailable +=
          reactor->shard_unavailable_rejections.load(
              std::memory_order_relaxed);
      stats.timeout_closed +=
          reactor->timeout_closed.load(std::memory_order_relaxed);
    }
    stats.draining = draining.load(std::memory_order_relaxed);
    return stats;
  }
};

WcServer::WcServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

WcServer::WcServer(WcServer&&) noexcept = default;
WcServer& WcServer::operator=(WcServer&&) noexcept = default;

WcServer::~WcServer() {
  if (impl_) impl_->StopAndJoin();
}

Result<WcServer> WcServer::Start(
    std::shared_ptr<const QueryService> service,
    const WcServerOptions& options) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  if (service == nullptr) {
    return Status::InvalidArgument("null service");
  }
  auto impl = std::make_unique<Impl>();
  impl->service = std::move(service);
  impl->options = options;
  Status st = impl->Listen();
  if (!st.ok()) return st;
  for (auto& reactor : impl->reactors) {
    Impl::Reactor* raw = reactor.get();
    raw->loop = std::thread([raw] { raw->Loop(); });
  }
  return WcServer(std::move(impl));
}

uint16_t WcServer::port() const { return impl_->port; }

size_t WcServer::num_reactors() const { return impl_->reactors.size(); }

void WcServer::Stop() {
  if (impl_) impl_->StopAndJoin();
}

void WcServer::Drain() {
  if (impl_) impl_->DrainAndJoin();
}

WcServerStats WcServer::stats() const { return impl_->Aggregate(); }

std::vector<WcReactorStats> WcServer::reactor_stats() const {
  std::vector<WcReactorStats> all;
  all.reserve(impl_->reactors.size());
  for (const auto& reactor : impl_->reactors) {
    WcReactorStats stats;
    stats.connections_accepted =
        reactor->connections_accepted.load(std::memory_order_relaxed);
    stats.connections_closed =
        reactor->connections_closed.load(std::memory_order_relaxed);
    stats.frames_served =
        reactor->frames_served.load(std::memory_order_relaxed);
    stats.protocol_errors =
        reactor->protocol_errors.load(std::memory_order_relaxed);
    all.push_back(stats);
  }
  return all;
}

}  // namespace wcsd
