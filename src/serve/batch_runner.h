// Shared serving scaffold: chunked fan-out over a ThreadPool with per-call
// completion tracking, plus the per-worker stats slots and the batch-body
// template both engines (QueryEngine, ShardedQueryEngine) run on.
//
// ThreadPool::Wait waits for GLOBAL quiescence, which is wrong for a
// serving engine: two user threads batching against the same engine would
// each block on the other's work. RunChunked instead counts down its own
// chunks on the caller's stack, so concurrent batches share the pool's
// workers but complete independently.

#ifndef WCSD_SERVE_BATCH_RUNNER_H_
#define WCSD_SERVE_BATCH_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace wcsd {

/// Monotonic serving counters, aggregated across workers on read. The
/// cache_* counters come from the engine's result cache (serve/
/// result_cache.h) and stay zero when caching is off.
struct QueryEngineStats {
  uint64_t queries = 0;
  uint64_t reachable = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  /// Queries refused because their labels live in a quarantined shard
  /// (degraded-mode sharded serving); always 0 for healthy engines.
  uint64_t shard_unavailable = 0;
  /// Hot-swap generation currently serving (net/swap_service.h), starting
  /// at 1 and bumped on every swap; 0 for a non-swappable service.
  uint64_t generation = 0;
  /// 1 when the served index carries §V parent quads (path reconstruction
  /// runs on the fast unwind), 0 otherwise — e.g. an index built without
  /// record_parents or mmap-loaded from a v1 snapshot that predates the
  /// parents section. Surfaced on the wire so the degraded parent-less
  /// mode is explicit, not silent.
  uint64_t has_parents = 0;
  /// Path-reconstruction unwind steps resolved through the index-guided
  /// neighbor fallback instead of a recorded parent quad. A steadily
  /// climbing value on a parent-less index is the degraded mode's
  /// signature (each fallback step costs one index query per neighbor).
  uint64_t path_fallbacks = 0;
  /// 1 when the engine serves the compressed label backend (a v3
  /// compressed snapshot, or any compressed shard in a sharded set), 0 on
  /// the flat backend.
  uint64_t compressed = 0;
  /// Decoded-label cache counters (serve/decode_cache.h); zero when no
  /// decode cache is configured. cold_pageins counts cache misses whose
  /// decode walked mmap-backed label bytes — the reads that can fault
  /// cold-tier pages in from disk.
  uint64_t decode_hits = 0;
  uint64_t decode_misses = 0;
  uint64_t cold_pageins = 0;
  /// Bytes of the label backend actually resident/served (compressed
  /// bytes on the compressed backend) vs. what the same labels cost flat.
  /// uncompressed_label_bytes / label_bytes is the compression ratio; the
  /// two are equal on the flat backend.
  uint64_t label_bytes = 0;
  uint64_t uncompressed_label_bytes = 0;
};

/// 0 = hardware concurrency (min 1).
inline size_t ResolveServeThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Applies `fn(begin, end, worker)` to consecutive chunks of [0, n) and
/// blocks until every chunk has run. With a null pool or a single chunk the
/// call is inline (worker 0). Safe to call from multiple threads on one
/// pool concurrently.
inline void RunChunked(
    ThreadPool* pool, size_t n, size_t chunk,
    const std::function<void(size_t begin, size_t end, size_t worker)>& fn) {
  if (n == 0) return;
  chunk = std::max<size_t>(1, chunk);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (pool == nullptr || num_chunks <= 1) {
    fn(0, n, 0);
    return;
  }
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    pool->Submit([&, begin, end](size_t worker) {
      fn(begin, end, worker);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

/// Per-worker counter slot, cache-line padded so workers never share a
/// line. Relaxed atomics: single queries may come from arbitrary caller
/// threads, and stats() may race a batch in flight.
struct alignas(64) ServeWorkerSlot {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> reachable{0};
};

/// The stats state an engine heap-holds (atomics are unmovable; the engine
/// stays movable by owning this through a unique_ptr).
struct ServeStatsBlock {
  explicit ServeStatsBlock(size_t num_workers) : slots(num_workers) {}

  /// Records one direct (non-batch) query.
  void RecordSingle(Distance d) {
    slots[0].queries.fetch_add(1, std::memory_order_relaxed);
    if (d != kInfDistance) {
      slots[0].reachable.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Records queries refused in degraded mode (quarantined shard).
  void RecordUnavailable(uint64_t count) {
    shard_unavailable.fetch_add(count, std::memory_order_relaxed);
  }

  /// Records `count` evaluated sub-queries of which `reachable_count`
  /// answered finite (the top-k / profile endpoints evaluate many
  /// per-frame).
  void RecordMany(uint64_t count, uint64_t reachable_count) {
    slots[0].queries.fetch_add(count, std::memory_order_relaxed);
    slots[0].reachable.fetch_add(reachable_count, std::memory_order_relaxed);
  }

  /// Records path-unwind steps served through the graph fallback.
  void RecordPathFallbacks(uint64_t count) {
    if (count != 0) {
      path_fallbacks.fetch_add(count, std::memory_order_relaxed);
    }
  }

  QueryEngineStats Aggregate() const {
    QueryEngineStats total;
    for (const ServeWorkerSlot& slot : slots) {
      total.queries += slot.queries.load(std::memory_order_relaxed);
      total.reachable += slot.reachable.load(std::memory_order_relaxed);
    }
    total.batches = batches.load(std::memory_order_relaxed);
    total.shard_unavailable =
        shard_unavailable.load(std::memory_order_relaxed);
    total.path_fallbacks = path_fallbacks.load(std::memory_order_relaxed);
    return total;
  }

  std::vector<ServeWorkerSlot> slots;
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> shard_unavailable{0};
  std::atomic<uint64_t> path_fallbacks{0};
};

/// The batch body shared by both engines: evaluate `fn(query)` for every
/// input across the pool in contiguous chunks, accumulating per-thread
/// scratch counters locally and publishing once per chunk. Results are
/// positionally aligned with the inputs.
template <typename QueryFn>
std::vector<Distance> RunServeBatch(ThreadPool* pool, size_t num_threads,
                                    size_t min_chunk, ServeStatsBlock& stats,
                                    const std::vector<BatchQueryInput>& queries,
                                    const QueryFn& fn) {
  std::vector<Distance> results(queries.size(), kInfDistance);
  stats.batches.fetch_add(1, std::memory_order_relaxed);
  // ~4 chunks per worker so stragglers rebalance, but never slices smaller
  // than min_chunk.
  const size_t target = std::max<size_t>(1, num_threads * 4);
  const size_t chunk =
      std::max(min_chunk, (queries.size() + target - 1) / target);
  RunChunked(pool, queries.size(), chunk,
             [&](size_t begin, size_t end, size_t worker) {
               uint64_t reachable = 0;
               for (size_t i = begin; i < end; ++i) {
                 results[i] = fn(queries[i]);
                 if (results[i] != kInfDistance) ++reachable;
               }
               ServeWorkerSlot& slot = stats.slots[worker];
               slot.queries.fetch_add(end - begin,
                                      std::memory_order_relaxed);
               slot.reachable.fetch_add(reachable,
                                        std::memory_order_relaxed);
             });
  return results;
}

}  // namespace wcsd

#endif  // WCSD_SERVE_BATCH_RUNNER_H_
