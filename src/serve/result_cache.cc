#include "serve/result_cache.h"

#include <algorithm>

namespace wcsd {

namespace {

constexpr uint64_t kEmptyKey = ~uint64_t{0};  // (2^32-1, 2^32-1): kNullVertex

/// Undirected key: the graph is undirected, so (s, t) and (t, s) share one
/// entry — normalizing doubles the hit rate on symmetric workloads.
inline uint64_t KeyOf(Vertex s, Vertex t) {
  if (s > t) std::swap(s, t);
  return (uint64_t{s} << 32) | t;
}

/// splitmix64 finalizer: cheap, and spreads the structured vertex-pair key
/// across all 64 bits so shard (high bits) and probe base (low bits) both
/// look random.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

}  // namespace

ResultCache::ResultCache(size_t budget_bytes) {
  const size_t total_slots =
      std::max(kProbeWindow, budget_bytes / sizeof(Slot));
  // ~256 slots per shard before adding stripes, capped at 64 shards: small
  // budgets stay single-stripe, big ones spread writer contention.
  num_shards_ = std::clamp<size_t>(FloorPow2(total_slots / 256), 1, 64);
  slots_per_shard_ =
      std::max(kProbeWindow, FloorPow2(total_slots / num_shards_));
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].slots.assign(slots_per_shard_, Slot{kEmptyKey, 0, 0, {}});
  }
}

void ResultCache::Rebind(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  if (fingerprint_.load(std::memory_order_relaxed) == fingerprint) return;
  // New identity is visible before any entry is dropped, so a stale
  // InsertBound racing the sweep can never land after it (see InsertBound).
  fingerprint_.store(fingerprint, std::memory_order_release);
  Clear();
}

size_t ResultCache::InvalidateDelta(uint64_t new_fingerprint,
                                    std::span<const DeltaImpact> impacts,
                                    const CoupledFn& coupled) {
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  fingerprint_.store(new_fingerprint, std::memory_order_release);
  size_t dropped = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    for (Slot& slot : shard.slots) {
      if (slot.key == kEmptyKey) continue;
      const Vertex s = static_cast<Vertex>(slot.key >> 32);
      const Vertex t = static_cast<Vertex>(slot.key & 0xffffffffu);
      uint32_t kept = 0;
      for (uint32_t j = 0; j < slot.count; ++j) {
        const Interval& iv = slot.iv[j];
        bool touched = false;
        for (const DeltaImpact& impact : impacts) {
          if (iv.w_hi < impact.q_lo || impact.q_hi < iv.w_lo) continue;
          const Quality w_test = std::max(iv.w_lo, impact.q_lo);
          if (!coupled || coupled(s, t, impact, w_test)) {
            touched = true;
            break;
          }
        }
        if (touched) {
          ++dropped;
        } else {
          slot.iv[kept++] = slot.iv[j];
        }
      }
      slot.count = kept;
      slot.clock = 0;
      if (kept == 0) slot.key = kEmptyKey;
    }
  }
  return dropped;
}

uint64_t ResultCache::fingerprint() const {
  return fingerprint_.load(std::memory_order_acquire);
}

void ResultCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Slot& slot : shard.slots) {
      slot.key = kEmptyKey;
      slot.count = 0;
      slot.clock = 0;
    }
    shard.clock = 0;
  }
}

bool ResultCache::Lookup(Vertex s, Vertex t, Quality w, Distance* dist) {
  const uint64_t key = KeyOf(s, t);
  const uint64_t hash = Mix(key);
  Shard& shard = ShardFor(hash);
  const size_t mask = slots_per_shard_ - 1;
  std::lock_guard<std::mutex> lock(shard.mu);
  for (size_t p = 0; p < kProbeWindow; ++p) {
    const Slot& slot = shard.slots[(hash + p) & mask];
    if (slot.key != key) continue;
    for (uint32_t i = 0; i < slot.count; ++i) {
      const Interval& iv = slot.iv[i];
      if (iv.w_lo <= w && w <= iv.w_hi) {
        *dist = iv.dist;
        ++shard.hits;
        return true;
      }
    }
    break;  // keys are unique within the window
  }
  ++shard.misses;
  return false;
}

void ResultCache::Insert(Vertex s, Vertex t,
                         const IntervalQueryResult& result) {
  InsertImpl(s, t, result, nullptr);
}

void ResultCache::InsertBound(Vertex s, Vertex t,
                              const IntervalQueryResult& result,
                              uint64_t expected_fingerprint) {
  InsertImpl(s, t, result, &expected_fingerprint);
}

void ResultCache::InsertImpl(Vertex s, Vertex t,
                             const IntervalQueryResult& result,
                             const uint64_t* expected) {
  const uint64_t key = KeyOf(s, t);
  const uint64_t hash = Mix(key);
  Shard& shard = ShardFor(hash);
  const size_t mask = slots_per_shard_ - 1;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (expected != nullptr &&
      fingerprint_.load(std::memory_order_acquire) != *expected) {
    return;  // the index this result came from is no longer bound
  }

  Slot* target = nullptr;
  Slot* empty = nullptr;
  for (size_t p = 0; p < kProbeWindow; ++p) {
    Slot& slot = shard.slots[(hash + p) & mask];
    if (slot.key == key) {
      target = &slot;
      break;
    }
    if (slot.key == kEmptyKey && empty == nullptr) empty = &slot;
  }
  if (target == nullptr) {
    if (empty != nullptr) {
      target = empty;
    } else {
      // Window full of other keys: displace one, rotating so a hot window
      // does not always sacrifice the same victim.
      target = &shard.slots[(hash + (shard.clock++ % kProbeWindow)) & mask];
      ++shard.evictions;
    }
    target->key = key;
    target->count = 0;
    target->clock = 0;
  }

  // Intervals of one key are maximal constant regions of the same step
  // function: a duplicate is bit-identical, anything else is disjoint.
  for (uint32_t i = 0; i < target->count; ++i) {
    const Interval& iv = target->iv[i];
    if (iv.w_lo == result.w_lo && iv.w_hi == result.w_hi) return;
  }
  if (target->count < kIntervalsPerSlot) {
    target->iv[target->count++] = Interval{result.w_lo, result.w_hi,
                                           result.dist};
  } else {
    target->iv[target->clock++ % kIntervalsPerSlot] =
        Interval{result.w_lo, result.w_hi, result.dist};
    ++shard.evictions;
  }
  ++shard.inserts;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.inserts += shard.inserts;
    total.evictions += shard.evictions;
  }
  return total;
}

size_t ResultCache::MemoryBytes() const {
  return num_shards_ * slots_per_shard_ * sizeof(Slot);
}

}  // namespace wcsd
