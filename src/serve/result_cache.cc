#include "serve/result_cache.h"

#include <algorithm>

namespace wcsd {

namespace {

constexpr uint64_t kEmptyKey = ~uint64_t{0};  // (2^32-1, 2^32-1): kNullVertex

/// Undirected key: the graph is undirected, so (s, t) and (t, s) share one
/// entry — normalizing doubles the hit rate on symmetric workloads.
inline uint64_t KeyOf(Vertex s, Vertex t) {
  if (s > t) std::swap(s, t);
  return (uint64_t{s} << 32) | t;
}

/// splitmix64 finalizer: cheap, and spreads the structured vertex-pair key
/// across all 64 bits so shard (high bits) and probe base (low bits) both
/// look random.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

}  // namespace

/// RAII seqlock write section: entry flips the slot version odd, exit flips
/// it back even. All field stores between the two must be relaxed atomics —
/// the release fence on entry orders the odd-version store before them, and
/// the release store on exit orders them before the even version any reader
/// validates against. Callers hold the shard mutex, so write sections never
/// nest or overlap on one slot.
class SlotWriteSection {
 public:
  explicit SlotWriteSection(ResultCache::Slot& slot) : slot_(slot) {
    const uint32_t v = slot_.version.load(std::memory_order_relaxed);
    slot_.version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  ~SlotWriteSection() {
    const uint32_t v = slot_.version.load(std::memory_order_relaxed);
    slot_.version.store(v + 1, std::memory_order_release);
  }
  SlotWriteSection(const SlotWriteSection&) = delete;
  SlotWriteSection& operator=(const SlotWriteSection&) = delete;

 private:
  ResultCache::Slot& slot_;
};

ResultCache::ResultCache(size_t budget_bytes, bool second_chance_admission)
    : admission_(second_chance_admission) {
  const size_t total_slots =
      std::max(kProbeWindow, budget_bytes / sizeof(Slot));
  // ~256 slots per shard before adding stripes, capped at 64 shards: small
  // budgets stay single-stripe, big ones spread writer contention.
  num_shards_ = std::clamp<size_t>(FloorPow2(total_slots / 256), 1, 64);
  slots_per_shard_ =
      std::max(kProbeWindow, FloorPow2(total_slots / num_shards_));
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].slots = std::make_unique<Slot[]>(slots_per_shard_);
    for (size_t j = 0; j < slots_per_shard_; ++j) {
      shards_[i].slots[j].key.store(kEmptyKey, std::memory_order_relaxed);
    }
    shards_[i].admit_once = std::make_unique<uint64_t[]>(kAdmissionTags);
    std::fill_n(shards_[i].admit_once.get(), kAdmissionTags, kEmptyKey);
  }
}

void ResultCache::Rebind(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  if (fingerprint_.load(std::memory_order_relaxed) == fingerprint) return;
  // New identity is visible before any entry is dropped, so a stale
  // InsertBound racing the sweep can never land after it (see InsertBound).
  fingerprint_.store(fingerprint, std::memory_order_release);
  Clear();
}

size_t ResultCache::InvalidateDelta(uint64_t new_fingerprint,
                                    std::span<const DeltaImpact> impacts,
                                    const CoupledFn& coupled) {
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  fingerprint_.store(new_fingerprint, std::memory_order_release);
  size_t dropped = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    for (size_t si = 0; si < slots_per_shard_; ++si) {
      Slot& slot = shard.slots[si];
      // Writer-side reads: stable under the shard mutex.
      const uint64_t slot_key = slot.key.load(std::memory_order_relaxed);
      if (slot_key == kEmptyKey) continue;
      const Vertex s = static_cast<Vertex>(slot_key >> 32);
      const Vertex t = static_cast<Vertex>(slot_key & 0xffffffffu);
      const uint32_t count = slot.count.load(std::memory_order_relaxed);
      Interval kept[kIntervalsPerSlot];
      uint32_t num_kept = 0;
      for (uint32_t j = 0; j < count; ++j) {
        const Interval iv{slot.iv[j].w_lo.load(std::memory_order_relaxed),
                          slot.iv[j].w_hi.load(std::memory_order_relaxed),
                          slot.iv[j].dist.load(std::memory_order_relaxed)};
        bool touched = false;
        for (const DeltaImpact& impact : impacts) {
          if (iv.w_hi < impact.q_lo || impact.q_hi < iv.w_lo) continue;
          const Quality w_test = std::max(iv.w_lo, impact.q_lo);
          if (!coupled || coupled(s, t, impact, w_test)) {
            touched = true;
            break;
          }
        }
        if (touched) {
          ++dropped;
        } else {
          kept[num_kept++] = iv;
        }
      }
      SlotWriteSection write(slot);
      for (uint32_t j = 0; j < num_kept; ++j) {
        slot.iv[j].w_lo.store(kept[j].w_lo, std::memory_order_relaxed);
        slot.iv[j].w_hi.store(kept[j].w_hi, std::memory_order_relaxed);
        slot.iv[j].dist.store(kept[j].dist, std::memory_order_relaxed);
      }
      slot.count.store(num_kept, std::memory_order_relaxed);
      slot.clock = 0;
      if (num_kept == 0) {
        slot.key.store(kEmptyKey, std::memory_order_relaxed);
      } else {
        // Survivors are certified for the new index by the delta soundness
        // argument: re-stamp them so LookupBound(new_fingerprint) hits.
        slot.fingerprint.store(new_fingerprint, std::memory_order_relaxed);
      }
    }
  }
  return dropped;
}

uint64_t ResultCache::fingerprint() const {
  return fingerprint_.load(std::memory_order_acquire);
}

void ResultCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t si = 0; si < slots_per_shard_; ++si) {
      Slot& slot = shard.slots[si];
      SlotWriteSection write(slot);
      slot.key.store(kEmptyKey, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
      slot.clock = 0;
    }
    shard.clock = 0;
    std::fill_n(shard.admit_once.get(), kAdmissionTags, kEmptyKey);
  }
}

bool ResultCache::ReadSlot(const Slot& slot, SlotSnapshot* out) {
  for (int attempt = 0; attempt < kSeqlockRetries; ++attempt) {
    const uint32_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1u) continue;  // writer mid-update; retry
    out->key = slot.key.load(std::memory_order_relaxed);
    out->fingerprint = slot.fingerprint.load(std::memory_order_relaxed);
    uint32_t count = slot.count.load(std::memory_order_relaxed);
    count = std::min<uint32_t>(count, kIntervalsPerSlot);
    out->count = count;
    for (uint32_t i = 0; i < count; ++i) {
      out->iv[i].w_lo = slot.iv[i].w_lo.load(std::memory_order_relaxed);
      out->iv[i].w_hi = slot.iv[i].w_hi.load(std::memory_order_relaxed);
      out->iv[i].dist = slot.iv[i].dist.load(std::memory_order_relaxed);
    }
    // Orders the field loads above before the version re-check: if the
    // version is still v1, no write section overlapped the reads.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == v1) return true;
  }
  return false;  // persistent writer contention; caller treats as a miss
}

bool ResultCache::Lookup(Vertex s, Vertex t, Quality w, Distance* dist) {
  return LookupImpl(s, t, w, dist, nullptr);
}

bool ResultCache::LookupBound(Vertex s, Vertex t, Quality w,
                              uint64_t expected_fingerprint,
                              Distance* dist) {
  return LookupImpl(s, t, w, dist, &expected_fingerprint);
}

bool ResultCache::LookupImpl(Vertex s, Vertex t, Quality w, Distance* dist,
                             const uint64_t* expected) {
  const uint64_t key = KeyOf(s, t);
  const uint64_t hash = Mix(key);
  Shard& shard = ShardFor(hash);
  const size_t mask = slots_per_shard_ - 1;
  for (size_t p = 0; p < kProbeWindow; ++p) {
    const Slot& slot = shard.slots[(hash + p) & mask];
    SlotSnapshot snap;
    if (!ReadSlot(slot, &snap)) continue;  // unreadable ≠ ours; keep probing
    if (snap.key != key) continue;
    // The fingerprint was read under the same version validation as the
    // intervals, so a hit here is certified by exactly this generation.
    if (expected != nullptr && snap.fingerprint != *expected) break;
    for (uint32_t i = 0; i < snap.count; ++i) {
      if (snap.iv[i].w_lo <= w && w <= snap.iv[i].w_hi) {
        *dist = snap.iv[i].dist;
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    break;  // keys are unique within the window
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResultCache::Insert(Vertex s, Vertex t,
                         const IntervalQueryResult& result) {
  InsertImpl(s, t, result, nullptr);
}

void ResultCache::InsertBound(Vertex s, Vertex t,
                              const IntervalQueryResult& result,
                              uint64_t expected_fingerprint) {
  InsertImpl(s, t, result, &expected_fingerprint);
}

void ResultCache::InsertImpl(Vertex s, Vertex t,
                             const IntervalQueryResult& result,
                             const uint64_t* expected) {
  const uint64_t key = KeyOf(s, t);
  const uint64_t hash = Mix(key);
  Shard& shard = ShardFor(hash);
  const size_t mask = slots_per_shard_ - 1;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (expected != nullptr &&
      fingerprint_.load(std::memory_order_acquire) != *expected) {
    return;  // the index this result came from is no longer bound
  }
  // The generation this insert certifies for: the caller's expected
  // fingerprint (validated above), else whatever is currently bound.
  const uint64_t stamp =
      expected != nullptr ? *expected
                          : fingerprint_.load(std::memory_order_acquire);

  Slot* target = nullptr;
  Slot* empty = nullptr;
  for (size_t p = 0; p < kProbeWindow; ++p) {
    Slot& slot = shard.slots[(hash + p) & mask];
    if (slot.key.load(std::memory_order_relaxed) == key) {
      target = &slot;
      break;
    }
    if (slot.key.load(std::memory_order_relaxed) == kEmptyKey &&
        empty == nullptr) {
      empty = &slot;
    }
  }
  bool fresh = false;
  if (target == nullptr) {
    if (empty != nullptr) {
      target = empty;
    } else {
      // Window full of other keys: displacing a resident entry needs
      // admission. Second chance: the first touch of a key only plants a
      // tag; the insert is admitted when the key comes back while its tag
      // survives. One-off pairs die in the tag table instead of evicting
      // the hot set.
      if (admission_) {
        uint64_t& tag =
            shard.admit_once[(hash >> 32) & (kAdmissionTags - 1)];
        if (tag != key) {
          tag = key;
          ++shard.admission_rejects;
          return;
        }
        tag = kEmptyKey;  // second touch: consume the tag and admit
      }
      target = &shard.slots[(hash + (shard.clock++ % kProbeWindow)) & mask];
      ++shard.evictions;
    }
    fresh = true;
  } else if (target->fingerprint.load(std::memory_order_relaxed) != stamp) {
    // Resident key certified by another generation (possible only inside
    // an InvalidateDelta sweep window): its intervals are not ours to
    // extend — reset the slot to this generation.
    fresh = true;
  }

  if (!fresh) {
    // Intervals of one key are maximal constant regions of the same step
    // function: a duplicate is bit-identical, anything else is disjoint.
    // Writer-side reads, stable under the shard mutex.
    const uint32_t count = target->count.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < count; ++i) {
      if (target->iv[i].w_lo.load(std::memory_order_relaxed) == result.w_lo &&
          target->iv[i].w_hi.load(std::memory_order_relaxed) == result.w_hi) {
        return;
      }
    }
  }

  SlotWriteSection write(*target);
  if (fresh) {
    target->key.store(key, std::memory_order_relaxed);
    target->fingerprint.store(stamp, std::memory_order_relaxed);
    target->count.store(0, std::memory_order_relaxed);
    target->clock = 0;
  }
  const uint32_t count = target->count.load(std::memory_order_relaxed);
  uint32_t at;
  if (count < kIntervalsPerSlot) {
    at = count;
    target->count.store(count + 1, std::memory_order_relaxed);
  } else {
    at = target->clock++ % kIntervalsPerSlot;
    ++shard.evictions;
  }
  target->iv[at].w_lo.store(result.w_lo, std::memory_order_relaxed);
  target->iv[at].w_hi.store(result.w_hi, std::memory_order_relaxed);
  target->iv[at].dist.store(result.dist, std::memory_order_relaxed);
  ++shard.inserts;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    total.hits += shard.hits.load(std::memory_order_relaxed);
    total.misses += shard.misses.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard.mu);
    total.inserts += shard.inserts;
    total.evictions += shard.evictions;
    total.admission_rejects += shard.admission_rejects;
  }
  return total;
}

size_t ResultCache::MemoryBytes() const {
  return num_shards_ * slots_per_shard_ * sizeof(Slot);
}

}  // namespace wcsd
