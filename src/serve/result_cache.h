// Dominance-aware result cache for the serve path.
//
// d(s, t, w) is a non-decreasing step function of w (PAPER §IV, Theorem
// 3), so one query — answered by the interval-returning merge kernel
// (labeling/query.h) — certifies its distance for a whole constraint
// interval, not just the w it was asked. The cache exploits that: a hit
// only needs SOME cached interval for (s, t) to contain w, which turns one
// miss into a hit for every nearby constraint. Production query logs are
// heavily skewed toward a small hot set of (s, t) pairs (see PAPERS.md on
// IS-LABEL / Query-by-Sketch), which is exactly the shape this rewards.
//
// Layout: a fixed budget of open-addressed slots, split across shards.
// One slot holds one undirected (s, t) key — endpoints are normalized, the
// graph is undirected — and a small set of disjoint (interval, distance)
// entries, stamped with the index fingerprint they were certified by.
// Capacity pressure is resolved by replacement, never by growth, so the
// byte budget is a hard bound.
//
// Concurrency: the read path is LOCK-FREE. Every slot is a seqlock — an
// even/odd version counter brackets all-atomic field updates — so Lookup
// and LookupBound probe, validate, and return without acquiring any mutex;
// a reader that races a writer simply retries or treats the slot as a miss
// (always sound: a miss just recomputes). Writers (Insert, InsertBound,
// Rebind, InvalidateDelta, Clear) still serialize per shard on the stripe
// mutex, so slot state only ever changes under one writer at a time. This
// is what lets N per-core server reactors share one cache without the read
// path becoming the contention wall.
//
// Admission: a second-chance-on-first-touch policy protects the hot set.
// An insert that would displace a live key is refused the first time that
// key is seen and admitted only when it comes back while its tag survives
// — one-off pairs (the tail of a skewed workload) die in the tag table
// instead of evicting resident hot pairs. Inserts into empty slots and
// re-inserts of resident keys are always admitted.
//
// Intervals stored for one key are maximal constant regions of the same
// step function, hence pairwise disjoint — an insert whose interval is
// already present is a no-op, and no overlap reconciliation is needed.
//
// Snapshot identity: a cache is bound to the index content fingerprint
// (labeling/shard_manifest.h IndexContentFingerprint) it was filled from,
// and every slot additionally records the fingerprint its entries were
// certified by. Rebind(fingerprint) wholesale-invalidates every entry when
// the identity changes (snapshot reload, dynamic update), and is a no-op
// when it does not — engines call it unconditionally at open, shared cache
// or not (a swap coordinator that already invalidated makes it a no-op).
// For a small delta between two known snapshots, InvalidateDelta() rebinds
// while dropping only the entries the delta can touch, keeping the hot set
// warm across live updates (see the soundness note at its declaration).
// LookupBound checks the slot's recorded fingerprint under the same
// slot-version protocol, so an engine of one generation can never read an
// entry certified by another — even mid-sweep, when the cache-level
// fingerprint has moved on but stale slots are not yet dropped.

#ifndef WCSD_SERVE_RESULT_CACHE_H_
#define WCSD_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "labeling/delta.h"
#include "labeling/query.h"
#include "util/types.h"

namespace wcsd {

class SlotWriteSection;

/// Monotonic cache counters. hits + misses = lookups; inserts counts
/// intervals stored; evictions counts displaced live keys and displaced
/// intervals within a full slot; admission_rejects counts first-touch
/// inserts refused by the second-chance policy.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t admission_rejects = 0;

  friend bool operator==(const ResultCacheStats&,
                         const ResultCacheStats&) = default;
};

class ResultCache {
 public:
  /// Intervals one slot can hold for its (s, t) key.
  static constexpr size_t kIntervalsPerSlot = 3;
  /// Linear-probe window; a full window replaces instead of growing.
  static constexpr size_t kProbeWindow = 4;
  /// Seqlock read attempts before a racing slot is treated as a miss.
  static constexpr int kSeqlockRetries = 8;
  /// Second-chance tag slots per shard (power of two).
  static constexpr size_t kAdmissionTags = 64;

  /// Budgets ~`budget_bytes` of slot storage (rounded down to a power of
  /// two per shard, floor of one probe window per shard). The budget is
  /// fixed for the cache's lifetime. `second_chance_admission` gates the
  /// first-touch admission policy; off, any displacement-required insert
  /// evicts immediately (the pre-admission behavior, useful for tests and
  /// scan-heavy workloads).
  explicit ResultCache(size_t budget_bytes,
                       bool second_chance_admission = true);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Binds the cache to an index identity. A changed fingerprint drops
  /// every cached entry (counters survive); an unchanged one is a no-op.
  /// An insert racing a Rebind may land after the wipe, so a caller
  /// sharing one cache across snapshot swaps must Rebind before the new
  /// snapshot starts serving (engines do this unconditionally at open).
  void Rebind(uint64_t fingerprint);

  /// Decides whether cached pair (s, t) is reachability-coupled to a
  /// changed edge at the given test constraint (see InvalidateDelta).
  /// Called with a shard mutex held: must not re-enter the cache.
  using CoupledFn =
      std::function<bool(Vertex s, Vertex t, const DeltaImpact& impact,
                         Quality w_test)>;

  /// Rebinds to `new_fingerprint` while dropping only the entries a delta
  /// can touch. Soundness: a shortest path changed by edge {u, v} uses
  /// that edge, so its (s -> u) prefix and (v -> t) suffix already exist in
  /// the OLD graph — a cached interval [w_lo, w_hi] for (s, t) can only be
  /// stale if (a) it intersects the impact's constraint window
  /// [q_lo, q_hi], and (b) the pair is reachability-coupled to {u, v} in
  /// the old index at w_test = max(w_lo, q_lo) (reachability is monotone
  /// non-increasing in w, so testing the lowest affected constraint is
  /// conservative). `coupled` implements (b) from the OLD index; pass an
  /// empty function to skip it and invalidate on quality overlap alone
  /// (still sound, just coarser). Surviving entries are re-stamped with
  /// `new_fingerprint`: the delta argument certifies them for the new
  /// index. Returns the number of intervals dropped.
  size_t InvalidateDelta(uint64_t new_fingerprint,
                         std::span<const DeltaImpact> impacts,
                         const CoupledFn& coupled = {});

  /// The identity the current contents are valid for.
  uint64_t fingerprint() const;

  /// True (and *dist filled) when a cached interval for (s, t) contains w.
  /// Lock-free; may spuriously miss under writer contention (sound).
  bool Lookup(Vertex s, Vertex t, Quality w, Distance* dist);

  /// Generation-safe lookup: hits only entries whose slot was certified by
  /// exactly `expected_fingerprint`, checked under the same slot-version
  /// protocol as the payload read. An engine of one generation sharing the
  /// cache with another can never read the other's entries — including
  /// mid-InvalidateDelta, when stale slots linger after the cache-level
  /// fingerprint has already moved on. Lock-free like Lookup.
  bool LookupBound(Vertex s, Vertex t, Quality w,
                   uint64_t expected_fingerprint, Distance* dist);

  /// The lookup-miss-insert sequence both engines run: returns the cached
  /// distance on a hit, otherwise calls `compute()` (which must return the
  /// IntervalQueryResult for (s, t, w)), stores its interval, and returns
  /// its distance.
  template <typename ComputeFn>
  Distance GetOrCompute(Vertex s, Vertex t, Quality w,
                        const ComputeFn& compute) {
    Distance dist;
    if (Lookup(s, t, w, &dist)) return dist;
    IntervalQueryResult result = compute();
    Insert(s, t, result);
    return result.dist;
  }

  /// Generation-safe variant for a cache shared across engine swaps: the
  /// lookup hits only entries certified by `expected_fingerprint`
  /// (LookupBound), and the insert is dropped unless the cache is still
  /// bound to it at insert time — an old-generation engine racing a swap
  /// can neither read nor poison the new generation's entries.
  template <typename ComputeFn>
  Distance GetOrCompute(Vertex s, Vertex t, Quality w,
                        uint64_t expected_fingerprint,
                        const ComputeFn& compute) {
    Distance dist;
    if (LookupBound(s, t, w, expected_fingerprint, &dist)) return dist;
    IntervalQueryResult result = compute();
    InsertBound(s, t, result, expected_fingerprint);
    return result.dist;
  }

  /// Stores the certified interval for (s, t). Degenerate results (the
  /// everywhere-valid interval of out-of-range queries) are cacheable like
  /// any other.
  void Insert(Vertex s, Vertex t, const IntervalQueryResult& result);

  /// Insert that checks the bound fingerprint under the shard mutex and
  /// silently drops on mismatch. Because Rebind/InvalidateDelta store the
  /// new fingerprint BEFORE sweeping the shards, a stale insert either
  /// lands before the sweep (and is swept) or observes the new fingerprint
  /// (and is dropped) — never survives into the new generation.
  void InsertBound(Vertex s, Vertex t, const IntervalQueryResult& result,
                   uint64_t expected_fingerprint);

  /// Drops every entry (counters survive).
  void Clear();

  ResultCacheStats stats() const;

  size_t num_shards() const { return num_shards_; }
  size_t slots_per_shard() const { return slots_per_shard_; }

  /// Bytes of slot storage actually allocated.
  size_t MemoryBytes() const;

 private:
  friend class SlotWriteSection;

  struct Interval {
    Quality w_lo;
    Quality w_hi;
    Distance dist;
  };

  /// One seqlock-protected slot. All reader-visible fields are atomics
  /// (relaxed accesses bracketed by the version protocol), so the lock-free
  /// read path is race-free by construction; `clock` is writer-only state
  /// touched exclusively under the shard mutex. 64 bytes, line-aligned.
  struct AtomicInterval {
    std::atomic<Quality> w_lo{0};
    std::atomic<Quality> w_hi{0};
    std::atomic<Distance> dist{0};
  };
  struct alignas(64) Slot {
    /// Seqlock: odd while a writer is mid-update; readers validate that
    /// the version is even and unchanged across their field reads.
    std::atomic<uint32_t> version{0};
    std::atomic<uint32_t> count{0};
    std::atomic<uint64_t> key;
    /// Index fingerprint this slot's intervals were certified by.
    std::atomic<uint64_t> fingerprint{0};
    AtomicInterval iv[kIntervalsPerSlot];
    uint32_t clock = 0;  // rotation point for interval replacement
  };

  /// Consistent copy of one slot's reader-visible state.
  struct SlotSnapshot {
    uint64_t key;
    uint64_t fingerprint;
    uint32_t count;
    Interval iv[kIntervalsPerSlot];
  };

  /// Cache-line aligned so two shards' mutexes never share a line. The
  /// mutex serializes writers only; hits/misses are atomics because the
  /// lock-free read path bumps them, the remaining counters are
  /// writer-owned under mu.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unique_ptr<Slot[]> slots;
    /// Second-chance tags: keys seen once whose admission is pending.
    std::unique_ptr<uint64_t[]> admit_once;
    uint32_t clock = 0;  // rotation point for slot replacement
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;
  };

  /// Seqlock-consistent read of one slot; false when `kSeqlockRetries`
  /// attempts raced writers (callers treat that as a miss).
  static bool ReadSlot(const Slot& slot, SlotSnapshot* out);

  /// Shared lock-free probe; `expected` non-null adds the per-slot
  /// fingerprint check (LookupBound).
  bool LookupImpl(Vertex s, Vertex t, Quality w, Distance* dist,
                  const uint64_t* expected);

  /// Shared insert path; `expected` non-null adds the fingerprint check
  /// under the shard mutex (InsertBound).
  void InsertImpl(Vertex s, Vertex t, const IntervalQueryResult& result,
                  const uint64_t* expected);

  /// High hash bits pick the shard, low bits the probe base inside it, so
  /// the two stay uncorrelated. num_shards_ and slots_per_shard_ are
  /// powers of two.
  Shard& ShardFor(uint64_t hash) const {
    return shards_[(hash >> 48) & (num_shards_ - 1)];
  }

  /// Heap-held array (mutexes are immovable); size num_shards_.
  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_ = 0;
  size_t slots_per_shard_ = 0;
  bool admission_ = true;

  /// fingerprint_ is atomic so InsertBound can check it under a shard
  /// mutex only; fingerprint_mu_ still serializes the writers
  /// (Rebind/InvalidateDelta) against each other.
  mutable std::mutex fingerprint_mu_;
  std::atomic<uint64_t> fingerprint_{0};
};

}  // namespace wcsd

#endif  // WCSD_SERVE_RESULT_CACHE_H_
