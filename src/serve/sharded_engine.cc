#include "serve/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace wcsd {

Result<ShardedQueryEngine> ShardedQueryEngine::OpenMmap(
    const std::vector<std::string>& shard_paths, QueryEngineOptions options,
    const SnapshotLoadOptions& load) {
  if (shard_paths.empty()) {
    return Status::InvalidArgument("no shard snapshots given");
  }
  ShardedQueryEngine engine;
  engine.options_ = options;
  for (const std::string& path : shard_paths) {
    Result<MappedSnapshot> snapshot = LoadSnapshotMmap(path, load);
    if (!snapshot.ok()) return snapshot.status();
    MappedSnapshot& mapped = snapshot.value();
    if (engine.shards_.empty()) {
      engine.num_vertices_ = mapped.info.num_vertices_total;
    } else if (engine.num_vertices_ != mapped.info.num_vertices_total) {
      return Status::InvalidArgument(
          "shard " + path + " belongs to a different index (vertex totals "
          "disagree)");
    }
    engine.shards_.push_back(Shard{mapped.info.vertex_begin,
                                   mapped.info.vertex_end,
                                   std::move(mapped.labels)});
  }
  // Sort by (begin, end) so an empty shard [x, x) lands before the
  // non-empty shard starting at x regardless of input order — otherwise
  // the tiling check below would flag a false overlap.
  std::sort(engine.shards_.begin(), engine.shards_.end(),
            [](const Shard& a, const Shard& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  uint64_t cursor = 0;
  for (const Shard& shard : engine.shards_) {
    if (shard.begin != cursor) {
      return Status::InvalidArgument(
          "shards do not tile the vertex range: gap or overlap at vertex " +
          std::to_string(cursor));
    }
    cursor = shard.end;
  }
  if (cursor != engine.num_vertices_) {
    return Status::InvalidArgument(
        "shards do not cover the full vertex range (end at " +
        std::to_string(cursor) + " of " +
        std::to_string(engine.num_vertices_) + ")");
  }
  engine.begins_.reserve(engine.shards_.size());
  for (const Shard& shard : engine.shards_) {
    engine.begins_.push_back(shard.begin);
  }
  size_t threads = ResolveServeThreads(options.num_threads);
  if (threads > 1) engine.pool_ = std::make_unique<ThreadPool>(threads);
  engine.stats_ = std::make_unique<ServeStatsBlock>(threads);
  return engine;
}

FlatLabelView ShardedQueryEngine::ViewOf(Vertex v) const {
  // Last shard whose begin <= v; ranges tile [0, n), so this shard holds v.
  size_t i = static_cast<size_t>(
      std::upper_bound(begins_.begin(), begins_.end(), v) - begins_.begin() -
      1);
  const Shard& shard = shards_[i];
  return shard.labels.View(static_cast<Vertex>(v - shard.begin));
}

Distance ShardedQueryEngine::QueryNoStats(Vertex s, Vertex t,
                                          Quality w) const {
  if (s >= num_vertices_ || t >= num_vertices_) return kInfDistance;
  if (s == t) return 0;
  return QueryFlat(ViewOf(s), ViewOf(t), w, options_.impl);
}

Distance ShardedQueryEngine::Query(Vertex s, Vertex t, Quality w) const {
  Distance d = QueryNoStats(s, t, w);
  stats_->RecordSingle(d);
  return d;
}

std::vector<Distance> ShardedQueryEngine::Batch(
    const std::vector<BatchQueryInput>& queries) const {
  return RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                       *stats_, queries, [&](const BatchQueryInput& q) {
                         return QueryNoStats(q.s, q.t, q.w);
                       });
}

}  // namespace wcsd
