#include "serve/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "search/constrained_dijkstra.h"
#include "util/checksum.h"

namespace wcsd {

namespace {

std::string RangeString(uint64_t begin, uint64_t end) {
  std::string out = "[";
  out += std::to_string(begin);
  out += ", ";
  out += std::to_string(end);
  out += ")";
  return out;
}

}  // namespace

Result<ShardedQueryEngine> ShardedQueryEngine::Assemble(
    std::vector<Shard> shards, uint64_t num_vertices,
    QueryEngineOptions options, std::optional<uint64_t> known_fingerprint) {
  ShardedQueryEngine engine;
  engine.options_ = options;
  engine.num_vertices_ = num_vertices;
  engine.shards_ = std::move(shards);
  // Sort by (begin, end) so an empty shard [x, x) lands before the
  // non-empty shard starting at x regardless of input order — otherwise
  // the tiling check below would flag a false overlap.
  std::sort(engine.shards_.begin(), engine.shards_.end(),
            [](const Shard& a, const Shard& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  uint64_t cursor = 0;
  for (size_t i = 0; i < engine.shards_.size(); ++i) {
    const Shard& shard = engine.shards_[i];
    if (shard.begin != cursor) {
      std::string message = "shards do not tile the vertex range: ";
      message += shard.begin > cursor ? "gap" : "overlap";
      message += " at vertex " + std::to_string(std::min(cursor, shard.begin));
      message += " — shard " + std::to_string(i) + " (" + shard.path + ")";
      message += " covers " + RangeString(shard.begin, shard.end);
      message += " but the range is tiled up to " + std::to_string(cursor);
      return Status::InvalidArgument(std::move(message));
    }
    cursor = shard.end;
  }
  if (cursor != engine.num_vertices_) {
    std::string message = "shards do not cover the full vertex range (end at ";
    message += std::to_string(cursor) + " of " +
               std::to_string(engine.num_vertices_);
    if (!engine.shards_.empty()) {
      const Shard& last = engine.shards_.back();
      message += "; last shard " +
                 std::to_string(engine.shards_.size() - 1) + " (" +
                 last.path + ") covers " + RangeString(last.begin, last.end);
    }
    message += ")";
    return Status::InvalidArgument(std::move(message));
  }
  engine.begins_.reserve(engine.shards_.size());
  for (const Shard& shard : engine.shards_) {
    engine.begins_.push_back(shard.begin);
    if (shard.quarantined) ++engine.num_quarantined_;
    if (shard.is_compressed) ++engine.num_compressed_;
  }
  size_t threads = ResolveServeThreads(options.num_threads);
  if (threads > 1) engine.pool_ = std::make_unique<ThreadPool>(threads);
  engine.stats_ = std::make_unique<ServeStatsBlock>(threads);
  if (options.decode_cache_bytes > 0 && engine.num_compressed_ > 0) {
    engine.decode_cache_ =
        std::make_shared<DecodedLabelCache>(options.decode_cache_bytes);
  }
  if (options.shared_cache || options.cache_bytes > 0) {
    engine.cache_fingerprint_ =
        known_fingerprint.has_value() ? *known_fingerprint
        : options.known_fingerprint != 0
            ? options.known_fingerprint
            : engine.ContentFingerprint();
    engine.cache_ = options.shared_cache
                        ? options.shared_cache
                        : std::make_shared<ResultCache>(options.cache_bytes);
    if (options.pre_bind_invalidate) {
      options.pre_bind_invalidate(engine.cache_fingerprint_);
    }
    // Unconditional (result_cache.h contract): no-op when the swap path
    // already invalidated for this fingerprint, a wholesale wipe when the
    // shared cache is still bound to a different snapshot.
    engine.cache_->Rebind(engine.cache_fingerprint_);
  }
  return engine;
}

uint64_t ShardedQueryEngine::ContentFingerprint() const {
  // Chain the per-shard CRCs in tiling order: CRC of a concatenation is
  // the CRC of its pieces chained, so this equals IndexContentFingerprint
  // of the unsharded index no matter where the cuts fall (the same
  // computation OpenManifest verifies against the manifest's fingerprint).
  const uint64_t n = num_vertices_;
  const uint32_t seed = Crc32c(&n, sizeof(n));
  uint32_t entries_crc = seed;
  uint32_t groups_crc = seed;
  for (const Shard& shard : shards_) {
    if (shard.is_compressed) {
      // Same chain through a per-vertex decode: HubGroup.begin is
      // vertex-relative, so the decoded slices concatenate to the raw
      // arrays byte for byte.
      if (!shard.compressed.ChainContentCrcs(&entries_crc, &groups_crc)) {
        return 0;
      }
      continue;
    }
    auto entries = shard.labels.raw_entries();
    auto groups = shard.labels.raw_groups();
    entries_crc = Crc32c(entries.data(), entries.size() * sizeof(LabelEntry),
                         entries_crc);
    groups_crc =
        Crc32c(groups.data(), groups.size() * sizeof(HubGroup), groups_crc);
  }
  return (uint64_t{groups_crc} << 32) | entries_crc;
}

Result<ShardedQueryEngine> ShardedQueryEngine::OpenMmap(
    const std::vector<std::string>& shard_paths, QueryEngineOptions options,
    const SnapshotLoadOptions& load) {
  if (shard_paths.empty()) {
    return Status::InvalidArgument("no shard snapshots given");
  }
  std::vector<Shard> shards;
  uint64_t num_vertices = 0;
  for (const std::string& path : shard_paths) {
    Result<MappedSnapshot> snapshot = LoadSnapshotMmap(path, load);
    if (!snapshot.ok()) return snapshot.status();
    MappedSnapshot& mapped = snapshot.value();
    if (shards.empty()) {
      num_vertices = mapped.info.num_vertices_total;
    } else if (num_vertices != mapped.info.num_vertices_total) {
      return Status::InvalidArgument(
          "shard " + path + " belongs to a different index (vertex totals "
          "disagree)");
    }
    Shard shard;
    shard.begin = mapped.info.vertex_begin;
    shard.end = mapped.info.vertex_end;
    shard.path = path;
    if (mapped.info.compressed) {
      shard.compressed = std::move(mapped.compressed);
      shard.is_compressed = true;
    } else {
      shard.labels = std::move(mapped.labels);
    }
    shards.push_back(std::move(shard));
  }
  return Assemble(std::move(shards), num_vertices, options);
}

Result<ShardedQueryEngine> ShardedQueryEngine::OpenManifest(
    const std::string& manifest_path, QueryEngineOptions options,
    const SnapshotLoadOptions& load, const DegradedOpenOptions& degraded) {
  // The manifest itself is never quarantined: it is the source of truth
  // for what the shard set should look like, and without it there is no
  // way to know which ranges a failed shard was supposed to cover.
  Result<ShardManifest> read = ReadShardManifest(manifest_path);
  if (!read.ok()) return read.status();
  const ShardManifest& manifest = read.value();
  WCSD_RETURN_NOT_OK(manifest.ValidateTiling());

  // Fingerprint recomputation chains the per-shard payload CRCs in tiling
  // order; ValidateTiling just proved the manifest order IS tiling order.
  const uint64_t n = manifest.num_vertices_total;
  const uint32_t crc_seed = Crc32c(&n, sizeof(n));
  uint32_t entries_crc = crc_seed;
  uint32_t groups_crc = crc_seed;

  std::vector<Shard> shards;
  size_t healthy = 0;
  // A quarantined shard's bytes are missing from the CRC chain, so the
  // whole-index fingerprint cross-check is only meaningful when every
  // shard loaded.
  bool fingerprint_complete = true;
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardManifestEntry& entry = manifest.shards[i];
    const std::string path = ResolveShardPath(manifest_path, entry.path);
    const std::string which =
        "shard " + std::to_string(i) + " (" + path + ")";
    Status failure = Status::OK();
    Result<MappedSnapshot> snapshot = LoadSnapshotMmap(path, load);
    if (!snapshot.ok()) {
      failure = Status(snapshot.status().code(),
                       "manifest " + manifest_path + ": " + which + ": " +
                           snapshot.status().message());
    } else {
      const MappedSnapshot& mapped = snapshot.value();
      if (mapped.info.num_vertices_total != manifest.num_vertices_total ||
          mapped.info.vertex_begin != entry.vertex_begin ||
          mapped.info.vertex_end != entry.vertex_end) {
        failure = Status::InvalidArgument(
            "manifest " + manifest_path + ": " + which + " covers " +
            RangeString(mapped.info.vertex_begin, mapped.info.vertex_end) +
            " of " + std::to_string(mapped.info.num_vertices_total) +
            " vertices but the manifest records " +
            RangeString(entry.vertex_begin, entry.vertex_end) + " of " +
            std::to_string(manifest.num_vertices_total));
      } else if (mapped.info.header_crc != entry.snapshot_header_crc) {
        failure = Status::Corruption(
            "manifest " + manifest_path + ": " + which +
            " is not the file the manifest was written for (snapshot header "
            "checksum mismatch)");
      } else {
        // Logical totals work for both backends: a compressed shard keeps
        // the logical offset arrays populated exactly so that counts
        // cross-check without a decode.
        const uint64_t entries = mapped.info.compressed
                                     ? mapped.compressed.TotalEntries()
                                     : mapped.labels.TotalEntries();
        const uint64_t groups = mapped.info.compressed
                                    ? mapped.compressed.TotalGroups()
                                    : mapped.labels.raw_groups().size();
        if (entries != entry.entry_count || groups != entry.group_count) {
          failure = Status::Corruption(
              "manifest " + manifest_path + ": " + which +
              " entry/group counts disagree with the manifest");
        }
      }
    }
    if (!failure.ok()) {
      if (!degraded.quarantine_failed_shards) return failure;
      // Degraded mode: remember the planned range so routing still works,
      // but serve nothing from it. The manifest's tiling survives, so
      // every other shard's queries are untouched.
      Shard quarantined;
      quarantined.begin = entry.vertex_begin;
      quarantined.end = entry.vertex_end;
      quarantined.path = path;
      quarantined.quarantined = true;
      shards.push_back(std::move(quarantined));
      fingerprint_complete = false;
      continue;
    }
    MappedSnapshot& mapped = snapshot.value();
    if (load.verify_checksums) {
      if (mapped.info.compressed) {
        if (!mapped.compressed.ChainContentCrcs(&entries_crc, &groups_crc)) {
          return Status::Corruption(
              "manifest " + manifest_path + ": " + which +
              " compressed labels fail to decode for fingerprinting");
        }
      } else {
        auto entry_bytes = mapped.labels.raw_entries();
        auto group_bytes = mapped.labels.raw_groups();
        entries_crc = Crc32c(entry_bytes.data(),
                             entry_bytes.size() * sizeof(LabelEntry),
                             entries_crc);
        groups_crc = Crc32c(group_bytes.data(),
                            group_bytes.size() * sizeof(HubGroup), groups_crc);
      }
    }
    Shard shard;
    shard.begin = entry.vertex_begin;
    shard.end = entry.vertex_end;
    shard.path = path;
    if (mapped.info.compressed) {
      shard.compressed = std::move(mapped.compressed);
      shard.is_compressed = true;
    } else {
      shard.labels = std::move(mapped.labels);
    }
    shards.push_back(std::move(shard));
    ++healthy;
  }
  if (healthy == 0) {
    return Status::Unavailable(
        "manifest " + manifest_path +
        ": every shard failed to load; refusing to serve an index that can "
        "answer nothing");
  }
  if (load.verify_checksums && fingerprint_complete) {
    const uint64_t fingerprint =
        (uint64_t{groups_crc} << 32) | entries_crc;
    if (fingerprint != manifest.fingerprint) {
      return Status::Corruption(
          "manifest " + manifest_path +
          ": shard contents do not match the recorded index fingerprint");
    }
  }
  Result<ShardedQueryEngine> assembled =
      Assemble(std::move(shards), manifest.num_vertices_total, options,
               manifest.fingerprint);
  if (!assembled.ok()) return assembled.status();
  ShardedQueryEngine engine = std::move(assembled).value();
  engine.fallback_graph_ = degraded.fallback_graph;
  return engine;
}

std::vector<ShardBalanceEntry> ShardedQueryEngine::ShardBalance() const {
  std::vector<ShardBalanceEntry> balance;
  balance.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    balance.push_back(ShardBalanceEntry{
        shard.begin, shard.end,
        shard.is_compressed ? shard.compressed.TotalEntries()
                            : shard.labels.TotalEntries(),
        shard.is_compressed ? shard.compressed.MemoryBytes()
                            : shard.labels.MemoryBytes(),
        shard.quarantined});
  }
  return balance;
}

FlatLabelView ShardedQueryEngine::ViewOf(Vertex v,
                                         DecodedLabel* scratch) const {
  // Last shard whose begin <= v; ranges tile [0, n), so this shard holds v.
  size_t i = static_cast<size_t>(
      std::upper_bound(begins_.begin(), begins_.end(), v) - begins_.begin() -
      1);
  const Shard& shard = shards_[i];
  const Vertex local = static_cast<Vertex>(v - shard.begin);
  if (!shard.is_compressed) return shard.labels.View(local);
  if (decode_cache_ != nullptr) {
    // Keyed by GLOBAL vertex id, so one cache serves every shard.
    if (!decode_cache_->GetOrDecode(shard.compressed, local, v, scratch)) {
      scratch->Clear();
    }
  } else if (!shard.compressed.DecodeVertex(local, scratch).ok()) {
    scratch->Clear();
  }
  return scratch->View();
}

bool ShardedQueryEngine::Unavailable(Vertex v) const {
  size_t i = static_cast<size_t>(
      std::upper_bound(begins_.begin(), begins_.end(), v) - begins_.begin() -
      1);
  return shards_[i].quarantined;
}

Distance ShardedQueryEngine::QueryNoStats(Vertex s, Vertex t,
                                          Quality w) const {
  if (s >= num_vertices_ || t >= num_vertices_) return kInfDistance;
  if (s == t) return 0;
  // Two scratch labels per thread: each endpoint's view must survive the
  // other's decode (flat shards never touch them).
  thread_local DecodedLabel ls, lt;
  if (cache_) {
    return cache_->GetOrCompute(s, t, w, cache_fingerprint_, [&] {
      return QueryFlatMergeWithInterval(ViewOf(s, &ls), ViewOf(t, &lt), w);
    });
  }
  return QueryFlat(ViewOf(s, &ls), ViewOf(t, &lt), w, options_.impl);
}

ServeOutcome ShardedQueryEngine::QueryExNoStats(Vertex s, Vertex t,
                                                Quality w,
                                                Distance* out) const {
  // Healthy engines never branch into the degraded path: the 2-hop query
  // stays exactly the pre-quarantine code, bit for bit.
  if (num_quarantined_ > 0 && s < num_vertices_ && t < num_vertices_ &&
      s != t && (Unavailable(s) || Unavailable(t))) {
    if (fallback_graph_ == nullptr) {
      *out = kInfDistance;
      return ServeOutcome::kShardUnavailable;
    }
    // Exact online fallback at graph-search cost. Not cached: the cache is
    // bound to the index fingerprint and fallback answers equal the
    // index's, but keeping the degraded path out of the cache makes its
    // behavior trivially reasoned about.
    *out = ConstrainedDijkstraUnit(*fallback_graph_, s, t, w);
    return ServeOutcome::kOk;
  }
  *out = QueryNoStats(s, t, w);
  return ServeOutcome::kOk;
}

QueryEngineStats ShardedQueryEngine::stats() const {
  QueryEngineStats stats =
      WithDecodeStats(WithCacheStats(stats_->Aggregate(), cache_.get()),
                      decode_cache_.get());
  stats.compressed = num_compressed_ > 0 ? 1 : 0;
  for (const Shard& shard : shards_) {
    if (shard.quarantined) continue;
    if (shard.is_compressed) {
      stats.label_bytes += shard.compressed.MemoryBytes();
      stats.uncompressed_label_bytes += shard.compressed.UncompressedBytes();
    } else {
      const size_t bytes = shard.labels.MemoryBytes();
      stats.label_bytes += bytes;
      stats.uncompressed_label_bytes += bytes;
    }
  }
  return stats;
}

Distance ShardedQueryEngine::Query(Vertex s, Vertex t, Quality w) const {
  Distance d = kInfDistance;
  QueryEx(s, t, w, &d);
  return d;
}

ServeOutcome ShardedQueryEngine::QueryEx(Vertex s, Vertex t, Quality w,
                                         Distance* out) const {
  ServeOutcome outcome = QueryExNoStats(s, t, w, out);
  if (outcome == ServeOutcome::kOk) {
    stats_->RecordSingle(*out);
  } else {
    stats_->RecordUnavailable(1);
  }
  return outcome;
}

std::vector<Distance> ShardedQueryEngine::Batch(
    const std::vector<BatchQueryInput>& queries) const {
  if (num_quarantined_ > 0 && fallback_graph_ == nullptr) {
    // Degraded without a fallback: route through BatchEx so refusals are
    // counted; legacy callers see kInfDistance for the refused batch.
    std::vector<Distance> results;
    if (BatchEx(queries, &results) != ServeOutcome::kOk) {
      results.assign(queries.size(), kInfDistance);
    }
    return results;
  }
  return RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                       *stats_, queries, [&](const BatchQueryInput& q) {
                         Distance d = kInfDistance;
                         QueryExNoStats(q.s, q.t, q.w, &d);
                         return d;
                       });
}

ServeOutcome ShardedQueryEngine::BatchEx(
    const std::vector<BatchQueryInput>& queries,
    std::vector<Distance>* out) const {
  out->clear();
  if (num_quarantined_ > 0 && fallback_graph_ == nullptr) {
    // Refuse the whole batch if any query needs a quarantined shard: a
    // distance vector with silently-wrong entries is worse than a clean
    // refusal the client can split or reroute.
    for (const BatchQueryInput& q : queries) {
      const bool in_range = q.s < num_vertices_ && q.t < num_vertices_;
      if (in_range && q.s != q.t && (Unavailable(q.s) || Unavailable(q.t))) {
        stats_->RecordUnavailable(queries.size());
        return ServeOutcome::kShardUnavailable;
      }
    }
  }
  *out = RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                       *stats_, queries, [&](const BatchQueryInput& q) {
                         Distance d = kInfDistance;
                         QueryExNoStats(q.s, q.t, q.w, &d);
                         return d;
                       });
  return ServeOutcome::kOk;
}

ServeOutcome ShardedQueryEngine::TopKEx(
    Vertex source, std::span<const Vertex> candidates, Quality w, size_t k,
    std::vector<RankedCandidate>* out) const {
  out->clear();
  if (num_quarantined_ > 0) {
    // Whole-request refusal, mirroring BatchEx: the reply has no per-
    // candidate error channel, and a ranking silently missing candidates
    // is worse than a clean refusal the client can route around.
    bool touched = source < num_vertices_ && Unavailable(source);
    for (size_t i = 0; !touched && i < candidates.size(); ++i) {
      const Vertex c = candidates[i];
      touched = c < num_vertices_ && c != source && Unavailable(c);
    }
    if (touched) {
      stats_->RecordUnavailable(candidates.size());
      return ServeOutcome::kShardUnavailable;
    }
  }
  // Ring of two scratch labels: the top-k kernel holds at most one
  // candidate's span alongside the source scan.
  thread_local DecodedLabel ring[2];
  thread_local unsigned next = 0;
  *out = TopKClosestOverLabels(
      num_vertices_, source, candidates, w, k, [&](Vertex v) {
        return ViewOf(v, &ring[next++ & 1]).entries;
      });
  stats_->RecordMany(candidates.size(), out->size());
  return ServeOutcome::kOk;
}

ServeOutcome ShardedQueryEngine::ProfileEx(
    Vertex s, Vertex t, std::span<const Quality> thresholds,
    std::vector<ProfilePoint>* out) const {
  out->clear();
  const bool in_range = s < num_vertices_ && t < num_vertices_;
  if (num_quarantined_ > 0 && in_range && s != t &&
      (Unavailable(s) || Unavailable(t))) {
    stats_->RecordUnavailable(thresholds.size());
    return ServeOutcome::kShardUnavailable;
  }
  thread_local DecodedLabel ls, lt;
  *out = QualityProfileOverIntervals(
      thresholds, [&](Quality w) -> IntervalQueryResult {
        // Degenerate pairs answer with the everywhere-constant interval,
        // the same guards WcIndex::QueryWithInterval applies.
        if (!in_range) return IntervalQueryResult{};
        if (s == t) return IntervalQueryResult{0, -kInfQuality, kInfQuality};
        return QueryFlatMergeWithInterval(ViewOf(s, &ls), ViewOf(t, &lt), w);
      });
  uint64_t reachable = 0;
  for (const ProfilePoint& p : *out) {
    if (p.dist != kInfDistance) ++reachable;
  }
  stats_->RecordMany(thresholds.size(), reachable);
  return ServeOutcome::kOk;
}

ServeOutcome ShardedQueryEngine::PathEx(Vertex s, Vertex t, Quality w,
                                        std::vector<Vertex>* out) const {
  out->clear();
  if (options_.graph == nullptr) return ServeOutcome::kNotSupported;
  const QualityGraph& g = *options_.graph;
  if (s >= num_vertices_ || t >= num_vertices_) {
    stats_->RecordSingle(kInfDistance);
    return ServeOutcome::kOk;
  }
  if (num_quarantined_ > 0 && (Unavailable(s) || Unavailable(t))) {
    stats_->RecordUnavailable(1);
    return ServeOutcome::kShardUnavailable;
  }
  if (s == t) {
    out->push_back(s);
    stats_->RecordSingle(0);
    return ServeOutcome::kOk;
  }
  const Distance total = QueryNoStats(s, t, w);
  stats_->RecordSingle(total);
  if (total == kInfDistance) return ServeOutcome::kOk;
  // Greedy index-guided stepping: at each vertex take any constraint-
  // satisfying neighbor exactly one step closer to t. Every step is a
  // fallback step — shard slices carry no parent quads.
  out->push_back(s);
  Vertex cur = s;
  Distance remaining = total;
  size_t steps = 0;
  while (remaining > 0) {
    Vertex next = kNullVertex;
    bool skipped_quarantined = false;
    for (const Arc& a : g.Neighbors(cur)) {
      if (a.quality < w) continue;
      if (a.to >= num_vertices_) continue;
      if (num_quarantined_ > 0 && Unavailable(a.to)) {
        skipped_quarantined = true;
        continue;
      }
      if (QueryNoStats(a.to, t, w) == remaining - 1) {
        next = a.to;
        break;
      }
    }
    ++steps;
    if (next == kNullVertex) {
      out->clear();
      stats_->RecordPathFallbacks(steps);
      if (skipped_quarantined) {
        // The only viable next hops were quarantined; the graph may still
        // have a path through them.
        stats_->RecordUnavailable(1);
        return ServeOutcome::kShardUnavailable;
      }
      // Index inconsistent with the graph; treat as unreachable.
      return ServeOutcome::kOk;
    }
    out->push_back(next);
    cur = next;
    --remaining;
  }
  stats_->RecordPathFallbacks(steps);
  return ServeOutcome::kOk;
}

}  // namespace wcsd
