#include "serve/query_engine.h"

#include <utility>

namespace wcsd {

QueryEngine::QueryEngine(std::shared_ptr<const WcIndex> index,
                         QueryEngineOptions options)
    : index_(std::move(index)), options_(options) {
  size_t threads = ResolveServeThreads(options_.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  stats_ = std::make_unique<ServeStatsBlock>(threads);
}

Result<QueryEngine> QueryEngine::Open(const std::string& snapshot_path,
                                      QueryEngineOptions options,
                                      const SnapshotLoadOptions& load) {
  Result<WcIndex> index = WcIndex::LoadMmap(snapshot_path, load);
  if (!index.ok()) return index.status();
  return QueryEngine(
      std::make_shared<const WcIndex>(std::move(index).value()), options);
}

Distance QueryEngine::Query(Vertex s, Vertex t, Quality w) const {
  Distance d = index_->Query(s, t, w, options_.impl);
  stats_->RecordSingle(d);
  return d;
}

std::vector<Distance> QueryEngine::Batch(
    const std::vector<BatchQueryInput>& queries) const {
  const WcIndex& index = *index_;
  const QueryImpl impl = options_.impl;
  return RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                       *stats_, queries, [&](const BatchQueryInput& q) {
                         return index.Query(q.s, q.t, q.w, impl);
                       });
}

}  // namespace wcsd
