#include "serve/query_engine.h"

#include <utility>

#include "core/path_index.h"
#include "labeling/shard_manifest.h"

namespace wcsd {

QueryEngine::QueryEngine(std::shared_ptr<const WcIndex> index,
                         QueryEngineOptions options)
    : index_(std::move(index)), options_(options) {
  size_t threads = ResolveServeThreads(options_.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  stats_ = std::make_unique<ServeStatsBlock>(threads);
  if (options_.decode_cache_bytes > 0 && index_->compressed()) {
    decode_cache_ =
        std::make_shared<DecodedLabelCache>(options_.decode_cache_bytes);
  }
  if ((options_.shared_cache || options_.cache_bytes > 0) &&
      index_->finalized()) {
    cache_fingerprint_ = options_.known_fingerprint != 0
                             ? options_.known_fingerprint
                             : index_->ContentFingerprint();
    cache_ = options_.shared_cache
                 ? options_.shared_cache
                 : std::make_shared<ResultCache>(options_.cache_bytes);
    if (options_.pre_bind_invalidate) {
      options_.pre_bind_invalidate(cache_fingerprint_);
    }
    // Unconditional, shared cache or not (the result_cache.h contract): a
    // no-op when the cache is already bound to this snapshot — in
    // particular after a swap coordinator's Rebind/InvalidateDelta — and a
    // wholesale wipe when it is bound to a different one, so a shared
    // cache attached without external invalidation can never serve stale
    // distances.
    cache_->Rebind(cache_fingerprint_);
  }
}

Result<QueryEngine> QueryEngine::Open(const std::string& snapshot_path,
                                      QueryEngineOptions options,
                                      const SnapshotLoadOptions& load) {
  Result<WcIndex> index = WcIndex::LoadMmap(snapshot_path, load);
  if (!index.ok()) return index.status();
  return QueryEngine(
      std::make_shared<const WcIndex>(std::move(index).value()), options);
}

FlatLabelView QueryEngine::CachedView(Vertex v, DecodedLabel* scratch) const {
  if (!decode_cache_->GetOrDecode(index_->compressed_labels(), v, v,
                                  scratch)) {
    scratch->Clear();
  }
  return scratch->View();
}

Distance QueryEngine::DirectQuery(Vertex s, Vertex t, Quality w) const {
  if (!decode_cache_) return index_->Query(s, t, w, options_.impl);
  const size_t n = index_->NumVertices();
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) return 0;
  thread_local DecodedLabel ls, lt;
  return QueryFlat(CachedView(s, &ls), CachedView(t, &lt), w, options_.impl);
}

IntervalQueryResult QueryEngine::DirectInterval(Vertex s, Vertex t,
                                                Quality w) const {
  if (!decode_cache_) return index_->QueryWithInterval(s, t, w);
  const size_t n = index_->NumVertices();
  if (s >= n || t >= n) return IntervalQueryResult{};
  if (s == t) return IntervalQueryResult{0, -kInfQuality, kInfQuality};
  thread_local DecodedLabel ls, lt;
  return QueryFlatMergeWithInterval(CachedView(s, &ls), CachedView(t, &lt),
                                    w);
}

Distance QueryEngine::CachedQuery(Vertex s, Vertex t, Quality w) const {
  // The guards mirror WcIndex::Query so degenerate queries never reach the
  // cache (their answers are free to recompute).
  const size_t n = index_->NumVertices();
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) return 0;
  return cache_->GetOrCompute(s, t, w, cache_fingerprint_, [&] {
    return DirectInterval(s, t, w);
  });
}

Distance QueryEngine::Query(Vertex s, Vertex t, Quality w) const {
  Distance d = cache_ ? CachedQuery(s, t, w) : DirectQuery(s, t, w);
  stats_->RecordSingle(d);
  return d;
}

std::vector<Distance> QueryEngine::Batch(
    const std::vector<BatchQueryInput>& queries) const {
  if (cache_) {
    return RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                         *stats_, queries, [&](const BatchQueryInput& q) {
                           return CachedQuery(q.s, q.t, q.w);
                         });
  }
  return RunServeBatch(pool_.get(), num_threads(), options_.min_chunk,
                       *stats_, queries, [&](const BatchQueryInput& q) {
                         return DirectQuery(q.s, q.t, q.w);
                       });
}

std::vector<RankedCandidate> QueryEngine::TopK(
    Vertex source, std::span<const Vertex> candidates, Quality w,
    size_t k) const {
  const WcIndex& index = *index_;
  std::vector<RankedCandidate> ranked;
  if (decode_cache_) {
    // Ring of two scratch labels, mirroring WcIndex::DecodedView: the
    // top-k kernel holds at most one candidate's span alongside the
    // source scan.
    thread_local DecodedLabel ring[2];
    thread_local unsigned next = 0;
    ranked = TopKClosestOverLabels(
        index.NumVertices(), source, candidates, w, k, [&](Vertex v) {
          return CachedView(v, &ring[next++ & 1]).entries;
        });
  } else {
    ranked = TopKClosestOverLabels(
        index.NumVertices(), source, candidates, w, k,
        [&index](Vertex v) { return index.EntriesFor(v); });
  }
  stats_->RecordMany(candidates.size(), ranked.size());
  return ranked;
}

std::vector<ProfilePoint> QueryEngine::Profile(
    Vertex s, Vertex t, std::span<const Quality> thresholds) const {
  std::vector<ProfilePoint> profile = QualityProfileOverIntervals(
      thresholds,
      [&](Quality w) { return DirectInterval(s, t, w); });
  uint64_t reachable = 0;
  for (const ProfilePoint& p : profile) {
    if (p.dist != kInfDistance) ++reachable;
  }
  stats_->RecordMany(thresholds.size(), reachable);
  return profile;
}

Result<std::vector<Vertex>> QueryEngine::Path(Vertex s, Vertex t,
                                              Quality w) const {
  if (options_.graph == nullptr) {
    return Status::Unimplemented(
        "path reconstruction needs the graph (QueryEngineOptions::graph); "
        "this engine serves distances only");
  }
  const size_t n = index_->NumVertices();
  if (s >= n || t >= n) {
    stats_->RecordSingle(kInfDistance);
    return std::vector<Vertex>{};
  }
  PathQueryStats path_stats;
  std::vector<Vertex> path =
      QueryConstrainedPath(*index_, *options_.graph, s, t, w, &path_stats);
  stats_->RecordSingle(path.empty() ? kInfDistance : 0);
  stats_->RecordPathFallbacks(path_stats.fallback_steps);
  return path;
}

QueryEngineStats QueryEngine::stats() const {
  QueryEngineStats stats =
      WithDecodeStats(WithCacheStats(stats_->Aggregate(), cache_.get()),
                      decode_cache_.get());
  stats.has_parents = index_->has_parents() ? 1 : 0;
  stats.compressed = index_->compressed() ? 1 : 0;
  stats.label_bytes = index_->MemoryBytes();
  stats.uncompressed_label_bytes =
      index_->compressed() ? index_->compressed_labels().UncompressedBytes()
                           : stats.label_bytes;
  return stats;
}

}  // namespace wcsd
