// Thread-safe serving engine over an immutable WC-INDEX snapshot.
//
// Construction-side code mutates labels; serving-side code must not. The
// QueryEngine encodes that boundary: it owns a shared_ptr<const WcIndex> —
// typically mmap-loaded via WcIndex::LoadMmap, so start-up is zero-copy —
// and answers single queries and batch workloads from any number of caller
// threads concurrently. Batches fan out over an internal ThreadPool in
// contiguous chunks (serve/batch_runner.h); each worker accumulates into
// its own cache-line-padded stats slot (the per-thread scratch), so the
// only cross-thread traffic on the hot path is the final relaxed
// aggregation.
//
// For indexes larger than one snapshot should hold, see
// serve/sharded_engine.h, which serves vertex-range shard snapshots as a
// single logical index with the same interface.

#ifndef WCSD_SERVE_QUERY_ENGINE_H_
#define WCSD_SERVE_QUERY_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/wc_index.h"
#include "labeling/query.h"
#include "serve/batch_runner.h"
#include "serve/decode_cache.h"
#include "serve/result_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace wcsd {

struct QueryEngineOptions {
  /// Worker threads for batch evaluation. 0 = hardware concurrency;
  /// 1 = no pool, batches run on the calling thread.
  size_t num_threads = 0;
  /// Query implementation used for every query (kMerge is the paper's
  /// Query+ and the fastest on every measured workload).
  QueryImpl impl = QueryImpl::kMerge;
  /// Smallest batch slice handed to one worker; bounds scheduling overhead
  /// on small batches.
  size_t min_chunk = 64;
  /// Byte budget for the dominance-aware result cache
  /// (serve/result_cache.h). 0 (the default) disables caching and leaves
  /// the query path exactly as before. When enabled, misses are answered
  /// by the interval-returning merge kernel — answers stay bit-identical
  /// for every `impl` (all four return the same distances) — and the
  /// engine computes IndexContentFingerprint at construction to bind the
  /// cache to the snapshot's identity (one full pass over the label
  /// bytes, which faults an mmap'd snapshot in; only paid when caching).
  size_t cache_bytes = 0;
  /// Externally owned cache shared across engine generations (the hot-swap
  /// serve path). When set (and the index is finalized) the engine uses it
  /// instead of creating its own; lookups and inserts are bound to this
  /// engine's fingerprint (stale generations can neither read nor poison
  /// the shared cache), and the engine Rebinds unconditionally at open —
  /// a no-op when a swap coordinator already invalidated (Rebind or
  /// InvalidateDelta with this engine's fingerprint, before construction),
  /// a wholesale wipe when the cache is still bound to a different
  /// snapshot. cache_bytes is ignored when set.
  std::shared_ptr<ResultCache> shared_cache;
  /// Pre-computed IndexContentFingerprint of the snapshot this engine will
  /// serve. When nonzero and caching is on, the construction-time label
  /// pass is skipped and this value is used verbatim — the swap path
  /// computes it once for InvalidateDelta and must not pay it twice. The
  /// caller owns its correctness; a wrong value breaks cache binding.
  uint64_t known_fingerprint = 0;
  /// Swap-coordinator hook: called with the engine's computed cache
  /// fingerprint after the cache is attached but BEFORE the engine's
  /// unconditional Rebind, while no queries flow through this engine yet.
  /// A scoped InvalidateDelta(fingerprint, ...) here rebinds the shared
  /// cache itself, making the engine's Rebind a no-op — surviving entries
  /// stay warm across the swap instead of being wholesale-wiped. Without
  /// the hook (or if it does not rebind), the Rebind wipes as usual.
  std::function<void(uint64_t fingerprint)> pre_bind_invalidate;
  /// Byte budget for the decoded-label cache (serve/decode_cache.h),
  /// used only when the index serves the compressed backend
  /// (WcIndex::compressed()): hot vertices' decoded labels stay resident
  /// so repeat queries skip the varint walk (and the cold-tier page-in).
  /// 0 (the default) decodes per query into thread-local scratch.
  /// Ignored on the flat backend.
  size_t decode_cache_bytes = 0;
  /// Graph backing constrained-path reconstruction (§V). Path endpoints
  /// need the graph even when the index carries parent quads: a mid-chain
  /// entry pruned during construction forces an index-guided neighbor
  /// step, which reads adjacency. Null (the default) leaves the distance
  /// endpoints untouched and makes Path report kNotSupported /
  /// Unimplemented. Must describe the graph the index was built from.
  std::shared_ptr<const QualityGraph> graph;
};

/// Folds a result cache's counters into engine-level stats; a null cache
/// leaves the cache_* fields zero. Shared by both engines.
inline QueryEngineStats WithCacheStats(QueryEngineStats stats,
                                       const ResultCache* cache) {
  if (cache != nullptr) {
    ResultCacheStats c = cache->stats();
    stats.cache_hits = c.hits;
    stats.cache_misses = c.misses;
    stats.cache_inserts = c.inserts;
    stats.cache_evictions = c.evictions;
  }
  return stats;
}

/// Same for the decoded-label cache's counters; shared by both engines.
inline QueryEngineStats WithDecodeStats(QueryEngineStats stats,
                                        const DecodedLabelCache* cache) {
  if (cache != nullptr) {
    DecodeCacheStats d = cache->stats();
    stats.decode_hits = d.hits;
    stats.decode_misses = d.misses;
    stats.cold_pageins = d.cold_pageins;
  }
  return stats;
}

class QueryEngine {
 public:
  /// Serves `index`, which must not be mutated for the engine's lifetime.
  explicit QueryEngine(std::shared_ptr<const WcIndex> index,
                       QueryEngineOptions options = {});

  /// Maps a snapshot (WcIndex::LoadMmap) and serves it.
  static Result<QueryEngine> Open(const std::string& snapshot_path,
                                  QueryEngineOptions options = {},
                                  const SnapshotLoadOptions& load = {});

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  /// One query. Callable from any thread.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Evaluates all queries; results are positionally aligned with the
  /// inputs. Chunks run across the engine's pool. Callable from any
  /// thread, including concurrently with other Batch calls on this engine.
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const;

  /// One-to-many top-k closest (core/batch.h TopKClosest semantics): the
  /// source's labels are scanned once, then each candidate costs one pass
  /// over its own labels. Counts candidates.size() queries in stats().
  std::vector<RankedCandidate> TopK(Vertex source,
                                    std::span<const Vertex> candidates,
                                    Quality w, size_t k) const;

  /// Quality profile for (s, t) at the given thresholds (core/batch.h
  /// QualityProfile semantics): one interval merge per distinct certified
  /// interval, not one per threshold. Positionally aligned with the input.
  std::vector<ProfilePoint> Profile(Vertex s, Vertex t,
                                    std::span<const Quality> thresholds) const;

  /// Constrained shortest path s -> t (core/path_index.h). Empty vector =
  /// unreachable (or an endpoint out of range). Requires options.graph;
  /// Unimplemented without it. Fallback unwind steps are aggregated into
  /// stats().path_fallbacks.
  Result<std::vector<Vertex>> Path(Vertex s, Vertex t, Quality w) const;

  /// True when options.graph was configured (Path can serve).
  bool has_graph() const { return options_.graph != nullptr; }

  const WcIndex& index() const { return *index_; }
  size_t num_threads() const { return pool_ ? pool_->size() : 1; }
  QueryEngineStats stats() const;

  /// The result cache, or null when options.cache_bytes == 0 (or the
  /// index is not finalized — the serving formats all are).
  const ResultCache* cache() const { return cache_.get(); }

  /// The decoded-label cache, or null unless the index serves the
  /// compressed backend with options.decode_cache_bytes > 0.
  const DecodedLabelCache* decode_cache() const { return decode_cache_.get(); }

  /// IndexContentFingerprint of the served snapshot when caching, 0
  /// otherwise. The swap coordinator feeds this to Rebind/InvalidateDelta.
  uint64_t cache_fingerprint() const { return cache_fingerprint_; }

 private:
  Distance CachedQuery(Vertex s, Vertex t, Quality w) const;
  /// The uncached query path: the index's own routing, or — with a decode
  /// cache — the flat kernels over cache-resident decodes.
  Distance DirectQuery(Vertex s, Vertex t, Quality w) const;
  IntervalQueryResult DirectInterval(Vertex s, Vertex t, Quality w) const;
  /// Decode-cache-backed view of L(v); only callable when decode_cache_.
  FlatLabelView CachedView(Vertex v, DecodedLabel* scratch) const;

  std::shared_ptr<const WcIndex> index_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  std::unique_ptr<ServeStatsBlock> stats_;
  std::shared_ptr<ResultCache> cache_;  // null when caching is off
  std::shared_ptr<DecodedLabelCache> decode_cache_;  // null unless cold tier
  uint64_t cache_fingerprint_ = 0;
};

}  // namespace wcsd

#endif  // WCSD_SERVE_QUERY_ENGINE_H_
