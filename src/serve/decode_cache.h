// Decoded-label cache for cold-tier serving of compressed snapshots.
//
// A compressed snapshot keeps label bytes on disk: the varint blob is an
// mmap'd section that pages in on first decode (the cold tier), and every
// query pays a streaming decode of both endpoints. This cache bounds that
// cost for skewed workloads by keeping the hot vertices' DECODED labels
// resident under a fixed byte budget — a hit copies the decoded arrays
// into caller scratch instead of re-walking the varint stream (and, for a
// genuinely cold page, instead of faulting it back in).
//
// Layout: striped hash maps, each stripe its own mutex — the decode path
// is heavyweight enough that a short critical section per lookup is noise,
// unlike the result cache's lock-free hot path. The byte budget is a hard
// bound, resolved by eviction (a CLOCK sweep over the stripe), never by
// growth.
//
// Admission mirrors the result cache's second-chance-on-first-touch policy
// (serve/result_cache.h): a vertex whose insert would require evicting
// resident labels is refused on first touch and admitted only when it
// comes back while its tag survives — one-off vertices in the tail of a
// skewed workload die in the tag table instead of flushing the hot set.
// Inserts that fit without displacement are always admitted.
//
// The cache stores plain decoded bytes keyed by a caller-chosen id (the
// GLOBAL vertex id, so a sharded engine can share one cache across
// shards). It is bound to one index for its lifetime — engines create it
// per open and never share it across generations, so no fingerprint
// protocol is needed.

#ifndef WCSD_SERVE_DECODE_CACHE_H_
#define WCSD_SERVE_DECODE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "labeling/compressed_flat.h"
#include "util/types.h"

namespace wcsd {

/// Monotonic counters. hits + misses = lookups; cold_pageins counts the
/// misses whose decode walked EXTERNAL (mmap-backed) label bytes — the
/// decodes that can fault cold pages in from disk; admission_rejects
/// counts first-touch inserts refused by the second-chance policy.
struct DecodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t admission_rejects = 0;
  uint64_t cold_pageins = 0;

  friend bool operator==(const DecodeCacheStats&,
                         const DecodeCacheStats&) = default;
};

class DecodedLabelCache {
 public:
  /// Stripes (power of two); each holds budget_bytes / kStripes.
  static constexpr size_t kStripes = 16;
  /// Second-chance tag slots per stripe (power of two).
  static constexpr size_t kAdmissionTags = 64;

  /// Budgets ~`budget_bytes` of decoded label storage across the stripes.
  explicit DecodedLabelCache(size_t budget_bytes);

  DecodedLabelCache(const DecodedLabelCache&) = delete;
  DecodedLabelCache& operator=(const DecodedLabelCache&) = delete;

  /// Decodes L(local) of `labels` into `out` through the cache, keyed by
  /// `key` (the global vertex id). A hit copies the resident arrays; a
  /// miss decodes from the compressed stream and offers the result for
  /// admission. Returns false (with `out` cleared) when the underlying
  /// decode fails — corrupt bytes at a load tier that skipped deep
  /// validation; failed decodes are never cached.
  bool GetOrDecode(const CompressedFlatLabelSet& labels, Vertex local,
                   uint64_t key, DecodedLabel* out);

  DecodeCacheStats stats() const;

  size_t budget_bytes() const { return budget_bytes_; }

  /// Decoded bytes currently resident (sum over stripes; racy-but-sane
  /// under concurrent use).
  size_t MemoryBytes() const;

 private:
  struct Entry {
    DecodedLabel label;
    /// CLOCK reference bit: set on every hit, cleared by an eviction
    /// sweep; an entry is evicted only when swept twice without a hit.
    bool referenced = false;
  };

  /// Cache-line aligned so two stripes' mutexes never share a line.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
    /// Second-chance tags: keys seen once whose admission is pending.
    uint64_t admit_once[kAdmissionTags] = {};
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;
    uint64_t cold_pageins = 0;
  };

  static size_t EntryBytes(const DecodedLabel& label);
  Stripe& StripeFor(uint64_t key) const;

  /// Heap-held array (mutexes are immovable); size kStripes.
  std::unique_ptr<Stripe[]> stripes_;
  size_t budget_bytes_ = 0;
  size_t stripe_budget_ = 0;
};

}  // namespace wcsd

#endif  // WCSD_SERVE_DECODE_CACHE_H_
