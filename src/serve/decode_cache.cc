#include "serve/decode_cache.h"

#include <algorithm>

namespace wcsd {

namespace {

// splitmix64: the keys are small dense vertex ids, so they need real
// mixing before the high bits pick a stripe.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

DecodedLabelCache::DecodedLabelCache(size_t budget_bytes)
    : stripes_(std::make_unique<Stripe[]>(kStripes)),
      budget_bytes_(budget_bytes),
      stripe_budget_(std::max<size_t>(1, budget_bytes / kStripes)) {}

size_t DecodedLabelCache::EntryBytes(const DecodedLabel& label) {
  // Decoded payload plus a flat charge for the map node and Entry
  // bookkeeping, so budgets stay honest on tiny labels.
  return label.entries.size() * sizeof(LabelEntry) +
         label.groups.size() * sizeof(HubGroup) + 96;
}

DecodedLabelCache::Stripe& DecodedLabelCache::StripeFor(uint64_t key) const {
  return stripes_[(MixKey(key) >> 48) & (kStripes - 1)];
}

bool DecodedLabelCache::GetOrDecode(const CompressedFlatLabelSet& labels,
                                    Vertex local, uint64_t key,
                                    DecodedLabel* out) {
  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.entries.find(key);
    if (it != stripe.entries.end()) {
      it->second.referenced = true;
      // Copy-out under the lock: assignment reuses the caller's scratch
      // capacity, so a steady-state hit allocates nothing.
      out->entries = it->second.label.entries;
      out->groups = it->second.label.groups;
      ++stripe.hits;
      return true;
    }
    ++stripe.misses;
    if (labels.external()) ++stripe.cold_pageins;
  }

  // Decode outside the lock — it may fault mmap'd pages in from disk, and
  // a page-in under a stripe mutex would serialize every cold vertex that
  // hashes alongside it.
  if (!labels.DecodeVertex(local, out).ok()) {
    out->Clear();
    return false;
  }

  const size_t cost = EntryBytes(*out);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.entries.find(key) != stripe.entries.end()) {
    return true;  // racing decode of the same vertex already landed
  }
  if (cost > stripe_budget_) return true;  // larger than the whole stripe
  if (stripe.bytes + cost > stripe_budget_) {
    // Displacement required: second-chance admission. First touch parks
    // the key in its tag slot and is refused; a comeback while the tag
    // survives is admitted.
    uint64_t& tag = stripe.admit_once[MixKey(key) & (kAdmissionTags - 1)];
    if (tag != key) {
      tag = key;
      ++stripe.admission_rejects;
      return true;
    }
    tag = 0;
    // CLOCK sweep: clear reference bits until enough unreferenced entries
    // have been evicted. Two passes bound the sweep (after one full pass
    // every bit is clear).
    for (int pass = 0; pass < 2 && stripe.bytes + cost > stripe_budget_;
         ++pass) {
      for (auto it = stripe.entries.begin();
           it != stripe.entries.end() && stripe.bytes + cost > stripe_budget_;) {
        if (it->second.referenced) {
          it->second.referenced = false;
          ++it;
          continue;
        }
        stripe.bytes -= EntryBytes(it->second.label);
        it = stripe.entries.erase(it);
        ++stripe.evictions;
      }
    }
    if (stripe.bytes + cost > stripe_budget_) return true;
  }
  Entry& entry = stripe.entries[key];
  entry.label.entries = out->entries;
  entry.label.groups = out->groups;
  entry.referenced = false;
  stripe.bytes += cost;
  ++stripe.inserts;
  return true;
}

DecodeCacheStats DecodedLabelCache::stats() const {
  DecodeCacheStats total;
  for (size_t i = 0; i < kStripes; ++i) {
    const Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mu);
    total.hits += stripe.hits;
    total.misses += stripe.misses;
    total.inserts += stripe.inserts;
    total.evictions += stripe.evictions;
    total.admission_rejects += stripe.admission_rejects;
    total.cold_pageins += stripe.cold_pageins;
  }
  return total;
}

size_t DecodedLabelCache::MemoryBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < kStripes; ++i) {
    const Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.bytes;
  }
  return total;
}

}  // namespace wcsd
