// Sharded serving: vertex-range shard snapshots as one logical index.
//
// A 2-hop labeling has a property that makes range sharding trivial to
// serve: a query (s, t, w) reads exactly two label slices, L(s) and L(t),
// and hubs are global ranks, so the slices intersect correctly no matter
// which files they came from. The engine maps one snapshot per shard
// (each written by WriteSnapshotShard, covering a contiguous vertex range)
// and routes each endpoint to its shard's mapping — one process can serve
// an index whose snapshots it would not want to hold as a single file, or
// page shards in and out via the OS with per-shard locality.
//
// Shards must tile [0, num_vertices_total) exactly; OpenMmap validates
// this and fails with a clean Status otherwise.

#ifndef WCSD_SERVE_SHARDED_ENGINE_H_
#define WCSD_SERVE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "labeling/flat_label_set.h"
#include "labeling/query.h"
#include "labeling/shard_manifest.h"
#include "labeling/snapshot.h"
#include "serve/batch_runner.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace wcsd {

/// One shard's static contribution to the stitched index, for balance
/// reporting (wire Stats, CLI, benches).
struct ShardBalanceEntry {
  uint64_t vertex_begin = 0;
  uint64_t vertex_end = 0;
  uint64_t entry_count = 0;
  uint64_t label_bytes = 0;  // CSR bytes served from this shard's mapping

  friend bool operator==(const ShardBalanceEntry&,
                         const ShardBalanceEntry&) = default;
};

class ShardedQueryEngine {
 public:
  /// Maps every shard snapshot and validates that together they tile the
  /// full vertex range of one logical index. Failure messages name the
  /// offending shard file and its (range-sorted) index.
  static Result<ShardedQueryEngine> OpenMmap(
      const std::vector<std::string>& shard_paths,
      QueryEngineOptions options = {}, const SnapshotLoadOptions& load = {});

  /// Opens a shard set through its manifest (labeling/shard_manifest.h):
  /// reads the manifest, validates its tiling, maps every referenced shard
  /// (paths resolved relative to the manifest), and cross-checks each
  /// file's header — vertex range, totals, entry counts, and the recorded
  /// snapshot header CRC — against the manifest. With `load.verify_checksums`
  /// additionally verifies every shard's section checksums and recomputes
  /// the index content fingerprint across the set. Every failure names the
  /// offending shard.
  static Result<ShardedQueryEngine> OpenManifest(
      const std::string& manifest_path, QueryEngineOptions options = {},
      const SnapshotLoadOptions& load = {});

  ShardedQueryEngine(ShardedQueryEngine&&) = default;
  ShardedQueryEngine& operator=(ShardedQueryEngine&&) = default;

  /// One query against the stitched index. Callable from any thread.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Batch evaluation across the engine's pool; results positionally
  /// aligned with the inputs. Callable concurrently from many threads.
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const;

  size_t NumVertices() const { return num_vertices_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return pool_ ? pool_->size() : 1; }
  QueryEngineStats stats() const;

  /// The result cache, or null when options.cache_bytes == 0.
  const ResultCache* cache() const { return cache_.get(); }

  /// Per-shard ranges and label mass, in tiling order. What the wire
  /// Stats frame reports as shard balance.
  std::vector<ShardBalanceEntry> ShardBalance() const;

 private:
  struct Shard {
    uint64_t begin;
    uint64_t end;
    FlatLabelSet labels;  // keeps its shard's mapping alive
    std::string path;     // where the mapping came from, for diagnostics
  };

  ShardedQueryEngine() = default;

  /// Sorts `shards`, validates the tiling (messages name the offending
  /// shard), and finishes construction. `num_vertices` is the logical
  /// index's total from the shard headers. `known_fingerprint` spares the
  /// cache's full-label-pass ContentFingerprint when the caller already
  /// holds the index identity (the manifest records it; its header CRC
  /// cross-checks prove the mapped files are the recorded ones).
  static Result<ShardedQueryEngine> Assemble(
      std::vector<Shard> shards, uint64_t num_vertices,
      QueryEngineOptions options,
      std::optional<uint64_t> known_fingerprint = std::nullopt);

  /// Label view of vertex v, routed to its shard.
  FlatLabelView ViewOf(Vertex v) const;
  Distance QueryNoStats(Vertex s, Vertex t, Quality w) const;

  /// The tiling-invariant content fingerprint of the stitched index —
  /// identical to IndexContentFingerprint of the unsharded flat labels and
  /// to the shard-set manifest's recorded fingerprint, however the range
  /// was cut. One pass over every shard's label bytes; only computed when
  /// the cache needs a snapshot identity to bind to.
  uint64_t ContentFingerprint() const;

  std::vector<Shard> shards_;       // sorted by begin, tiling [0, n)
  std::vector<uint64_t> begins_;    // shards_[i].begin, for binary search
  uint64_t num_vertices_ = 0;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ServeStatsBlock> stats_;
  std::unique_ptr<ResultCache> cache_;  // null when caching is off
};

}  // namespace wcsd

#endif  // WCSD_SERVE_SHARDED_ENGINE_H_
