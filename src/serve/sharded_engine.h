// Sharded serving: vertex-range shard snapshots as one logical index.
//
// A 2-hop labeling has a property that makes range sharding trivial to
// serve: a query (s, t, w) reads exactly two label slices, L(s) and L(t),
// and hubs are global ranks, so the slices intersect correctly no matter
// which files they came from. The engine maps one snapshot per shard
// (each written by WriteSnapshotShard, covering a contiguous vertex range)
// and routes each endpoint to its shard's mapping — one process can serve
// an index whose snapshots it would not want to hold as a single file, or
// page shards in and out via the OS with per-shard locality.
//
// Shards must tile [0, num_vertices_total) exactly; OpenMmap validates
// this and fails with a clean Status otherwise.
//
// Degraded mode: OpenManifest can optionally quarantine a shard that is
// missing or corrupt instead of failing the whole open. The engine then
// serves every query whose two label slices live in healthy shards
// bit-identically to the intact index (the 2-hop property again: a query
// touches exactly its endpoints' shards), while queries touching a
// quarantined range get a clean kShardUnavailable outcome — or, when a
// fallback graph is provided, an exact online ConstrainedDijkstraUnit
// answer at graph-search cost.

#ifndef WCSD_SERVE_SHARDED_ENGINE_H_
#define WCSD_SERVE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "labeling/compressed_flat.h"
#include "labeling/flat_label_set.h"
#include "labeling/query.h"
#include "labeling/shard_manifest.h"
#include "labeling/snapshot.h"
#include "serve/batch_runner.h"
#include "serve/decode_cache.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace wcsd {

class QualityGraph;

/// Outcome of serving one request against a possibly-degraded engine.
enum class ServeOutcome : uint8_t {
  kOk = 0,
  /// The request needs a label slice from a quarantined shard; no result
  /// was produced. Retrying the same engine will not help until the shard
  /// is repaired.
  kShardUnavailable = 1,
  /// The service cannot serve this request family at all (path
  /// reconstruction without a configured graph); retrying never helps.
  kNotSupported = 2,
};

/// One shard's static contribution to the stitched index, for balance
/// reporting (wire Stats, CLI, benches). A quarantined shard reports its
/// planned range with zero mass: its labels never loaded.
struct ShardBalanceEntry {
  uint64_t vertex_begin = 0;
  uint64_t vertex_end = 0;
  uint64_t entry_count = 0;
  uint64_t label_bytes = 0;  // CSR bytes served from this shard's mapping
  bool quarantined = false;

  friend bool operator==(const ShardBalanceEntry&,
                         const ShardBalanceEntry&) = default;
};

/// Degraded-mode policy for OpenManifest.
struct DegradedOpenOptions {
  /// When true, a shard that fails to load (missing file, corrupt header,
  /// checksum mismatch, manifest cross-check failure) is quarantined
  /// instead of failing the open: the engine starts without its labels and
  /// refuses only the queries that need them. At least one shard must
  /// load, and the manifest itself must be intact.
  bool quarantine_failed_shards = false;
  /// Optional online fallback: when set, queries touching a quarantined
  /// shard are answered exactly (but slowly) by ConstrainedDijkstraUnit on
  /// this graph instead of refused. The graph must outlive the engine.
  const QualityGraph* fallback_graph = nullptr;
};

class ShardedQueryEngine {
 public:
  /// Maps every shard snapshot and validates that together they tile the
  /// full vertex range of one logical index. Failure messages name the
  /// offending shard file and its (range-sorted) index.
  static Result<ShardedQueryEngine> OpenMmap(
      const std::vector<std::string>& shard_paths,
      QueryEngineOptions options = {}, const SnapshotLoadOptions& load = {});

  /// Opens a shard set through its manifest (labeling/shard_manifest.h):
  /// reads the manifest, validates its tiling, maps every referenced shard
  /// (paths resolved relative to the manifest), and cross-checks each
  /// file's header — vertex range, totals, entry counts, and the recorded
  /// snapshot header CRC — against the manifest. With `load.verify_checksums`
  /// additionally verifies every shard's section checksums and recomputes
  /// the index content fingerprint across the set. Every failure names the
  /// offending shard.
  static Result<ShardedQueryEngine> OpenManifest(
      const std::string& manifest_path, QueryEngineOptions options = {},
      const SnapshotLoadOptions& load = {},
      const DegradedOpenOptions& degraded = {});

  ShardedQueryEngine(ShardedQueryEngine&&) = default;
  ShardedQueryEngine& operator=(ShardedQueryEngine&&) = default;

  /// One query against the stitched index. Callable from any thread. In
  /// degraded mode, a query refused for a quarantined shard reports
  /// kInfDistance here — use QueryEx when the distinction matters.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Batch evaluation across the engine's pool; results positionally
  /// aligned with the inputs. Callable concurrently from many threads.
  /// Degraded-mode refusals report kInfDistance; use BatchEx to detect
  /// them.
  std::vector<Distance> Batch(
      const std::vector<BatchQueryInput>& queries) const;

  /// Outcome-reporting query: like Query, but a degraded-mode refusal is
  /// reported as kShardUnavailable instead of folded into kInfDistance.
  ServeOutcome QueryEx(Vertex s, Vertex t, Quality w, Distance* out) const;

  /// Outcome-reporting batch. A batch touching any quarantined range (with
  /// no fallback configured) is refused whole with kShardUnavailable and
  /// `out` left empty: distances are plain u32s on the wire with no
  /// per-query error channel, and a partially-trustworthy batch is worse
  /// than a clean refusal the client can route around.
  ServeOutcome BatchEx(const std::vector<BatchQueryInput>& queries,
                       std::vector<Distance>* out) const;

  /// One-to-many top-k closest against the stitched index (core/batch.h
  /// TopKClosest semantics; the source scan and per-candidate passes read
  /// each vertex's shard slice). Refused whole with kShardUnavailable when
  /// the source or ANY candidate lives in a quarantined shard — a ranking
  /// silently missing candidates is worse than a clean refusal — and the
  /// online Dijkstra fallback does not apply (it covers the distance
  /// endpoints only).
  ServeOutcome TopKEx(Vertex source, std::span<const Vertex> candidates,
                      Quality w, size_t k,
                      std::vector<RankedCandidate>* out) const;

  /// Quality profile for (s, t) (core/batch.h QualityProfile semantics):
  /// one interval merge per distinct certified interval. Refused with
  /// kShardUnavailable when either endpoint is quarantined (the interval
  /// kernel reads label slices; the Dijkstra fallback does not apply).
  ServeOutcome ProfileEx(Vertex s, Vertex t,
                         std::span<const Quality> thresholds,
                         std::vector<ProfilePoint>* out) const;

  /// Constrained shortest path via index-guided greedy stepping: shard
  /// slices carry no parent quads, so every step probes the neighbors of
  /// the current vertex for one whose remaining distance shrinks by one.
  /// Requires a graph (QueryEngineOptions::graph; kNotSupported without).
  /// Refused with kShardUnavailable when an endpoint — or every viable
  /// next hop of some step — is quarantined. Empty `out` with kOk =
  /// unreachable.
  ServeOutcome PathEx(Vertex s, Vertex t, Quality w,
                      std::vector<Vertex>* out) const;

  /// True when a path graph was configured (PathEx can serve).
  bool has_graph() const { return options_.graph != nullptr; }

  /// True when OpenManifest quarantined at least one shard.
  bool degraded() const { return num_quarantined_ > 0; }
  size_t num_quarantined() const { return num_quarantined_; }

  size_t NumVertices() const { return num_vertices_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return pool_ ? pool_->size() : 1; }
  QueryEngineStats stats() const;

  /// True when any shard serves the compressed label backend (shard files
  /// written under SnapshotWriteOptions::compress; mixed sets are fine —
  /// each shard serves from whatever backend its file carries).
  bool compressed() const { return num_compressed_ > 0; }

  /// The result cache, or null when options.cache_bytes == 0.
  const ResultCache* cache() const { return cache_.get(); }

  /// The decoded-label cache, or null unless a compressed shard is being
  /// served with options.decode_cache_bytes > 0. Shared across shards,
  /// keyed by global vertex id.
  const DecodedLabelCache* decode_cache() const { return decode_cache_.get(); }

  /// The stitched index's content fingerprint when caching, 0 otherwise.
  uint64_t cache_fingerprint() const { return cache_fingerprint_; }

  /// Per-shard ranges and label mass, in tiling order. What the wire
  /// Stats frame reports as shard balance.
  std::vector<ShardBalanceEntry> ShardBalance() const;

 private:
  struct Shard {
    uint64_t begin = 0;
    uint64_t end = 0;
    FlatLabelSet labels;  // keeps its shard's mapping alive; empty when
                          // quarantined or compressed
    std::string path;     // where the mapping came from, for diagnostics
    bool quarantined = false;
    /// Compressed (v3) shard files serve from here instead of `labels`;
    /// the set keeps the mapping alive the same way.
    CompressedFlatLabelSet compressed;
    bool is_compressed = false;
  };

  ShardedQueryEngine() = default;

  /// Sorts `shards`, validates the tiling (messages name the offending
  /// shard), and finishes construction. `num_vertices` is the logical
  /// index's total from the shard headers. `known_fingerprint` spares the
  /// cache's full-label-pass ContentFingerprint when the caller already
  /// holds the index identity (the manifest records it; its header CRC
  /// cross-checks prove the mapped files are the recorded ones).
  static Result<ShardedQueryEngine> Assemble(
      std::vector<Shard> shards, uint64_t num_vertices,
      QueryEngineOptions options,
      std::optional<uint64_t> known_fingerprint = std::nullopt);

  /// Label view of vertex v, routed to its shard. Must not be called for
  /// a vertex in a quarantined shard (callers check Unavailable first).
  /// A flat shard returns a view straight into its mapping (`scratch`
  /// untouched); a compressed shard decodes into `scratch` — through the
  /// decode cache when configured — and returns a view over it, so the
  /// view lives as long as the caller's scratch. A failed decode (corrupt
  /// bytes below the deep-validation tiers) yields an empty view, which
  /// answers like an unreachable vertex.
  FlatLabelView ViewOf(Vertex v, DecodedLabel* scratch) const;
  /// True when v's labels live in a quarantined shard.
  bool Unavailable(Vertex v) const;
  Distance QueryNoStats(Vertex s, Vertex t, Quality w) const;
  /// QueryEx without the per-query stats update (the batch path records
  /// per-chunk).
  ServeOutcome QueryExNoStats(Vertex s, Vertex t, Quality w,
                              Distance* out) const;

  /// The tiling-invariant content fingerprint of the stitched index —
  /// identical to IndexContentFingerprint of the unsharded flat labels and
  /// to the shard-set manifest's recorded fingerprint, however the range
  /// was cut. One pass over every shard's label bytes; only computed when
  /// the cache needs a snapshot identity to bind to.
  uint64_t ContentFingerprint() const;

  std::vector<Shard> shards_;       // sorted by begin, tiling [0, n)
  std::vector<uint64_t> begins_;    // shards_[i].begin, for binary search
  uint64_t num_vertices_ = 0;
  size_t num_quarantined_ = 0;
  size_t num_compressed_ = 0;
  const QualityGraph* fallback_graph_ = nullptr;  // not owned; may be null
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ServeStatsBlock> stats_;
  std::shared_ptr<ResultCache> cache_;  // null when caching is off
  std::shared_ptr<DecodedLabelCache> decode_cache_;  // null unless cold tier
  uint64_t cache_fingerprint_ = 0;
};

}  // namespace wcsd

#endif  // WCSD_SERVE_SHARDED_ENGINE_H_
