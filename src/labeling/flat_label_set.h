// Flat CSR label storage: the query-optimized backend for a finished index.
//
// LabelSet keeps one heap vector per vertex, which is the right shape while
// the index is under construction (per-vertex appends) but costs a pointer
// chase per label access and scatters entries across the heap. Once the
// index is frozen, FlatLabelSet packs every entry into ONE contiguous array
// with per-vertex offsets (the same CSR layout QualityGraph uses for
// adjacency), plus a per-vertex hub-group directory so query code can jump
// between hub groups without scanning 12-byte entries to find group
// boundaries: a directory element is 8 bytes, and locating a hub becomes a
// binary search over groups instead of over entries.
//
// The four CSR arrays are accessed through spans and can be backed either by
// heap vectors (FromLabelSet, Load) or by externally owned memory — in
// practice a read-only mmap of a snapshot file (labeling/snapshot.h), which
// makes serving start-up zero-copy: no per-entry deserialization, the
// kernel pages label data in on first touch. A shared keep-alive handle
// ties the backing storage's lifetime to every copy of the set.
//
// Layout invariants (inherited from LabelSet and checked by Validate):
//   * entries of one vertex are sorted by (hub rank asc, dist asc);
//   * the directory lists each vertex's distinct hubs in ascending rank,
//     with `begin` the entry offset of the group INSIDE the vertex's slice.

#ifndef WCSD_LABELING_FLAT_LABEL_SET_H_
#define WCSD_LABELING_FLAT_LABEL_SET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "labeling/label_set.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// One hub-group directory element: the hub's rank and the offset of its
/// first entry within the owning vertex's entry slice.
struct HubGroup {
  Rank hub;
  uint32_t begin;

  friend bool operator==(const HubGroup&, const HubGroup&) = default;
};

/// A vertex's label as seen by the flat query kernels: its contiguous
/// entries plus its hub-group directory. Group g spans entry offsets
/// [groups[g].begin, g + 1 < groups.size() ? groups[g+1].begin
///                                         : entries.size()).
struct FlatLabelView {
  std::span<const LabelEntry> entries;
  std::span<const HubGroup> groups;

  /// Entry offset one past the end of group g.
  size_t GroupEnd(size_t g) const {
    return g + 1 < groups.size() ? groups[g + 1].begin : entries.size();
  }
};

/// How much of a FlatLabelSet's structure Validate checks. Each level
/// includes the ones before it; the levels differ in which storage pages
/// they touch — the point of the tiering for mmap-backed sets, where a
/// validation read faults pages in.
enum class ValidateLevel {
  /// Array-shape consistency and offset monotonicity. O(vertices); touches
  /// only the two offset arrays. What every loader runs.
  kShape,
  /// + hub-directory bounds: every group's `begin` must stay inside its
  /// vertex's entry slice, ascend strictly, and carry ascending hub ranks.
  /// O(hub groups); touches the directory but never an entry page. Closes
  /// the crash window on corrupted group data (query kernels index entry
  /// slices by `begin`) while keeping entry pages lazy.
  kDirectory,
  /// + per-entry invariants (entries match their group's hub, distances
  /// ascend). O(entries); faults in everything. What loaders that read
  /// untrusted bytes run.
  kDeep,
};

/// Immutable CSR packing of a LabelSet.
class FlatLabelSet {
 public:
  FlatLabelSet() = default;

  /// Packs `labels` (which must satisfy the sortedness invariant).
  static FlatLabelSet FromLabelSet(const LabelSet& labels);

  /// Wraps externally owned CSR arrays without copying them — the zero-copy
  /// path for mmap'd snapshots. `keep_alive` (typically the mapping) is
  /// retained for the lifetime of this set and all copies of it. The caller
  /// is responsible for validation (see Validate).
  static FlatLabelSet FromExternal(std::span<const uint64_t> offsets,
                                   std::span<const LabelEntry> entries,
                                   std::span<const uint64_t> group_offsets,
                                   std::span<const HubGroup> groups,
                                   std::shared_ptr<const void> keep_alive);

  /// Unpacks into the append-oriented representation (round-trip tests,
  /// post-processing passes that need mutation).
  LabelSet ToLabelSet() const;

  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Entries of L(v), contiguous with every other vertex's.
  std::span<const LabelEntry> For(Vertex v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  /// L(v) plus its hub directory, for the flat query kernels.
  FlatLabelView View(Vertex v) const {
    return {For(v),
            {groups_.data() + group_offsets_[v],
             groups_.data() + group_offsets_[v + 1]}};
  }

  size_t TotalEntries() const { return entries_.size(); }

  /// Bytes of the four CSR arrays — the flat backend's "index size".
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(LabelEntry) +
           offsets_.size() * sizeof(uint64_t) +
           groups_.size() * sizeof(HubGroup) +
           group_offsets_.size() * sizeof(uint64_t);
  }

  /// True when the arrays live in externally owned memory (an mmap'd
  /// snapshot) rather than heap vectors.
  bool external() const { return external_; }

  /// Structural validation of the CSR arrays at the given level (see
  /// ValidateLevel). The mmap fast path runs kShape; the snapshot
  /// verify_level knob selects the deeper tiers.
  Status Validate(ValidateLevel level) const;

  /// Raw CSR arrays, in storage order. Used by the snapshot writer; query
  /// code should go through View.
  std::span<const uint64_t> raw_offsets() const { return offsets_; }
  std::span<const LabelEntry> raw_entries() const { return entries_; }
  std::span<const uint64_t> raw_group_offsets() const {
    return group_offsets_;
  }
  std::span<const HubGroup> raw_groups() const { return groups_; }

  /// Binary serialization (own magic; incompatible with LabelSet's format
  /// on purpose — the directory is part of the file). For the mmap'able
  /// page-aligned format see labeling/snapshot.h.
  Status Save(const std::string& path) const;
  static Result<FlatLabelSet> Load(const std::string& path);

  /// Content equality of the four arrays, regardless of backing storage.
  friend bool operator==(const FlatLabelSet& a, const FlatLabelSet& b);

 private:
  /// Heap backing for sets built in memory. Spans point into these vectors;
  /// shared ownership keeps them stable across copies.
  struct OwnedArrays {
    std::vector<uint64_t> offsets;
    std::vector<LabelEntry> entries;
    std::vector<uint64_t> group_offsets;
    std::vector<HubGroup> groups;
  };

  /// Points the spans at `owned`'s vectors and retains it.
  void Adopt(std::shared_ptr<const OwnedArrays> owned);

  std::span<const uint64_t> offsets_;        // n+1, into entries_
  std::span<const LabelEntry> entries_;      // all entries, vertex-major
  std::span<const uint64_t> group_offsets_;  // n+1, into groups_
  std::span<const HubGroup> groups_;         // per-vertex hub directories
  std::shared_ptr<const void> storage_;      // OwnedArrays or mmap handle
  bool external_ = false;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_FLAT_LABEL_SET_H_
