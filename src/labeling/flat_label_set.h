// Flat CSR label storage: the query-optimized backend for a finished index.
//
// LabelSet keeps one heap vector per vertex, which is the right shape while
// the index is under construction (per-vertex appends) but costs a pointer
// chase per label access and scatters entries across the heap. Once the
// index is frozen, FlatLabelSet packs every entry into ONE contiguous array
// with per-vertex offsets (the same CSR layout QualityGraph uses for
// adjacency), plus a per-vertex hub-group directory so query code can jump
// between hub groups without scanning 12-byte entries to find group
// boundaries: a directory element is 8 bytes, and locating a hub becomes a
// binary search over groups instead of over entries.
//
// Layout invariants (inherited from LabelSet and checked on Load):
//   * entries of one vertex are sorted by (hub rank asc, dist asc);
//   * the directory lists each vertex's distinct hubs in ascending rank,
//     with `begin` the entry offset of the group INSIDE the vertex's slice.

#ifndef WCSD_LABELING_FLAT_LABEL_SET_H_
#define WCSD_LABELING_FLAT_LABEL_SET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "labeling/label_set.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// One hub-group directory element: the hub's rank and the offset of its
/// first entry within the owning vertex's entry slice.
struct HubGroup {
  Rank hub;
  uint32_t begin;

  friend bool operator==(const HubGroup&, const HubGroup&) = default;
};

/// A vertex's label as seen by the flat query kernels: its contiguous
/// entries plus its hub-group directory. Group g spans entry offsets
/// [groups[g].begin, g + 1 < groups.size() ? groups[g+1].begin
///                                         : entries.size()).
struct FlatLabelView {
  std::span<const LabelEntry> entries;
  std::span<const HubGroup> groups;

  /// Entry offset one past the end of group g.
  size_t GroupEnd(size_t g) const {
    return g + 1 < groups.size() ? groups[g + 1].begin : entries.size();
  }
};

/// Immutable CSR packing of a LabelSet.
class FlatLabelSet {
 public:
  FlatLabelSet() = default;

  /// Packs `labels` (which must satisfy the sortedness invariant).
  static FlatLabelSet FromLabelSet(const LabelSet& labels);

  /// Unpacks into the append-oriented representation (round-trip tests,
  /// post-processing passes that need mutation).
  LabelSet ToLabelSet() const;

  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Entries of L(v), contiguous with every other vertex's.
  std::span<const LabelEntry> For(Vertex v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  /// L(v) plus its hub directory, for the flat query kernels.
  FlatLabelView View(Vertex v) const {
    return {For(v),
            {groups_.data() + group_offsets_[v],
             groups_.data() + group_offsets_[v + 1]}};
  }

  size_t TotalEntries() const { return entries_.size(); }

  /// Bytes of the four CSR arrays — the flat backend's "index size".
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(LabelEntry) +
           offsets_.size() * sizeof(uint64_t) +
           groups_.size() * sizeof(HubGroup) +
           group_offsets_.size() * sizeof(uint64_t);
  }

  /// Binary serialization (own magic; incompatible with LabelSet's format
  /// on purpose — the directory is part of the file).
  Status Save(const std::string& path) const;
  static Result<FlatLabelSet> Load(const std::string& path);

  friend bool operator==(const FlatLabelSet&, const FlatLabelSet&) = default;

 private:
  std::vector<uint64_t> offsets_;        // n+1, into entries_
  std::vector<LabelEntry> entries_;      // all label entries, vertex-major
  std::vector<uint64_t> group_offsets_;  // n+1, into groups_
  std::vector<HubGroup> groups_;         // per-vertex hub directories
};

}  // namespace wcsd

#endif  // WCSD_LABELING_FLAT_LABEL_SET_H_
