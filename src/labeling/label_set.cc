#include "labeling/label_set.h"

#include <cassert>
#include <fstream>

#include "util/endian.h"

namespace wcsd {

void LabelSet::Append(Vertex v, LabelEntry entry) {
  auto& lv = labels_[v];
  assert(lv.empty() || lv.back().hub < entry.hub ||
         (lv.back().hub == entry.hub && lv.back().dist <= entry.dist));
  lv.push_back(entry);
}

size_t LabelSet::TotalEntries() const {
  size_t total = 0;
  for (const auto& lv : labels_) total += lv.size();
  return total;
}

double LabelSet::AverageLabelSize() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(TotalEntries()) /
         static_cast<double>(labels_.size());
}

size_t LabelSet::MaxLabelSize() const {
  size_t max_size = 0;
  for (const auto& lv : labels_) max_size = std::max(max_size, lv.size());
  return max_size;
}

size_t LabelSet::MemoryBytes() const {
  return TotalEntries() * sizeof(LabelEntry) +
         labels_.size() * sizeof(std::vector<LabelEntry>);
}

bool LabelSet::IsSorted() const {
  for (const auto& lv : labels_) {
    for (size_t i = 1; i < lv.size(); ++i) {
      if (lv[i - 1].hub > lv[i].hub) return false;
      if (lv[i - 1].hub == lv[i].hub && lv[i - 1].dist > lv[i].dist) {
        return false;
      }
    }
  }
  return true;
}

namespace {
constexpr uint64_t kLabelMagic = 0x57435344'4c41424cULL;  // "WCSDLABL"
}  // namespace

Status LabelSet::Save(const std::string& path) const {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kLabelMagic), sizeof(kLabelMagic));
  uint64_t n = labels_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& lv : labels_) {
    uint64_t count = lv.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(lv.data()),
              static_cast<std::streamsize>(count * sizeof(LabelEntry)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<LabelSet> LabelSet::Load(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  // Counts are validated against the remaining file size before any
  // allocation, so corrupted count fields fail cleanly instead of raising
  // std::bad_alloc.
  uint64_t bytes_left = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint64_t magic = 0, n = 0;
  if (bytes_left < sizeof(magic) + sizeof(n)) {
    return Status::Corruption("truncated header in " + path);
  }
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kLabelMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::Corruption("truncated header in " + path);
  bytes_left -= sizeof(magic) + sizeof(n);
  if (n > bytes_left / sizeof(uint64_t)) {
    return Status::Corruption("vertex count exceeds file size in " + path);
  }
  LabelSet set(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t count = 0;
    if (bytes_left < sizeof(count)) {
      return Status::Corruption("truncated label count in " + path);
    }
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in) return Status::Corruption("truncated label count in " + path);
    bytes_left -= sizeof(count);
    if (count > bytes_left / sizeof(LabelEntry)) {
      return Status::Corruption("truncated label entries in " + path);
    }
    auto* lv = set.Mutable(static_cast<Vertex>(v));
    lv->resize(count);
    in.read(reinterpret_cast<char*>(lv->data()),
            static_cast<std::streamsize>(count * sizeof(LabelEntry)));
    if (!in) return Status::Corruption("truncated label entries in " + path);
    bytes_left -= count * sizeof(LabelEntry);
  }
  if (!set.IsSorted()) return Status::Corruption("unsorted labels in " + path);
  return set;
}

}  // namespace wcsd
