#include "labeling/lcr_adapt.h"

#include <algorithm>
#include <vector>

#include "graph/subgraph.h"
#include "labeling/pll.h"
#include "labeling/query.h"

namespace wcsd {

LcrAdaptIndex LcrAdaptIndex::Build(const QualityGraph& g) {
  const size_t n = g.NumVertices();
  // One global order shared by all passes so merged hub ranks agree.
  VertexOrder order = DegreeOrder(g);
  QualityPartition partition(g);

  // Accumulate raw entries: each level-l PLL entry becomes (hub, dist,
  // threshold_l).
  std::vector<std::vector<LabelEntry>> raw(n);
  for (size_t level = 0; level < partition.NumLevels(); ++level) {
    Quality threshold = partition.thresholds()[level];
    Pll pll = Pll::Build(partition.GraphAtLevel(level), order);
    for (Vertex v = 0; v < n; ++v) {
      for (const LabelEntry& e : pll.labels().For(v)) {
        raw[v].push_back(LabelEntry{e.hub, e.dist, threshold});
      }
    }
  }

  // Merge: sort by (hub asc, dist asc, quality desc) and keep the Pareto
  // frontier per hub group — an entry survives only if its quality strictly
  // exceeds every shorter-or-equal entry's quality (Def. 4 dominance).
  LabelSet labels(n);
  for (Vertex v = 0; v < n; ++v) {
    auto& entries = raw[v];
    std::sort(entries.begin(), entries.end(),
              [](const LabelEntry& a, const LabelEntry& b) {
                if (a.hub != b.hub) return a.hub < b.hub;
                if (a.dist != b.dist) return a.dist < b.dist;
                return a.quality > b.quality;
              });
    auto* lv = labels.Mutable(v);
    Rank current_hub = static_cast<Rank>(-1);
    Quality best_quality = 0;
    for (const LabelEntry& e : entries) {
      if (e.hub != current_hub) {
        current_hub = e.hub;
        best_quality = e.quality;
        lv->push_back(e);
        continue;
      }
      if (e.quality > best_quality) {
        best_quality = e.quality;
        lv->push_back(e);
      }
    }
  }
  return LcrAdaptIndex(std::move(labels), std::move(order));
}

Distance LcrAdaptIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  return QueryLabelsMerge(labels_.For(s), labels_.For(t), w);
}

}  // namespace wcsd
