#include "labeling/compressed_labels.h"

#include <algorithm>
#include <cassert>
#include <fstream>

#include "labeling/query.h"

namespace wcsd {

namespace {

constexpr uint32_t kInfQualityCode = 0xFFFFFFFFu;

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Bounds-checked varint read: never advances *pos past `end`. False on
/// truncation (the loader validates offsets_, but the byte payload itself
/// is untrusted — a corrupt stream must not read out of range).
bool GetVarint(const uint8_t* bytes, size_t* pos, size_t end,
               uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (*pos < end && shift < 64) {
    uint8_t b = bytes[(*pos)++];
    *value |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

}  // namespace

CompressedLabelSet CompressedLabelSet::Compress(const LabelSet& labels) {
  CompressedLabelSet out;

  // Build the quality dictionary from the labels themselves.
  std::vector<Quality> qualities;
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    for (const LabelEntry& e : labels.For(v)) {
      if (e.quality != kInfQuality) qualities.push_back(e.quality);
    }
  }
  std::sort(qualities.begin(), qualities.end());
  qualities.erase(std::unique(qualities.begin(), qualities.end()),
                  qualities.end());
  out.dictionary_ = std::move(qualities);

  auto code_of = [&out](Quality q) -> uint32_t {
    if (q == kInfQuality) return kInfQualityCode;
    auto it = std::lower_bound(out.dictionary_.begin(),
                               out.dictionary_.end(), q);
    assert(it != out.dictionary_.end() && *it == q);
    return static_cast<uint32_t>(it - out.dictionary_.begin());
  };

  out.offsets_.reserve(labels.NumVertices() + 1);
  out.offsets_.push_back(0);
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    auto lv = labels.For(v);
    PutVarint(&out.bytes_, lv.size());
    Rank prev_hub = 0;
    for (size_t i = 0; i < lv.size(); ++i) {
      // Hub delta (>= 0 by the sortedness invariant; 0 = same group).
      Rank delta = lv[i].hub - prev_hub;
      prev_hub = lv[i].hub;
      PutVarint(&out.bytes_, delta);
      PutVarint(&out.bytes_, lv[i].dist);
      uint32_t qcode = code_of(lv[i].quality);
      // +inf is frequent (one self entry per vertex): reserve code 0 for it
      // and shift dictionary codes by one, so it encodes as a single byte.
      PutVarint(&out.bytes_, qcode == kInfQualityCode ? 0 : qcode + 1);
    }
    out.offsets_.push_back(out.bytes_.size());
  }
  return out;
}

std::vector<LabelEntry> CompressedLabelSet::DecodeVertex(Vertex v) const {
  std::vector<LabelEntry> entries;
  if (v >= NumVertices()) return entries;
  // Clamp the slice to the payload: Load validates offsets_, but decode
  // must stay in bounds even against a corrupt (or hand-built) set.
  size_t pos = std::min<size_t>(offsets_[v], bytes_.size());
  const size_t end = std::min<size_t>(offsets_[v + 1], bytes_.size());
  uint64_t count = 0;
  if (!GetVarint(bytes_.data(), &pos, end, &count)) return entries;
  // A count larger than the slice could even hold is corrupt; don't let
  // it drive a huge reserve. Three varints per entry, one byte minimum.
  if (count > (end - pos) / 3 + 1) return entries;
  entries.reserve(static_cast<size_t>(count));
  Rank hub = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0, dist = 0, qcode = 0;
    if (!GetVarint(bytes_.data(), &pos, end, &delta) ||
        !GetVarint(bytes_.data(), &pos, end, &dist) ||
        !GetVarint(bytes_.data(), &pos, end, &qcode) ||
        qcode > dictionary_.size()) {
      entries.clear();
      return entries;
    }
    hub += static_cast<Rank>(delta);
    Quality quality = qcode == 0
                          ? kInfQuality
                          : dictionary_[static_cast<size_t>(qcode - 1)];
    entries.push_back(LabelEntry{hub, static_cast<Distance>(dist), quality});
  }
  return entries;
}

LabelSet CompressedLabelSet::Decompress() const {
  LabelSet labels(NumVertices());
  for (Vertex v = 0; v < NumVertices(); ++v) {
    *labels.Mutable(v) = DecodeVertex(v);
  }
  return labels;
}

Distance CompressedLabelSet::Query(Vertex s, Vertex t, Quality w) const {
  if (s >= NumVertices() || t >= NumVertices()) return kInfDistance;
  if (s == t) return 0;
  std::vector<LabelEntry> ls = DecodeVertex(s);
  std::vector<LabelEntry> lt = DecodeVertex(t);
  return QueryLabelsMerge({ls.data(), ls.size()}, {lt.data(), lt.size()}, w);
}

namespace {
constexpr uint64_t kCompressedMagic = 0x57435344'434f4d50ULL;  // "WCSDCOMP"
}  // namespace

Status CompressedLabelSet::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kCompressedMagic),
            sizeof(kCompressedMagic));
  uint64_t n = NumVertices();
  uint64_t dict = dictionary_.size();
  uint64_t payload = bytes_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&dict), sizeof(dict));
  out.write(reinterpret_cast<const char*>(&payload), sizeof(payload));
  out.write(reinterpret_cast<const char*>(dictionary_.data()),
            static_cast<std::streamsize>(dict * sizeof(Quality)));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>((n + 1) * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(payload));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<CompressedLabelSet> CompressedLabelSet::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0, dict = 0, payload = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kCompressedMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&dict), sizeof(dict));
  in.read(reinterpret_cast<char*>(&payload), sizeof(payload));
  if (!in) return Status::Corruption("truncated header in " + path);
  CompressedLabelSet set;
  set.dictionary_.resize(dict);
  set.offsets_.resize(n + 1);
  set.bytes_.resize(payload);
  in.read(reinterpret_cast<char*>(set.dictionary_.data()),
          static_cast<std::streamsize>(dict * sizeof(Quality)));
  in.read(reinterpret_cast<char*>(set.offsets_.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(set.bytes_.data()),
          static_cast<std::streamsize>(payload));
  if (!in) return Status::Corruption("truncated body in " + path);
  if (set.offsets_.front() != 0 || set.offsets_.back() != payload) {
    return Status::Corruption("inconsistent offsets in " + path);
  }
  // Every per-vertex byte range must stay inside the payload and ascend:
  // decode paths index bytes_ through these, so a corrupt table must fail
  // the load, not fan out into the decoders.
  for (size_t v = 0; v + 1 < set.offsets_.size(); ++v) {
    if (set.offsets_[v] > set.offsets_[v + 1] ||
        set.offsets_[v + 1] > payload) {
      return Status::Corruption("non-monotone offsets in " + path);
    }
  }
  for (size_t i = 0; i + 1 < set.dictionary_.size(); ++i) {
    if (!(set.dictionary_[i] < set.dictionary_[i + 1])) {
      return Status::Corruption("unsorted quality dictionary in " + path);
    }
  }
  return set;
}

}  // namespace wcsd
