#include "labeling/compressed_labels.h"

#include <algorithm>
#include <cassert>
#include <fstream>

#include "labeling/query.h"

namespace wcsd {

namespace {

constexpr uint32_t kInfQualityCode = 0xFFFFFFFFu;

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint64_t GetVarint(const uint8_t* bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    uint8_t b = bytes[(*pos)++];
    value |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

}  // namespace

CompressedLabelSet CompressedLabelSet::Compress(const LabelSet& labels) {
  CompressedLabelSet out;

  // Build the quality dictionary from the labels themselves.
  std::vector<Quality> qualities;
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    for (const LabelEntry& e : labels.For(v)) {
      if (e.quality != kInfQuality) qualities.push_back(e.quality);
    }
  }
  std::sort(qualities.begin(), qualities.end());
  qualities.erase(std::unique(qualities.begin(), qualities.end()),
                  qualities.end());
  out.dictionary_ = std::move(qualities);

  auto code_of = [&out](Quality q) -> uint32_t {
    if (q == kInfQuality) return kInfQualityCode;
    auto it = std::lower_bound(out.dictionary_.begin(),
                               out.dictionary_.end(), q);
    assert(it != out.dictionary_.end() && *it == q);
    return static_cast<uint32_t>(it - out.dictionary_.begin());
  };

  out.offsets_.reserve(labels.NumVertices() + 1);
  out.offsets_.push_back(0);
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    auto lv = labels.For(v);
    PutVarint(&out.bytes_, lv.size());
    Rank prev_hub = 0;
    for (size_t i = 0; i < lv.size(); ++i) {
      // Hub delta (>= 0 by the sortedness invariant; 0 = same group).
      Rank delta = lv[i].hub - prev_hub;
      prev_hub = lv[i].hub;
      PutVarint(&out.bytes_, delta);
      PutVarint(&out.bytes_, lv[i].dist);
      uint32_t qcode = code_of(lv[i].quality);
      // +inf is frequent (one self entry per vertex): reserve code 0 for it
      // and shift dictionary codes by one, so it encodes as a single byte.
      PutVarint(&out.bytes_, qcode == kInfQualityCode ? 0 : qcode + 1);
    }
    out.offsets_.push_back(out.bytes_.size());
  }
  return out;
}

std::vector<LabelEntry> CompressedLabelSet::DecodeVertex(Vertex v) const {
  std::vector<LabelEntry> entries;
  size_t pos = offsets_[v];
  size_t count = GetVarint(bytes_.data(), &pos);
  entries.reserve(count);
  Rank hub = 0;
  for (size_t i = 0; i < count; ++i) {
    hub += static_cast<Rank>(GetVarint(bytes_.data(), &pos));
    Distance dist = static_cast<Distance>(GetVarint(bytes_.data(), &pos));
    uint64_t qcode = GetVarint(bytes_.data(), &pos);
    Quality quality = qcode == 0
                          ? kInfQuality
                          : dictionary_[static_cast<size_t>(qcode - 1)];
    entries.push_back(LabelEntry{hub, dist, quality});
  }
  return entries;
}

LabelSet CompressedLabelSet::Decompress() const {
  LabelSet labels(NumVertices());
  for (Vertex v = 0; v < NumVertices(); ++v) {
    *labels.Mutable(v) = DecodeVertex(v);
  }
  return labels;
}

Distance CompressedLabelSet::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  std::vector<LabelEntry> ls = DecodeVertex(s);
  std::vector<LabelEntry> lt = DecodeVertex(t);
  return QueryLabelsMerge({ls.data(), ls.size()}, {lt.data(), lt.size()}, w);
}

namespace {
constexpr uint64_t kCompressedMagic = 0x57435344'434f4d50ULL;  // "WCSDCOMP"
}  // namespace

Status CompressedLabelSet::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kCompressedMagic),
            sizeof(kCompressedMagic));
  uint64_t n = NumVertices();
  uint64_t dict = dictionary_.size();
  uint64_t payload = bytes_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&dict), sizeof(dict));
  out.write(reinterpret_cast<const char*>(&payload), sizeof(payload));
  out.write(reinterpret_cast<const char*>(dictionary_.data()),
            static_cast<std::streamsize>(dict * sizeof(Quality)));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>((n + 1) * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(payload));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<CompressedLabelSet> CompressedLabelSet::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0, dict = 0, payload = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kCompressedMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&dict), sizeof(dict));
  in.read(reinterpret_cast<char*>(&payload), sizeof(payload));
  if (!in) return Status::Corruption("truncated header in " + path);
  CompressedLabelSet set;
  set.dictionary_.resize(dict);
  set.offsets_.resize(n + 1);
  set.bytes_.resize(payload);
  in.read(reinterpret_cast<char*>(set.dictionary_.data()),
          static_cast<std::streamsize>(dict * sizeof(Quality)));
  in.read(reinterpret_cast<char*>(set.offsets_.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(uint64_t)));
  in.read(reinterpret_cast<char*>(set.bytes_.data()),
          static_cast<std::streamsize>(payload));
  if (!in) return Status::Corruption("truncated body in " + path);
  if (set.offsets_.front() != 0 || set.offsets_.back() != payload) {
    return Status::Corruption("inconsistent offsets in " + path);
  }
  return set;
}

}  // namespace wcsd
