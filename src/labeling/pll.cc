#include "labeling/pll.h"

#include <vector>

#include "util/epoch_array.h"

namespace wcsd {

Pll Pll::Build(const QualityGraph& g, VertexOrder order) {
  const size_t n = g.NumVertices();
  LabelSet labels(n);

  // tentative[h] = distance from the current root to hub h, for every hub in
  // the root's own label; rebuilt per root in O(|L(root)|). This is the
  // standard O(|L(u)|)-per-prune-query trick.
  EpochArray<Distance> tentative(n, kInfDistance);
  EpochArray<bool> visited(n, false);
  std::vector<Vertex> queue;
  queue.reserve(n);

  for (Rank k = 0; k < n; ++k) {
    Vertex root = order.VertexAt(k);
    tentative.Clear();
    for (const LabelEntry& e : labels.For(root)) {
      tentative.Set(e.hub, e.dist);
    }

    visited.Clear();
    queue.clear();
    queue.push_back(root);
    visited.Set(root, true);
    Distance d = 0;
    size_t level_begin = 0;
    while (level_begin < queue.size()) {
      size_t level_end = queue.size();
      for (size_t i = level_begin; i < level_end; ++i) {
        Vertex u = queue[i];
        // Prune if some hub already certifies dist(root, u) <= d.
        bool covered = false;
        for (const LabelEntry& e : labels.For(u)) {
          Distance via = tentative.Get(e.hub);
          if (via != kInfDistance && via + e.dist <= d) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        labels.Append(u, LabelEntry{k, d, kInfQuality});
        for (const Arc& a : g.Neighbors(u)) {
          if (order.RankOf(a.to) <= k || visited.Get(a.to)) continue;
          visited.Set(a.to, true);
          queue.push_back(a.to);
        }
      }
      level_begin = level_end;
      ++d;
    }
  }
  return Pll(std::move(labels), std::move(order));
}

Distance Pll::Query(Vertex s, Vertex t) const {
  if (s == t) return 0;
  auto ls = labels_.For(s);
  auto lt = labels_.For(t);
  Distance best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (ls[i].hub > lt[j].hub) {
      ++j;
    } else {
      Distance sum = ls[i].dist + lt[j].dist;
      if (sum < best) best = sum;
      ++i;
      ++j;
    }
  }
  return best;
}

}  // namespace wcsd
