#include "labeling/snapshot.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/endian.h"
#include "util/failpoint.h"
#include "util/mmap_file.h"

namespace wcsd {

namespace {

// On-disk widths the format is defined in terms of. If one of these ever
// changes, the version must be bumped and a migration written.
static_assert(sizeof(Vertex) == 4);
static_assert(sizeof(LabelEntry) == 12);
static_assert(sizeof(HubGroup) == 8);
static_assert(sizeof(Quality) == 4);

constexpr uint64_t kSnapshotMagic = 0x57435344'534e4150ULL;  // "WCSDSNAP"
constexpr uint64_t kPageSize = 4096;
constexpr uint32_t kFlagHasOrder = 1u << 0;
constexpr uint32_t kFlagHasParents = 1u << 1;   // v2 and later
constexpr uint32_t kFlagCompressed = 1u << 2;   // v3 and later

enum SectionId : size_t {
  kSectionOrder = 0,
  kSectionOffsets = 1,
  kSectionEntries = 2,
  kSectionGroupOffsets = 3,
  kSectionGroups = 4,
  kSectionParents = 5,      // v2+; absent from the v1 section table
  kSectionCompOffsets = 6,  // v3+; per-vertex byte offsets into the blob
  kSectionBlob = 7,         // v3+; delta/varint label streams
  kSectionDict = 8,         // v3+; sorted distinct finite qualities
  kNumSections = 9,
};
constexpr size_t kNumSectionsV1 = 5;
constexpr size_t kNumSectionsV2 = 6;

constexpr uint64_t kSectionElemSize[kNumSections] = {
    sizeof(Vertex),   sizeof(uint64_t), sizeof(LabelEntry),
    sizeof(uint64_t), sizeof(HubGroup), sizeof(Vertex),
    sizeof(uint64_t), sizeof(uint8_t),  sizeof(Quality)};

struct SectionDesc {
  uint64_t file_offset;
  uint64_t byte_length;
  uint64_t element_count;
  uint32_t crc32c;
  uint32_t reserved;
};
static_assert(sizeof(SectionDesc) == 32);

// The on-disk header layouts share every field; they differ only in the
// section-table length (and therefore where header_crc sits). v1 files —
// everything written before the parents section existed, and every
// parent-less uncompressed file written since — use the 5-entry table;
// v2 adds the parents slot, v3 the three compressed-label slots.
template <size_t N>
struct SnapshotHeaderT {
  uint64_t magic;
  uint32_t version;
  uint32_t flags;
  uint64_t num_vertices_total;
  uint64_t vertex_begin;
  uint64_t vertex_end;
  uint64_t section_count;
  SectionDesc sections[N];
  uint32_t header_crc;  // CRC-32C of the bytes preceding this field
};
using SnapshotHeaderV1 = SnapshotHeaderT<kNumSectionsV1>;
using SnapshotHeaderV2 = SnapshotHeaderT<kNumSectionsV2>;
// The in-memory canonical form is the v3 layout; older files are widened
// on parse (absent sections zeroed).
using SnapshotHeader = SnapshotHeaderT<kNumSections>;
static_assert(offsetof(SnapshotHeaderV1, header_crc) == 208);
static_assert(offsetof(SnapshotHeaderV2, header_crc) == 240);
static_assert(offsetof(SnapshotHeader, header_crc) == 336);
static_assert(sizeof(SnapshotHeader) <= kPageSize);

uint64_t AlignUp(uint64_t x) { return (x + kPageSize - 1) & ~(kPageSize - 1); }

struct SectionData {
  const void* data;
  uint64_t element_count;
};

// Lays out the sections page-aligned after the header, fills the section
// table (offsets, lengths, checksums), and writes the file with the given
// header layout (v1 or v2).
template <size_t N>
Status WriteSnapshotFileT(const std::string& path, uint32_t version,
                          SnapshotHeaderT<N> header,
                          const SectionData (&sections)[kNumSections]) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  uint64_t cursor = kPageSize;
  for (size_t s = 0; s < N; ++s) {
    SectionDesc& desc = header.sections[s];
    desc.element_count = sections[s].element_count;
    desc.byte_length = sections[s].element_count * kSectionElemSize[s];
    desc.file_offset = cursor;
    desc.crc32c = Crc32c(sections[s].data, desc.byte_length);
    desc.reserved = 0;
    cursor += AlignUp(desc.byte_length);
  }
  header.magic = kSnapshotMagic;
  header.version = version;
  header.section_count = N;
  header.header_crc =
      Crc32c(&header, offsetof(SnapshotHeaderT<N>, header_crc));

  // Crash-safe replacement: everything lands in a temp file, and the
  // target path only ever changes at Commit's atomic rename — a crash (or
  // injected fault) at ANY point leaves the old snapshot intact. The
  // failpoints below let tests pin a fault to a specific write.
  Result<AtomicFileWriter> opened = AtomicFileWriter::Open(path);
  if (!opened.ok()) return opened.status();
  AtomicFileWriter writer = std::move(opened).value();
  {
    FailpointResult fp = WCSD_FAILPOINT("snapshot.write.header");
    if (fp.action == FailpointAction::kError) {
      return Status::IoError("injected fault writing header of " + path);
    }
  }
  char page[kPageSize] = {};
  std::memcpy(page, &header, sizeof(header));
  WCSD_RETURN_NOT_OK(writer.Write(page, kPageSize));
  for (size_t s = 0; s < N; ++s) {
    const SectionDesc& desc = header.sections[s];
    if (desc.byte_length == 0) continue;
    FailpointResult fp = WCSD_FAILPOINT("snapshot.write.section");
    if (fp.action == FailpointAction::kError) {
      return Status::IoError("injected fault writing section of " + path);
    }
    // Positional writes past EOF leave a zero-filled gap — the
    // inter-section padding.
    WCSD_RETURN_NOT_OK(writer.WriteAt(desc.file_offset, sections[s].data,
                                      desc.byte_length));
  }
  return writer.Commit();
}

// Picks the smallest header layout that can carry the payload: v1 when
// neither parents nor compressed sections are present, v2 with parents
// only, v3 for compressed files. Keeps every older payload byte-identical
// to the format it has always been written in.
Status WriteSnapshotFile(const std::string& path, const SnapshotHeader& header,
                         const SectionData (&sections)[kNumSections]) {
  if (sections[kSectionCompOffsets].element_count != 0) {
    SnapshotHeader v3 = header;
    v3.flags |= kFlagCompressed;
    return WriteSnapshotFileT(path, /*version=*/kSnapshotVersion, v3,
                              sections);
  }
  if (sections[kSectionParents].element_count == 0) {
    SnapshotHeaderV1 v1 = {};
    v1.flags = header.flags & ~kFlagHasParents;
    v1.num_vertices_total = header.num_vertices_total;
    v1.vertex_begin = header.vertex_begin;
    v1.vertex_end = header.vertex_end;
    return WriteSnapshotFileT(path, /*version=*/1, v1, sections);
  }
  SnapshotHeaderV2 v2 = {};
  v2.flags = header.flags | kFlagHasParents;
  v2.num_vertices_total = header.num_vertices_total;
  v2.vertex_begin = header.vertex_begin;
  v2.vertex_end = header.vertex_end;
  return WriteSnapshotFileT(path, /*version=*/2, v2, sections);
}

Result<SnapshotHeader> ParseHeader(const std::byte* data, size_t size,
                                   const std::string& path) {
  if (size < kPageSize) {
    return Status::Corruption("truncated snapshot header in " + path);
  }
  // The magic/version prefix is layout-invariant; everything after it
  // depends on the version's section-table length.
  uint64_t magic;
  uint32_t version;
  std::memcpy(&magic, data, sizeof(magic));
  std::memcpy(&version, data + sizeof(magic), sizeof(version));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  if (version != 1 && version != 2 && version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version) + " in " + path);
  }
  // Widens an older header to the canonical layout (absent sections stay
  // zeroed: element_count 0 == absent) after verifying its own CRC and
  // section-table length, and rejecting flags the version cannot carry.
  SnapshotHeader header = {};
  auto widen = [&](auto narrow, size_t expect_sections,
                   uint32_t allowed_flags) -> Status {
    std::memcpy(&narrow, data, sizeof(narrow));
    uint32_t expected =
        Crc32c(data, offsetof(decltype(narrow), header_crc));
    if (narrow.header_crc != expected) {
      return Status::Corruption("snapshot header checksum mismatch in " +
                                path);
    }
    if (narrow.section_count != expect_sections ||
        (narrow.flags & ~allowed_flags) != 0) {
      return Status::Corruption("inconsistent snapshot header in " + path);
    }
    header.magic = narrow.magic;
    header.version = narrow.version;
    header.flags = narrow.flags;
    header.num_vertices_total = narrow.num_vertices_total;
    header.vertex_begin = narrow.vertex_begin;
    header.vertex_end = narrow.vertex_end;
    header.section_count = kNumSections;
    std::memcpy(header.sections, narrow.sections, sizeof(narrow.sections));
    header.header_crc = narrow.header_crc;
    return Status::OK();
  };
  if (version == 1) {
    // v1 predates the parents section; the flag cannot be honored there.
    WCSD_RETURN_NOT_OK(widen(SnapshotHeaderV1{}, kNumSectionsV1,
                             kFlagHasOrder));
  } else if (version == 2) {
    WCSD_RETURN_NOT_OK(widen(SnapshotHeaderV2{}, kNumSectionsV2,
                             kFlagHasOrder | kFlagHasParents));
  } else {
    WCSD_RETURN_NOT_OK(widen(SnapshotHeader{}, kNumSections,
                             kFlagHasOrder | kFlagHasParents |
                                 kFlagCompressed));
  }
  // Vertex ids are 32-bit (types.h reserves the max value as kNullVertex),
  // which also keeps every count arithmetic below overflow-safe.
  if (header.vertex_begin > header.vertex_end ||
      header.vertex_end > header.num_vertices_total ||
      header.num_vertices_total >= kNullVertex) {
    return Status::Corruption("inconsistent snapshot header in " + path);
  }
  const uint64_t n_range = header.vertex_end - header.vertex_begin;
  const bool has_order = (header.flags & kFlagHasOrder) != 0;
  const bool has_parents = (header.flags & kFlagHasParents) != 0;
  const bool compressed = (header.flags & kFlagCompressed) != 0;
  // Parent quads align index-for-index with the flat entry array, which a
  // compressed file does not carry — the combination is unrepresentable.
  if (compressed && has_parents) {
    return Status::Corruption(
        "compressed snapshot claims a parents section in " + path);
  }
  // A compressed file stores its labels in the blob: the flat entry and
  // group sections must be empty (and vice versa, uncompressed files must
  // not smuggle in compressed sections).
  if (compressed && (header.sections[kSectionEntries].element_count != 0 ||
                     header.sections[kSectionGroups].element_count != 0)) {
    return Status::Corruption(
        "compressed snapshot carries flat label sections in " + path);
  }
  // Parents are quads for the entries: when present, the two sections must
  // align index-for-index. Entries, groups and (for compressed files) the
  // blob and dictionary have data-dependent counts — checked structurally
  // by the label-set Validate at load, not here.
  const uint64_t expected_counts[kNumSections] = {
      has_order ? header.num_vertices_total : 0,
      n_range + 1,
      0,
      n_range + 1,
      0,
      has_parents ? header.sections[kSectionEntries].element_count : 0,
      compressed ? n_range + 1 : 0,
      0,
      0};
  for (size_t s = 0; s < kNumSections; ++s) {
    const SectionDesc& desc = header.sections[s];
    // Reject element counts whose byte size would wrap uint64 before the
    // byte_length cross-check below could catch them.
    if (desc.element_count >
        std::numeric_limits<uint64_t>::max() / kSectionElemSize[s]) {
      return Status::Corruption("bad snapshot section table in " + path);
    }
    if (desc.byte_length != desc.element_count * kSectionElemSize[s] ||
        desc.file_offset % alignof(uint64_t) != 0 ||
        (desc.byte_length > 0 &&
         (desc.file_offset < kPageSize || desc.file_offset > size ||
          size - desc.file_offset < desc.byte_length))) {
      return Status::Corruption("bad snapshot section table in " + path);
    }
    const bool data_dependent =
        s == kSectionEntries || s == kSectionGroups ||
        (compressed && (s == kSectionBlob || s == kSectionDict));
    if (!data_dependent && desc.element_count != expected_counts[s]) {
      return Status::Corruption("snapshot section count mismatch in " + path);
    }
  }
  return header;
}

SnapshotInfo InfoFromHeader(const SnapshotHeader& header) {
  SnapshotInfo info;
  info.version = header.version;
  info.num_vertices_total = header.num_vertices_total;
  info.vertex_begin = header.vertex_begin;
  info.vertex_end = header.vertex_end;
  info.has_order = (header.flags & kFlagHasOrder) != 0;
  info.has_parents = (header.flags & kFlagHasParents) != 0;
  info.compressed = (header.flags & kFlagCompressed) != 0;
  info.header_crc = header.header_crc;
  return info;
}

template <typename T>
std::span<const T> SectionSpan(const std::byte* base,
                               const SectionDesc& desc) {
  // Empty sections may carry an offset past EOF (nothing was written
  // there); never form a pointer into that.
  if (desc.element_count == 0) return {};
  return {reinterpret_cast<const T*>(base + desc.file_offset),
          static_cast<size_t>(desc.element_count)};
}

}  // namespace

Status WriteSnapshot(const std::string& path, const FlatLabelSet& flat,
                     const VertexOrder* order,
                     std::span<const Vertex> parents,
                     const SnapshotWriteOptions& write_options) {
  if (order != nullptr && order->size() != flat.NumVertices()) {
    return Status::InvalidArgument(
        "order size does not match the label set");
  }
  if (!parents.empty() && parents.size() != flat.raw_entries().size()) {
    return Status::InvalidArgument(
        "parents size does not match the entry count");
  }
  if (write_options.compress && !parents.empty()) {
    return Status::InvalidArgument(
        "compressed snapshots cannot carry parent quads");
  }
  SnapshotHeader header = {};
  header.flags = order != nullptr ? kFlagHasOrder : 0;
  header.num_vertices_total = flat.NumVertices();
  header.vertex_begin = 0;
  header.vertex_end = flat.NumVertices();
  if (write_options.compress) {
    const CompressedFlatLabelSet comp = CompressedFlatLabelSet::FromFlat(flat);
    const SectionData sections[kNumSections] = {
        {order != nullptr ? order->by_rank().data() : nullptr,
         order != nullptr ? order->size() : 0},
        {comp.raw_offsets().data(), comp.raw_offsets().size()},
        {nullptr, 0},
        {comp.raw_group_offsets().data(), comp.raw_group_offsets().size()},
        {nullptr, 0},
        {nullptr, 0},
        {comp.raw_comp_offsets().data(), comp.raw_comp_offsets().size()},
        {comp.raw_blob().data(), comp.raw_blob().size()},
        {comp.raw_dictionary().data(), comp.raw_dictionary().size()},
    };
    return WriteSnapshotFile(path, header, sections);
  }
  const SectionData sections[kNumSections] = {
      {order != nullptr ? order->by_rank().data() : nullptr,
       order != nullptr ? order->size() : 0},
      {flat.raw_offsets().data(), flat.raw_offsets().size()},
      {flat.raw_entries().data(), flat.raw_entries().size()},
      {flat.raw_group_offsets().data(), flat.raw_group_offsets().size()},
      {flat.raw_groups().data(), flat.raw_groups().size()},
      {parents.data(), parents.size()},
      {nullptr, 0},
      {nullptr, 0},
      {nullptr, 0},
  };
  return WriteSnapshotFile(path, header, sections);
}

Status WriteSnapshotShard(const std::string& path, const FlatLabelSet& flat,
                          uint64_t begin, uint64_t end,
                          uint64_t num_vertices_total,
                          std::span<const Vertex> parents,
                          const SnapshotWriteOptions& write_options) {
  if (begin > end || end > flat.NumVertices() ||
      num_vertices_total != flat.NumVertices()) {
    return Status::InvalidArgument("invalid shard vertex range");
  }
  if (!parents.empty() && parents.size() != flat.raw_entries().size()) {
    return Status::InvalidArgument(
        "parents size does not match the entry count");
  }
  if (write_options.compress && !parents.empty()) {
    return Status::InvalidArgument(
        "compressed snapshots cannot carry parent quads");
  }
  auto offsets = flat.raw_offsets();
  auto group_offsets = flat.raw_group_offsets();
  // Rebase the offset arrays so the shard file stands alone. Entry and
  // group payloads are written as direct slices; HubGroup.begin is already
  // vertex-relative, so no rewrite is needed there.
  std::vector<uint64_t> local_offsets(end - begin + 1);
  std::vector<uint64_t> local_group_offsets(end - begin + 1);
  for (uint64_t v = begin; v <= end; ++v) {
    local_offsets[v - begin] = offsets[v] - offsets[begin];
    local_group_offsets[v - begin] = group_offsets[v] - group_offsets[begin];
  }
  auto entries =
      flat.raw_entries().subspan(offsets[begin], offsets[end] - offsets[begin]);
  auto groups = flat.raw_groups().subspan(
      group_offsets[begin], group_offsets[end] - group_offsets[begin]);
  // The parents slice tracks the entry slice index-for-index.
  std::span<const Vertex> shard_parents =
      parents.empty() ? parents
                      : parents.subspan(offsets[begin],
                                        offsets[end] - offsets[begin]);

  SnapshotHeader header = {};
  header.flags = 0;
  header.num_vertices_total = num_vertices_total;
  header.vertex_begin = begin;
  header.vertex_end = end;
  if (write_options.compress) {
    // Compress the shard's slice as a self-contained label set (its own
    // dictionary): a temporary FlatLabelSet over the rebased arrays. The
    // spans only live for this function — FromFlat copies what it keeps.
    const FlatLabelSet slice = FlatLabelSet::FromExternal(
        local_offsets, entries, local_group_offsets, groups, nullptr);
    const CompressedFlatLabelSet comp =
        CompressedFlatLabelSet::FromFlat(slice);
    const SectionData sections[kNumSections] = {
        {nullptr, 0},
        {comp.raw_offsets().data(), comp.raw_offsets().size()},
        {nullptr, 0},
        {comp.raw_group_offsets().data(), comp.raw_group_offsets().size()},
        {nullptr, 0},
        {nullptr, 0},
        {comp.raw_comp_offsets().data(), comp.raw_comp_offsets().size()},
        {comp.raw_blob().data(), comp.raw_blob().size()},
        {comp.raw_dictionary().data(), comp.raw_dictionary().size()},
    };
    return WriteSnapshotFile(path, header, sections);
  }
  const SectionData sections[kNumSections] = {
      {nullptr, 0},
      {local_offsets.data(), local_offsets.size()},
      {entries.data(), entries.size()},
      {local_group_offsets.data(), local_group_offsets.size()},
      {groups.data(), groups.size()},
      {shard_parents.data(), shard_parents.size()},
      {nullptr, 0},
      {nullptr, 0},
      {nullptr, 0},
  };
  return WriteSnapshotFile(path, header, sections);
}

Result<MappedSnapshot> LoadSnapshotMmap(const std::string& path,
                                        const SnapshotLoadOptions& options) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  auto mapping = std::make_shared<MmapFile>(std::move(file).value());
  Result<SnapshotHeader> parsed =
      ParseHeader(mapping->data(), mapping->size(), path);
  if (!parsed.ok()) return parsed.status();
  const SnapshotHeader& header = parsed.value();
  const std::byte* base = mapping->data();

  if (options.verify_checksums) {
    for (size_t s = 0; s < kNumSections; ++s) {
      const SectionDesc& desc = header.sections[s];
      // Absent sections (v1 files widen to a zeroed parents entry) have no
      // bytes to sum and no recorded CRC.
      if (desc.byte_length == 0) continue;
      uint32_t crc = Crc32c(base + desc.file_offset, desc.byte_length);
      if (crc != desc.crc32c) {
        return Status::Corruption("snapshot section checksum mismatch in " +
                                  path);
      }
    }
  }

  MappedSnapshot snapshot;
  snapshot.info = InfoFromHeader(header);
  const SnapshotVerifyLevel level =
      options.deep_validate ? SnapshotVerifyLevel::kDeep
                            : options.verify_level;
  const ValidateLevel validate =
      level == SnapshotVerifyLevel::kDeep        ? ValidateLevel::kDeep
      : level == SnapshotVerifyLevel::kDirectory ? ValidateLevel::kDirectory
                                                 : ValidateLevel::kShape;
  if (snapshot.info.compressed) {
    snapshot.compressed = CompressedFlatLabelSet::FromExternal(
        SectionSpan<uint64_t>(base, header.sections[kSectionOffsets]),
        SectionSpan<uint64_t>(base, header.sections[kSectionGroupOffsets]),
        SectionSpan<uint64_t>(base, header.sections[kSectionCompOffsets]),
        SectionSpan<uint8_t>(base, header.sections[kSectionBlob]),
        SectionSpan<Quality>(base, header.sections[kSectionDict]), mapping);
    Status valid = snapshot.compressed.Validate(validate);
    if (!valid.ok()) {
      return Status::Corruption(valid.message() + " in " + path);
    }
  } else {
    snapshot.labels = FlatLabelSet::FromExternal(
        SectionSpan<uint64_t>(base, header.sections[kSectionOffsets]),
        SectionSpan<LabelEntry>(base, header.sections[kSectionEntries]),
        SectionSpan<uint64_t>(base, header.sections[kSectionGroupOffsets]),
        SectionSpan<HubGroup>(base, header.sections[kSectionGroups]),
        mapping);
    Status valid = snapshot.labels.Validate(validate);
    if (!valid.ok()) {
      return Status::Corruption(valid.message() + " in " + path);
    }
  }
  if (snapshot.info.has_order) {
    auto order = SectionSpan<Vertex>(base, header.sections[kSectionOrder]);
    snapshot.order_by_rank.assign(order.begin(), order.end());
  }
  if (snapshot.info.has_parents) {
    snapshot.parents =
        SectionSpan<Vertex>(base, header.sections[kSectionParents]);
  }
  return snapshot;
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::byte page[kPageSize];
  in.read(reinterpret_cast<char*>(page), static_cast<std::streamsize>(
                                             kPageSize));
  size_t got = static_cast<size_t>(in.gcount());
  // Section bounds cannot be checked against the file size from the header
  // page alone; pass a size that accepts any in-range offset and rely on
  // ParseHeader's field checks. LoadSnapshotMmap does the real bounds work.
  Result<SnapshotHeader> parsed =
      got >= kPageSize
          ? ParseHeader(page, std::numeric_limits<size_t>::max(), path)
          : Result<SnapshotHeader>(
                Status::Corruption("truncated snapshot header in " + path));
  if (!parsed.ok()) return parsed.status();
  return InfoFromHeader(parsed.value());
}

}  // namespace wcsd
