#include "labeling/snapshot.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>

#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/endian.h"
#include "util/failpoint.h"
#include "util/mmap_file.h"

namespace wcsd {

namespace {

// On-disk widths the format is defined in terms of. If one of these ever
// changes, the version must be bumped and a migration written.
static_assert(sizeof(Vertex) == 4);
static_assert(sizeof(LabelEntry) == 12);
static_assert(sizeof(HubGroup) == 8);

constexpr uint64_t kSnapshotMagic = 0x57435344'534e4150ULL;  // "WCSDSNAP"
constexpr uint64_t kPageSize = 4096;
constexpr uint32_t kFlagHasOrder = 1u << 0;

enum SectionId : size_t {
  kSectionOrder = 0,
  kSectionOffsets = 1,
  kSectionEntries = 2,
  kSectionGroupOffsets = 3,
  kSectionGroups = 4,
  kNumSections = 5,
};

constexpr uint64_t kSectionElemSize[kNumSections] = {
    sizeof(Vertex), sizeof(uint64_t), sizeof(LabelEntry), sizeof(uint64_t),
    sizeof(HubGroup)};

struct SectionDesc {
  uint64_t file_offset;
  uint64_t byte_length;
  uint64_t element_count;
  uint32_t crc32c;
  uint32_t reserved;
};
static_assert(sizeof(SectionDesc) == 32);

struct SnapshotHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t flags;
  uint64_t num_vertices_total;
  uint64_t vertex_begin;
  uint64_t vertex_end;
  uint64_t section_count;
  SectionDesc sections[kNumSections];
  uint32_t header_crc;  // CRC-32C of the bytes preceding this field
};
static_assert(offsetof(SnapshotHeader, header_crc) == 208);
static_assert(sizeof(SnapshotHeader) <= kPageSize);

uint64_t AlignUp(uint64_t x) { return (x + kPageSize - 1) & ~(kPageSize - 1); }

struct SectionData {
  const void* data;
  uint64_t element_count;
};

// Lays out the sections page-aligned after the header, fills the section
// table (offsets, lengths, checksums), and writes the file.
Status WriteSnapshotFile(const std::string& path, SnapshotHeader header,
                         const SectionData (&sections)[kNumSections]) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  uint64_t cursor = kPageSize;
  for (size_t s = 0; s < kNumSections; ++s) {
    SectionDesc& desc = header.sections[s];
    desc.element_count = sections[s].element_count;
    desc.byte_length = sections[s].element_count * kSectionElemSize[s];
    desc.file_offset = cursor;
    desc.crc32c = Crc32c(sections[s].data, desc.byte_length);
    desc.reserved = 0;
    cursor += AlignUp(desc.byte_length);
  }
  header.magic = kSnapshotMagic;
  header.version = kSnapshotVersion;
  header.section_count = kNumSections;
  header.header_crc =
      Crc32c(&header, offsetof(SnapshotHeader, header_crc));

  // Crash-safe replacement: everything lands in a temp file, and the
  // target path only ever changes at Commit's atomic rename — a crash (or
  // injected fault) at ANY point leaves the old snapshot intact. The
  // failpoints below let tests pin a fault to a specific write.
  Result<AtomicFileWriter> opened = AtomicFileWriter::Open(path);
  if (!opened.ok()) return opened.status();
  AtomicFileWriter writer = std::move(opened).value();
  {
    FailpointResult fp = WCSD_FAILPOINT("snapshot.write.header");
    if (fp.action == FailpointAction::kError) {
      return Status::IoError("injected fault writing header of " + path);
    }
  }
  char page[kPageSize] = {};
  std::memcpy(page, &header, sizeof(header));
  WCSD_RETURN_NOT_OK(writer.Write(page, kPageSize));
  for (size_t s = 0; s < kNumSections; ++s) {
    const SectionDesc& desc = header.sections[s];
    if (desc.byte_length == 0) continue;
    FailpointResult fp = WCSD_FAILPOINT("snapshot.write.section");
    if (fp.action == FailpointAction::kError) {
      return Status::IoError("injected fault writing section of " + path);
    }
    // Positional writes past EOF leave a zero-filled gap — the
    // inter-section padding.
    WCSD_RETURN_NOT_OK(writer.WriteAt(desc.file_offset, sections[s].data,
                                      desc.byte_length));
  }
  return writer.Commit();
}

Result<SnapshotHeader> ParseHeader(const std::byte* data, size_t size,
                                   const std::string& path) {
  if (size < kPageSize) {
    return Status::Corruption("truncated snapshot header in " + path);
  }
  SnapshotHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  if (header.version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(header.version) + " in " + path);
  }
  uint32_t expected = Crc32c(data, offsetof(SnapshotHeader, header_crc));
  if (header.header_crc != expected) {
    return Status::Corruption("snapshot header checksum mismatch in " + path);
  }
  // Vertex ids are 32-bit (types.h reserves the max value as kNullVertex),
  // which also keeps every count arithmetic below overflow-safe.
  if (header.section_count != kNumSections ||
      header.vertex_begin > header.vertex_end ||
      header.vertex_end > header.num_vertices_total ||
      header.num_vertices_total >= kNullVertex) {
    return Status::Corruption("inconsistent snapshot header in " + path);
  }
  const uint64_t n_range = header.vertex_end - header.vertex_begin;
  const bool has_order = (header.flags & kFlagHasOrder) != 0;
  const uint64_t expected_counts[kNumSections] = {
      has_order ? header.num_vertices_total : 0, n_range + 1, 0, n_range + 1,
      0};
  for (size_t s = 0; s < kNumSections; ++s) {
    const SectionDesc& desc = header.sections[s];
    // Reject element counts whose byte size would wrap uint64 before the
    // byte_length cross-check below could catch them.
    if (desc.element_count >
        std::numeric_limits<uint64_t>::max() / kSectionElemSize[s]) {
      return Status::Corruption("bad snapshot section table in " + path);
    }
    if (desc.byte_length != desc.element_count * kSectionElemSize[s] ||
        desc.file_offset % alignof(uint64_t) != 0 ||
        (desc.byte_length > 0 &&
         (desc.file_offset < kPageSize || desc.file_offset > size ||
          size - desc.file_offset < desc.byte_length))) {
      return Status::Corruption("bad snapshot section table in " + path);
    }
    if ((s != kSectionEntries && s != kSectionGroups) &&
        desc.element_count != expected_counts[s]) {
      return Status::Corruption("snapshot section count mismatch in " + path);
    }
  }
  return header;
}

SnapshotInfo InfoFromHeader(const SnapshotHeader& header) {
  SnapshotInfo info;
  info.version = header.version;
  info.num_vertices_total = header.num_vertices_total;
  info.vertex_begin = header.vertex_begin;
  info.vertex_end = header.vertex_end;
  info.has_order = (header.flags & kFlagHasOrder) != 0;
  info.header_crc = header.header_crc;
  return info;
}

template <typename T>
std::span<const T> SectionSpan(const std::byte* base,
                               const SectionDesc& desc) {
  // Empty sections may carry an offset past EOF (nothing was written
  // there); never form a pointer into that.
  if (desc.element_count == 0) return {};
  return {reinterpret_cast<const T*>(base + desc.file_offset),
          static_cast<size_t>(desc.element_count)};
}

}  // namespace

Status WriteSnapshot(const std::string& path, const FlatLabelSet& flat,
                     const VertexOrder* order) {
  if (order != nullptr && order->size() != flat.NumVertices()) {
    return Status::InvalidArgument(
        "order size does not match the label set");
  }
  SnapshotHeader header = {};
  header.flags = order != nullptr ? kFlagHasOrder : 0;
  header.num_vertices_total = flat.NumVertices();
  header.vertex_begin = 0;
  header.vertex_end = flat.NumVertices();
  const SectionData sections[kNumSections] = {
      {order != nullptr ? order->by_rank().data() : nullptr,
       order != nullptr ? order->size() : 0},
      {flat.raw_offsets().data(), flat.raw_offsets().size()},
      {flat.raw_entries().data(), flat.raw_entries().size()},
      {flat.raw_group_offsets().data(), flat.raw_group_offsets().size()},
      {flat.raw_groups().data(), flat.raw_groups().size()},
  };
  return WriteSnapshotFile(path, header, sections);
}

Status WriteSnapshotShard(const std::string& path, const FlatLabelSet& flat,
                          uint64_t begin, uint64_t end,
                          uint64_t num_vertices_total) {
  if (begin > end || end > flat.NumVertices() ||
      num_vertices_total != flat.NumVertices()) {
    return Status::InvalidArgument("invalid shard vertex range");
  }
  auto offsets = flat.raw_offsets();
  auto group_offsets = flat.raw_group_offsets();
  // Rebase the offset arrays so the shard file stands alone. Entry and
  // group payloads are written as direct slices; HubGroup.begin is already
  // vertex-relative, so no rewrite is needed there.
  std::vector<uint64_t> local_offsets(end - begin + 1);
  std::vector<uint64_t> local_group_offsets(end - begin + 1);
  for (uint64_t v = begin; v <= end; ++v) {
    local_offsets[v - begin] = offsets[v] - offsets[begin];
    local_group_offsets[v - begin] = group_offsets[v] - group_offsets[begin];
  }
  auto entries =
      flat.raw_entries().subspan(offsets[begin], offsets[end] - offsets[begin]);
  auto groups = flat.raw_groups().subspan(
      group_offsets[begin], group_offsets[end] - group_offsets[begin]);

  SnapshotHeader header = {};
  header.flags = 0;
  header.num_vertices_total = num_vertices_total;
  header.vertex_begin = begin;
  header.vertex_end = end;
  const SectionData sections[kNumSections] = {
      {nullptr, 0},
      {local_offsets.data(), local_offsets.size()},
      {entries.data(), entries.size()},
      {local_group_offsets.data(), local_group_offsets.size()},
      {groups.data(), groups.size()},
  };
  return WriteSnapshotFile(path, header, sections);
}

Result<MappedSnapshot> LoadSnapshotMmap(const std::string& path,
                                        const SnapshotLoadOptions& options) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  auto mapping = std::make_shared<MmapFile>(std::move(file).value());
  Result<SnapshotHeader> parsed =
      ParseHeader(mapping->data(), mapping->size(), path);
  if (!parsed.ok()) return parsed.status();
  const SnapshotHeader& header = parsed.value();
  const std::byte* base = mapping->data();

  if (options.verify_checksums) {
    for (size_t s = 0; s < kNumSections; ++s) {
      const SectionDesc& desc = header.sections[s];
      uint32_t crc = Crc32c(base + desc.file_offset, desc.byte_length);
      if (crc != desc.crc32c) {
        return Status::Corruption("snapshot section checksum mismatch in " +
                                  path);
      }
    }
  }

  MappedSnapshot snapshot;
  snapshot.info = InfoFromHeader(header);
  snapshot.labels = FlatLabelSet::FromExternal(
      SectionSpan<uint64_t>(base, header.sections[kSectionOffsets]),
      SectionSpan<LabelEntry>(base, header.sections[kSectionEntries]),
      SectionSpan<uint64_t>(base, header.sections[kSectionGroupOffsets]),
      SectionSpan<HubGroup>(base, header.sections[kSectionGroups]), mapping);
  const SnapshotVerifyLevel level =
      options.deep_validate ? SnapshotVerifyLevel::kDeep
                            : options.verify_level;
  const ValidateLevel validate =
      level == SnapshotVerifyLevel::kDeep        ? ValidateLevel::kDeep
      : level == SnapshotVerifyLevel::kDirectory ? ValidateLevel::kDirectory
                                                 : ValidateLevel::kShape;
  Status valid = snapshot.labels.Validate(validate);
  if (!valid.ok()) {
    return Status::Corruption(valid.message() + " in " + path);
  }
  if (snapshot.info.has_order) {
    auto order = SectionSpan<Vertex>(base, header.sections[kSectionOrder]);
    snapshot.order_by_rank.assign(order.begin(), order.end());
  }
  return snapshot;
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::byte page[kPageSize];
  in.read(reinterpret_cast<char*>(page), static_cast<std::streamsize>(
                                             kPageSize));
  size_t got = static_cast<size_t>(in.gcount());
  // Section bounds cannot be checked against the file size from the header
  // page alone; pass a size that accepts any in-range offset and rely on
  // ParseHeader's field checks. LoadSnapshotMmap does the real bounds work.
  Result<SnapshotHeader> parsed =
      got >= kPageSize
          ? ParseHeader(page, std::numeric_limits<size_t>::max(), path)
          : Result<SnapshotHeader>(
                Status::Corruption("truncated snapshot header in " + path));
  if (!parsed.ok()) return parsed.status();
  return InfoFromHeader(parsed.value());
}

}  // namespace wcsd
