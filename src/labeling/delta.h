// Delta log: a durable, versioned, CRC-32C-checksummed record of edge
// changes to apply on top of an existing snapshot.
//
// A delta log is the unit of live maintenance: `wcsd_cli update` replays a
// log against a snapshot (incrementally when possible) and emits a new
// snapshot with a new IndexContentFingerprint; `serve --watch` uses the
// same log to invalidate only the cached results the change can touch
// (ResultCache::InvalidateDelta).
//
// File layout (little-endian, refused on big-endian hosts like every other
// serialized artifact in this repo):
//
//   DeltaHeader { magic, version, base_fingerprint, batch_count, crc }
//   batch_count × { u32 record_count, u32 records_crc,
//                   record_count × DeltaRecord (20 bytes) }
//
// Writes go through AtomicFileWriter, so a crash mid-write leaves either
// the previous complete file or no file — never a torn log.

#ifndef WCSD_LABELING_DELTA_H_
#define WCSD_LABELING_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace wcsd {

inline constexpr uint32_t kDeltaLogVersion = 1;

enum class DeltaOp : uint8_t {
  kInsert = 1,   // add edge {u, v} with `quality` (or raise a parallel edge)
  kDelete = 2,   // remove edge {u, v}; `quality` records the removed quality
  kUpgrade = 3,  // raise edge {u, v} from `old_quality` to `quality`
};

struct DeltaRecord {
  uint8_t op = 0;  // DeltaOp
  uint8_t reserved[3] = {0, 0, 0};
  Vertex u = 0;
  Vertex v = 0;
  // kInsert: the new edge's quality. kDelete: the removed edge's quality
  // (kInfQuality when the author does not know it — scoping degrades to
  // "any constraint"). kUpgrade: the new, higher quality.
  Quality quality = 0.0f;
  // kUpgrade only: the quality being replaced. Zero otherwise.
  Quality old_quality = 0.0f;
};
static_assert(sizeof(DeltaRecord) == 20, "delta record layout is on disk");

struct DeltaBatch {
  std::vector<DeltaRecord> records;
};

struct DeltaLog {
  // IndexContentFingerprint of the snapshot this log was authored against,
  // or 0 when unknown. `update` refuses a nonzero mismatch.
  uint64_t base_fingerprint = 0;
  std::vector<DeltaBatch> batches;

  bool HasDelete() const;
  size_t TotalRecords() const;
};

// The constraint window a single changed edge can affect. Inserting or
// deleting an edge of quality q can only change answers for w <= q
// (the edge is admitted exactly when w <= q); upgrading q_old -> q_new can
// only change answers for q_old < w <= q_new. Closed bounds, so an
// interval-cached entry [w_lo, w_hi] is touchable iff it intersects
// [q_lo, q_hi].
struct DeltaImpact {
  Vertex u = 0;
  Vertex v = 0;
  Quality q_lo = 0.0f;
  Quality q_hi = 0.0f;
};

// One impact per record, in log order.
std::vector<DeltaImpact> DeltaImpacts(const DeltaLog& log);

// Atomic write (tmp file + fsync + rename + dir fsync); inherits the
// atomic_file.* failpoints.
Status WriteDeltaLog(const std::string& path, const DeltaLog& log);

// Validates magic, version, and every CRC; corruption comes back as a
// clean Status, never UB.
Result<DeltaLog> ReadDeltaLog(const std::string& path);

}  // namespace wcsd

#endif  // WCSD_LABELING_DELTA_H_
