// Diagnostics over label sets: size distributions and hub concentration.
//
// The paper's complexity discussion is parameterized by zeta (the maximum
// label size) and by how per-hub coverage concentrates on high-rank hubs;
// these statistics make those quantities observable for any built index,
// and the benches report them alongside the figure series.

#ifndef WCSD_LABELING_LABEL_STATS_H_
#define WCSD_LABELING_LABEL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "labeling/label_set.h"

namespace wcsd {

/// Aggregate statistics of one LabelSet.
struct LabelStats {
  size_t num_vertices = 0;
  size_t total_entries = 0;
  size_t max_label = 0;      // the paper's zeta
  double mean_label = 0.0;
  size_t median_label = 0;
  size_t p95_label = 0;
  /// Fraction of all entries whose hub rank is below 1% of n — how heavily
  /// the labeling leans on the top of the vertex order.
  double top1pct_hub_share = 0.0;
  /// Number of distinct (vertex, hub) groups and the mean entries per
  /// group: > 1 means the quality dimension multiplies the classic 2-hop
  /// footprint.
  size_t hub_groups = 0;
  double mean_entries_per_group = 0.0;

  /// One-line rendering for bench output.
  std::string Summary() const;
};

/// Computes statistics for `labels`.
LabelStats ComputeLabelStats(const LabelSet& labels);

/// Histogram of label sizes with power-of-two buckets: bucket i counts
/// vertices whose label size is in [2^i, 2^(i+1)).
std::vector<size_t> LabelSizeHistogram(const LabelSet& labels);

}  // namespace wcsd

#endif  // WCSD_LABELING_LABEL_STATS_H_
