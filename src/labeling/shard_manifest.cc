#include "labeling/shard_manifest.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>

#include "labeling/snapshot.h"
#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/endian.h"
#include "util/failpoint.h"

namespace wcsd {

namespace {

constexpr uint64_t kManifestMagic = 0x57435344'4d465354ULL;  // "WCSDMFST"

struct ManifestHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t shard_count;
  uint64_t num_vertices_total;
  uint64_t total_entries;
  uint64_t total_groups;
  uint64_t total_label_bytes;
  uint64_t fingerprint;
  uint64_t reserved;
};
static_assert(sizeof(ManifestHeader) == 64);

struct ShardRecord {
  uint64_t vertex_begin;
  uint64_t vertex_end;
  uint64_t entry_count;
  uint64_t group_count;
  uint64_t label_bytes;
  uint32_t snapshot_header_crc;
  uint32_t path_bytes;
};
static_assert(sizeof(ShardRecord) == 48);

template <typename T>
void AppendBytes(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

Status ShardManifest::ValidateTiling() const {
  uint64_t cursor = 0;
  uint64_t entries = 0, groups = 0, bytes = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardManifestEntry& shard = shards[i];
    if (shard.vertex_begin != cursor || shard.vertex_end < shard.vertex_begin) {
      return Status::InvalidArgument(
          "manifest shards do not tile the vertex range: shard " +
          std::to_string(i) + " (" + shard.path + ") covers [" +
          std::to_string(shard.vertex_begin) + ", " +
          std::to_string(shard.vertex_end) + ") but the range is tiled up to " +
          std::to_string(cursor));
    }
    cursor = shard.vertex_end;
    entries += shard.entry_count;
    groups += shard.group_count;
    bytes += shard.label_bytes;
  }
  if (cursor != num_vertices_total) {
    return Status::InvalidArgument(
        "manifest shards do not cover the full vertex range (end at " +
        std::to_string(cursor) + " of " +
        std::to_string(num_vertices_total) + ")");
  }
  if (entries != total_entries || groups != total_groups ||
      bytes != total_label_bytes) {
    return Status::InvalidArgument(
        "manifest per-shard masses do not add up to the recorded totals");
  }
  return Status::OK();
}

uint64_t IndexContentFingerprint(const FlatLabelSet& flat) {
  const uint64_t n = flat.NumVertices();
  const uint32_t seed = Crc32c(&n, sizeof(n));
  auto entries = flat.raw_entries();
  auto groups = flat.raw_groups();
  const uint32_t entries_crc =
      Crc32c(entries.data(), entries.size() * sizeof(LabelEntry), seed);
  const uint32_t groups_crc =
      Crc32c(groups.data(), groups.size() * sizeof(HubGroup), seed);
  return (uint64_t{groups_crc} << 32) | entries_crc;
}

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  if (manifest.shards.size() >
      std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("too many shards for a manifest");
  }
  ManifestHeader header = {};
  header.magic = kManifestMagic;
  header.version = kShardManifestVersion;
  header.shard_count = static_cast<uint32_t>(manifest.shards.size());
  header.num_vertices_total = manifest.num_vertices_total;
  header.total_entries = manifest.total_entries;
  header.total_groups = manifest.total_groups;
  header.total_label_bytes = manifest.total_label_bytes;
  header.fingerprint = manifest.fingerprint;

  std::string buffer;
  AppendBytes(&buffer, header);
  for (const ShardManifestEntry& shard : manifest.shards) {
    if (shard.path.size() > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("shard path too long for a manifest");
    }
    ShardRecord record = {};
    record.vertex_begin = shard.vertex_begin;
    record.vertex_end = shard.vertex_end;
    record.entry_count = shard.entry_count;
    record.group_count = shard.group_count;
    record.label_bytes = shard.label_bytes;
    record.snapshot_header_crc = shard.snapshot_header_crc;
    record.path_bytes = static_cast<uint32_t>(shard.path.size());
    AppendBytes(&buffer, record);
  }
  for (const ShardManifestEntry& shard : manifest.shards) {
    buffer.append(shard.path);
  }
  const uint32_t crc = Crc32c(buffer.data(), buffer.size());
  AppendBytes(&buffer, crc);

  // Temp-file + atomic-rename: the manifest is the artifact that names a
  // whole shard set, so a torn manifest must be impossible — the path holds
  // either the previous complete manifest or the new one.
  {
    FailpointResult fp = WCSD_FAILPOINT("manifest.write");
    if (fp.action == FailpointAction::kError) {
      return Status::IoError("injected fault writing manifest " + path);
    }
  }
  Result<AtomicFileWriter> opened = AtomicFileWriter::Open(path);
  if (!opened.ok()) return opened.status();
  AtomicFileWriter writer = std::move(opened).value();
  WCSD_RETURN_NOT_OK(writer.Write(buffer.data(), buffer.size()));
  return writer.Commit();
}

Result<ShardManifest> ReadShardManifest(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open manifest " + path);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof()) {
    return Status::IoError("read failed for manifest " + path);
  }
  if (bytes.size() < sizeof(ManifestHeader) + sizeof(uint32_t)) {
    return Status::Corruption("truncated manifest " + path);
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const size_t body_size = bytes.size() - sizeof(stored_crc);
  if (Crc32c(bytes.data(), body_size) != stored_crc) {
    return Status::Corruption("manifest checksum mismatch in " + path);
  }

  ManifestHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic in " + path);
  }
  if (header.version != kShardManifestVersion) {
    return Status::Corruption("unsupported manifest version " +
                              std::to_string(header.version) + " in " + path);
  }
  // Record table and path blob must fit exactly inside the checksummed
  // body; every size computation below stays in uint64 and is bounded by
  // the actual file size, so no count can wrap or over-allocate.
  const uint64_t records_offset = sizeof(ManifestHeader);
  const uint64_t records_bytes =
      uint64_t{header.shard_count} * sizeof(ShardRecord);
  if (records_bytes > body_size - records_offset) {
    return Status::Corruption("bad manifest record table in " + path);
  }
  ShardManifest manifest;
  manifest.num_vertices_total = header.num_vertices_total;
  manifest.total_entries = header.total_entries;
  manifest.total_groups = header.total_groups;
  manifest.total_label_bytes = header.total_label_bytes;
  manifest.fingerprint = header.fingerprint;
  manifest.shards.resize(header.shard_count);

  uint64_t paths_offset = records_offset + records_bytes;
  uint64_t total_path_bytes = 0;
  for (uint32_t i = 0; i < header.shard_count; ++i) {
    ShardRecord record;
    std::memcpy(&record, bytes.data() + records_offset +
                             uint64_t{i} * sizeof(ShardRecord),
                sizeof(record));
    ShardManifestEntry& shard = manifest.shards[i];
    shard.vertex_begin = record.vertex_begin;
    shard.vertex_end = record.vertex_end;
    shard.entry_count = record.entry_count;
    shard.group_count = record.group_count;
    shard.label_bytes = record.label_bytes;
    shard.snapshot_header_crc = record.snapshot_header_crc;
    total_path_bytes += record.path_bytes;
    if (total_path_bytes > body_size - paths_offset) {
      return Status::Corruption("bad manifest path table in " + path);
    }
    shard.path.assign(
        bytes.data() + paths_offset + (total_path_bytes - record.path_bytes),
        record.path_bytes);
  }
  if (paths_offset + total_path_bytes != body_size) {
    return Status::Corruption("manifest has trailing bytes in " + path);
  }
  return manifest;
}

std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& shard_path) {
  if (!shard_path.empty() && shard_path.front() == '/') return shard_path;
  size_t slash = manifest_path.rfind('/');
  if (slash == std::string::npos) return shard_path;
  return manifest_path.substr(0, slash + 1) + shard_path;
}

Result<WrittenShardSet> WriteShardSet(const std::string& stem,
                                      const FlatLabelSet& flat,
                                      const ShardPlan& plan,
                                      const SnapshotWriteOptions& write_options) {
  if (plan.num_vertices != flat.NumVertices()) {
    return Status::InvalidArgument(
        "shard plan was computed for a different label set");
  }
  const size_t slash = stem.rfind('/');
  const std::string basename =
      slash == std::string::npos ? stem : stem.substr(slash + 1);
  if (basename.empty()) {
    return Status::InvalidArgument("shard set stem names no file: " + stem);
  }

  WrittenShardSet result;
  result.manifest_path = stem + ".manifest";
  result.manifest.num_vertices_total = flat.NumVertices();
  result.manifest.fingerprint = IndexContentFingerprint(flat);
  for (size_t k = 0; k < plan.shards.size(); ++k) {
    const PlannedShard& planned = plan.shards[k];
    const std::string relative = basename + ".shard" + std::to_string(k);
    const std::string path = stem + ".shard" + std::to_string(k);
    WCSD_RETURN_NOT_OK(WriteSnapshotShard(path, flat, planned.begin,
                                          planned.end, flat.NumVertices(),
                                          /*parents=*/{}, write_options));
    Result<SnapshotInfo> info = ReadSnapshotInfo(path);
    if (!info.ok()) return info.status();

    ShardManifestEntry entry;
    entry.path = relative;
    entry.vertex_begin = planned.begin;
    entry.vertex_end = planned.end;
    entry.entry_count = planned.entry_count;
    entry.group_count = planned.group_count;
    entry.label_bytes = planned.bytes;
    entry.snapshot_header_crc = info.value().header_crc;
    result.manifest.total_entries += entry.entry_count;
    result.manifest.total_groups += entry.group_count;
    result.manifest.total_label_bytes += entry.label_bytes;
    result.manifest.shards.push_back(std::move(entry));
    result.shard_paths.push_back(path);
  }
  WCSD_RETURN_NOT_OK(result.manifest.ValidateTiling());
  WCSD_RETURN_NOT_OK(
      WriteShardManifest(result.manifest_path, result.manifest));
  return result;
}

}  // namespace wcsd
