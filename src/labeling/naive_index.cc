#include "labeling/naive_index.h"

#include <string>

namespace wcsd {

Result<NaiveWcsdIndex> NaiveWcsdIndex::Build(const QualityGraph& g,
                                             const Options& options) {
  NaiveWcsdIndex index;
  index.partition_ = std::make_unique<QualityPartition>(g);
  size_t used = 0;
  for (size_t level = 0; level < index.partition_->NumLevels(); ++level) {
    const QualityGraph& filtered = index.partition_->GraphAtLevel(level);
    auto pll = std::make_unique<Pll>(Pll::Build(filtered));
    used += pll->MemoryBytes();
    if (options.memory_budget_bytes != 0 &&
        used > options.memory_budget_bytes) {
      return Status::IoError(
          "naive index exceeded memory budget at level " +
          std::to_string(level) + " (" + std::to_string(used) + " bytes)");
    }
    index.indexes_.push_back(std::move(pll));
  }
  return index;
}

Distance NaiveWcsdIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  auto level = partition_->LevelForConstraint(w);
  if (!level.has_value()) return kInfDistance;
  return indexes_[*level]->Query(s, t);
}

size_t NaiveWcsdIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& pll : indexes_) total += pll->MemoryBytes();
  return total;
}

}  // namespace wcsd
