// WCSD query algorithms over two label sets (paper §IV.A and §IV.C).
//
// Four implementations answering Eq. (1) — min over common hubs h of
// dist(s,h) + dist(h,t) subject to both entry qualities >= w:
//   * kScan       — Algorithm 2: scan of L(s) x L(t), skipping unmatched
//                   hub groups via the sorted-rank invariant.
//   * kHubGrouped — Algorithm 4: iterate L(t), look up L(s)[hub], scan the
//                   two hub groups.
//   * kBinary     — Algorithm 4 + Theorem 3: binary search inside hub
//                   groups for the first entry with quality >= w.
//   * kMerge      — Algorithm 5 (Query+): linear two-pointer merge over the
//                   rank-sorted labels, O(|L(s)| + |L(t)|)-flavored.
//
// All four return identical distances (tested); they differ only in cost.
// Theorem 3 (within a hub group distances and qualities are both strictly
// ascending) is what makes "first entry with quality >= w" the minimal
// distance choice for that hub.

#ifndef WCSD_LABELING_QUERY_H_
#define WCSD_LABELING_QUERY_H_

#include <span>

#include "labeling/flat_label_set.h"
#include "labeling/label_set.h"
#include "util/types.h"

namespace wcsd {

/// Which query implementation to use.
enum class QueryImpl {
  kScan,
  kHubGrouped,
  kBinary,
  kMerge,
};

/// Query answer plus the witnessing hub (kNullVertex rank if unreachable).
struct HubQueryResult {
  Distance dist = kInfDistance;
  Rank via_hub = static_cast<Rank>(-1);
  Distance dist_from_s = kInfDistance;
  Distance dist_to_t = kInfDistance;
};

/// Query answer plus the maximal constraint interval it certifies.
///
/// d(s, t, w) is a non-decreasing step function of w whose breakpoints are
/// entry qualities (Theorem 3: within a hub group qualities and distances
/// both strictly ascend, so tightening w can only advance each group's
/// chosen entry to a larger distance). The interval [w_lo, w_hi] — CLOSED
/// on both ends, so that +inf and exact float breakpoints are
/// representable — is the maximal interval containing the queried w on
/// which the step function is constant: every w' with w_lo <= w' <= w_hi
/// answers `dist`, and querying just below w_lo or just above w_hi yields
/// a different distance. The defaults describe the everywhere-constant
/// function (s == t, out of range, or no common hub).
struct IntervalQueryResult {
  Distance dist = kInfDistance;
  Quality w_lo = -kInfQuality;
  Quality w_hi = kInfQuality;

  /// True when `dist` is certified for constraint w.
  bool Contains(Quality w) const { return w_lo <= w && w <= w_hi; }

  friend bool operator==(const IntervalQueryResult&,
                         const IntervalQueryResult&) = default;
};

/// Algorithm 2: scan of L(s) x L(t). Exploits the sorted-rank invariant to
/// skip past hub groups absent from the other side, so the worst case is
/// O(|L(s)| + |L(t)| + matched group areas) rather than the naïve product.
Distance QueryLabelsScan(std::span<const LabelEntry> ls,
                         std::span<const LabelEntry> lt, Quality w);

/// Algorithm 4: hub-grouped lookup with full group scans.
Distance QueryLabelsHubGrouped(std::span<const LabelEntry> ls,
                               std::span<const LabelEntry> lt, Quality w);

/// Algorithm 4 + binary search on quality inside each hub group.
Distance QueryLabelsBinary(std::span<const LabelEntry> ls,
                           std::span<const LabelEntry> lt, Quality w);

/// Algorithm 5 (Query+): two-pointer merge.
Distance QueryLabelsMerge(std::span<const LabelEntry> ls,
                          std::span<const LabelEntry> lt, Quality w);

/// Dispatch by implementation tag.
Distance QueryLabels(std::span<const LabelEntry> ls,
                     std::span<const LabelEntry> lt, Quality w,
                     QueryImpl impl);

/// Merge query that also reports the best hub and the split distances —
/// needed by path reconstruction (§V).
HubQueryResult QueryLabelsMergeWithHub(std::span<const LabelEntry> ls,
                                       std::span<const LabelEntry> lt,
                                       Quality w);

/// Merge query that also reports the maximal validity interval of its
/// answer (see IntervalQueryResult) — the dominance fact the serve-side
/// result cache keys on. Two O(|L(s)| + |L(t)|) merge passes: one for the
/// distance, one tracking the tightest quality breakpoint on either side.
IntervalQueryResult QueryLabelsMergeWithInterval(
    std::span<const LabelEntry> ls, std::span<const LabelEntry> lt,
    Quality w);

/// Flat-backend query kernels: same four algorithms over FlatLabelView.
/// Group boundaries come from the hub directory instead of entry scans /
/// entry-array binary searches, and all entries of one vertex share cache
/// lines. Answers are identical to the span versions (tested).
Distance QueryFlatScan(const FlatLabelView& ls, const FlatLabelView& lt,
                       Quality w);
Distance QueryFlatHubGrouped(const FlatLabelView& ls, const FlatLabelView& lt,
                             Quality w);
Distance QueryFlatBinary(const FlatLabelView& ls, const FlatLabelView& lt,
                         Quality w);
Distance QueryFlatMerge(const FlatLabelView& ls, const FlatLabelView& lt,
                        Quality w);

/// Dispatch by implementation tag (flat backend).
Distance QueryFlat(const FlatLabelView& ls, const FlatLabelView& lt, Quality w,
                   QueryImpl impl);

/// Flat merge query reporting the best hub and split distances (§V path
/// reconstruction on a finalized index).
HubQueryResult QueryFlatMergeWithHub(const FlatLabelView& ls,
                                     const FlatLabelView& lt, Quality w);

/// Flat merge query reporting the maximal validity interval of its answer
/// (identical to QueryLabelsMergeWithInterval; tested).
IntervalQueryResult QueryFlatMergeWithInterval(const FlatLabelView& ls,
                                               const FlatLabelView& lt,
                                               Quality w);

/// Within one hub group [begin, end) sorted by ascending quality, returns
/// the index of the first entry with quality >= w, or `end` if none.
/// Exposed for construction-side pruning and tests.
size_t FirstWithQuality(std::span<const LabelEntry> entries, size_t begin,
                        size_t end, Quality w);

}  // namespace wcsd

#endif  // WCSD_LABELING_QUERY_H_
