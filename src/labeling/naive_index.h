// The Naïve 2-hop baseline for WCSD (paper §III).
//
// Filter the graph once per distinct quality value and build a classic PLL
// on each filtered copy; answer (s, t, w) with the PLL whose threshold is
// the smallest distinct value >= w. Query-fast but needs |w| full indexes —
// O(|V|^2 |w|) space in the worst case, which is exactly why the paper's
// Figures 5-6 show it losing on large graphs and why it goes to INF
// (out of memory) on WST/CTR. A memory budget reproduces that behaviour.

#ifndef WCSD_LABELING_NAIVE_INDEX_H_
#define WCSD_LABELING_NAIVE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/subgraph.h"
#include "labeling/pll.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// Collection of per-threshold PLL indexes.
class NaiveWcsdIndex {
 public:
  struct Options {
    /// Abort construction with an error once the accumulated label memory
    /// exceeds this budget (bytes). 0 disables the check. Mirrors the
    /// paper's INF entries for Naïve on the largest road networks.
    size_t memory_budget_bytes = 0;
  };

  /// Builds |w| PLL indexes over the quality partitions of `g`.
  static Result<NaiveWcsdIndex> Build(const QualityGraph& g,
                                      const Options& options);
  static Result<NaiveWcsdIndex> Build(const QualityGraph& g) {
    return Build(g, Options{});
  }

  /// w-constrained distance between s and t.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Total label bytes across all |w| indexes.
  size_t MemoryBytes() const;

  /// Number of per-threshold indexes (the paper's |w|).
  size_t NumLevels() const { return indexes_.size(); }

  const Pll& IndexAtLevel(size_t level) const { return *indexes_[level]; }
  const QualityPartition& partition() const { return *partition_; }

 private:
  NaiveWcsdIndex() = default;

  std::unique_ptr<QualityPartition> partition_;
  std::vector<std::unique_ptr<Pll>> indexes_;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_NAIVE_INDEX_H_
