#include "labeling/delta.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>

#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/endian.h"

namespace wcsd {

namespace {

constexpr uint64_t kDeltaMagic = 0x57435344'444c5447ULL;  // "WCSDDLTG"

struct DeltaHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t batch_count;
  uint64_t base_fingerprint;
  uint32_t reserved;
  uint32_t header_crc;  // CRC-32C of the header up to this field
};
static_assert(sizeof(DeltaHeader) == 32);

template <typename T>
void AppendBytes(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ValidOp(uint8_t op) {
  return op == static_cast<uint8_t>(DeltaOp::kInsert) ||
         op == static_cast<uint8_t>(DeltaOp::kDelete) ||
         op == static_cast<uint8_t>(DeltaOp::kUpgrade);
}

}  // namespace

bool DeltaLog::HasDelete() const {
  for (const DeltaBatch& batch : batches) {
    for (const DeltaRecord& record : batch.records) {
      if (record.op == static_cast<uint8_t>(DeltaOp::kDelete)) return true;
    }
  }
  return false;
}

size_t DeltaLog::TotalRecords() const {
  size_t total = 0;
  for (const DeltaBatch& batch : batches) total += batch.records.size();
  return total;
}

std::vector<DeltaImpact> DeltaImpacts(const DeltaLog& log) {
  std::vector<DeltaImpact> impacts;
  impacts.reserve(log.TotalRecords());
  for (const DeltaBatch& batch : log.batches) {
    for (const DeltaRecord& record : batch.records) {
      DeltaImpact impact;
      impact.u = record.u;
      impact.v = record.v;
      switch (static_cast<DeltaOp>(record.op)) {
        case DeltaOp::kInsert:
        case DeltaOp::kDelete:
          impact.q_lo = -kInfQuality;
          impact.q_hi = record.quality;
          break;
        case DeltaOp::kUpgrade:
          impact.q_lo = record.old_quality;
          impact.q_hi = record.quality;
          break;
        default:
          impact.q_lo = -kInfQuality;
          impact.q_hi = kInfQuality;
          break;
      }
      impacts.push_back(impact);
    }
  }
  return impacts;
}

Status WriteDeltaLog(const std::string& path, const DeltaLog& log) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  if (log.batches.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("too many batches for a delta log");
  }
  DeltaHeader header = {};
  header.magic = kDeltaMagic;
  header.version = kDeltaLogVersion;
  header.batch_count = static_cast<uint32_t>(log.batches.size());
  header.base_fingerprint = log.base_fingerprint;
  header.header_crc =
      Crc32c(&header, offsetof(DeltaHeader, header_crc));

  std::string buffer;
  AppendBytes(&buffer, header);
  for (const DeltaBatch& batch : log.batches) {
    if (batch.records.size() > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("too many records in a delta batch");
    }
    for (const DeltaRecord& record : batch.records) {
      if (!ValidOp(record.op)) {
        return Status::InvalidArgument("delta record has an unknown op");
      }
    }
    const uint32_t count = static_cast<uint32_t>(batch.records.size());
    const uint32_t crc = Crc32c(batch.records.data(),
                                batch.records.size() * sizeof(DeltaRecord));
    AppendBytes(&buffer, count);
    AppendBytes(&buffer, crc);
    buffer.append(reinterpret_cast<const char*>(batch.records.data()),
                  batch.records.size() * sizeof(DeltaRecord));
  }

  Result<AtomicFileWriter> opened = AtomicFileWriter::Open(path);
  if (!opened.ok()) return opened.status();
  AtomicFileWriter writer = std::move(opened).value();
  WCSD_RETURN_NOT_OK(writer.Write(buffer.data(), buffer.size()));
  return writer.Commit();
}

Result<DeltaLog> ReadDeltaLog(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open delta log " + path);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof()) {
    return Status::IoError("read failed for delta log " + path);
  }
  if (bytes.size() < sizeof(DeltaHeader)) {
    return Status::Corruption("truncated delta log " + path);
  }
  DeltaHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kDeltaMagic) {
    return Status::Corruption("bad delta log magic in " + path);
  }
  if (header.version != kDeltaLogVersion) {
    return Status::Corruption("unsupported delta log version " +
                              std::to_string(header.version) + " in " + path);
  }
  if (Crc32c(bytes.data(), offsetof(DeltaHeader, header_crc)) !=
      header.header_crc) {
    return Status::Corruption("delta log header checksum mismatch in " + path);
  }

  DeltaLog log;
  log.base_fingerprint = header.base_fingerprint;
  log.batches.reserve(header.batch_count);
  uint64_t at = sizeof(DeltaHeader);
  for (uint32_t b = 0; b < header.batch_count; ++b) {
    if (bytes.size() - at < 2 * sizeof(uint32_t)) {
      return Status::Corruption("truncated delta batch header in " + path);
    }
    uint32_t count, stored_crc;
    std::memcpy(&count, bytes.data() + at, sizeof(count));
    std::memcpy(&stored_crc, bytes.data() + at + sizeof(count),
                sizeof(stored_crc));
    at += 2 * sizeof(uint32_t);
    const uint64_t record_bytes = uint64_t{count} * sizeof(DeltaRecord);
    if (record_bytes > bytes.size() - at) {
      return Status::Corruption("truncated delta batch records in " + path);
    }
    if (Crc32c(bytes.data() + at, record_bytes) != stored_crc) {
      return Status::Corruption("delta batch checksum mismatch in " + path);
    }
    DeltaBatch batch;
    batch.records.resize(count);
    std::memcpy(batch.records.data(), bytes.data() + at, record_bytes);
    at += record_bytes;
    for (const DeltaRecord& record : batch.records) {
      if (!ValidOp(record.op)) {
        return Status::Corruption("delta record has an unknown op in " + path);
      }
      if (record.u == record.v) {
        return Status::Corruption("delta record is a self-loop in " + path);
      }
    }
    log.batches.push_back(std::move(batch));
  }
  if (at != bytes.size()) {
    return Status::Corruption("delta log has trailing bytes in " + path);
  }
  return log;
}

}  // namespace wcsd
