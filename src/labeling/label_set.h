// Label storage shared by every 2-hop method in this repository (classic
// PLL, the Naïve per-w index, LCR-adapt, and WC-INDEX itself).
//
// A label entry is the paper's index entry I = (v, dist, w) (Def. 6), with
// the hub stored as its RANK in the vertex order rather than its id: ranks
// make the query-side intersection of two labels a linear merge, and the
// construction invariant "hubs are appended in ascending rank" keeps every
// per-vertex label sorted for free.
//
// Invariants maintained by all builders and checked by the verifier:
//   * entries of one vertex are sorted by (hub rank asc, dist asc);
//   * within one hub group, qualities are strictly ascending alongside
//     distances (Theorem 3).

#ifndef WCSD_LABELING_LABEL_SET_H_
#define WCSD_LABELING_LABEL_SET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// One 2-hop index entry: a hub (by rank), the distance to it, and the
/// quality bound of the witnessing minimal path. 12 bytes.
struct LabelEntry {
  Rank hub;
  Distance dist;
  Quality quality;

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Per-vertex label sets (the paper's L(u)).
class LabelSet {
 public:
  LabelSet() = default;

  /// Empty labels for `num_vertices` vertices.
  explicit LabelSet(size_t num_vertices) : labels_(num_vertices) {}

  /// Appends an entry to L(v). Builders must append in (hub asc, dist asc)
  /// order; this is asserted in debug builds.
  void Append(Vertex v, LabelEntry entry);

  /// Entries of L(v).
  std::span<const LabelEntry> For(Vertex v) const { return labels_[v]; }

  /// Mutable access for post-processing passes (LCR-adapt merge).
  std::vector<LabelEntry>* Mutable(Vertex v) { return &labels_[v]; }

  size_t NumVertices() const { return labels_.size(); }

  /// Total entries across all vertices.
  size_t TotalEntries() const;

  /// Average entries per vertex.
  double AverageLabelSize() const;

  /// Maximum entries on any vertex (the paper's zeta).
  size_t MaxLabelSize() const;

  /// Bytes of entry payload plus per-vertex vector overhead — the number
  /// reported as "index size" in Figures 6/9/11.
  size_t MemoryBytes() const;

  /// True if L(v) is sorted by (hub asc, dist asc) for every v.
  bool IsSorted() const;

  /// Binary serialization.
  Status Save(const std::string& path) const;
  static Result<LabelSet> Load(const std::string& path);

  friend bool operator==(const LabelSet&, const LabelSet&) = default;

 private:
  std::vector<std::vector<LabelEntry>> labels_;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_LABEL_SET_H_
