// LCR-adapt: the label-constrained-reachability baseline adapted to WCSD
// (paper §VI lists it among the compared algorithms without pseudo-code;
// DESIGN.md §3.2 documents this interpretation).
//
// LCR-style indexes build one pruned labeling pass per label (here: per
// distinct quality threshold) under a single global vertex order and merge
// the passes into one combined label set, discarding entries dominated
// within their (vertex, hub) group. Queries then run exactly like
// WC-INDEX's. The defining behaviour — correct and query-fast, but |w|
// construction passes with transient dominated entries — is preserved.

#ifndef WCSD_LABELING_LCR_ADAPT_H_
#define WCSD_LABELING_LCR_ADAPT_H_

#include "graph/graph.h"
#include "labeling/label_set.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// Combined per-threshold labeling with post-hoc dominance pruning.
class LcrAdaptIndex {
 public:
  /// Builds |w| PLL passes over the quality partitions of `g` under the
  /// degree order of the full graph, then merges.
  static LcrAdaptIndex Build(const QualityGraph& g);

  /// w-constrained distance between s and t.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  const LabelSet& labels() const { return labels_; }
  const VertexOrder& order() const { return order_; }

  size_t MemoryBytes() const { return labels_.MemoryBytes(); }
  size_t TotalEntries() const { return labels_.TotalEntries(); }

 private:
  LcrAdaptIndex(LabelSet labels, VertexOrder order)
      : labels_(std::move(labels)), order_(std::move(order)) {}

  LabelSet labels_;
  VertexOrder order_;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_LCR_ADAPT_H_
