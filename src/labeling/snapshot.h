// Versioned, checksummed, mmap'able index snapshots.
//
// The serving-side counterpart of FlatLabelSet::Save: instead of
// length-prefixed streams that force a full deserialization pass, a
// snapshot lays the four CSR label arrays (and optionally the vertex order)
// out page-aligned behind a fixed-width header, so a server can mmap the
// file and answer queries directly out of the mapping. Loading costs
// O(vertices) for offset validation and the order inversion — independent
// of the label count, which dominates file size — and label pages are
// faulted in lazily by the kernel and shared across processes.
//
// A snapshot may cover the full vertex range or a contiguous shard
// [vertex_begin, vertex_end) of a larger logical index; shard files rebase
// the offset arrays so each file is self-contained. serve/sharded_engine.h
// stitches shard snapshots back into one logical index.
//
// File layout (all fields little-endian, fixed width; see util/endian.h):
//   [0, 4096)    SnapshotHeader + zero padding
//   sections     each page-aligned, in file order:
//                  order (u32 Vertex per rank; full snapshots only)
//                  offsets (u64, n_range+1)   entries (12-byte LabelEntry)
//                  group_offsets (u64)        groups (8-byte HubGroup)
//                  parents (u32 Vertex, one per entry; version 2 only)
// The header carries a CRC-32C of itself and one per section. The header
// CRC is always verified on load; section CRCs only under
// `verify_checksums` (a full-file read would defeat lazy paging).
//
// Version history: v1 has a five-section table (no parents). v2 appends an
// optional parents section — the §V path-reconstruction quads, aligned
// index-for-index with the entries section — and sets kFlagHasParents.
// v3 appends three sections for the COMPRESSED label backend
// (labeling/compressed_flat.h) and sets kFlagCompressed: per-vertex byte
// offsets (u64, n_range+1), the delta/varint blob (u8), and the quality
// dictionary (f32). A compressed snapshot keeps the logical offsets and
// group_offsets sections populated (per-vertex counts without a decode)
// but writes EMPTY entries and groups sections — the blob replaces them.
// Writers emit the smallest version that can carry the payload (v1 with
// neither parents nor compression, v2 with parents only), so old files
// stay byte-identical and old readers of them keep working. Readers accept
// all three versions; loading surfaces has_parents / compressed so callers
// can report the serving mode instead of silently degrading.

#ifndef WCSD_LABELING_SNAPSHOT_H_
#define WCSD_LABELING_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "labeling/compressed_flat.h"
#include "labeling/flat_label_set.h"
#include "order/vertex_order.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// Newest snapshot format version. Bump on any layout change; readers
/// reject versions they do not know with a clean Status. Writers emit the
/// smallest version that can represent the payload (v1 without parents or
/// compression, v2 with parents only), so old fixtures stay byte-stable.
inline constexpr uint32_t kSnapshotVersion = 3;

/// Snapshot header metadata surfaced to callers.
struct SnapshotInfo {
  uint32_t version = 0;
  /// Vertices of the whole logical index this file belongs to.
  uint64_t num_vertices_total = 0;
  /// The contiguous vertex range this file covers. A full snapshot has
  /// [0, num_vertices_total).
  uint64_t vertex_begin = 0;
  uint64_t vertex_end = 0;
  bool has_order = false;
  /// True when the file carries the per-entry parent quads (v2 section).
  /// False on v1 files and parent-less v2 writes: path reconstruction
  /// against such a snapshot runs the slow index-guided fallback, and
  /// servers surface that degraded mode through their stats.
  bool has_parents = false;
  /// True when the file stores labels in the compressed v3 sections
  /// (labeling/compressed_flat.h). Such a file maps into
  /// MappedSnapshot::compressed; `labels` stays empty.
  bool compressed = false;
  /// The header's self-CRC — a cheap identity for the whole file (the
  /// header embeds every section's CRC). Shard manifests record it to
  /// detect a swapped or regenerated shard file without reading payloads.
  uint32_t header_crc = 0;

  bool IsFullRange() const {
    return vertex_begin == 0 && vertex_end == num_vertices_total;
  }
};

/// A snapshot opened for serving: label views into the mapping plus the
/// (copied, O(n)) vertex order. The FlatLabelSet keeps the mapping alive.
struct MappedSnapshot {
  SnapshotInfo info;
  /// Uncompressed files only; empty when info.compressed.
  FlatLabelSet labels;
  /// Compressed (v3) files only; empty otherwise. Keeps the mapping alive
  /// the same way `labels` does for uncompressed files — the cold tier:
  /// label bytes stay on disk and page in on first decode.
  CompressedFlatLabelSet compressed;
  /// rank -> vertex permutation; empty unless info.has_order.
  std::vector<Vertex> order_by_rank;
  /// Per-entry parent quads, aligned index-for-index with the flat entry
  /// array; empty unless info.has_parents. Points into the mapping (kept
  /// alive by `labels`).
  std::span<const Vertex> parents;
};

/// Structural-validation depth for snapshot loads. Mirrors
/// FlatLabelSet::ValidateLevel; the tiers differ in which mmap'd pages a
/// load faults in, which is the whole cost model of the zero-copy path.
enum class SnapshotVerifyLevel : uint8_t {
  /// Header page + O(vertices) offset arrays. The default: load time is
  /// independent of label count, but query kernels trust the hub-directory
  /// and entry payloads as written.
  kOffsets = 0,
  /// + O(hub-groups) directory-bounds scan: proves every group boundary
  /// the kernels index with stays inside its entry slice, closing the
  /// crash window on corrupted group data while never touching an entry
  /// page. Load time grows with label count, but only through the 8-byte
  /// directory, not the 12-byte entries.
  kDirectory = 1,
  /// + O(entries) per-entry invariants; faults in the whole file.
  kDeep = 2,
};

struct SnapshotLoadOptions {
  /// Verify the CRC-32C of every section at load time. Costs a full
  /// sequential read of the file; off by default so load stays
  /// O(vertices). The header checksum is always verified.
  bool verify_checksums = false;
  /// Structural validation tier (see SnapshotVerifyLevel).
  SnapshotVerifyLevel verify_level = SnapshotVerifyLevel::kOffsets;
  /// Legacy spelling of verify_level = kDeep; the effective tier is the
  /// deeper of the two knobs.
  bool deep_validate = false;
};
// Trust model: the default (everything off) validates the header page and
// the O(vertices) offset arrays only, so query kernels trust the section
// PAYLOADS (entries, hub-directory begins) as written — bit rot or
// tampering there can misanswer or crash the server. verify_level =
// kDirectory removes the crash classes at O(hub-groups) cost; snapshots
// you did not just write yourself should be opened with checksums on and
// verify_level = kDeep (CLI --verify), which makes every corruption class
// a clean Status.

struct SnapshotWriteOptions {
  /// Store the labels delta/varint-compressed (v3 sections, ~3-4x
  /// smaller; see labeling/compressed_flat.h). Incompatible with a
  /// parents payload: the parent quads align with the flat entry array,
  /// which a compressed file does not carry.
  bool compress = false;
};

/// Writes a full-range snapshot of `flat`. Pass the index's order so
/// WcIndex::LoadMmap can restore rank lookups; pass nullptr for a
/// label-only snapshot (servable through ShardedQueryEngine or raw views).
/// `parents`, when non-empty, must hold exactly one parent vertex per flat
/// entry (same order) and is written as the v2 parents section.
Status WriteSnapshot(const std::string& path, const FlatLabelSet& flat,
                     const VertexOrder* order,
                     std::span<const Vertex> parents = {},
                     const SnapshotWriteOptions& write_options = {});

/// Writes the shard of `flat` covering local vertices [begin, end) of a
/// logical index with `num_vertices_total` vertices. Offset arrays are
/// rebased so the shard file stands alone. Shards carry no order section.
/// `parents`, when non-empty, is the FULL index's per-entry parent array;
/// the shard's slice is written alongside its entries. Under
/// `write_options.compress` each shard is compressed independently (its
/// own dictionary), so shard files remain self-contained.
Status WriteSnapshotShard(const std::string& path, const FlatLabelSet& flat,
                          uint64_t begin, uint64_t end,
                          uint64_t num_vertices_total,
                          std::span<const Vertex> parents = {},
                          const SnapshotWriteOptions& write_options = {});

/// Maps `path` and returns zero-copy label views into it. Fails with a
/// clean Status on IO errors, bad magic, unsupported version, header
/// corruption, section-table inconsistencies, and (under the options)
/// section checksum or structural corruption. Never throws or crashes on
/// malformed headers.
Result<MappedSnapshot> LoadSnapshotMmap(const std::string& path,
                                        const SnapshotLoadOptions& options = {});

/// Reads only the header of `path` (no section access). Cheap way for
/// tools to introspect a snapshot.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

}  // namespace wcsd

#endif  // WCSD_LABELING_SNAPSHOT_H_
