#include "labeling/query.h"

#include <algorithm>

namespace wcsd {

size_t FirstWithQuality(std::span<const LabelEntry> entries, size_t begin,
                        size_t end, Quality w) {
  // Qualities ascend within a hub group (Theorem 3): binary search.
  size_t lo = begin, hi = end;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].quality >= w) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Distance QueryLabelsScan(std::span<const LabelEntry> ls,
                         std::span<const LabelEntry> lt, Quality w) {
  Distance best = kInfDistance;
  for (const LabelEntry& ei : ls) {
    if (ei.quality < w) continue;
    for (const LabelEntry& ej : lt) {
      if (ej.hub != ei.hub || ej.quality < w) continue;
      Distance sum = ei.dist + ej.dist;
      if (sum < best) best = sum;
    }
  }
  return best;
}

namespace {

// Advances `i` to the end of the hub group starting at `i`.
inline size_t GroupEnd(std::span<const LabelEntry> entries, size_t i) {
  Rank hub = entries[i].hub;
  do {
    ++i;
  } while (i < entries.size() && entries[i].hub == hub);
  return i;
}

// Locates the hub group for `hub` in `entries` via binary search over the
// rank-sorted label. Returns [begin, end), empty if absent.
inline std::pair<size_t, size_t> FindGroup(std::span<const LabelEntry> entries,
                                           Rank hub) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), hub,
      [](const LabelEntry& e, Rank h) { return e.hub < h; });
  size_t begin = static_cast<size_t>(it - entries.begin());
  if (begin == entries.size() || entries[begin].hub != hub) {
    return {begin, begin};
  }
  return {begin, GroupEnd(entries, begin)};
}

}  // namespace

Distance QueryLabelsHubGrouped(std::span<const LabelEntry> ls,
                               std::span<const LabelEntry> lt, Quality w) {
  if (ls.empty() || lt.empty()) return kInfDistance;
  Distance best = kInfDistance;
  // Hubs present in L(s) are exactly ranks <= rank(s); the label's last hub
  // is rank(s) itself (the self entry). Algorithm 4 Line 2's "Ij.vertex > s"
  // prune translates to: skip L(t) groups whose hub exceeds that rank.
  Rank max_hub_s = ls.back().hub;
  for (size_t j = 0; j < lt.size();) {
    size_t je = GroupEnd(lt, j);
    Rank hub = lt[j].hub;
    if (hub > max_hub_s) break;  // Sorted: every later group is larger too.
    auto [ib, ie] = FindGroup(ls, hub);
    if (ib != ie) {
      for (size_t jj = j; jj < je; ++jj) {
        if (lt[jj].quality < w) continue;
        for (size_t ii = ib; ii < ie; ++ii) {
          if (ls[ii].quality < w) continue;
          Distance sum = ls[ii].dist + lt[jj].dist;
          if (sum < best) best = sum;
        }
      }
    }
    j = je;
  }
  return best;
}

Distance QueryLabelsBinary(std::span<const LabelEntry> ls,
                           std::span<const LabelEntry> lt, Quality w) {
  if (ls.empty() || lt.empty()) return kInfDistance;
  Distance best = kInfDistance;
  Rank max_hub_s = ls.back().hub;
  for (size_t j = 0; j < lt.size();) {
    size_t je = GroupEnd(lt, j);
    Rank hub = lt[j].hub;
    if (hub > max_hub_s) break;
    auto [ib, ie] = FindGroup(ls, hub);
    if (ib != ie) {
      // Theorem 3: the first constraint-satisfying entry in each group has
      // the minimal distance for that hub.
      size_t jj = FirstWithQuality(lt, j, je, w);
      size_t ii = FirstWithQuality(ls, ib, ie, w);
      if (jj != je && ii != ie) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < best) best = sum;
      }
    }
    j = je;
  }
  return best;
}

Distance QueryLabelsMerge(std::span<const LabelEntry> ls,
                          std::span<const LabelEntry> lt, Quality w) {
  Distance best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      i = GroupEnd(ls, i);
    } else if (hj < hi) {
      j = GroupEnd(lt, j);
    } else {
      size_t ie = GroupEnd(ls, i);
      size_t je = GroupEnd(lt, j);
      size_t ii = FirstWithQuality(ls, i, ie, w);
      size_t jj = FirstWithQuality(lt, j, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < best) best = sum;
      }
      i = ie;
      j = je;
    }
  }
  return best;
}

Distance QueryLabels(std::span<const LabelEntry> ls,
                     std::span<const LabelEntry> lt, Quality w,
                     QueryImpl impl) {
  switch (impl) {
    case QueryImpl::kScan:
      return QueryLabelsScan(ls, lt, w);
    case QueryImpl::kHubGrouped:
      return QueryLabelsHubGrouped(ls, lt, w);
    case QueryImpl::kBinary:
      return QueryLabelsBinary(ls, lt, w);
    case QueryImpl::kMerge:
      return QueryLabelsMerge(ls, lt, w);
  }
  return kInfDistance;
}

HubQueryResult QueryLabelsMergeWithHub(std::span<const LabelEntry> ls,
                                       std::span<const LabelEntry> lt,
                                       Quality w) {
  HubQueryResult result;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      i = GroupEnd(ls, i);
    } else if (hj < hi) {
      j = GroupEnd(lt, j);
    } else {
      size_t ie = GroupEnd(ls, i);
      size_t je = GroupEnd(lt, j);
      size_t ii = FirstWithQuality(ls, i, ie, w);
      size_t jj = FirstWithQuality(lt, j, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < result.dist) {
          result.dist = sum;
          result.via_hub = hi;
          result.dist_from_s = ls[ii].dist;
          result.dist_to_t = lt[jj].dist;
        }
      }
      i = ie;
      j = je;
    }
  }
  return result;
}

}  // namespace wcsd
