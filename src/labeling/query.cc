#include "labeling/query.h"

#include <algorithm>
#include <cmath>

namespace wcsd {

size_t FirstWithQuality(std::span<const LabelEntry> entries, size_t begin,
                        size_t end, Quality w) {
  // Qualities ascend within a hub group (Theorem 3): binary search.
  size_t lo = begin, hi = end;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].quality >= w) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Distance QueryLabelsScan(std::span<const LabelEntry> ls,
                         std::span<const LabelEntry> lt, Quality w) {
  Distance best = kInfDistance;
  // Both labels are sorted by hub rank, so the matching position in L(t)
  // only ever moves forward: skip whole hub groups instead of rescanning
  // L(t) for every entry of L(s) (the seed's O(|L(s)|*|L(t)|) shape).
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      ++i;
    } else if (hj < hi) {
      ++j;
    } else {
      // Full scan of the two matched groups — the Algorithm 2 flavor, with
      // no reliance on intra-group quality ordering.
      size_t ie = i;
      do { ++ie; } while (ie < ls.size() && ls[ie].hub == hi);
      size_t je = j;
      do { ++je; } while (je < lt.size() && lt[je].hub == hi);
      for (size_t ii = i; ii < ie; ++ii) {
        if (ls[ii].quality < w) continue;
        for (size_t jj = j; jj < je; ++jj) {
          if (lt[jj].quality < w) continue;
          Distance sum = ls[ii].dist + lt[jj].dist;
          if (sum < best) best = sum;
        }
      }
      i = ie;
      j = je;
    }
  }
  return best;
}

namespace {

// Advances `i` to the end of the hub group starting at `i`.
inline size_t GroupEnd(std::span<const LabelEntry> entries, size_t i) {
  Rank hub = entries[i].hub;
  do {
    ++i;
  } while (i < entries.size() && entries[i].hub == hub);
  return i;
}

// Locates the hub group for `hub` in `entries` via binary search over the
// rank-sorted label. Returns [begin, end), empty if absent.
inline std::pair<size_t, size_t> FindGroup(std::span<const LabelEntry> entries,
                                           Rank hub) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), hub,
      [](const LabelEntry& e, Rank h) { return e.hub < h; });
  size_t begin = static_cast<size_t>(it - entries.begin());
  if (begin == entries.size() || entries[begin].hub != hub) {
    return {begin, begin};
  }
  return {begin, GroupEnd(entries, begin)};
}

}  // namespace

Distance QueryLabelsHubGrouped(std::span<const LabelEntry> ls,
                               std::span<const LabelEntry> lt, Quality w) {
  if (ls.empty() || lt.empty()) return kInfDistance;
  Distance best = kInfDistance;
  // Hubs present in L(s) are exactly ranks <= rank(s); the label's last hub
  // is rank(s) itself (the self entry). Algorithm 4 Line 2's "Ij.vertex > s"
  // prune translates to: skip L(t) groups whose hub exceeds that rank.
  Rank max_hub_s = ls.back().hub;
  for (size_t j = 0; j < lt.size();) {
    size_t je = GroupEnd(lt, j);
    Rank hub = lt[j].hub;
    if (hub > max_hub_s) break;  // Sorted: every later group is larger too.
    auto [ib, ie] = FindGroup(ls, hub);
    if (ib != ie) {
      for (size_t jj = j; jj < je; ++jj) {
        if (lt[jj].quality < w) continue;
        for (size_t ii = ib; ii < ie; ++ii) {
          if (ls[ii].quality < w) continue;
          Distance sum = ls[ii].dist + lt[jj].dist;
          if (sum < best) best = sum;
        }
      }
    }
    j = je;
  }
  return best;
}

Distance QueryLabelsBinary(std::span<const LabelEntry> ls,
                           std::span<const LabelEntry> lt, Quality w) {
  if (ls.empty() || lt.empty()) return kInfDistance;
  Distance best = kInfDistance;
  Rank max_hub_s = ls.back().hub;
  for (size_t j = 0; j < lt.size();) {
    size_t je = GroupEnd(lt, j);
    Rank hub = lt[j].hub;
    if (hub > max_hub_s) break;
    auto [ib, ie] = FindGroup(ls, hub);
    if (ib != ie) {
      // Theorem 3: the first constraint-satisfying entry in each group has
      // the minimal distance for that hub.
      size_t jj = FirstWithQuality(lt, j, je, w);
      size_t ii = FirstWithQuality(ls, ib, ie, w);
      if (jj != je && ii != ie) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < best) best = sum;
      }
    }
    j = je;
  }
  return best;
}

Distance QueryLabelsMerge(std::span<const LabelEntry> ls,
                          std::span<const LabelEntry> lt, Quality w) {
  Distance best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      i = GroupEnd(ls, i);
    } else if (hj < hi) {
      j = GroupEnd(lt, j);
    } else {
      size_t ie = GroupEnd(ls, i);
      size_t je = GroupEnd(lt, j);
      size_t ii = FirstWithQuality(ls, i, ie, w);
      size_t jj = FirstWithQuality(lt, j, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < best) best = sum;
      }
      i = ie;
      j = je;
    }
  }
  return best;
}

Distance QueryLabels(std::span<const LabelEntry> ls,
                     std::span<const LabelEntry> lt, Quality w,
                     QueryImpl impl) {
  switch (impl) {
    case QueryImpl::kScan:
      return QueryLabelsScan(ls, lt, w);
    case QueryImpl::kHubGrouped:
      return QueryLabelsHubGrouped(ls, lt, w);
    case QueryImpl::kBinary:
      return QueryLabelsBinary(ls, lt, w);
    case QueryImpl::kMerge:
      return QueryLabelsMerge(ls, lt, w);
  }
  return kInfDistance;
}

namespace {

// Binary search over a hub directory for `hub`; returns the group index or
// groups.size() if absent. Directory elements are 8 bytes, so this touches
// ~1/3 the cache lines of the same search over 12-byte entries.
inline size_t FindGroupFlat(std::span<const HubGroup> groups, Rank hub) {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), hub,
      [](const HubGroup& g, Rank h) { return g.hub < h; });
  if (it == groups.end() || it->hub != hub) return groups.size();
  return static_cast<size_t>(it - groups.begin());
}

}  // namespace

Distance QueryFlatScan(const FlatLabelView& ls, const FlatLabelView& lt,
                       Quality w) {
  return QueryLabelsScan(ls.entries, lt.entries, w);
}

Distance QueryFlatHubGrouped(const FlatLabelView& ls, const FlatLabelView& lt,
                             Quality w) {
  if (ls.groups.empty() || lt.groups.empty()) return kInfDistance;
  Distance best = kInfDistance;
  Rank max_hub_s = ls.groups.back().hub;
  for (size_t gt = 0; gt < lt.groups.size(); ++gt) {
    Rank hub = lt.groups[gt].hub;
    if (hub > max_hub_s) break;
    size_t gs = FindGroupFlat(ls.groups, hub);
    if (gs == ls.groups.size()) continue;
    size_t jb = lt.groups[gt].begin, je = lt.GroupEnd(gt);
    size_t ib = ls.groups[gs].begin, ie = ls.GroupEnd(gs);
    for (size_t jj = jb; jj < je; ++jj) {
      if (lt.entries[jj].quality < w) continue;
      for (size_t ii = ib; ii < ie; ++ii) {
        if (ls.entries[ii].quality < w) continue;
        Distance sum = ls.entries[ii].dist + lt.entries[jj].dist;
        if (sum < best) best = sum;
      }
    }
  }
  return best;
}

Distance QueryFlatBinary(const FlatLabelView& ls, const FlatLabelView& lt,
                         Quality w) {
  if (ls.groups.empty() || lt.groups.empty()) return kInfDistance;
  Distance best = kInfDistance;
  Rank max_hub_s = ls.groups.back().hub;
  for (size_t gt = 0; gt < lt.groups.size(); ++gt) {
    Rank hub = lt.groups[gt].hub;
    if (hub > max_hub_s) break;
    size_t gs = FindGroupFlat(ls.groups, hub);
    if (gs == ls.groups.size()) continue;
    size_t jb = lt.groups[gt].begin, je = lt.GroupEnd(gt);
    size_t ib = ls.groups[gs].begin, ie = ls.GroupEnd(gs);
    size_t jj = FirstWithQuality(lt.entries, jb, je, w);
    size_t ii = FirstWithQuality(ls.entries, ib, ie, w);
    if (jj != je && ii != ie) {
      Distance sum = ls.entries[ii].dist + lt.entries[jj].dist;
      if (sum < best) best = sum;
    }
  }
  return best;
}

Distance QueryFlatMerge(const FlatLabelView& ls, const FlatLabelView& lt,
                        Quality w) {
  Distance best = kInfDistance;
  size_t gs = 0, gt = 0;
  while (gs < ls.groups.size() && gt < lt.groups.size()) {
    Rank hs = ls.groups[gs].hub, ht = lt.groups[gt].hub;
    if (hs < ht) {
      ++gs;
    } else if (ht < hs) {
      ++gt;
    } else {
      size_t ib = ls.groups[gs].begin, ie = ls.GroupEnd(gs);
      size_t jb = lt.groups[gt].begin, je = lt.GroupEnd(gt);
      size_t ii = FirstWithQuality(ls.entries, ib, ie, w);
      size_t jj = FirstWithQuality(lt.entries, jb, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls.entries[ii].dist + lt.entries[jj].dist;
        if (sum < best) best = sum;
      }
      ++gs;
      ++gt;
    }
  }
  return best;
}

Distance QueryFlat(const FlatLabelView& ls, const FlatLabelView& lt, Quality w,
                   QueryImpl impl) {
  switch (impl) {
    case QueryImpl::kScan:
      return QueryFlatScan(ls, lt, w);
    case QueryImpl::kHubGrouped:
      return QueryFlatHubGrouped(ls, lt, w);
    case QueryImpl::kBinary:
      return QueryFlatBinary(ls, lt, w);
    case QueryImpl::kMerge:
      return QueryFlatMerge(ls, lt, w);
  }
  return kInfDistance;
}

HubQueryResult QueryFlatMergeWithHub(const FlatLabelView& ls,
                                     const FlatLabelView& lt, Quality w) {
  HubQueryResult result;
  size_t gs = 0, gt = 0;
  while (gs < ls.groups.size() && gt < lt.groups.size()) {
    Rank hs = ls.groups[gs].hub, ht = lt.groups[gt].hub;
    if (hs < ht) {
      ++gs;
    } else if (ht < hs) {
      ++gt;
    } else {
      size_t ib = ls.groups[gs].begin, ie = ls.GroupEnd(gs);
      size_t jb = lt.groups[gt].begin, je = lt.GroupEnd(gt);
      size_t ii = FirstWithQuality(ls.entries, ib, ie, w);
      size_t jj = FirstWithQuality(lt.entries, jb, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls.entries[ii].dist + lt.entries[jj].dist;
        if (sum < result.dist) {
          result.dist = sum;
          result.via_hub = hs;
          result.dist_from_s = ls.entries[ii].dist;
          result.dist_to_t = lt.entries[jj].dist;
        }
      }
      ++gs;
      ++gt;
    }
  }
  return result;
}

namespace {

// Relaxes the two interval breakpoints over one matched hub-group pair
// [ib, ie) x [jb, je), given the already-known answer d_star:
//   * hi_q — the largest quality q such that some pair with
//     dist sum <= d_star has min(quality_s, quality_t) = q. The answer
//     stays d_star exactly while w <= max-over-groups of hi_q.
//   * lo_q — the same for pairs with dist sum < d_star: at any w <= lo_q
//     a strictly better pair becomes usable, so the answer drops.
// Within a group qualities and distances both strictly ascend (Theorem 3),
// so for each i the best feasible j is the largest one whose sum fits, and
// that j only moves left as i advances: two descending pointers, one per
// threshold, O(group) total. Sums are widened to 64 bits so the kernel
// never relies on the label distances staying small.
inline void RelaxGroupBreakpoints(std::span<const LabelEntry> es, size_t ib,
                                  size_t ie, std::span<const LabelEntry> et,
                                  size_t jb, size_t je, Distance d_star,
                                  Quality* lo_q, Quality* hi_q) {
  if (d_star == kInfDistance) {
    // Unreachable at w: every pair is a "strictly better" pair, and the
    // best min-quality over the group is attained by the two last (highest
    // quality) entries.
    Quality q = std::min(es[ie - 1].quality, et[je - 1].quality);
    if (q > *lo_q) *lo_q = q;
    return;
  }
  const uint64_t d = d_star;
  size_t j_eq = je;  // pairs with sum <= d_star
  size_t j_lt = je;  // pairs with sum <  d_star
  for (size_t i = ib; i < ie; ++i) {
    const uint64_t ds = es[i].dist;
    while (j_eq > jb && ds + uint64_t{et[j_eq - 1].dist} > d) --j_eq;
    if (j_eq == jb) break;  // larger i only shrinks feasibility
    Quality q = std::min(es[i].quality, et[j_eq - 1].quality);
    if (q > *hi_q) *hi_q = q;
    while (j_lt > jb && ds + uint64_t{et[j_lt - 1].dist} >= d) --j_lt;
    if (j_lt > jb) {
      q = std::min(es[i].quality, et[j_lt - 1].quality);
      if (q > *lo_q) *lo_q = q;
    }
  }
}

// Converts the breakpoints accumulated across groups into the closed
// maximal interval. The constant region is (lo_q, hi_q] over the reals;
// nextafter turns the open lower end into its exact closed float form.
inline IntervalQueryResult FinishInterval(Distance d_star, Quality lo_q,
                                          Quality hi_q) {
  IntervalQueryResult result;
  result.dist = d_star;
  result.w_lo =
      lo_q == -kInfQuality ? -kInfQuality : std::nextafter(lo_q, kInfQuality);
  result.w_hi = d_star == kInfDistance ? kInfQuality : hi_q;
  return result;
}

}  // namespace

IntervalQueryResult QueryLabelsMergeWithInterval(
    std::span<const LabelEntry> ls, std::span<const LabelEntry> lt,
    Quality w) {
  const Distance d_star = QueryLabelsMerge(ls, lt, w);
  Quality lo_q = -kInfQuality;
  Quality hi_q = -kInfQuality;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      i = GroupEnd(ls, i);
    } else if (hj < hi) {
      j = GroupEnd(lt, j);
    } else {
      size_t ie = GroupEnd(ls, i);
      size_t je = GroupEnd(lt, j);
      RelaxGroupBreakpoints(ls, i, ie, lt, j, je, d_star, &lo_q, &hi_q);
      i = ie;
      j = je;
    }
  }
  return FinishInterval(d_star, lo_q, hi_q);
}

IntervalQueryResult QueryFlatMergeWithInterval(const FlatLabelView& ls,
                                               const FlatLabelView& lt,
                                               Quality w) {
  const Distance d_star = QueryFlatMerge(ls, lt, w);
  Quality lo_q = -kInfQuality;
  Quality hi_q = -kInfQuality;
  size_t gs = 0, gt = 0;
  while (gs < ls.groups.size() && gt < lt.groups.size()) {
    Rank hs = ls.groups[gs].hub, ht = lt.groups[gt].hub;
    if (hs < ht) {
      ++gs;
    } else if (ht < hs) {
      ++gt;
    } else {
      RelaxGroupBreakpoints(ls.entries, ls.groups[gs].begin, ls.GroupEnd(gs),
                            lt.entries, lt.groups[gt].begin, lt.GroupEnd(gt),
                            d_star, &lo_q, &hi_q);
      ++gs;
      ++gt;
    }
  }
  return FinishInterval(d_star, lo_q, hi_q);
}

HubQueryResult QueryLabelsMergeWithHub(std::span<const LabelEntry> ls,
                                       std::span<const LabelEntry> lt,
                                       Quality w) {
  HubQueryResult result;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    Rank hi = ls[i].hub, hj = lt[j].hub;
    if (hi < hj) {
      i = GroupEnd(ls, i);
    } else if (hj < hi) {
      j = GroupEnd(lt, j);
    } else {
      size_t ie = GroupEnd(ls, i);
      size_t je = GroupEnd(lt, j);
      size_t ii = FirstWithQuality(ls, i, ie, w);
      size_t jj = FirstWithQuality(lt, j, je, w);
      if (ii != ie && jj != je) {
        Distance sum = ls[ii].dist + lt[jj].dist;
        if (sum < result.dist) {
          result.dist = sum;
          result.via_hub = hi;
          result.dist_from_s = ls[ii].dist;
          result.dist_to_t = lt[jj].dist;
        }
      }
      i = ie;
      j = je;
    }
  }
  return result;
}

}  // namespace wcsd
