#include "labeling/flat_label_set.h"

#include <fstream>

namespace wcsd {

FlatLabelSet FlatLabelSet::FromLabelSet(const LabelSet& labels) {
  FlatLabelSet flat;
  const size_t n = labels.NumVertices();
  flat.offsets_.reserve(n + 1);
  flat.group_offsets_.reserve(n + 1);
  flat.entries_.reserve(labels.TotalEntries());
  flat.offsets_.push_back(0);
  flat.group_offsets_.push_back(0);
  for (Vertex v = 0; v < n; ++v) {
    auto lv = labels.For(v);
    for (size_t i = 0; i < lv.size(); ++i) {
      if (i == 0 || lv[i].hub != lv[i - 1].hub) {
        flat.groups_.push_back({lv[i].hub, static_cast<uint32_t>(i)});
      }
      flat.entries_.push_back(lv[i]);
    }
    flat.offsets_.push_back(flat.entries_.size());
    flat.group_offsets_.push_back(flat.groups_.size());
  }
  return flat;
}

LabelSet FlatLabelSet::ToLabelSet() const {
  const size_t n = NumVertices();
  LabelSet labels(n);
  for (Vertex v = 0; v < n; ++v) {
    auto lv = For(v);
    auto* out = labels.Mutable(v);
    out->assign(lv.begin(), lv.end());
  }
  return labels;
}

namespace {
constexpr uint64_t kFlatMagic = 0x57435344'464c4154ULL;  // "WCSDFLAT"

template <typename T>
void WriteVector(std::ofstream& out, const std::vector<T>& values) {
  uint64_t count = values.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

// Reads a length-prefixed vector, validating the count against the bytes
// actually left in the file so a corrupted header returns Corruption
// instead of a std::bad_alloc on resize.
template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* values,
                uint64_t* bytes_left) {
  uint64_t count = 0;
  if (*bytes_left < sizeof(count)) return false;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return false;
  *bytes_left -= sizeof(count);
  if (count > *bytes_left / sizeof(T)) return false;
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  *bytes_left -= count * sizeof(T);
  return static_cast<bool>(in);
}
}  // namespace

Status FlatLabelSet::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kFlatMagic), sizeof(kFlatMagic));
  WriteVector(out, offsets_);
  WriteVector(out, entries_);
  WriteVector(out, group_offsets_);
  WriteVector(out, groups_);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<FlatLabelSet> FlatLabelSet::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t bytes_left = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint64_t magic = 0;
  if (bytes_left < sizeof(magic)) {
    return Status::Corruption("truncated header in " + path);
  }
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kFlatMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  bytes_left -= sizeof(magic);
  FlatLabelSet flat;
  if (!ReadVector(in, &flat.offsets_, &bytes_left) ||
      !ReadVector(in, &flat.entries_, &bytes_left) ||
      !ReadVector(in, &flat.group_offsets_, &bytes_left) ||
      !ReadVector(in, &flat.groups_, &bytes_left)) {
    return Status::Corruption("truncated flat labels in " + path);
  }
  // Structural validation: offsets must be monotone and end at the array
  // sizes, and every vertex must have consistent entry/group slices.
  const size_t n = flat.NumVertices();
  if (flat.group_offsets_.size() != flat.offsets_.size() ||
      (flat.offsets_.empty() && !flat.entries_.empty()) ||
      (!flat.offsets_.empty() &&
       (flat.offsets_.front() != 0 || flat.group_offsets_.front() != 0 ||
        flat.offsets_.back() != flat.entries_.size() ||
        flat.group_offsets_.back() != flat.groups_.size()))) {
    return Status::Corruption("inconsistent flat offsets in " + path);
  }
  for (Vertex v = 0; v < n; ++v) {
    if (flat.offsets_[v] > flat.offsets_[v + 1] ||
        flat.group_offsets_[v] > flat.group_offsets_[v + 1]) {
      return Status::Corruption("non-monotone flat offsets in " + path);
    }
    FlatLabelView view = flat.View(v);
    size_t entry = 0;
    for (size_t g = 0; g < view.groups.size(); ++g) {
      size_t ge = view.GroupEnd(g);
      if (view.groups[g].begin != entry || ge <= entry ||
          ge > view.entries.size()) {
        return Status::Corruption("bad hub directory in " + path);
      }
      if (g > 0 && view.groups[g].hub <= view.groups[g - 1].hub) {
        return Status::Corruption("unsorted hub directory in " + path);
      }
      for (size_t i = entry; i < ge; ++i) {
        if (view.entries[i].hub != view.groups[g].hub ||
            (i > entry && view.entries[i - 1].dist > view.entries[i].dist)) {
          return Status::Corruption("unsorted flat labels in " + path);
        }
      }
      entry = ge;
    }
    if (entry != view.entries.size()) {
      return Status::Corruption("entries outside hub directory in " + path);
    }
  }
  return flat;
}

}  // namespace wcsd
