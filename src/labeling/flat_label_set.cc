#include "labeling/flat_label_set.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>

#include "util/endian.h"

namespace wcsd {

void FlatLabelSet::Adopt(std::shared_ptr<const OwnedArrays> owned) {
  offsets_ = owned->offsets;
  entries_ = owned->entries;
  group_offsets_ = owned->group_offsets;
  groups_ = owned->groups;
  storage_ = std::move(owned);
  external_ = false;
}

FlatLabelSet FlatLabelSet::FromLabelSet(const LabelSet& labels) {
  auto owned = std::make_shared<OwnedArrays>();
  const size_t n = labels.NumVertices();
  owned->offsets.reserve(n + 1);
  owned->group_offsets.reserve(n + 1);
  owned->entries.reserve(labels.TotalEntries());
  owned->offsets.push_back(0);
  owned->group_offsets.push_back(0);
  for (Vertex v = 0; v < n; ++v) {
    auto lv = labels.For(v);
    for (size_t i = 0; i < lv.size(); ++i) {
      if (i == 0 || lv[i].hub != lv[i - 1].hub) {
        owned->groups.push_back({lv[i].hub, static_cast<uint32_t>(i)});
      }
      owned->entries.push_back(lv[i]);
    }
    owned->offsets.push_back(owned->entries.size());
    owned->group_offsets.push_back(owned->groups.size());
  }
  FlatLabelSet flat;
  flat.Adopt(std::move(owned));
  return flat;
}

FlatLabelSet FlatLabelSet::FromExternal(
    std::span<const uint64_t> offsets, std::span<const LabelEntry> entries,
    std::span<const uint64_t> group_offsets, std::span<const HubGroup> groups,
    std::shared_ptr<const void> keep_alive) {
  FlatLabelSet flat;
  flat.offsets_ = offsets;
  flat.entries_ = entries;
  flat.group_offsets_ = group_offsets;
  flat.groups_ = groups;
  flat.storage_ = std::move(keep_alive);
  flat.external_ = true;
  return flat;
}

LabelSet FlatLabelSet::ToLabelSet() const {
  const size_t n = NumVertices();
  LabelSet labels(n);
  for (Vertex v = 0; v < n; ++v) {
    auto lv = For(v);
    auto* out = labels.Mutable(v);
    out->assign(lv.begin(), lv.end());
  }
  return labels;
}

bool operator==(const FlatLabelSet& a, const FlatLabelSet& b) {
  return std::ranges::equal(a.offsets_, b.offsets_) &&
         std::ranges::equal(a.entries_, b.entries_) &&
         std::ranges::equal(a.group_offsets_, b.group_offsets_) &&
         std::ranges::equal(a.groups_, b.groups_);
}

Status FlatLabelSet::Validate(ValidateLevel level) const {
  if (group_offsets_.size() != offsets_.size() ||
      (offsets_.empty() && !entries_.empty()) ||
      (!offsets_.empty() &&
       (offsets_.front() != 0 || group_offsets_.front() != 0 ||
        offsets_.back() != entries_.size() ||
        group_offsets_.back() != groups_.size()))) {
    return Status::Corruption("inconsistent flat offsets");
  }
  const size_t n = NumVertices();
  for (Vertex v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1] ||
        group_offsets_[v] > group_offsets_[v + 1]) {
      return Status::Corruption("non-monotone flat offsets");
    }
  }
  if (level == ValidateLevel::kShape) return Status::OK();
  const bool deep = level == ValidateLevel::kDeep;
  for (Vertex v = 0; v < n; ++v) {
    // The directory tier works off group `begin`s and the vertex's entry
    // COUNT (from the offsets array): it proves every group boundary the
    // query kernels will index with stays inside the slice, without ever
    // dereferencing — and so faulting in — an entry page.
    const size_t entry_count =
        static_cast<size_t>(offsets_[v + 1] - offsets_[v]);
    std::span<const HubGroup> groups{groups_.data() + group_offsets_[v],
                                     groups_.data() + group_offsets_[v + 1]};
    size_t entry = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
      const size_t ge = g + 1 < groups.size() ? groups[g + 1].begin
                                              : entry_count;
      if (groups[g].begin != entry || ge <= entry || ge > entry_count) {
        return Status::Corruption("bad hub directory");
      }
      if (g > 0 && groups[g].hub <= groups[g - 1].hub) {
        return Status::Corruption("unsorted hub directory");
      }
      if (deep) {
        std::span<const LabelEntry> entries = For(v);
        for (size_t i = entry; i < ge; ++i) {
          if (entries[i].hub != groups[g].hub ||
              (i > entry && entries[i - 1].dist > entries[i].dist)) {
            return Status::Corruption("unsorted flat labels");
          }
        }
      }
      entry = ge;
    }
    if (entry != entry_count) {
      return Status::Corruption("entries outside hub directory");
    }
  }
  return Status::OK();
}

namespace {
constexpr uint64_t kFlatMagic = 0x57435344'464c4154ULL;  // "WCSDFLAT"

template <typename T>
void WriteArray(std::ofstream& out, std::span<const T> values) {
  uint64_t count = values.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

// Reads a length-prefixed vector, validating the count against the bytes
// actually left in the file so a corrupted header returns Corruption
// instead of a std::bad_alloc on resize.
template <typename T>
bool ReadVector(std::ifstream& in, std::vector<T>* values,
                uint64_t* bytes_left) {
  uint64_t count = 0;
  if (*bytes_left < sizeof(count)) return false;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return false;
  *bytes_left -= sizeof(count);
  if (count > *bytes_left / sizeof(T)) return false;
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  *bytes_left -= count * sizeof(T);
  return static_cast<bool>(in);
}
}  // namespace

Status FlatLabelSet::Save(const std::string& path) const {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kFlatMagic), sizeof(kFlatMagic));
  WriteArray(out, offsets_);
  WriteArray(out, entries_);
  WriteArray(out, group_offsets_);
  WriteArray(out, groups_);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<FlatLabelSet> FlatLabelSet::Load(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t bytes_left = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint64_t magic = 0;
  if (bytes_left < sizeof(magic)) {
    return Status::Corruption("truncated header in " + path);
  }
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kFlatMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  bytes_left -= sizeof(magic);
  auto owned = std::make_shared<OwnedArrays>();
  if (!ReadVector(in, &owned->offsets, &bytes_left) ||
      !ReadVector(in, &owned->entries, &bytes_left) ||
      !ReadVector(in, &owned->group_offsets, &bytes_left) ||
      !ReadVector(in, &owned->groups, &bytes_left)) {
    return Status::Corruption("truncated flat labels in " + path);
  }
  FlatLabelSet flat;
  flat.Adopt(std::move(owned));
  Status valid = flat.Validate(ValidateLevel::kDeep);
  if (!valid.ok()) {
    return Status::Corruption(valid.message() + " in " + path);
  }
  return flat;
}

}  // namespace wcsd
