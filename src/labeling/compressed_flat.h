// Compressed flat label storage: the at-rest/cold-tier query backend.
//
// FlatLabelSet spends 12 bytes per entry plus 8 per hub group; on large
// graphs that label mass — not CPU — is what caps index size on one
// machine. CompressedFlatLabelSet keeps every vertex's label as one
// delta/varint byte stream instead: hubs ascend (small deltas), distances
// rise within a hub group (small deltas), and qualities come from the
// graph's few distinct values (a dictionary index). Measured ratio on the
// benchmark fixtures is ~3-4x (see README "Storage tiers").
//
// The layout is GROUP-oriented so query kernels can stream it without
// materializing the label:
//
//   per vertex: varint group_count
//     per group: varint hub_delta   (first group: absolute rank;
//                                    later groups: rank - prev_rank >= 1)
//                varint entry_count (>= 1)
//       per entry: varint dist_delta (first entry: absolute distance;
//                                     later: dist - prev_dist >= 0)
//                  varint qcode      (0 = +inf, else dictionary index + 1)
//
// Alongside the byte blob the set keeps the same two O(vertices) offset
// arrays a FlatLabelSet has (logical entry and group offsets) plus a third
// giving each vertex's byte range, so shard planning, manifest totals and
// per-vertex counts never need a decode. Like FlatLabelSet, the arrays are
// spans over either heap vectors (FromFlat) or externally owned memory —
// an mmap'd snapshot section (labeling/snapshot.h v3), which is what makes
// the cold tier work: compressed label bytes stay on disk and page in on
// first touch.
//
// Trust model mirrors the flat backend: decode paths are BOUNDS-CHECKED
// against the vertex's byte slice (corrupt bytes can misanswer at the
// default load tier but can never read out of bounds); Validate's deeper
// tiers turn every corruption class into a clean Status.

#ifndef WCSD_LABELING_COMPRESSED_FLAT_H_
#define WCSD_LABELING_COMPRESSED_FLAT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "labeling/flat_label_set.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// A vertex's label decoded into caller-owned scratch: the same shape the
/// flat query kernels consume (FlatLabelView over these spans).
struct DecodedLabel {
  std::vector<LabelEntry> entries;
  std::vector<HubGroup> groups;

  FlatLabelView View() const {
    return {{entries.data(), entries.size()}, {groups.data(), groups.size()}};
  }
  void Clear() {
    entries.clear();
    groups.clear();
  }
};

/// Immutable delta/varint-compressed packing of a FlatLabelSet.
class CompressedFlatLabelSet {
 public:
  CompressedFlatLabelSet() = default;

  /// Compresses `flat`. The quality dictionary is derived from the labels
  /// themselves (sorted distinct finite qualities).
  static CompressedFlatLabelSet FromFlat(const FlatLabelSet& flat);

  /// Wraps externally owned arrays without copying — the zero-copy path
  /// for mmap'd compressed snapshots. `keep_alive` (typically the mapping)
  /// is retained for the lifetime of this set and all copies. The caller
  /// is responsible for validation (see Validate).
  static CompressedFlatLabelSet FromExternal(
      std::span<const uint64_t> offsets, std::span<const uint64_t> group_offsets,
      std::span<const uint64_t> comp_offsets, std::span<const uint8_t> blob,
      std::span<const Quality> dictionary,
      std::shared_ptr<const void> keep_alive);

  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t TotalEntries() const { return offsets_.empty() ? 0 : offsets_.back(); }
  size_t TotalGroups() const {
    return group_offsets_.empty() ? 0 : group_offsets_.back();
  }
  size_t EntryCount(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }
  size_t GroupCount(Vertex v) const {
    return group_offsets_[v + 1] - group_offsets_[v];
  }

  /// Bytes of the compressed representation (blob + offsets + dictionary).
  size_t MemoryBytes() const {
    return blob_.size() + dictionary_.size() * sizeof(Quality) +
           (offsets_.size() + group_offsets_.size() + comp_offsets_.size()) *
               sizeof(uint64_t);
  }

  /// What the same labels cost in the flat backend (FlatLabelSet
  /// MemoryBytes) — the numerator of the compression ratio.
  size_t UncompressedBytes() const {
    return TotalEntries() * sizeof(LabelEntry) +
           TotalGroups() * sizeof(HubGroup) +
           (offsets_.size() + group_offsets_.size()) * sizeof(uint64_t);
  }

  /// True when the arrays live in externally owned memory (an mmap'd
  /// snapshot) rather than heap vectors — the cold-tier signal: a decode
  /// of an external vertex may fault label pages in from disk.
  bool external() const { return external_; }

  /// Decodes L(v) into `out` (cleared first). Bounds-checked: any
  /// structural violation — truncated varint, counts disagreeing with the
  /// offset arrays, non-ascending hubs, out-of-range quality code — is a
  /// clean Status and leaves `out` cleared.
  Status DecodeVertex(Vertex v, DecodedLabel* out) const;

  /// Exact inverse of FromFlat (round-trip tests; one-shot migration).
  Result<FlatLabelSet> Decompress() const;

  /// Structural validation. kShape is O(vertices): array shapes, offset
  /// monotonicity, dictionary sortedness. kDirectory and kDeep both cost a
  /// full streaming parse of the blob (compressed streams cannot be
  /// skip-validated the way the flat directory can): kDirectory proves
  /// every stream decodes cleanly with counts matching the offset arrays
  /// and strictly ascending hubs; kDeep additionally checks per-group
  /// distance monotonicity.
  Status Validate(ValidateLevel level) const;

  /// Content fingerprint of the DECODED index: identical to
  /// IndexContentFingerprint over the equivalent FlatLabelSet, so caches
  /// and manifests bind compressed and flat servings of one index to the
  /// same identity. Costs a full decode pass.
  uint64_t ContentFingerprint() const;

  /// Chains this set's decoded entry/group payload CRCs onto the caller's
  /// running values — the shard-set form of ContentFingerprint (see
  /// ShardedQueryEngine::ContentFingerprint). Returns false when a vertex
  /// fails to decode. Costs a full decode pass.
  bool ChainContentCrcs(uint32_t* entries_crc, uint32_t* groups_crc) const;

  /// Raw arrays in storage order, for the snapshot writer.
  std::span<const uint64_t> raw_offsets() const { return offsets_; }
  std::span<const uint64_t> raw_group_offsets() const {
    return group_offsets_;
  }
  std::span<const uint64_t> raw_comp_offsets() const { return comp_offsets_; }
  std::span<const uint8_t> raw_blob() const { return blob_; }
  std::span<const Quality> raw_dictionary() const { return dictionary_; }

  friend bool operator==(const CompressedFlatLabelSet& a,
                         const CompressedFlatLabelSet& b);

 private:
  struct OwnedArrays {
    std::vector<uint64_t> offsets;
    std::vector<uint64_t> group_offsets;
    std::vector<uint64_t> comp_offsets;
    std::vector<uint8_t> blob;
    std::vector<Quality> dictionary;
  };

  void Adopt(std::shared_ptr<const OwnedArrays> owned);

  std::span<const uint64_t> offsets_;        // n+1, logical entry offsets
  std::span<const uint64_t> group_offsets_;  // n+1, logical group offsets
  std::span<const uint64_t> comp_offsets_;   // n+1, byte offsets into blob_
  std::span<const uint8_t> blob_;            // varint streams, vertex-major
  std::span<const Quality> dictionary_;      // sorted distinct finite
  std::shared_ptr<const void> storage_;      // OwnedArrays or mmap handle
  bool external_ = false;
};

/// Streaming kMerge kernel over two compressed labels: two group cursors
/// walk the varint streams directly — matched groups are scanned for the
/// first entry with quality >= w (Theorem 3), unmatched groups are skipped
/// without building a single LabelEntry. Bit-identical to QueryFlatMerge
/// on the decoded labels (tested); bounds-checked, so corrupt bytes
/// degrade to "stream ends early" instead of reading out of range.
Distance QueryCompressedMerge(const CompressedFlatLabelSet& labels, Vertex s,
                              Vertex t, Quality w);

}  // namespace wcsd

#endif  // WCSD_LABELING_COMPRESSED_FLAT_H_
