// Classic Pruned Landmark Labeling (Akiba, Iwata, Yoshida — SIGMOD'13).
//
// The unconstrained 2-hop labeling the paper builds on (§II.B) and the
// building block of the Naïve WCSD baseline (§III): one PLL per filtered
// graph. Entries reuse LabelEntry with quality = +inf (unconstrained).

#ifndef WCSD_LABELING_PLL_H_
#define WCSD_LABELING_PLL_H_

#include "graph/graph.h"
#include "labeling/label_set.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// Pruned landmark labeling index for plain shortest distances.
class Pll {
 public:
  /// Builds the index for `g` using the given vertex order.
  static Pll Build(const QualityGraph& g, VertexOrder order);

  /// Builds with the canonical degree order.
  static Pll Build(const QualityGraph& g) {
    return Build(g, DegreeOrder(g));
  }

  /// Shortest distance between s and t, kInfDistance if disconnected.
  Distance Query(Vertex s, Vertex t) const;

  const LabelSet& labels() const { return labels_; }
  const VertexOrder& order() const { return order_; }

  /// Index size in bytes (entries + vector overhead).
  size_t MemoryBytes() const { return labels_.MemoryBytes(); }

 private:
  Pll(LabelSet labels, VertexOrder order)
      : labels_(std::move(labels)), order_(std::move(order)) {}

  LabelSet labels_;
  VertexOrder order_;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_PLL_H_
