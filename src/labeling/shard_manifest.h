// Shard-set manifests: one artifact naming a whole sharded index.
//
// A sharded snapshot used to be "an ordered list of paths the operator
// promises belong together" — nothing pinned the tiling, the source index,
// or the files' integrity until OpenMmap happened to notice. The manifest
// makes the shard set a first-class artifact: a small versioned,
// CRC-32C-checksummed file recording every shard's path (relative to the
// manifest, so the set is relocatable), its [begin, end) vertex range, its
// entry/group/byte mass, the snapshot header CRC of the file that was
// written, and a content fingerprint of the whole logical index.
// ShardedQueryEngine::OpenManifest opens the set through it and
// cross-checks all of that against the files it maps.
//
// File layout (little-endian fixed width, util/endian.h contract):
//   ManifestHeader
//   shard_count * ShardRecord      (fixed 48 bytes each)
//   concatenated path bytes        (per-record path_bytes, no terminators)
//   u32 manifest_crc               (CRC-32C of every preceding byte)
//
// The planner (labeling/shard_plan.h) decides the tiling; WriteShardSet
// turns a plan into shard snapshot files plus their manifest in one step.

#ifndef WCSD_LABELING_SHARD_MANIFEST_H_
#define WCSD_LABELING_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "labeling/flat_label_set.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// Current manifest format version. Bump on any layout change; readers
/// reject other versions with a clean Status.
inline constexpr uint32_t kShardManifestVersion = 1;

/// One shard as the manifest records it.
struct ShardManifestEntry {
  /// Path as stored: relative to the manifest's directory (the normal
  /// case, keeping the shard set relocatable) or absolute.
  std::string path;
  uint64_t vertex_begin = 0;
  uint64_t vertex_end = 0;
  uint64_t entry_count = 0;
  uint64_t group_count = 0;
  /// Serialized CSR payload bytes (PlannedShard::bytes).
  uint64_t label_bytes = 0;
  /// The shard snapshot's header self-CRC (SnapshotInfo::header_crc); a
  /// swapped or regenerated shard file fails this before any payload read.
  uint32_t snapshot_header_crc = 0;

  friend bool operator==(const ShardManifestEntry&,
                         const ShardManifestEntry&) = default;
};

struct ShardManifest {
  uint64_t num_vertices_total = 0;
  uint64_t total_entries = 0;
  uint64_t total_groups = 0;
  uint64_t total_label_bytes = 0;
  /// Content fingerprint of the logical index (IndexContentFingerprint);
  /// independent of the tiling, so any two shard sets of the same index
  /// carry the same value.
  uint64_t fingerprint = 0;
  std::vector<ShardManifestEntry> shards;

  /// Checks the recorded ranges tile [0, num_vertices_total) in order and
  /// the per-shard masses add up to the recorded totals. Read/Write do NOT
  /// run this — a manifest parses independently of its semantics so
  /// OpenManifest can reject a bad tiling with a precise message (and
  /// tests can craft invalid sets).
  Status ValidateTiling() const;

  friend bool operator==(const ShardManifest&, const ShardManifest&) =
      default;
};

/// Fingerprint of a label set's content: CRC-32C over the entry and
/// hub-directory payload bytes (each seeded with the vertex count),
/// packed (groups_crc << 32) | entries_crc. Computable incrementally from
/// shard slices in tiling order — OpenManifest recomputes it that way
/// under verify_checksums.
uint64_t IndexContentFingerprint(const FlatLabelSet& flat);

/// Serializes `manifest` to `path` (see the file-layout comment above).
Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest);

/// Parses a manifest. Fails with a clean Status on IO errors, bad magic,
/// unsupported version, truncation, checksum mismatch, and inconsistent
/// record tables. Does not touch the shard files.
Result<ShardManifest> ReadShardManifest(const std::string& path);

/// Resolves a manifest-recorded shard path against the manifest's own
/// location: absolute paths pass through, relative ones attach to the
/// manifest's directory.
std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& shard_path);

/// A shard set written to disk: the manifest plus where everything went.
struct WrittenShardSet {
  std::string manifest_path;
  std::vector<std::string> shard_paths;
  ShardManifest manifest;
};

/// Materializes `plan` over `flat`: writes <stem>.shard<k> snapshot files
/// (WriteSnapshotShard) and <stem>.manifest referencing them by relative
/// path. The plan must tile flat's vertex range. Under
/// `write_options.compress` every shard file stores its labels in the
/// compressed v3 sections; the manifest's counts and fingerprint stay
/// LOGICAL (identical to the uncompressed set's manifest), so a shard set
/// keeps one identity across storage backends.
Result<WrittenShardSet> WriteShardSet(
    const std::string& stem, const FlatLabelSet& flat, const ShardPlan& plan,
    const SnapshotWriteOptions& write_options = {});

}  // namespace wcsd

#endif  // WCSD_LABELING_SHARD_MANIFEST_H_
