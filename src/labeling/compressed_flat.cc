#include "labeling/compressed_flat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/checksum.h"

namespace wcsd {

namespace {

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Bounds-checked varint read: advances *p past the value, never past
/// `end`. False on truncation or a value that would overflow 64 bits.
bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t b = *(*p)++;
    value |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Skips the 2 varints/entry payload of a group whose header was already
/// consumed. False on truncation.
bool SkipGroupEntries(const uint8_t** p, const uint8_t* end, uint64_t count) {
  uint64_t scratch;
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetVarint(p, end, &scratch)) return false;
    if (!GetVarint(p, end, &scratch)) return false;
  }
  return true;
}

Status CorruptVertex(Vertex v, const char* what) {
  return Status::Corruption("compressed label stream of vertex " +
                            std::to_string(v) + ": " + what);
}

}  // namespace

void CompressedFlatLabelSet::Adopt(std::shared_ptr<const OwnedArrays> owned) {
  offsets_ = owned->offsets;
  group_offsets_ = owned->group_offsets;
  comp_offsets_ = owned->comp_offsets;
  blob_ = owned->blob;
  dictionary_ = owned->dictionary;
  storage_ = std::move(owned);
  external_ = false;
}

CompressedFlatLabelSet CompressedFlatLabelSet::FromFlat(
    const FlatLabelSet& flat) {
  auto owned = std::make_shared<OwnedArrays>();
  const size_t n = flat.NumVertices();

  // Dictionary: sorted distinct finite qualities across every entry.
  std::vector<Quality> qualities;
  for (const LabelEntry& e : flat.raw_entries()) {
    if (e.quality != kInfQuality) qualities.push_back(e.quality);
  }
  std::sort(qualities.begin(), qualities.end());
  qualities.erase(std::unique(qualities.begin(), qualities.end()),
                  qualities.end());
  owned->dictionary = std::move(qualities);

  auto code_of = [&owned](Quality q) -> uint64_t {
    if (q == kInfQuality) return 0;
    auto it = std::lower_bound(owned->dictionary.begin(),
                               owned->dictionary.end(), q);
    return static_cast<uint64_t>(it - owned->dictionary.begin()) + 1;
  };

  owned->offsets.assign(flat.raw_offsets().begin(), flat.raw_offsets().end());
  owned->group_offsets.assign(flat.raw_group_offsets().begin(),
                              flat.raw_group_offsets().end());
  if (owned->offsets.empty()) owned->offsets.push_back(0);
  if (owned->group_offsets.empty()) owned->group_offsets.push_back(0);

  owned->comp_offsets.reserve(n + 1);
  owned->comp_offsets.push_back(0);
  for (Vertex v = 0; v < n; ++v) {
    const FlatLabelView view = flat.View(v);
    PutVarint(&owned->blob, view.groups.size());
    Rank prev_hub = 0;
    for (size_t g = 0; g < view.groups.size(); ++g) {
      const size_t begin = view.groups[g].begin;
      const size_t end = view.GroupEnd(g);
      PutVarint(&owned->blob,
                g == 0 ? view.groups[g].hub : view.groups[g].hub - prev_hub);
      prev_hub = view.groups[g].hub;
      PutVarint(&owned->blob, end - begin);
      Distance prev_dist = 0;
      for (size_t i = begin; i < end; ++i) {
        PutVarint(&owned->blob, i == begin
                                    ? view.entries[i].dist
                                    : view.entries[i].dist - prev_dist);
        prev_dist = view.entries[i].dist;
        PutVarint(&owned->blob, code_of(view.entries[i].quality));
      }
    }
    owned->comp_offsets.push_back(owned->blob.size());
  }

  CompressedFlatLabelSet out;
  out.Adopt(std::move(owned));
  return out;
}

CompressedFlatLabelSet CompressedFlatLabelSet::FromExternal(
    std::span<const uint64_t> offsets, std::span<const uint64_t> group_offsets,
    std::span<const uint64_t> comp_offsets, std::span<const uint8_t> blob,
    std::span<const Quality> dictionary,
    std::shared_ptr<const void> keep_alive) {
  CompressedFlatLabelSet out;
  out.offsets_ = offsets;
  out.group_offsets_ = group_offsets;
  out.comp_offsets_ = comp_offsets;
  out.blob_ = blob;
  out.dictionary_ = dictionary;
  out.storage_ = std::move(keep_alive);
  out.external_ = true;
  return out;
}

Status CompressedFlatLabelSet::DecodeVertex(Vertex v, DecodedLabel* out) const {
  out->Clear();
  if (v >= NumVertices()) {
    return Status::InvalidArgument("DecodeVertex: vertex out of range");
  }
  // The offset arrays are kShape-validated at load, but clamp anyway so a
  // corrupt slice can never index past the blob.
  const uint64_t lo = std::min<uint64_t>(comp_offsets_[v], blob_.size());
  const uint64_t hi = std::min<uint64_t>(comp_offsets_[v + 1], blob_.size());
  if (lo > hi) return CorruptVertex(v, "byte range inverted");
  const uint8_t* p = blob_.data() + lo;
  const uint8_t* const end = blob_.data() + hi;

  const uint64_t want_groups = GroupCount(v);
  const uint64_t want_entries = EntryCount(v);
  uint64_t group_count = 0;
  if (!GetVarint(&p, end, &group_count)) {
    return CorruptVertex(v, "truncated group count");
  }
  if (group_count != want_groups) {
    out->Clear();
    return CorruptVertex(v, "group count disagrees with directory");
  }
  out->entries.reserve(want_entries);
  out->groups.reserve(want_groups);
  uint64_t hub = 0;
  for (uint64_t g = 0; g < group_count; ++g) {
    uint64_t delta = 0, count = 0;
    if (!GetVarint(&p, end, &delta) || !GetVarint(&p, end, &count)) {
      out->Clear();
      return CorruptVertex(v, "truncated group header");
    }
    if (g > 0 && delta == 0) {
      out->Clear();
      return CorruptVertex(v, "non-ascending hub rank");
    }
    hub = g == 0 ? delta : hub + delta;
    if (hub > std::numeric_limits<Rank>::max() || count == 0 ||
        out->entries.size() + count > want_entries) {
      out->Clear();
      return CorruptVertex(v, "group header out of range");
    }
    out->groups.push_back(HubGroup{static_cast<Rank>(hub),
                                   static_cast<uint32_t>(out->entries.size())});
    uint64_t dist = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t dist_delta = 0, qcode = 0;
      if (!GetVarint(&p, end, &dist_delta) || !GetVarint(&p, end, &qcode)) {
        out->Clear();
        return CorruptVertex(v, "truncated entry");
      }
      dist = i == 0 ? dist_delta : dist + dist_delta;
      if (dist > std::numeric_limits<Distance>::max() ||
          qcode > dictionary_.size()) {
        out->Clear();
        return CorruptVertex(v, "entry out of range");
      }
      const Quality quality =
          qcode == 0 ? kInfQuality : dictionary_[qcode - 1];
      out->entries.push_back(LabelEntry{static_cast<Rank>(hub),
                                        static_cast<Distance>(dist), quality});
    }
  }
  if (out->entries.size() != want_entries) {
    out->Clear();
    return CorruptVertex(v, "entry count disagrees with offsets");
  }
  if (p != end) {
    out->Clear();
    return CorruptVertex(v, "trailing bytes after label stream");
  }
  return Status::OK();
}

Result<FlatLabelSet> CompressedFlatLabelSet::Decompress() const {
  LabelSet labels(NumVertices());
  DecodedLabel scratch;
  for (Vertex v = 0; v < NumVertices(); ++v) {
    WCSD_RETURN_NOT_OK(DecodeVertex(v, &scratch));
    *labels.Mutable(v) = scratch.entries;
  }
  return FlatLabelSet::FromLabelSet(labels);
}

Status CompressedFlatLabelSet::Validate(ValidateLevel level) const {
  // kShape: array-shape consistency, O(vertices). The three offset arrays
  // share one length; every one starts at 0 and ascends; the byte offsets
  // end exactly at the blob; the dictionary is strictly ascending and
  // finite (a sorted dictionary is what keeps FromFlat/decode stable).
  if (offsets_.empty() || group_offsets_.size() != offsets_.size() ||
      comp_offsets_.size() != offsets_.size()) {
    return Status::Corruption("compressed label arrays have mismatched shapes");
  }
  if (offsets_.front() != 0 || group_offsets_.front() != 0 ||
      comp_offsets_.front() != 0) {
    return Status::Corruption("compressed label offsets do not start at 0");
  }
  if (comp_offsets_.back() != blob_.size()) {
    return Status::Corruption(
        "compressed byte offsets do not cover the payload");
  }
  for (size_t v = 0; v + 1 < offsets_.size(); ++v) {
    if (offsets_[v] > offsets_[v + 1] ||
        group_offsets_[v] > group_offsets_[v + 1] ||
        comp_offsets_[v] > comp_offsets_[v + 1]) {
      return Status::Corruption("compressed label offsets are not monotone");
    }
  }
  for (size_t i = 0; i + 1 < dictionary_.size(); ++i) {
    if (!(dictionary_[i] < dictionary_[i + 1])) {
      return Status::Corruption("quality dictionary is not strictly sorted");
    }
  }
  for (const Quality q : dictionary_) {
    if (!std::isfinite(q)) {
      return Status::Corruption("quality dictionary holds a non-finite value");
    }
  }
  if (level == ValidateLevel::kShape) return Status::OK();

  // kDirectory / kDeep: full streaming parse — every stream must decode
  // cleanly with counts matching the offset arrays (DecodeVertex checks
  // hub ascent and ranges); kDeep adds per-group distance monotonicity.
  DecodedLabel scratch;
  for (Vertex v = 0; v < NumVertices(); ++v) {
    WCSD_RETURN_NOT_OK(DecodeVertex(v, &scratch));
    if (scratch.groups.size() != GroupCount(v)) {
      return CorruptVertex(v, "group count disagrees with directory");
    }
    if (level == ValidateLevel::kDeep) {
      const FlatLabelView view = scratch.View();
      for (size_t g = 0; g < view.groups.size(); ++g) {
        for (size_t i = view.groups[g].begin + 1; i < view.GroupEnd(g); ++i) {
          if (view.entries[i].dist < view.entries[i - 1].dist) {
            return CorruptVertex(v, "distances descend within a hub group");
          }
        }
      }
    }
  }
  return Status::OK();
}

bool CompressedFlatLabelSet::ChainContentCrcs(uint32_t* entries_crc,
                                              uint32_t* groups_crc) const {
  // Chained per-vertex CRCs over the decoded arrays: HubGroup.begin is
  // vertex-relative, so concatenating per-vertex slices reproduces the
  // flat backend's raw arrays byte for byte — chaining shard slices in
  // tiling order therefore reproduces IndexContentFingerprint of the
  // unsharded flat index, whatever the storage backend per shard.
  const uint64_t n = NumVertices();
  DecodedLabel scratch;
  for (Vertex v = 0; v < n; ++v) {
    if (!DecodeVertex(static_cast<Vertex>(v), &scratch).ok()) return false;
    *entries_crc = Crc32c(scratch.entries.data(),
                          scratch.entries.size() * sizeof(LabelEntry),
                          *entries_crc);
    *groups_crc = Crc32c(scratch.groups.data(),
                         scratch.groups.size() * sizeof(HubGroup),
                         *groups_crc);
  }
  return true;
}

uint64_t CompressedFlatLabelSet::ContentFingerprint() const {
  const uint64_t n = NumVertices();
  const uint32_t seed = Crc32c(&n, sizeof(n));
  uint32_t entries_crc = seed;
  uint32_t groups_crc = seed;
  if (!ChainContentCrcs(&entries_crc, &groups_crc)) return 0;
  return (uint64_t{groups_crc} << 32) | entries_crc;
}

bool operator==(const CompressedFlatLabelSet& a,
                const CompressedFlatLabelSet& b) {
  auto span_eq = [](auto x, auto y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  return span_eq(a.offsets_, b.offsets_) &&
         span_eq(a.group_offsets_, b.group_offsets_) &&
         span_eq(a.comp_offsets_, b.comp_offsets_) &&
         span_eq(a.blob_, b.blob_) && span_eq(a.dictionary_, b.dictionary_);
}

namespace {

/// One side of the streaming merge: a cursor over a vertex's varint
/// stream positioned at successive group headers. Any malformed read
/// flips the cursor to "exhausted" — corrupt bytes end the merge early
/// instead of reading out of bounds (same trust model as the flat
/// kernels, minus their crash classes).
struct GroupCursor {
  const uint8_t* p = nullptr;
  const uint8_t* end = nullptr;
  uint64_t groups_left = 0;
  uint64_t hub = 0;
  uint64_t count = 0;  // entries in the current group (header consumed)

  bool Init(const CompressedFlatLabelSet& labels, Vertex v) {
    const auto comp = labels.raw_comp_offsets();
    const auto blob = labels.raw_blob();
    const uint64_t lo = std::min<uint64_t>(comp[v], blob.size());
    const uint64_t hi = std::min<uint64_t>(comp[v + 1], blob.size());
    if (lo > hi) return false;
    p = blob.data() + lo;
    end = blob.data() + hi;
    if (!GetVarint(&p, end, &groups_left)) return false;
    return NextHeader(true);
  }

  /// Parses the next group header; the previous group's entries must
  /// already be consumed. False when the stream is exhausted.
  bool NextHeader(bool first) {
    if (groups_left == 0) return false;
    --groups_left;
    uint64_t delta = 0;
    if (!GetVarint(&p, end, &delta) || !GetVarint(&p, end, &count)) {
      groups_left = 0;
      return false;
    }
    hub = first ? delta : hub + delta;
    return true;
  }

  bool SkipEntriesAndAdvance() {
    if (!SkipGroupEntries(&p, end, count)) {
      groups_left = 0;
      return false;
    }
    return NextHeader(false);
  }

  /// Consumes the current group's entries, returning the distance of the
  /// first entry with quality >= w (kInfDistance if none) — the Theorem 3
  /// choice, exactly what FirstWithQuality picks on the decoded group.
  Distance FirstDistWithQuality(std::span<const Quality> dict, Quality w) {
    Distance found = kInfDistance;
    uint64_t dist = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t dist_delta = 0, qcode = 0;
      if (!GetVarint(&p, end, &dist_delta) || !GetVarint(&p, end, &qcode) ||
          qcode > dict.size()) {
        groups_left = 0;
        count = i;  // entries consumed so far
        return found;
      }
      dist = i == 0 ? dist_delta : dist + dist_delta;
      if (found == kInfDistance) {
        const Quality quality = qcode == 0 ? kInfQuality : dict[qcode - 1];
        if (quality >= w) found = static_cast<Distance>(dist);
      }
    }
    return found;
  }
};

}  // namespace

Distance QueryCompressedMerge(const CompressedFlatLabelSet& labels, Vertex s,
                              Vertex t, Quality w) {
  if (s >= labels.NumVertices() || t >= labels.NumVertices()) {
    return kInfDistance;
  }
  if (s == t) return 0;
  GroupCursor cs, ct;
  bool s_ok = cs.Init(labels, s);
  bool t_ok = ct.Init(labels, t);
  const std::span<const Quality> dict = labels.raw_dictionary();
  Distance best = kInfDistance;
  while (s_ok && t_ok) {
    if (cs.hub < ct.hub) {
      s_ok = cs.SkipEntriesAndAdvance();
    } else if (ct.hub < cs.hub) {
      t_ok = ct.SkipEntriesAndAdvance();
    } else {
      const Distance ds = cs.FirstDistWithQuality(dict, w);
      const Distance dt = ct.FirstDistWithQuality(dict, w);
      if (ds != kInfDistance && dt != kInfDistance) {
        const Distance sum = ds + dt;
        if (sum < best) best = sum;
      }
      s_ok = cs.NextHeader(false);
      t_ok = ct.NextHeader(false);
    }
  }
  return best;
}

}  // namespace wcsd
