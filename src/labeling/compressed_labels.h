// Compressed label storage: byte-oriented delta/varint encoding.
//
// WC-INDEX labels are highly compressible: hubs are sorted ascending (small
// deltas), distances are small integers rising within a hub group, and
// qualities come from the |w| distinct values of the graph (an index into a
// small dictionary). This module provides an at-rest representation — for
// serialization and memory-constrained deployments — roughly 3-4x smaller
// than the 12-byte-per-entry working form, plus exact round-tripping and a
// direct (decode-on-the-fly) query path for spot lookups.

#ifndef WCSD_LABELING_COMPRESSED_LABELS_H_
#define WCSD_LABELING_COMPRESSED_LABELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "labeling/label_set.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// Immutable compressed form of a LabelSet.
class CompressedLabelSet {
 public:
  CompressedLabelSet() = default;

  /// Compresses `labels`. All entry qualities must be either +inf (self
  /// entries) or present in the graph's distinct-quality dictionary, which
  /// is derived from the labels themselves.
  static CompressedLabelSet Compress(const LabelSet& labels);

  /// Exact inverse of Compress.
  LabelSet Decompress() const;

  /// Decodes only L(v) (for spot queries). Bounds-checked: an
  /// out-of-range vertex or a stream that truncates / indexes outside the
  /// dictionary yields an empty label instead of reading out of range.
  std::vector<LabelEntry> DecodeVertex(Vertex v) const;

  /// w-constrained 2-hop query evaluated directly on the compressed form
  /// (linear decode of both labels; no materialization). Out-of-range
  /// vertices answer kInfDistance.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Compressed payload bytes (what the paper's "index size" becomes after
  /// encoding).
  size_t MemoryBytes() const {
    return bytes_.size() + offsets_.size() * sizeof(uint64_t) +
           dictionary_.size() * sizeof(Quality);
  }

  /// Serialization.
  Status Save(const std::string& path) const;
  static Result<CompressedLabelSet> Load(const std::string& path);

 private:
  // Per-vertex byte ranges into bytes_.
  std::vector<uint64_t> offsets_;
  std::vector<uint8_t> bytes_;
  // Sorted distinct finite qualities; index 0xFFFFFFFF encodes +inf.
  std::vector<Quality> dictionary_;
};

}  // namespace wcsd

#endif  // WCSD_LABELING_COMPRESSED_LABELS_H_
