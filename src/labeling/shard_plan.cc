#include "labeling/shard_plan.h"

#include <algorithm>

namespace wcsd {

namespace {

/// Fills the per-shard mass fields of a plan whose begin/end are set.
void FillMass(const FlatLabelSet& flat, ShardPlan* plan) {
  auto offsets = flat.raw_offsets();
  auto group_offsets = flat.raw_group_offsets();
  plan->total_bytes = 0;
  for (PlannedShard& shard : plan->shards) {
    shard.entry_count = offsets[shard.end] - offsets[shard.begin];
    shard.group_count =
        group_offsets[shard.end] - group_offsets[shard.begin];
    // Matches the sum of VertexLabelBytes over the range, so max_bytes
    // mode's cap and the reported mass agree exactly.
    shard.bytes = shard.entry_count * sizeof(LabelEntry) +
                  shard.group_count * sizeof(HubGroup) +
                  shard.num_vertices() * 2 * sizeof(uint64_t);
    plan->total_bytes += shard.bytes;
  }
}

ShardPlan MakePlan(const FlatLabelSet& flat,
                   std::vector<uint64_t> boundaries) {
  // `boundaries` holds the n_shards+1 fence posts, 0 first, n last.
  ShardPlan plan;
  plan.num_vertices = flat.NumVertices();
  plan.shards.reserve(boundaries.size() - 1);
  for (size_t k = 0; k + 1 < boundaries.size(); ++k) {
    PlannedShard shard;
    shard.begin = boundaries[k];
    shard.end = boundaries[k + 1];
    plan.shards.push_back(shard);
  }
  FillMass(flat, &plan);
  return plan;
}

std::vector<uint64_t> EvenBoundaries(uint64_t n, uint64_t shards) {
  std::vector<uint64_t> fences(shards + 1);
  for (uint64_t k = 0; k <= shards; ++k) fences[k] = n * k / shards;
  return fences;
}

/// Greedy prefix-sum split: each interior fence lands at the vertex whose
/// prefix mass is closest to the ideal k/N point, clamped so every shard
/// keeps at least one vertex.
std::vector<uint64_t> MassBoundaries(const std::vector<uint64_t>& prefix,
                                     uint64_t n, uint64_t shards) {
  const uint64_t total = prefix[n];
  std::vector<uint64_t> fences(shards + 1);
  fences[0] = 0;
  fences[shards] = n;
  for (uint64_t k = 1; k < shards; ++k) {
    // Ideal mass of the first k shards; double to sidestep u64 overflow on
    // total * k (total can be ~2^40 for big indexes, k is small, but stay
    // safe for any input).
    const double ideal =
        static_cast<double>(total) * static_cast<double>(k) /
        static_cast<double>(shards);
    auto it = std::lower_bound(prefix.begin(), prefix.end(), ideal);
    uint64_t cut = static_cast<uint64_t>(it - prefix.begin());
    if (cut > 0 &&
        ideal - static_cast<double>(prefix[cut - 1]) <
            static_cast<double>(prefix[cut]) - ideal) {
      --cut;
    }
    // Keep fences strictly increasing with room for the remaining shards.
    cut = std::max(cut, fences[k - 1] + 1);
    cut = std::min(cut, n - (shards - k));
    fences[k] = cut;
  }
  return fences;
}

}  // namespace

uint64_t ShardPlan::MaxShardBytes() const {
  uint64_t max = 0;
  for (const PlannedShard& shard : shards) max = std::max(max, shard.bytes);
  return max;
}

double ShardPlan::MeanShardBytes() const {
  if (shards.empty()) return 0.0;
  return static_cast<double>(total_bytes) /
         static_cast<double>(shards.size());
}

double ShardPlan::ByteSkew() const {
  double mean = MeanShardBytes();
  if (mean <= 0.0) return 0.0;
  return static_cast<double>(MaxShardBytes()) / mean;
}

uint64_t VertexLabelBytes(const FlatLabelSet& flat, Vertex v) {
  auto offsets = flat.raw_offsets();
  auto group_offsets = flat.raw_group_offsets();
  return (offsets[v + 1] - offsets[v]) * sizeof(LabelEntry) +
         (group_offsets[v + 1] - group_offsets[v]) * sizeof(HubGroup) +
         2 * sizeof(uint64_t);
}

Result<ShardPlan> PlanShards(const FlatLabelSet& flat,
                             const ShardPlanOptions& options) {
  if ((options.num_shards > 0) == (options.max_bytes > 0)) {
    return Status::InvalidArgument(
        "exactly one of num_shards and max_bytes must be set");
  }
  if (options.even_vertex && options.num_shards == 0) {
    return Status::InvalidArgument("even_vertex needs num_shards");
  }
  const uint64_t n = flat.NumVertices();
  if (n == 0) {
    // One empty shard still tiles [0, 0) and keeps downstream artifacts
    // (shard files, manifests) well-formed.
    ShardPlan plan = MakePlan(flat, {0, 0});
    return plan;
  }

  if (options.num_shards > 0) {
    const uint64_t shards =
        std::min<uint64_t>(options.num_shards, n);  // no empty shards
    if (options.even_vertex || shards == 1) {
      return MakePlan(flat, EvenBoundaries(n, shards));
    }
    std::vector<uint64_t> prefix(n + 1, 0);
    for (Vertex v = 0; v < n; ++v) {
      prefix[v + 1] = prefix[v] + VertexLabelBytes(flat, v);
    }
    ShardPlan planned = MakePlan(flat, MassBoundaries(prefix, n, shards));
    ShardPlan even = MakePlan(flat, EvenBoundaries(n, shards));
    // The greedy split can lose to even cuts only on near-uniform mass
    // with unlucky rounding; taking the better of the two makes the plan
    // provably never worse than the even-vertex fallback.
    return planned.MaxShardBytes() <= even.MaxShardBytes() ? planned : even;
  }

  // max_bytes mode: greedy fill, new shard when the next vertex would
  // overflow the cap (a lone overweight vertex still forms a shard).
  std::vector<uint64_t> fences{0};
  uint64_t current = 0;
  for (Vertex v = 0; v < n; ++v) {
    uint64_t mass = VertexLabelBytes(flat, v);
    if (current > 0 && current + mass > options.max_bytes) {
      fences.push_back(v);
      current = 0;
    }
    current += mass;
  }
  fences.push_back(n);
  return MakePlan(flat, std::move(fences));
}

}  // namespace wcsd
