#include "labeling/label_stats.h"

#include <algorithm>
#include <cstdio>

namespace wcsd {

std::string LabelStats::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "entries=%zu mean=%.1f median=%zu p95=%zu max=%zu "
                "top1%%-hub-share=%.2f groups=%zu entries/group=%.2f",
                total_entries, mean_label, median_label, p95_label, max_label,
                top1pct_hub_share, hub_groups, mean_entries_per_group);
  return buf;
}

LabelStats ComputeLabelStats(const LabelSet& labels) {
  LabelStats stats;
  stats.num_vertices = labels.NumVertices();
  if (stats.num_vertices == 0) return stats;

  std::vector<size_t> sizes;
  sizes.reserve(stats.num_vertices);
  size_t top_hub_entries = 0;
  const Rank top_cutoff =
      static_cast<Rank>(std::max<size_t>(1, stats.num_vertices / 100));
  for (Vertex v = 0; v < stats.num_vertices; ++v) {
    auto lv = labels.For(v);
    sizes.push_back(lv.size());
    stats.total_entries += lv.size();
    Rank prev_hub = static_cast<Rank>(-1);
    for (const LabelEntry& e : lv) {
      if (e.hub < top_cutoff) ++top_hub_entries;
      if (e.hub != prev_hub) {
        ++stats.hub_groups;
        prev_hub = e.hub;
      }
    }
  }
  std::sort(sizes.begin(), sizes.end());
  stats.max_label = sizes.back();
  stats.mean_label = static_cast<double>(stats.total_entries) /
                     static_cast<double>(stats.num_vertices);
  stats.median_label = sizes[sizes.size() / 2];
  stats.p95_label = sizes[std::min(sizes.size() - 1,
                                   sizes.size() * 95 / 100)];
  stats.top1pct_hub_share =
      stats.total_entries == 0
          ? 0.0
          : static_cast<double>(top_hub_entries) /
                static_cast<double>(stats.total_entries);
  stats.mean_entries_per_group =
      stats.hub_groups == 0
          ? 0.0
          : static_cast<double>(stats.total_entries) /
                static_cast<double>(stats.hub_groups);
  return stats;
}

std::vector<size_t> LabelSizeHistogram(const LabelSet& labels) {
  std::vector<size_t> histogram;
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    size_t size = labels.For(v).size();
    size_t bucket = 0;
    while ((size_t{1} << (bucket + 1)) <= size) ++bucket;
    if (histogram.size() <= bucket) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

}  // namespace wcsd
