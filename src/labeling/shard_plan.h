// Label-mass-balanced shard planning.
//
// Even vertex-range shards are badly skewed on hub-heavy indexes: the
// 2-hop labeling concentrates label mass on hub prefixes, so the shard
// holding the hubs carries most of the bytes while the tail shards are
// nearly empty — defeating the per-shard paging/locality sharded serving
// exists for (IS-LABEL and Query-by-Sketch size partitions by
// label/landmark mass for the same reason). The planner computes shard
// boundaries from per-vertex label mass instead: a greedy prefix-sum split
// over the FlatLabelSet's directory/entry counts.
//
// Two modes, plus a fallback:
//   * num_shards = N   — split [0, n) into exactly N contiguous ranges,
//     cutting each boundary at the prefix-sum position closest to the
//     ideal k/N mass point (clamped so no shard is empty). The result is
//     compared against the even-vertex split and the better of the two (by
//     max shard bytes) is returned, so a plan is never worse than even.
//   * max_bytes = B    — greedy fill: a new shard starts when adding the
//     next vertex would push the current shard past B. A single vertex
//     whose label alone exceeds B still gets its own shard (a shard never
//     splits below one vertex).
//   * even_vertex      — ignore mass, split into even vertex ranges (the
//     pre-planner behavior, kept for comparison and as a fallback).
//
// A plan is pure metadata — shard_manifest.h turns one into an on-disk
// shard set (snapshot files + manifest).

#ifndef WCSD_LABELING_SHARD_PLAN_H_
#define WCSD_LABELING_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "labeling/flat_label_set.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

struct ShardPlanOptions {
  /// Split into exactly this many shards (clamped to the vertex count so
  /// no shard is empty). Mutually exclusive with max_bytes.
  size_t num_shards = 0;
  /// Cap each shard's label bytes; shard count falls out. A single vertex
  /// heavier than the cap still becomes a (one-vertex) shard.
  uint64_t max_bytes = 0;
  /// Ignore label mass and cut even vertex ranges (needs num_shards).
  bool even_vertex = false;
};

/// One planned shard: a vertex range plus the label mass it carries.
struct PlannedShard {
  uint64_t begin = 0;
  uint64_t end = 0;          // exclusive
  uint64_t entry_count = 0;  // LabelEntry records in the range
  uint64_t group_count = 0;  // hub-directory records in the range
  uint64_t bytes = 0;        // serialized CSR payload bytes (see VertexLabelBytes)

  uint64_t num_vertices() const { return end - begin; }
  friend bool operator==(const PlannedShard&, const PlannedShard&) = default;
};

/// A tiling of [0, num_vertices) into contiguous shards.
struct ShardPlan {
  std::vector<PlannedShard> shards;
  uint64_t num_vertices = 0;
  uint64_t total_bytes = 0;

  uint64_t MaxShardBytes() const;
  double MeanShardBytes() const;
  /// max/mean shard bytes — 1.0 is perfect balance. 0 for empty plans.
  double ByteSkew() const;
};

/// Label bytes vertex v contributes to a shard file: its entries, its hub
/// directory, and its slot in the two offset arrays. Every vertex carries
/// at least the offset-slot mass, so max_bytes mode always advances.
uint64_t VertexLabelBytes(const FlatLabelSet& flat, Vertex v);

/// Plans shard boundaries for `flat` (see file header for the modes).
/// Fails on contradictory options (both or neither of num_shards/max_bytes,
/// even_vertex without num_shards). A 0-vertex set plans one empty shard.
Result<ShardPlan> PlanShards(const FlatLabelSet& flat,
                             const ShardPlanOptions& options);

}  // namespace wcsd

#endif  // WCSD_LABELING_SHARD_PLAN_H_
