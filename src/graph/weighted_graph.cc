#include "graph/weighted_graph.h"

#include <algorithm>
#include <cassert>

namespace wcsd {

WeightedQualityGraph WeightedQualityGraph::FromEdges(
    size_t num_vertices,
    const std::vector<std::tuple<Vertex, Vertex, Distance, Quality>>& edges) {
  struct E {
    Vertex u, v;
    Distance len;
    Quality q;
  };
  std::vector<E> staged;
  staged.reserve(edges.size());
  for (const auto& [u, v, len, q] : edges) {
    assert(u < num_vertices && v < num_vertices);
    if (u == v) continue;
    staged.push_back(u < v ? E{u, v, len, q} : E{v, u, len, q});
  }
  std::sort(staged.begin(), staged.end(), [](const E& a, const E& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    if (a.len != b.len) return a.len < b.len;
    return a.q > b.q;
  });
  staged.erase(std::unique(staged.begin(), staged.end(),
                           [](const E& a, const E& b) {
                             return a.u == b.u && a.v == b.v;
                           }),
               staged.end());

  WeightedQualityGraph g;
  g.offsets_.assign(num_vertices + 1, 0);
  for (const E& e : staged) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t i = 1; i <= num_vertices; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.arcs_.resize(staged.size() * 2);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const E& e : staged) {
    g.arcs_[cursor[e.u]++] = WeightedArc{e.v, e.len, e.q};
    g.arcs_[cursor[e.v]++] = WeightedArc{e.u, e.len, e.q};
  }
  for (size_t u = 0; u < num_vertices; ++u) {
    std::sort(g.arcs_.begin() + static_cast<ptrdiff_t>(g.offsets_[u]),
              g.arcs_.begin() + static_cast<ptrdiff_t>(g.offsets_[u + 1]),
              [](const WeightedArc& a, const WeightedArc& b) {
                return a.to < b.to;
              });
  }
  return g;
}

}  // namespace wcsd
