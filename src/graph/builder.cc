#include "graph/builder.h"

#include <algorithm>
#include <cassert>

namespace wcsd {

void GraphBuilder::AddEdge(Vertex u, Vertex v, Quality q) {
  assert(u < num_vertices_ && v < num_vertices_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, q});
}

QualityGraph GraphBuilder::Build() const {
  // Sort staged edges by endpoints so duplicates are adjacent, then merge
  // duplicates keeping the maximum quality.
  std::vector<StagedEdge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(),
            [](const StagedEdge& a, const StagedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.quality > b.quality;
            });
  std::vector<StagedEdge> merged;
  merged.reserve(sorted.size());
  for (const StagedEdge& e : sorted) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      continue;  // Duplicate with lower-or-equal quality (sort order).
    }
    merged.push_back(e);
  }

  // Counting pass for CSR offsets (each undirected edge contributes two
  // arcs), then a placement pass.
  std::vector<size_t> offsets(num_vertices_ + 1, 0);
  for (const StagedEdge& e : merged) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (size_t i = 1; i <= num_vertices_; ++i) offsets[i] += offsets[i - 1];

  std::vector<Arc> arcs(merged.size() * 2);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const StagedEdge& e : merged) {
    arcs[cursor[e.u]++] = Arc{e.v, e.quality};
    arcs[cursor[e.v]++] = Arc{e.u, e.quality};
  }

  // Neighbor lists sorted by target id: deterministic iteration and
  // binary-searchable adjacency for tests.
  for (size_t u = 0; u < num_vertices_; ++u) {
    std::sort(arcs.begin() + static_cast<ptrdiff_t>(offsets[u]),
              arcs.begin() + static_cast<ptrdiff_t>(offsets[u + 1]),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  return QualityGraph(std::move(offsets), std::move(arcs));
}

}  // namespace wcsd
