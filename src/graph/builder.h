// GraphBuilder: mutable edge-list accumulator that compiles to CSR.
//
// Handles the normalization the problem definition expects: self-loops are
// dropped (they never shorten a path), and parallel edges are merged keeping
// the MAXIMUM quality (a w-path may use whichever parallel edge satisfies
// the constraint, so only the best-quality copy matters for distances).

#ifndef WCSD_GRAPH_BUILDER_H_
#define WCSD_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// Accumulates undirected edges and produces a QualityGraph.
class GraphBuilder {
 public:
  /// Builder for a graph with `num_vertices` vertices (ids [0, n)).
  explicit GraphBuilder(size_t num_vertices) : num_vertices_(num_vertices) {}

  /// Adds undirected edge {u, v} with quality `q`. Self-loops are ignored.
  /// Duplicate edges are merged at Build() time, keeping the max quality.
  void AddEdge(Vertex u, Vertex v, Quality q);

  /// Number of staged (pre-merge) edges.
  size_t NumStagedEdges() const { return edges_.size(); }

  /// Compiles the staged edges into an immutable CSR graph. The builder can
  /// be reused afterwards (staged edges are retained).
  QualityGraph Build() const;

 private:
  struct StagedEdge {
    Vertex u;
    Vertex v;
    Quality quality;
  };

  size_t num_vertices_;
  std::vector<StagedEdge> edges_;
};

}  // namespace wcsd

#endif  // WCSD_GRAPH_BUILDER_H_
