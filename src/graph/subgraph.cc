#include "graph/subgraph.h"

#include <algorithm>

#include "graph/builder.h"

namespace wcsd {

QualityGraph FilterByQuality(const QualityGraph& g, Quality threshold) {
  GraphBuilder builder(g.NumVertices());
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u < a.to && a.quality >= threshold) {
        builder.AddEdge(u, a.to, a.quality);
      }
    }
  }
  return builder.Build();
}

QualityPartition::QualityPartition(const QualityGraph& g)
    : thresholds_(g.DistinctQualities()) {
  graphs_.reserve(thresholds_.size());
  for (Quality t : thresholds_) graphs_.push_back(FilterByQuality(g, t));
}

std::optional<size_t> QualityPartition::LevelForConstraint(Quality w) const {
  auto it = std::lower_bound(thresholds_.begin(), thresholds_.end(), w);
  if (it == thresholds_.end()) return std::nullopt;
  return static_cast<size_t>(it - thresholds_.begin());
}

size_t QualityPartition::MemoryBytes() const {
  size_t total = 0;
  for (const QualityGraph& g : graphs_) total += g.MemoryBytes();
  return total;
}

}  // namespace wcsd
