// Synthetic graph generators.
//
// The paper evaluates on public DIMACS road networks and KONECT/SNAP social
// networks; this environment is offline, so these generators produce the
// closest synthetic equivalents (DESIGN.md §3.1):
//   * road networks  -> perturbed grid graphs: connected, near-planar, small
//     treewidth, small near-uniform degree, large diameter;
//   * social networks -> Barabási–Albert preferential attachment: scale-free
//     degree distribution, small diameter;
//   * Erdős–Rényi / Watts–Strogatz / trees -> test fixtures.
//
// Edge qualities are sampled from a QualityModel, mirroring the paper's "For
// other non-labeled graphs, we randomly generate those weights" with |w|
// distinct values.

#ifndef WCSD_GRAPH_GENERATORS_H_
#define WCSD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"
#include "util/random.h"
#include "util/types.h"

namespace wcsd {

/// Distribution of edge qualities.
struct QualityModel {
  enum class Kind {
    kUniformLevels,  // uniform over {1, 2, ..., num_levels}
    kZipfLevels,     // level k with probability proportional to 1/k^s
  };

  Kind kind = Kind::kUniformLevels;
  /// The paper's |w|: number of distinct quality values.
  int num_levels = 5;
  /// Zipf exponent (kZipfLevels only).
  double zipf_s = 1.2;
};

/// Samples one quality according to the model.
Quality SampleQuality(const QualityModel& model, Rng* rng);

/// Parameters for the road-network generator.
struct RoadOptions {
  size_t rows = 64;
  size_t cols = 64;
  /// Probability of keeping a non-spanning-tree grid edge. A random spanning
  /// tree is always kept, so the graph is connected; pruning the remainder
  /// creates the irregular block structure of real road networks.
  double extra_edge_keep_prob = 0.7;
  /// Probability of adding each diagonal shortcut.
  double diagonal_prob = 0.05;
  /// If nonzero, every arterial_spacing-th row/column is an arterial whose
  /// edges get the TOP quality level, forming a connected high-quality
  /// backbone (a highway grid). Realistic for quality = weight limits or
  /// lane counts; with 0 all qualities are i.i.d., under which long
  /// high-threshold routes are almost surely infeasible.
  size_t arterial_spacing = 0;
  QualityModel quality;
};

/// Generates a connected road-like network with rows*cols vertices.
QualityGraph GenerateRoadNetwork(const RoadOptions& options, uint64_t seed);

/// Generates a connected Barabási–Albert scale-free graph: each new vertex
/// attaches `edges_per_vertex` edges preferentially to high-degree vertices.
QualityGraph GenerateBarabasiAlbert(size_t num_vertices,
                                    size_t edges_per_vertex,
                                    const QualityModel& quality,
                                    uint64_t seed);

/// Generates a G(n, m) Erdős–Rényi graph (not necessarily connected).
QualityGraph GenerateErdosRenyi(size_t num_vertices, size_t num_edges,
                                const QualityModel& quality, uint64_t seed);

/// Generates a connected random graph: a random spanning tree plus
/// `num_edges - (n - 1)` random extra edges. The workhorse for property
/// tests, where disconnected pairs would make oracles trivially agree.
QualityGraph GenerateRandomConnected(size_t num_vertices, size_t num_edges,
                                     const QualityModel& quality,
                                     uint64_t seed);

/// Generates a uniformly random tree on n vertices.
QualityGraph GenerateRandomTree(size_t num_vertices,
                                const QualityModel& quality, uint64_t seed);

/// Generates a Watts–Strogatz small-world graph: ring lattice with `k`
/// neighbors per side, each edge rewired with probability `beta`.
QualityGraph GenerateWattsStrogatz(size_t num_vertices, size_t k, double beta,
                                   const QualityModel& quality, uint64_t seed);

/// Generates a random directed graph with `num_arcs` arcs (§V extension).
DirectedQualityGraph GenerateRandomDirected(size_t num_vertices,
                                            size_t num_arcs,
                                            const QualityModel& quality,
                                            uint64_t seed);

/// Generates a connected random weighted graph with integer edge lengths in
/// [1, max_length] (§V extension).
WeightedQualityGraph GenerateRandomWeighted(size_t num_vertices,
                                            size_t num_edges,
                                            Distance max_length,
                                            const QualityModel& quality,
                                            uint64_t seed);

}  // namespace wcsd

#endif  // WCSD_GRAPH_GENERATORS_H_
