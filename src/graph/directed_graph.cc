#include "graph/directed_graph.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "graph/builder.h"

namespace wcsd {

namespace {

// Compiles a directed arc list into CSR keyed by `key` (source for the out
// view, target for the in view). The stored Arc.to is the opposite endpoint.
void CompileCsr(size_t n,
                const std::vector<std::tuple<Vertex, Vertex, Quality>>& arcs,
                bool key_is_source, std::vector<size_t>* offsets,
                std::vector<Arc>* out) {
  offsets->assign(n + 1, 0);
  for (const auto& [u, v, q] : arcs) {
    (void)q;
    ++(*offsets)[(key_is_source ? u : v) + 1];
  }
  for (size_t i = 1; i <= n; ++i) (*offsets)[i] += (*offsets)[i - 1];
  out->resize(arcs.size());
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const auto& [u, v, q] : arcs) {
    Vertex key = key_is_source ? u : v;
    Vertex other = key_is_source ? v : u;
    (*out)[cursor[key]++] = Arc{other, q};
  }
  for (size_t u = 0; u < n; ++u) {
    std::sort(out->begin() + static_cast<ptrdiff_t>((*offsets)[u]),
              out->begin() + static_cast<ptrdiff_t>((*offsets)[u + 1]),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
}

}  // namespace

DirectedQualityGraph DirectedQualityGraph::FromEdges(
    size_t num_vertices,
    const std::vector<std::tuple<Vertex, Vertex, Quality>>& edges) {
  // Normalize: drop self-loops, merge duplicate arcs keeping max quality.
  std::vector<std::tuple<Vertex, Vertex, Quality>> arcs;
  arcs.reserve(edges.size());
  for (const auto& [u, v, q] : edges) {
    assert(u < num_vertices && v < num_vertices);
    if (u != v) arcs.emplace_back(u, v, q);
  }
  std::sort(arcs.begin(), arcs.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b))
                return std::get<0>(a) < std::get<0>(b);
              if (std::get<1>(a) != std::get<1>(b))
                return std::get<1>(a) < std::get<1>(b);
              return std::get<2>(a) > std::get<2>(b);
            });
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const auto& a, const auto& b) {
                           return std::get<0>(a) == std::get<0>(b) &&
                                  std::get<1>(a) == std::get<1>(b);
                         }),
             arcs.end());

  DirectedQualityGraph g;
  CompileCsr(num_vertices, arcs, /*key_is_source=*/true, &g.out_offsets_,
             &g.out_arcs_);
  CompileCsr(num_vertices, arcs, /*key_is_source=*/false, &g.in_offsets_,
             &g.in_arcs_);
  return g;
}

QualityGraph DirectedQualityGraph::AsUndirected() const {
  GraphBuilder builder(NumVertices());
  for (Vertex u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : OutNeighbors(u)) builder.AddEdge(u, a.to, a.quality);
  }
  return builder.Build();
}

}  // namespace wcsd
