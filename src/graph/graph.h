// QualityGraph: the undirected, unit-length, quality-annotated graph of the
// WCSD problem (paper §II.A: G(V, E, Delta, delta)).
//
// Storage is CSR (compressed sparse row): each undirected edge {u, v} with
// quality q appears as two directed arcs (u->v, q) and (v->u, q). CSR keeps
// neighbor scans cache-friendly, which dominates both online search and the
// |V| constrained-BFS rounds of index construction.

#ifndef WCSD_GRAPH_GRAPH_H_
#define WCSD_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.h"

namespace wcsd {

/// A directed arc in CSR adjacency: target vertex plus the edge quality.
struct Arc {
  Vertex to;
  Quality quality;

  friend bool operator==(const Arc&, const Arc&) = default;
};

/// Immutable undirected graph with per-edge qualities, in CSR form.
/// Construct via GraphBuilder (graph/builder.h) or a generator.
class QualityGraph {
 public:
  QualityGraph() = default;

  /// Assembles a graph from raw CSR arrays. `offsets` has n+1 entries;
  /// `arcs[offsets[u]..offsets[u+1])` are u's neighbors. Both directions of
  /// every undirected edge must be present; GraphBuilder guarantees this.
  QualityGraph(std::vector<size_t> offsets, std::vector<Arc> arcs);

  /// Number of vertices.
  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges (arc count / 2).
  size_t NumEdges() const { return arcs_.size() / 2; }

  /// Neighbors of `u` with their edge qualities.
  std::span<const Arc> Neighbors(Vertex u) const {
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  /// Degree of `u`.
  size_t Degree(Vertex u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Quality of edge (u, v), or a negative value if absent. Linear in
  /// deg(u); intended for tests and small-scale assertions, not hot paths.
  Quality EdgeQuality(Vertex u, Vertex v) const;

  /// Sorted unique quality values present in the graph (the paper's Delta;
  /// its size is |w|).
  std::vector<Quality> DistinctQualities() const;

  /// Bytes used by the CSR arrays (the paper's Tables V / VI measure the
  /// memory for storing each network).
  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(size_t) + arcs_.size() * sizeof(Arc);
  }

  /// Maximum vertex degree (used in the complexity analysis of Alg. 3).
  size_t MaxDegree() const;

  friend bool operator==(const QualityGraph&, const QualityGraph&) = default;

 private:
  std::vector<size_t> offsets_;
  std::vector<Arc> arcs_;
};

}  // namespace wcsd

#endif  // WCSD_GRAPH_GRAPH_H_
