// Quality-threshold filtering: the substrate of the partitioned baselines.
//
// The Naïve index (§III) and the W-BFS / per-partition Dijkstra baselines
// (§VI) operate on the family of filtered graphs G_w = (V, {e : delta(e) >=
// w}) for each distinct quality value w. A query threshold w0 maps to the
// smallest distinct value >= w0 (filtering by w0 and by that value yield the
// same edge set).

#ifndef WCSD_GRAPH_SUBGRAPH_H_
#define WCSD_GRAPH_SUBGRAPH_H_

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// Returns the subgraph of `g` containing exactly the edges with quality
/// >= `threshold` (vertex set unchanged).
QualityGraph FilterByQuality(const QualityGraph& g, Quality threshold);

/// The family of per-threshold filtered graphs, one per distinct quality.
class QualityPartition {
 public:
  /// Builds all |w| filtered graphs of `g`. Memory is O(|w| * |E|) in the
  /// worst case — exactly the blow-up the paper's Naïve analysis describes.
  explicit QualityPartition(const QualityGraph& g);

  /// Distinct quality values, ascending.
  const std::vector<Quality>& thresholds() const { return thresholds_; }

  /// Index into thresholds()/graphs() for query constraint `w`: the smallest
  /// distinct value >= w. Returns nullopt if w exceeds every edge quality
  /// (no edge is usable, so any s != t query is unreachable).
  std::optional<size_t> LevelForConstraint(Quality w) const;

  /// Filtered graph for thresholds()[level].
  const QualityGraph& GraphAtLevel(size_t level) const {
    return graphs_[level];
  }

  /// Number of distinct quality values (the paper's |w|).
  size_t NumLevels() const { return thresholds_.size(); }

  /// Total bytes across all filtered graphs.
  size_t MemoryBytes() const;

 private:
  std::vector<Quality> thresholds_;
  std::vector<QualityGraph> graphs_;
};

}  // namespace wcsd

#endif  // WCSD_GRAPH_SUBGRAPH_H_
