// WeightedQualityGraph: the weighted-graph extension substrate (paper §V,
// "In cases where the length of an edge is not 1 ... we can convert the
// constrained BFS to a constrained Dijkstra").
//
// Edges carry both an integer length and a quality. Distances are summed
// lengths; the quality constraint is unchanged (every edge on the path must
// have quality >= w).

#ifndef WCSD_GRAPH_WEIGHTED_GRAPH_H_
#define WCSD_GRAPH_WEIGHTED_GRAPH_H_

#include <span>
#include <tuple>
#include <vector>

#include "util/types.h"

namespace wcsd {

/// A directed arc with an integer length and a quality.
struct WeightedArc {
  Vertex to;
  Distance length;
  Quality quality;

  friend bool operator==(const WeightedArc&, const WeightedArc&) = default;
};

/// Immutable undirected graph whose edges have integer lengths and qualities.
class WeightedQualityGraph {
 public:
  WeightedQualityGraph() = default;

  /// Builds from an undirected edge list {u, v, length, quality}. Self-loops
  /// are dropped. Duplicates keep the (shorter length, then higher quality)
  /// copy; callers wanting full multi-edge semantics should pre-merge.
  static WeightedQualityGraph FromEdges(
      size_t num_vertices,
      const std::vector<std::tuple<Vertex, Vertex, Distance, Quality>>& edges);

  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumEdges() const { return arcs_.size() / 2; }

  std::span<const WeightedArc> Neighbors(Vertex u) const {
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  size_t Degree(Vertex u) const { return offsets_[u + 1] - offsets_[u]; }

 private:
  std::vector<size_t> offsets_;
  std::vector<WeightedArc> arcs_;
};

}  // namespace wcsd

#endif  // WCSD_GRAPH_WEIGHTED_GRAPH_H_
