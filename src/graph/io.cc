#include "graph/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/builder.h"

namespace wcsd {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool IsCommentOrBlank(const std::string& line) {
  size_t i = line.find_first_not_of(" \t\r");
  if (i == std::string::npos) return true;
  return line[i] == '#' || line[i] == '%';
}

}  // namespace

Result<QualityGraph> ParseEdgeList(const std::string& text,
                                   size_t num_vertices_hint) {
  struct Edge {
    Vertex u, v;
    Quality q;
  };
  std::vector<Edge> edges;
  size_t max_id = 0;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    unsigned long long u = 0, v = 0;
    double q = 0.0;
    if (!(fields >> u >> v >> q)) {
      return Status::Corruption("edge list line " + std::to_string(line_no) +
                                ": expected 'u v q', got '" + line + "'");
    }
    edges.push_back({static_cast<Vertex>(u), static_cast<Vertex>(v),
                     static_cast<Quality>(q)});
    max_id = std::max<size_t>(max_id, std::max(u, v));
  }
  size_t n = edges.empty() ? num_vertices_hint
                           : std::max(num_vertices_hint, max_id + 1);
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.AddEdge(e.u, e.v, e.q);
  return builder.Build();
}

Result<QualityGraph> ReadEdgeListFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseEdgeList(text.value());
}

Status WriteEdgeListFile(const QualityGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# wcsd quality edge list: u v quality\n";
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u < a.to) out << u << ' ' << a.to << ' ' << a.quality << '\n';
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<QualityGraph> ParseDimacs(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  size_t n = 0;
  bool saw_header = false;
  struct Edge {
    Vertex u, v;
    Quality q;
  };
  std::vector<Edge> edges;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string kind;
      unsigned long long nn = 0, mm = 0;
      if (!(fields >> kind >> nn >> mm)) {
        return Status::Corruption("bad DIMACS p-line at line " +
                                  std::to_string(line_no));
      }
      n = nn;
      saw_header = true;
    } else if (tag == 'a') {
      unsigned long long u = 0, v = 0;
      double w = 0.0;
      if (!(fields >> u >> v >> w)) {
        return Status::Corruption("bad DIMACS a-line at line " +
                                  std::to_string(line_no));
      }
      if (u == 0 || v == 0) {
        return Status::Corruption("DIMACS ids are 1-based; got 0 at line " +
                                  std::to_string(line_no));
      }
      edges.push_back({static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1),
                       static_cast<Quality>(w)});
    }
  }
  if (!saw_header) return Status::Corruption("missing DIMACS p-line");
  GraphBuilder builder(n);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return Status::Corruption("DIMACS arc endpoint out of range");
    }
    builder.AddEdge(e.u, e.v, e.q);
  }
  return builder.Build();
}

Result<QualityGraph> ReadDimacsFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseDimacs(text.value());
}

namespace {
constexpr uint64_t kBinaryMagic = 0x57435344'47525048ULL;  // "WCSDGRPH"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

Status WriteBinaryGraph(const QualityGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WritePod(out, kBinaryMagic);
  uint64_t n = g.NumVertices();
  uint64_t m = g.NumEdges();
  WritePod(out, n);
  WritePod(out, m);
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u < a.to) {
        WritePod(out, u);
        WritePod(out, a.to);
        WritePod(out, a.quality);
      }
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<QualityGraph> ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0, m = 0;
  if (!ReadPod(in, &magic) || magic != kBinaryMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadPod(in, &n) || !ReadPod(in, &m)) {
    return Status::Corruption("truncated header in " + path);
  }
  GraphBuilder builder(n);
  for (uint64_t i = 0; i < m; ++i) {
    Vertex u = 0, v = 0;
    Quality q = 0;
    if (!ReadPod(in, &u) || !ReadPod(in, &v) || !ReadPod(in, &q)) {
      return Status::Corruption("truncated edge records in " + path);
    }
    if (u >= n || v >= n) return Status::Corruption("edge id out of range");
    builder.AddEdge(u, v, q);
  }
  return builder.Build();
}

}  // namespace wcsd
