#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "graph/builder.h"

namespace wcsd {

Quality SampleQuality(const QualityModel& model, Rng* rng) {
  assert(model.num_levels >= 1);
  switch (model.kind) {
    case QualityModel::Kind::kUniformLevels:
      return static_cast<Quality>(
          rng->NextInRange(1, model.num_levels));
    case QualityModel::Kind::kZipfLevels: {
      // Inverse-CDF sampling over {1..L} with P(k) ~ 1/k^s.
      double total = 0.0;
      for (int k = 1; k <= model.num_levels; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k), model.zipf_s);
      }
      double target = rng->NextDouble() * total;
      double acc = 0.0;
      for (int k = 1; k <= model.num_levels; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k), model.zipf_s);
        if (target <= acc) return static_cast<Quality>(k);
      }
      return static_cast<Quality>(model.num_levels);
    }
  }
  return 1.0f;
}

namespace {

/// Union-find for spanning-tree selection.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if x and y were in different sets (now merged).
  bool Union(size_t x, size_t y) {
    size_t rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

QualityGraph GenerateRoadNetwork(const RoadOptions& options, uint64_t seed) {
  Rng rng(seed);
  const size_t rows = options.rows;
  const size_t cols = options.cols;
  const size_t n = rows * cols;
  auto id = [cols](size_t r, size_t c) -> Vertex {
    return static_cast<Vertex>(r * cols + c);
  };
  // An edge is arterial if it runs along an arterial row (horizontal edges)
  // or column (vertical edges).
  auto is_arterial = [&options, cols](Vertex u, Vertex v) {
    if (options.arterial_spacing == 0) return false;
    size_t ru = u / cols, cu = u % cols;
    size_t rv = v / cols, cv = v % cols;
    if (ru == rv) return ru % options.arterial_spacing == 0;
    if (cu == cv) return cu % options.arterial_spacing == 0;
    return false;
  };
  auto edge_quality = [&](Vertex u, Vertex v) {
    return is_arterial(u, v)
               ? static_cast<Quality>(options.quality.num_levels)
               : SampleQuality(options.quality, &rng);
  };

  // Enumerate the grid edges (right and down), shuffle, and split them into
  // a random spanning tree (always kept) plus extras (kept with probability
  // extra_edge_keep_prob). Arterial edges are always kept: highways do not
  // have random gaps.
  std::vector<std::pair<Vertex, Vertex>> grid_edges;
  grid_edges.reserve(2 * n);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) grid_edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) grid_edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  rng.Shuffle(&grid_edges);

  GraphBuilder builder(n);
  DisjointSets sets(n);
  for (const auto& [u, v] : grid_edges) {
    bool tree_edge = sets.Union(u, v);
    if (tree_edge || is_arterial(u, v) ||
        rng.NextBool(options.extra_edge_keep_prob)) {
      builder.AddEdge(u, v, edge_quality(u, v));
    }
  }

  // Occasional diagonal shortcuts (highway ramps / bridges).
  for (size_t r = 0; r + 1 < rows; ++r) {
    for (size_t c = 0; c + 1 < cols; ++c) {
      if (rng.NextBool(options.diagonal_prob)) {
        builder.AddEdge(id(r, c), id(r + 1, c + 1),
                        SampleQuality(options.quality, &rng));
      }
    }
  }
  return builder.Build();
}

QualityGraph GenerateBarabasiAlbert(size_t num_vertices,
                                    size_t edges_per_vertex,
                                    const QualityModel& quality,
                                    uint64_t seed) {
  assert(num_vertices >= 2);
  Rng rng(seed);
  size_t m = std::max<size_t>(1, std::min(edges_per_vertex, num_vertices - 1));

  GraphBuilder builder(num_vertices);
  // `endpoints` holds one entry per edge endpoint: sampling uniformly from
  // it is sampling proportionally to degree (preferential attachment).
  std::vector<Vertex> endpoints;
  endpoints.reserve(2 * m * num_vertices);

  // Seed clique over the first m+1 vertices.
  size_t seed_size = m + 1;
  for (size_t u = 0; u < seed_size; ++u) {
    for (size_t v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(static_cast<Vertex>(u), static_cast<Vertex>(v),
                      SampleQuality(quality, &rng));
      endpoints.push_back(static_cast<Vertex>(u));
      endpoints.push_back(static_cast<Vertex>(v));
    }
  }

  std::vector<Vertex> chosen;
  for (size_t u = seed_size; u < num_vertices; ++u) {
    chosen.clear();
    // Sample m distinct targets by degree. Rejection is cheap: duplicates
    // are rare once the endpoint pool is large.
    while (chosen.size() < m) {
      Vertex t = endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (Vertex t : chosen) {
      builder.AddEdge(static_cast<Vertex>(u), t, SampleQuality(quality, &rng));
      endpoints.push_back(static_cast<Vertex>(u));
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

QualityGraph GenerateErdosRenyi(size_t num_vertices, size_t num_edges,
                                const QualityModel& quality, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  size_t added = 0;
  // Sample random pairs; the builder dedups, so aim for the requested count
  // with a bounded number of attempts.
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 4 + 64;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    Vertex u = static_cast<Vertex>(rng.NextBounded(num_vertices));
    Vertex v = static_cast<Vertex>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    builder.AddEdge(u, v, SampleQuality(quality, &rng));
    ++added;
  }
  return builder.Build();
}

QualityGraph GenerateRandomTree(size_t num_vertices,
                                const QualityModel& quality, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // Random attachment: vertex i links to a uniformly random earlier vertex.
  for (size_t i = 1; i < num_vertices; ++i) {
    Vertex parent = static_cast<Vertex>(rng.NextBounded(i));
    builder.AddEdge(static_cast<Vertex>(i), parent,
                    SampleQuality(quality, &rng));
  }
  return builder.Build();
}

QualityGraph GenerateRandomConnected(size_t num_vertices, size_t num_edges,
                                     const QualityModel& quality,
                                     uint64_t seed) {
  assert(num_vertices >= 1);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // Spanning tree first (connectivity), then random extras.
  for (size_t i = 1; i < num_vertices; ++i) {
    Vertex parent = static_cast<Vertex>(rng.NextBounded(i));
    builder.AddEdge(static_cast<Vertex>(i), parent,
                    SampleQuality(quality, &rng));
  }
  size_t extras = num_edges > num_vertices - 1
                      ? num_edges - (num_vertices - 1)
                      : 0;
  for (size_t i = 0; i < extras; ++i) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(num_vertices));
    Vertex v = static_cast<Vertex>(rng.NextBounded(num_vertices));
    if (u != v) builder.AddEdge(u, v, SampleQuality(quality, &rng));
  }
  return builder.Build();
}

QualityGraph GenerateWattsStrogatz(size_t num_vertices, size_t k, double beta,
                                   const QualityModel& quality,
                                   uint64_t seed) {
  assert(num_vertices > 2 * k);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  for (size_t u = 0; u < num_vertices; ++u) {
    for (size_t j = 1; j <= k; ++j) {
      Vertex v = static_cast<Vertex>((u + j) % num_vertices);
      if (rng.NextBool(beta)) {
        // Rewire to a random target (avoiding a self-loop).
        Vertex t;
        do {
          t = static_cast<Vertex>(rng.NextBounded(num_vertices));
        } while (t == u);
        builder.AddEdge(static_cast<Vertex>(u), t,
                        SampleQuality(quality, &rng));
      } else {
        builder.AddEdge(static_cast<Vertex>(u), v,
                        SampleQuality(quality, &rng));
      }
    }
  }
  return builder.Build();
}

DirectedQualityGraph GenerateRandomDirected(size_t num_vertices,
                                            size_t num_arcs,
                                            const QualityModel& quality,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::tuple<Vertex, Vertex, Quality>> arcs;
  arcs.reserve(num_arcs);
  for (size_t i = 0; i < num_arcs; ++i) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(num_vertices));
    Vertex v = static_cast<Vertex>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    arcs.emplace_back(u, v, SampleQuality(quality, &rng));
  }
  return DirectedQualityGraph::FromEdges(num_vertices, arcs);
}

WeightedQualityGraph GenerateRandomWeighted(size_t num_vertices,
                                            size_t num_edges,
                                            Distance max_length,
                                            const QualityModel& quality,
                                            uint64_t seed) {
  assert(max_length >= 1);
  Rng rng(seed);
  std::vector<std::tuple<Vertex, Vertex, Distance, Quality>> edges;
  // Spanning tree plus extras, like GenerateRandomConnected.
  for (size_t i = 1; i < num_vertices; ++i) {
    Vertex parent = static_cast<Vertex>(rng.NextBounded(i));
    edges.emplace_back(static_cast<Vertex>(i), parent,
                       static_cast<Distance>(rng.NextInRange(1, max_length)),
                       SampleQuality(quality, &rng));
  }
  size_t extras =
      num_edges > num_vertices - 1 ? num_edges - (num_vertices - 1) : 0;
  for (size_t i = 0; i < extras; ++i) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(num_vertices));
    Vertex v = static_cast<Vertex>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    edges.emplace_back(u, v,
                       static_cast<Distance>(rng.NextInRange(1, max_length)),
                       SampleQuality(quality, &rng));
  }
  return WeightedQualityGraph::FromEdges(num_vertices, edges);
}

}  // namespace wcsd
