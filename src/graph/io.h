// Graph input/output.
//
// Three formats:
//   * Quality edge-list text ("u v q" per line, '#' comments) — the natural
//     interchange format for the paper's KONECT/SNAP-style datasets.
//   * DIMACS .gr ("a u v w" arcs, 1-based) — the format of the USA road
//     network instances the paper evaluates; the arc weight is read as the
//     edge quality since WCSD edges are unit-length.
//   * A binary snapshot (magic + CSR arrays) for fast reload in benches.

#ifndef WCSD_GRAPH_IO_H_
#define WCSD_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace wcsd {

/// Parses a quality edge-list from text. Lines: "u v q" with 0-based vertex
/// ids; blank lines and lines starting with '#' or '%' are skipped. The
/// vertex count is 1 + max id unless `num_vertices_hint` is larger.
Result<QualityGraph> ParseEdgeList(const std::string& text,
                                   size_t num_vertices_hint = 0);

/// Reads a quality edge-list file.
Result<QualityGraph> ReadEdgeListFile(const std::string& path);

/// Writes the graph as a quality edge-list file (one "u v q" line per
/// undirected edge, u < v).
Status WriteEdgeListFile(const QualityGraph& g, const std::string& path);

/// Parses DIMACS .gr content ("p sp n m" header, "a u v w" arcs, 1-based
/// ids). Arc weights become edge qualities.
Result<QualityGraph> ParseDimacs(const std::string& text);

/// Reads a DIMACS .gr file.
Result<QualityGraph> ReadDimacsFile(const std::string& path);

/// Writes a binary snapshot of the graph.
Status WriteBinaryGraph(const QualityGraph& g, const std::string& path);

/// Reads a binary snapshot written by WriteBinaryGraph.
Result<QualityGraph> ReadBinaryGraph(const std::string& path);

}  // namespace wcsd

#endif  // WCSD_GRAPH_IO_H_
