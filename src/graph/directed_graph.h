// DirectedQualityGraph: the directed-graph extension substrate (paper §V).
//
// WC-INDEX on a directed graph keeps two label sets per vertex (L_in/L_out)
// and runs the constrained BFS in both edge directions from each hub; the
// graph therefore exposes both out-adjacency and in-adjacency in CSR form.

#ifndef WCSD_GRAPH_DIRECTED_GRAPH_H_
#define WCSD_GRAPH_DIRECTED_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// Immutable directed graph with per-edge qualities; both directions of
/// adjacency are materialized.
class DirectedQualityGraph {
 public:
  DirectedQualityGraph() = default;

  /// Builds from a directed edge list (u -> v with quality q). Self-loops
  /// are dropped; duplicate arcs keep the max quality.
  static DirectedQualityGraph FromEdges(
      size_t num_vertices,
      const std::vector<std::tuple<Vertex, Vertex, Quality>>& edges);

  size_t NumVertices() const {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }
  size_t NumArcs() const { return out_arcs_.size(); }

  /// Successors of `u` (arcs leaving u).
  std::span<const Arc> OutNeighbors(Vertex u) const {
    return {out_arcs_.data() + out_offsets_[u],
            out_arcs_.data() + out_offsets_[u + 1]};
  }

  /// Predecessors of `u` (sources of arcs entering u).
  std::span<const Arc> InNeighbors(Vertex u) const {
    return {in_arcs_.data() + in_offsets_[u],
            in_arcs_.data() + in_offsets_[u + 1]};
  }

  size_t OutDegree(Vertex u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(Vertex u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// Converts to the undirected view used by vertex-ordering heuristics.
  QualityGraph AsUndirected() const;

 private:
  std::vector<size_t> out_offsets_;
  std::vector<Arc> out_arcs_;
  std::vector<size_t> in_offsets_;
  std::vector<Arc> in_arcs_;
};

}  // namespace wcsd

#endif  // WCSD_GRAPH_DIRECTED_GRAPH_H_
