#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace wcsd {

QualityGraph::QualityGraph(std::vector<size_t> offsets, std::vector<Arc> arcs)
    : offsets_(std::move(offsets)), arcs_(std::move(arcs)) {
  assert(!offsets_.empty());
  assert(offsets_.front() == 0);
  assert(offsets_.back() == arcs_.size());
}

Quality QualityGraph::EdgeQuality(Vertex u, Vertex v) const {
  for (const Arc& a : Neighbors(u)) {
    if (a.to == v) return a.quality;
  }
  return -1.0f;
}

std::vector<Quality> QualityGraph::DistinctQualities() const {
  std::vector<Quality> qualities;
  qualities.reserve(arcs_.size());
  for (const Arc& a : arcs_) qualities.push_back(a.quality);
  std::sort(qualities.begin(), qualities.end());
  qualities.erase(std::unique(qualities.begin(), qualities.end()),
                  qualities.end());
  return qualities;
}

size_t QualityGraph::MaxDegree() const {
  size_t max_degree = 0;
  for (size_t u = 0; u + 1 < offsets_.size(); ++u) {
    max_degree = std::max(max_degree, offsets_[u + 1] - offsets_[u]);
  }
  return max_degree;
}

}  // namespace wcsd
