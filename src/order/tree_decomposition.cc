#include "order/tree_decomposition.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/bucket_queue.h"

namespace wcsd {

TreeDecomposition MdeDecompose(const QualityGraph& g,
                               const MdeOptions& options) {
  const size_t n = g.NumVertices();
  TreeDecomposition td;
  td.elimination_order.reserve(n);
  td.bags.reserve(n);

  // Transient adjacency (live neighbors only). Hash sets keep edge insertion
  // and deletion O(1); bags are sorted on extraction for determinism.
  std::vector<std::unordered_set<Vertex>> adj(n);
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : g.Neighbors(u)) adj[u].insert(a.to);
  }

  BucketQueue queue(n);
  for (Vertex u = 0; u < n; ++u) {
    queue.Push(u, static_cast<uint32_t>(adj[u].size()));
  }

  std::vector<bool> eliminated(n, false);
  std::vector<Vertex> deferred;

  while (!queue.Empty()) {
    Vertex v = static_cast<Vertex>(queue.PopMin());
    if (eliminated[v]) continue;

    std::vector<Vertex> neighbors(adj[v].begin(), adj[v].end());
    std::sort(neighbors.begin(), neighbors.end());

    if (neighbors.size() > options.max_fill_degree) {
      // Degree cap reached: since v had the minimum degree, every remaining
      // vertex is at least this dense. Defer all of them (no fill-in); the
      // hybrid ordering ranks this residue by degree instead.
      deferred.push_back(v);
      eliminated[v] = true;
      for (Vertex u : neighbors) adj[u].erase(v);
      continue;
    }

    eliminated[v] = true;
    td.elimination_order.push_back(v);

    // Bag = {v} ∪ N(v) in the transient graph (Def. 8's B_i).
    std::vector<Vertex> bag;
    bag.reserve(neighbors.size() + 1);
    bag.push_back(v);
    bag.insert(bag.end(), neighbors.begin(), neighbors.end());
    td.width = std::max(td.width, bag.size() > 0 ? bag.size() - 1 : 0);
    td.bags.push_back(std::move(bag));

    // Remove v and connect clique(N(v)).
    for (Vertex u : neighbors) adj[u].erase(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        Vertex a = neighbors[i], b = neighbors[j];
        if (adj[a].insert(b).second) adj[b].insert(a);
      }
    }
    for (Vertex u : neighbors) {
      queue.Push(u, static_cast<uint32_t>(adj[u].size()));
    }
  }

  // Deferred (capped) vertices are eliminated last without fill-in, ordered
  // by their residual degree ascending so the densest vertices top the
  // hierarchy. Their bags are their residual neighborhoods.
  for (Vertex v : deferred) {
    std::vector<Vertex> bag;
    bag.push_back(v);
    td.elimination_order.push_back(v);
    td.bags.push_back(std::move(bag));
  }

  // Parent links: bag i hangs off the bag of the earliest-eliminated vertex
  // among its neighborhood (all of which are eliminated after v_i).
  std::vector<size_t> elim_pos(n, 0);
  for (size_t i = 0; i < td.elimination_order.size(); ++i) {
    elim_pos[td.elimination_order[i]] = i;
  }
  td.parent.assign(td.bags.size(), -1);
  for (size_t i = 0; i < td.bags.size(); ++i) {
    const auto& bag = td.bags[i];
    size_t best = SIZE_MAX;
    for (size_t k = 1; k < bag.size(); ++k) {
      best = std::min(best, elim_pos[bag[k]]);
    }
    if (best != SIZE_MAX) td.parent[i] = static_cast<int64_t>(best);
  }
  return td;
}

bool TreeDecomposition::IsValidFor(const QualityGraph& g) const {
  const size_t n = g.NumVertices();
  if (elimination_order.size() != n || bags.size() != n) return false;

  std::vector<size_t> elim_pos(n, 0);
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    Vertex v = elimination_order[i];
    if (v >= n || seen[v]) return false;
    seen[v] = true;
    elim_pos[v] = i;
  }

  // Condition 1: every vertex occurs in some bag — it is the first element
  // of its own bag by construction.
  for (size_t i = 0; i < n; ++i) {
    if (bags[i].empty() || bags[i][0] != elimination_order[i]) return false;
  }

  // Condition 2: every edge (u, v) is contained in the bag of whichever
  // endpoint is eliminated first (the other endpoint is still live then and
  // the original edge survives until an endpoint is eliminated).
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (u > a.to) continue;
      Vertex first = elim_pos[u] < elim_pos[a.to] ? u : a.to;
      Vertex other = first == u ? a.to : u;
      const auto& bag = bags[elim_pos[first]];
      if (std::find(bag.begin(), bag.end(), other) == bag.end()) return false;
    }
  }

  // Condition 3: bags containing any vertex v form a connected subtree.
  // A set S of tree nodes is connected iff exactly |S| - 1 members have
  // their parent inside S.
  std::vector<std::vector<size_t>> bags_containing(n);
  for (size_t i = 0; i < bags.size(); ++i) {
    for (Vertex v : bags[i]) bags_containing[v].push_back(i);
  }
  std::vector<bool> in_set(bags.size(), false);
  for (Vertex v = 0; v < n; ++v) {
    const auto& set = bags_containing[v];
    for (size_t b : set) in_set[b] = true;
    size_t linked = 0;
    for (size_t b : set) {
      if (parent[b] >= 0 && in_set[static_cast<size_t>(parent[b])]) ++linked;
    }
    for (size_t b : set) in_set[b] = false;
    if (linked != set.size() - 1) return false;
  }
  return true;
}

VertexOrder TreeDecompositionOrder(const QualityGraph& g,
                                   const MdeOptions& options) {
  TreeDecomposition td = MdeDecompose(g, options);
  // Rank 0 = eliminated last (top of the hierarchy).
  std::vector<Vertex> by_rank(td.elimination_order.rbegin(),
                              td.elimination_order.rend());
  return VertexOrder(std::move(by_rank));
}

}  // namespace wcsd
