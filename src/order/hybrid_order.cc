#include "order/hybrid_order.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "order/tree_decomposition.h"

namespace wcsd {

VertexOrder HybridOrder(const QualityGraph& g, const HybridOptions& options) {
  const size_t n = g.NumVertices();

  // Classification (paper: "If a vertex v's degree is above this threshold,
  // it is classified into the core-part").
  std::vector<Vertex> core;
  for (Vertex v = 0; v < n; ++v) {
    if (g.Degree(v) > options.degree_threshold) core.push_back(v);
  }
  std::stable_sort(core.begin(), core.end(), [&g](Vertex a, Vertex b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });

  // Periphery: MDE hierarchy with fill-in capped at the threshold, so the
  // core (which would make elimination quadratic) is deferred by the
  // decomposition itself. Deferred core vertices surface at the end of the
  // elimination order, i.e. at the top ranks of the tree order — we drop
  // them there and splice the degree-ranked core in front instead.
  MdeOptions mde;
  mde.max_fill_degree = options.degree_threshold;
  TreeDecomposition td = MdeDecompose(g, mde);

  std::vector<bool> is_core(n, false);
  for (Vertex v : core) is_core[v] = true;

  std::vector<Vertex> by_rank;
  by_rank.reserve(n);
  by_rank.insert(by_rank.end(), core.begin(), core.end());
  // Reverse elimination order = hierarchy top first.
  for (auto it = td.elimination_order.rbegin();
       it != td.elimination_order.rend(); ++it) {
    if (!is_core[*it]) by_rank.push_back(*it);
  }
  return VertexOrder(std::move(by_rank));
}

size_t AutoDegreeThreshold(const QualityGraph& g) {
  const size_t n = g.NumVertices();
  if (n == 0) return 4;
  double sum = 0.0, sum_sq = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    double d = static_cast<double>(g.Degree(v));
    sum += d;
    sum_sq += d * d;
  }
  double mean = sum / static_cast<double>(n);
  double variance = sum_sq / static_cast<double>(n) - mean * mean;
  double threshold = mean + 2.0 * std::sqrt(std::max(0.0, variance));
  return static_cast<size_t>(std::clamp(threshold, 4.0, 512.0));
}

}  // namespace wcsd
