// Vertex orderings for 2-hop label construction (paper §IV.D).
//
// The order in which Algorithm 3 starts its |V| constrained-BFS rounds
// drives indexing time, index size, and query time. This module defines the
// shared VertexOrder representation plus the degree-based and random
// schemes; tree-decomposition and hybrid orders live in their own files.

#ifndef WCSD_ORDER_VERTEX_ORDER_H_
#define WCSD_ORDER_VERTEX_ORDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// A bijection between vertices and ranks. Rank 0 is the most important
/// vertex: it is the first BFS root and prunes most aggressively.
class VertexOrder {
 public:
  VertexOrder() = default;

  /// Builds from a rank -> vertex permutation.
  explicit VertexOrder(std::vector<Vertex> by_rank);

  /// Vertex at the given rank.
  Vertex VertexAt(Rank r) const { return by_rank_[r]; }

  /// Rank of the given vertex.
  Rank RankOf(Vertex v) const { return rank_of_[v]; }

  size_t size() const { return by_rank_.size(); }

  const std::vector<Vertex>& by_rank() const { return by_rank_; }
  const std::vector<Rank>& rank_of() const { return rank_of_; }

  /// True if the order is a permutation of [0, n). Used by tests.
  bool IsValid() const;

 private:
  std::vector<Vertex> by_rank_;
  std::vector<Rank> rank_of_;
};

/// Degree-based ordering: vertices sorted by non-ascending degree (ties by
/// id for determinism). "A vertex with a higher degree is likely to cover
/// more shortest paths" — the canonical PLL scheme (§IV.D).
VertexOrder DegreeOrder(const QualityGraph& g);

/// Uniformly random ordering (ablation baseline).
VertexOrder RandomOrder(size_t num_vertices, uint64_t seed);

/// Identity ordering (rank == vertex id). Used by golden tests that must
/// match the paper's worked example, which processes v0, v1, ... in order.
VertexOrder IdentityOrder(size_t num_vertices);

}  // namespace wcsd

#endif  // WCSD_ORDER_VERTEX_ORDER_H_
