#include "order/vertex_order.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/random.h"

namespace wcsd {

VertexOrder::VertexOrder(std::vector<Vertex> by_rank)
    : by_rank_(std::move(by_rank)), rank_of_(by_rank_.size(), 0) {
  for (size_t r = 0; r < by_rank_.size(); ++r) {
    assert(by_rank_[r] < by_rank_.size());
    rank_of_[by_rank_[r]] = static_cast<Rank>(r);
  }
}

bool VertexOrder::IsValid() const {
  std::vector<bool> seen(by_rank_.size(), false);
  for (Vertex v : by_rank_) {
    if (v >= by_rank_.size() || seen[v]) return false;
    seen[v] = true;
  }
  for (size_t r = 0; r < by_rank_.size(); ++r) {
    if (rank_of_[by_rank_[r]] != r) return false;
  }
  return true;
}

VertexOrder DegreeOrder(const QualityGraph& g) {
  std::vector<Vertex> by_rank(g.NumVertices());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&g](Vertex a, Vertex b) {
                     if (g.Degree(a) != g.Degree(b)) {
                       return g.Degree(a) > g.Degree(b);
                     }
                     return a < b;
                   });
  return VertexOrder(std::move(by_rank));
}

VertexOrder RandomOrder(size_t num_vertices, uint64_t seed) {
  std::vector<Vertex> by_rank(num_vertices);
  std::iota(by_rank.begin(), by_rank.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&by_rank);
  return VertexOrder(std::move(by_rank));
}

VertexOrder IdentityOrder(size_t num_vertices) {
  std::vector<Vertex> by_rank(num_vertices);
  std::iota(by_rank.begin(), by_rank.end(), 0);
  return VertexOrder(std::move(by_rank));
}

}  // namespace wcsd
