// Hybrid vertex ordering (paper §IV.D "Hybrid Vertex Ordering").
//
// Degree ordering excels on scale-free graphs; tree-decomposition ordering
// excels on road networks; MDE is too expensive on dense cores. The hybrid
// scheme classifies vertices by a degree threshold delta:
//   * core (degree > delta): ranked by degree, non-ascending, first;
//   * periphery (degree <= delta): ranked by the tree-decomposition
//     hierarchy computed with the core excluded from fill-in.

#ifndef WCSD_ORDER_HYBRID_ORDER_H_
#define WCSD_ORDER_HYBRID_ORDER_H_

#include <cstddef>

#include "graph/graph.h"
#include "order/vertex_order.h"

namespace wcsd {

/// Parameters of the hybrid ordering.
struct HybridOptions {
  /// The paper's delta: vertices with degree above this go to the core.
  /// SIZE_MAX sends every vertex to the periphery (pure tree order);
  /// 0 sends every vertex to the core (pure degree order).
  size_t degree_threshold = 16;
};

/// Computes the hybrid order: [core by degree desc] then [periphery by MDE
/// hierarchy, top of hierarchy first].
VertexOrder HybridOrder(const QualityGraph& g, const HybridOptions& options);

/// Picks a degree threshold automatically: the mean degree plus two standard
/// deviations, clamped to [4, 512]. Scale-free graphs put their hubs above
/// this; road networks put (almost) everything in the periphery.
size_t AutoDegreeThreshold(const QualityGraph& g);

}  // namespace wcsd

#endif  // WCSD_ORDER_HYBRID_ORDER_H_
