// Minimum-Degree-Elimination tree decomposition (paper §IV.D, Def. 7-8).
//
// MDE repeatedly removes the vertex of minimum degree from a transient
// graph, forming a bag from the vertex plus its current neighborhood and
// re-connecting that neighborhood as a clique. The elimination sequence
// induces the "Vertex Hierarchy via Tree Decomposition" ordering the paper
// borrows from Ouyang et al. (SIGMOD'18): vertices eliminated LAST sit at
// the top of the hierarchy and get the highest ranks (rank 0 = eliminated
// last).

#ifndef WCSD_ORDER_TREE_DECOMPOSITION_H_
#define WCSD_ORDER_TREE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// Result of MDE-based tree decomposition.
struct TreeDecomposition {
  /// Elimination sequence: elimination_order[i] is the vertex removed in
  /// round i+1 (the paper's v_i).
  std::vector<Vertex> elimination_order;

  /// Bags: bags[i] = {v_i} ∪ N_i, the vertex plus its neighborhood in the
  /// transient graph right before removal (Def. 8's B_i).
  std::vector<std::vector<Vertex>> bags;

  /// Parent bag index per bag, or -1 for roots. Bag i's parent is the bag of
  /// the earliest-eliminated vertex among N_i (standard MDE tree linking).
  std::vector<int64_t> parent;

  /// max |bag| - 1: an upper bound on the treewidth of the input graph.
  size_t width = 0;

  /// Validates the three tree-decomposition conditions of Def. 7 against
  /// `g` (vertex coverage, edge coverage, connected-subtree property).
  /// O(n * width^2) — for tests.
  bool IsValidFor(const QualityGraph& g) const;
};

/// Options bounding MDE cost on dense graphs.
struct MdeOptions {
  /// Vertices whose transient degree exceeds this cap are deferred to the
  /// end of the elimination order without clique fill-in (they become the
  /// top of the hierarchy). SIZE_MAX disables the cap. The hybrid ordering
  /// uses this to skip the expensive core.
  size_t max_fill_degree = SIZE_MAX;
};

/// Runs MDE-based tree decomposition on `g`.
TreeDecomposition MdeDecompose(const QualityGraph& g,
                               const MdeOptions& options = {});

/// Tree-decomposition vertex ordering: rank 0 = vertex eliminated last.
VertexOrder TreeDecompositionOrder(const QualityGraph& g,
                                   const MdeOptions& options = {});

}  // namespace wcsd

#endif  // WCSD_ORDER_TREE_DECOMPOSITION_H_
