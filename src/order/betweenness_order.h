// Sampled-betweenness vertex ordering.
//
// An additional ordering strategy for the §IV.D ablation: hub labelings
// prefer vertices that cover many shortest paths, and (approximate)
// betweenness centrality measures exactly that. Exact betweenness is
// O(nm); Brandes' dependency accumulation from a sample of sources gives
// an unbiased estimate that is plenty for ranking.

#ifndef WCSD_ORDER_BETWEENNESS_ORDER_H_
#define WCSD_ORDER_BETWEENNESS_ORDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "order/vertex_order.h"

namespace wcsd {

/// Approximate betweenness scores from `samples` Brandes accumulations
/// (sources sampled uniformly with replacement). Qualities are ignored:
/// the ordering heuristic ranks structural centrality.
std::vector<double> SampledBetweenness(const QualityGraph& g, size_t samples,
                                       uint64_t seed);

/// Vertices ordered by non-ascending sampled betweenness (ties by degree,
/// then id).
VertexOrder BetweennessOrder(const QualityGraph& g, size_t samples,
                             uint64_t seed);

}  // namespace wcsd

#endif  // WCSD_ORDER_BETWEENNESS_ORDER_H_
