#include "order/betweenness_order.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace wcsd {

std::vector<double> SampledBetweenness(const QualityGraph& g, size_t samples,
                                       uint64_t seed) {
  const size_t n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;
  Rng rng(seed);

  // Brandes (2001): one BFS per sampled source, followed by reverse-order
  // dependency accumulation over the shortest-path DAG.
  std::vector<Distance> dist(n);
  std::vector<double> sigma(n);  // #shortest paths from the source
  std::vector<double> delta(n);  // accumulated dependency
  std::vector<Vertex> order;     // vertices in BFS (non-decreasing dist)
  order.reserve(n);

  for (size_t round = 0; round < samples; ++round) {
    Vertex source = static_cast<Vertex>(rng.NextBounded(n));
    std::fill(dist.begin(), dist.end(), kInfDistance);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    dist[source] = 0;
    sigma[source] = 1.0;
    order.push_back(source);
    for (size_t head = 0; head < order.size(); ++head) {
      Vertex u = order[head];
      for (const Arc& a : g.Neighbors(u)) {
        if (dist[a.to] == kInfDistance) {
          dist[a.to] = dist[u] + 1;
          order.push_back(a.to);
        }
        if (dist[a.to] == dist[u] + 1) sigma[a.to] += sigma[u];
      }
    }
    // Reverse accumulation: delta(v) = sum over successors w of
    // sigma(v)/sigma(w) * (1 + delta(w)).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Vertex w = *it;
      for (const Arc& a : g.Neighbors(w)) {
        if (dist[a.to] == dist[w] + 1 && sigma[a.to] > 0.0) {
          delta[w] += sigma[w] / sigma[a.to] * (1.0 + delta[a.to]);
        }
      }
      if (w != source) centrality[w] += delta[w];
    }
  }
  return centrality;
}

VertexOrder BetweennessOrder(const QualityGraph& g, size_t samples,
                             uint64_t seed) {
  std::vector<double> centrality = SampledBetweenness(g, samples, seed);
  std::vector<Vertex> by_rank(g.NumVertices());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&](Vertex a, Vertex b) {
                     if (centrality[a] != centrality[b]) {
                       return centrality[a] > centrality[b];
                     }
                     if (g.Degree(a) != g.Degree(b)) {
                       return g.Degree(a) > g.Degree(b);
                     }
                     return a < b;
                   });
  return VertexOrder(std::move(by_rank));
}

}  // namespace wcsd
