// Query workload generation for the benches (paper §VI: "10,000 random
// queries were employed and the average time is reported").

#ifndef WCSD_BENCH_WORKLOAD_H_
#define WCSD_BENCH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// One WCSD query instance.
struct WcsdQuery {
  Vertex s;
  Vertex t;
  Quality w;
};

/// Generates `count` queries: endpoints uniform over V, constraint uniform
/// over the distinct quality values of `g`. Deterministic given the seed.
std::vector<WcsdQuery> MakeQueryWorkload(const QualityGraph& g, size_t count,
                                         uint64_t seed);

/// Generates a hot-set-skewed workload: `count` queries drawn from a pool
/// of `pool_size` random (s, t) pairs with Zipf(theta) popularity (rank k
/// drawn with probability proportional to 1/k^theta; theta = 0 degenerates
/// to uniform, real query logs sit around 0.9-1.2 — see PAPERS.md on
/// IS-LABEL / Query-by-Sketch). Each pooled pair carries a fixed
/// constraint; with `vary_w` every draw instead picks a fresh uniform
/// constraint, so repeats of a hot pair arrive with DIFFERENT w — the
/// shape that only an interval (dominance-aware) cache can serve from one
/// entry. Deterministic given the seed.
std::vector<WcsdQuery> MakeZipfQueryWorkload(const QualityGraph& g,
                                             size_t count, size_t pool_size,
                                             double theta, bool vary_w,
                                             uint64_t seed);

}  // namespace wcsd

#endif  // WCSD_BENCH_WORKLOAD_H_
