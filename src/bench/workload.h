// Query workload generation for the benches (paper §VI: "10,000 random
// queries were employed and the average time is reported").

#ifndef WCSD_BENCH_WORKLOAD_H_
#define WCSD_BENCH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// One WCSD query instance.
struct WcsdQuery {
  Vertex s;
  Vertex t;
  Quality w;
};

/// Generates `count` queries: endpoints uniform over V, constraint uniform
/// over the distinct quality values of `g`. Deterministic given the seed.
std::vector<WcsdQuery> MakeQueryWorkload(const QualityGraph& g, size_t count,
                                         uint64_t seed);

}  // namespace wcsd

#endif  // WCSD_BENCH_WORKLOAD_H_
